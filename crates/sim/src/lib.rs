//! # loas-sim — cycle-level simulation substrate for the LoAS reproduction
//!
//! The paper evaluates LoAS and its baselines with a cycle-level simulator
//! that "tiles the loop and maps it to hardware" (Section V). This crate
//! provides the shared modeling primitives all accelerator models in the
//! workspace are built from:
//!
//! * [`Cycle`] / [`ClockDomain`] — cycle bookkeeping at the 800 MHz design
//!   point;
//! * [`Fifo`] — the depth-bounded FIFOs inside a TPPE;
//! * [`HbmModel`] — off-chip bandwidth roofline + traffic ledger (128 GB/s,
//!   16 channels);
//! * [`SramCache`] — the banked set-associative FiberCache (256 KB, 16-way)
//!   with LRU tags for the Fig. 14 miss-rate comparison;
//! * [`ScratchBuffer`] / [`DoubleBuffer`] — capacity checks and load/compute
//!   overlap;
//! * [`Crossbar`] — the swizzle-switch distribution network;
//! * [`EnergyModel`] — per-event energy rollup seeded from Table IV powers;
//! * [`Component`] / [`ComponentTable`] / [`AffineScaling`] — area/power
//!   accounting for Table IV, Fig. 15, and the Fig. 16(a) T-scaling study;
//! * [`SimStats`] / [`TrafficLedger`] — the record every accelerator model
//!   reports.
//!
//! # Examples
//!
//! ```
//! use loas_sim::{EnergyModel, HbmModel, SimStats, TrafficClass};
//!
//! let mut hbm = HbmModel::loas_default();
//! hbm.read(TrafficClass::Weight, 4096);
//! let mut stats = SimStats::new();
//! stats.dram = hbm.take_ledger();
//! let energy = EnergyModel::default().energy_of(&stats);
//! assert!(energy.dram_pj > 0.0);
//! ```

#![warn(missing_docs)]

mod area;
mod clock;
mod crossbar;
mod energy;
mod fifo;
mod memory;
mod stats;

pub use area::{AffineScaling, Component, ComponentTable};
pub use clock::{ClockDomain, Cycle};
pub use crossbar::Crossbar;
pub use energy::{EnergyBreakdown, EnergyModel, EnergyParams};
pub use fifo::Fifo;
pub use memory::{
    Access, DoubleBuffer, HbmModel, LineSpan, ScratchBuffer, SpanResidency, SramCache,
};
pub use stats::{CacheStats, OpCounts, SimStats, TrafficClass, TrafficLedger};
