//! Depth-bounded FIFO queues with occupancy statistics.
//!
//! TPPEs contain two depth-8 FIFOs (Table III): `FIFO-mp` buffers matched
//! positions and `FIFO-B` buffers matched non-zero weights while the laggy
//! prefix-sum catches up (Fig. 10). Backpressure from a full FIFO is what
//! ultimately bounds how far the fast prefix-sum may run ahead.

use std::collections::VecDeque;

/// A bounded FIFO that records its high-water mark and the number of
/// rejected pushes (backpressure events).
///
/// # Examples
///
/// ```
/// use loas_sim::Fifo;
///
/// let mut f = Fifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert!(f.push(3).is_err()); // full: backpressure
/// assert_eq!(f.pop(), Some(1));
/// assert_eq!(f.high_water(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fifo<T> {
    depth: usize,
    items: VecDeque<T>,
    high_water: usize,
    rejected: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with capacity `depth`.
    ///
    /// # Panics
    ///
    /// Panics when `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        Fifo {
            depth,
            items: VecDeque::with_capacity(depth),
            high_water: 0,
            rejected: 0,
        }
    }

    /// Capacity of the FIFO.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.depth
    }

    /// Pushes an item, returning it back on overflow (the caller must stall).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the FIFO is full; the rejection is counted.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Pops the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Maximum occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of pushes rejected because the FIFO was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Empties the FIFO (statistics are preserved).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert!(f.is_full());
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.front(), Some(&1));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn overflow_counts_rejections() {
        let mut f = Fifo::new(1);
        f.push('a').unwrap();
        assert_eq!(f.push('b'), Err('b'));
        assert_eq!(f.push('c'), Err('c'));
        assert_eq!(f.rejected(), 2);
    }

    #[test]
    fn high_water_tracks_max() {
        let mut f = Fifo::new(8);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.high_water(), 2);
    }

    #[test]
    fn clear_preserves_stats() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        let _ = f.push(3);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.high_water(), 2);
        assert_eq!(f.rejected(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        Fifo::<u8>::new(0);
    }
}
