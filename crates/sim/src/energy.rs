//! Per-event energy model.
//!
//! Energy is computed from [`SimStats`] as
//! `E = Σ_traffic bytes · pJ/B + Σ_ops count · pJ/op + Σ_circuits active_cycles · pJ/cycle`.
//! Circuit per-cycle energies derive from the paper's Table IV component
//! powers at the 800 MHz synthesis clock (e.g. the fast prefix-sum circuit:
//! 1.46 mW → 1.825 pJ/cycle). Memory energies use CACTI-ballpark constants
//! for a 32 nm node; all reported results are normalized ratios, exactly as
//! the paper reports them.

use crate::clock::ClockDomain;
use crate::stats::SimStats;

/// Per-event energy constants, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Off-chip DRAM/HBM energy per byte (~3.9 pJ/bit for HBM2).
    pub dram_pj_per_byte: f64,
    /// On-chip SRAM energy per byte (256 KB-class array, 32 nm).
    pub sram_pj_per_byte: f64,
    /// One accumulate (AND + add) — the SNN compute primitive.
    pub accumulate_pj: f64,
    /// One 8-bit multiply-accumulate (ANN baselines).
    pub mac_pj: f64,
    /// Fast prefix-sum circuit, per active cycle (Table IV: 1.46 mW).
    pub fast_prefix_pj_per_cycle: f64,
    /// Laggy prefix-sum circuit, per active cycle (Table IV: 0.32 mW).
    pub laggy_prefix_pj_per_cycle: f64,
    /// One LIF membrane update + threshold compare.
    pub lif_pj: f64,
    /// One merger element operation (OP/Gustavson designs).
    pub merge_pj: f64,
    /// Background (leakage + clock tree) energy per cycle for the whole
    /// accelerator — how slow designs lose efficiency by running longer.
    pub background_pj_per_cycle: f64,
}

impl EnergyParams {
    /// Defaults for the 32 nm / 800 MHz design point of the paper.
    pub fn loas_default() -> Self {
        let clock = ClockDomain::default();
        EnergyParams {
            dram_pj_per_byte: 31.2,
            sram_pj_per_byte: 3.0,
            accumulate_pj: 0.1,
            mac_pj: 0.8,
            fast_prefix_pj_per_cycle: clock.mw_to_pj_per_cycle(1.46),
            laggy_prefix_pj_per_cycle: clock.mw_to_pj_per_cycle(0.32),
            lif_pj: 0.3,
            merge_pj: 1.2,
            // ~40 mW of leakage + clock for a 188.9 mW design at 800 MHz.
            background_pj_per_cycle: 50.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::loas_default()
    }
}

/// Energy rollup by source, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Off-chip traffic energy.
    pub dram_pj: f64,
    /// On-chip SRAM traffic energy.
    pub sram_pj: f64,
    /// Datapath energy (accumulates, MACs, LIF, merges).
    pub compute_pj: f64,
    /// Sparsity-handling energy (prefix-sum circuits).
    pub sparsity_pj: f64,
    /// Background (leakage + clock) energy over the run.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.sram_pj + self.compute_pj + self.sparsity_pj + self.static_pj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// Fraction of energy spent on data movement (DRAM + SRAM) — the paper
    /// observes ~60% for both SNN and ANN runs (Fig. 18 discussion).
    pub fn data_movement_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            (self.dram_pj + self.sram_pj) / total
        }
    }
}

/// Computes energy from simulation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with the given constants.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The constants in use.
    pub fn params(&self) -> EnergyParams {
        self.params
    }

    /// Rolls up the energy of one simulation record.
    pub fn energy_of(&self, stats: &SimStats) -> EnergyBreakdown {
        let p = self.params;
        EnergyBreakdown {
            dram_pj: stats.dram.total() as f64 * p.dram_pj_per_byte,
            sram_pj: stats.sram.total() as f64 * p.sram_pj_per_byte,
            compute_pj: stats.ops.accumulates as f64 * p.accumulate_pj
                + stats.ops.macs as f64 * p.mac_pj
                + stats.ops.lif_updates as f64 * p.lif_pj
                + stats.ops.merges as f64 * p.merge_pj,
            sparsity_pj: stats.ops.fast_prefix_cycles as f64 * p.fast_prefix_pj_per_cycle
                + stats.ops.laggy_prefix_cycles as f64 * p.laggy_prefix_pj_per_cycle,
            static_pj: stats.cycles.get() as f64 * p.background_pj_per_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TrafficClass;

    #[test]
    fn defaults_derive_from_table4_powers() {
        let p = EnergyParams::loas_default();
        assert!((p.fast_prefix_pj_per_cycle - 1.825).abs() < 1e-9);
        assert!((p.laggy_prefix_pj_per_cycle - 0.4).abs() < 1e-9);
        assert!(
            p.fast_prefix_pj_per_cycle > 4.0 * p.laggy_prefix_pj_per_cycle,
            "fast prefix-sum must dominate (paper: 51.8% vs 11.4% of TPPE power)"
        );
    }

    #[test]
    fn energy_rollup() {
        let mut stats = SimStats::new();
        stats.dram.record(TrafficClass::Weight, 1000);
        stats.sram.record(TrafficClass::Input, 1000);
        stats.ops.accumulates = 10;
        stats.ops.fast_prefix_cycles = 4;
        let model = EnergyModel::default();
        let e = model.energy_of(&stats);
        let p = model.params();
        assert!((e.dram_pj - 1000.0 * p.dram_pj_per_byte).abs() < 1e-9);
        assert!((e.sram_pj - 1000.0 * p.sram_pj_per_byte).abs() < 1e-9);
        assert!((e.compute_pj - 1.0).abs() < 1e-9);
        assert!((e.sparsity_pj - 4.0 * p.fast_prefix_pj_per_cycle).abs() < 1e-9);
        assert!(e.total_pj() > 0.0);
        assert!(
            e.data_movement_fraction() > 0.9,
            "DRAM should dominate here"
        );
    }

    #[test]
    fn dram_byte_costs_more_than_sram_byte() {
        let p = EnergyParams::loas_default();
        assert!(p.dram_pj_per_byte > 5.0 * p.sram_pj_per_byte);
    }

    #[test]
    fn empty_stats_zero_energy() {
        let e = EnergyModel::default().energy_of(&SimStats::new());
        assert_eq!(e.total_pj(), 0.0);
        assert_eq!(e.data_movement_fraction(), 0.0);
    }
}
