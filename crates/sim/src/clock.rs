//! Cycle bookkeeping primitives.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A cycle count in the accelerator clock domain (800 MHz in the paper's
/// synthesis, Table III).
///
/// # Examples
///
/// ```
/// use loas_sim::Cycle;
///
/// let a = Cycle(10) + Cycle(5);
/// assert_eq!(a.get(), 15);
/// assert_eq!(Cycle(3).max(Cycle(9)), Cycle(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Zero cycles.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw cycle count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction (useful for overlap accounting).
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A clock domain, converting cycle counts to wall-clock time and power to
/// per-cycle energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    freq_ghz: f64,
}

impl ClockDomain {
    /// The paper's synthesis clock: 800 MHz.
    pub const LOAS_DEFAULT_GHZ: f64 = 0.8;

    /// Creates a clock domain at `freq_ghz` GHz.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    pub fn new(freq_ghz: f64) -> Self {
        assert!(freq_ghz > 0.0, "clock frequency must be positive");
        ClockDomain { freq_ghz }
    }

    /// Frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Wall-clock duration of `cycles`, in nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles.get() as f64 / self.freq_ghz
    }

    /// Converts a sustained bandwidth in GB/s into bytes per cycle.
    pub fn bytes_per_cycle(&self, gb_per_s: f64) -> f64 {
        gb_per_s / self.freq_ghz
    }

    /// Converts a component power in mW into pJ consumed per active cycle
    /// (`pJ/cycle = mW / GHz`).
    pub fn mw_to_pj_per_cycle(&self, mw: f64) -> f64 {
        mw / self.freq_ghz
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::new(Self::LOAS_DEFAULT_GHZ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let mut c = Cycle(5);
        c += Cycle(7);
        assert_eq!(c, Cycle(12));
        assert_eq!(c.saturating_sub(Cycle(20)), Cycle::ZERO);
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total.get(), 6);
    }

    #[test]
    fn clock_conversions() {
        let clk = ClockDomain::default();
        assert!((clk.cycles_to_ns(Cycle(800)) - 1000.0).abs() < 1e-9);
        // 128 GB/s at 800 MHz = 160 B/cycle (Table III HBM).
        assert!((clk.bytes_per_cycle(128.0) - 160.0).abs() < 1e-9);
        // 1.46 mW at 800 MHz = 1.825 pJ/cycle (fast prefix-sum, Table IV).
        assert!((clk.mw_to_pj_per_cycle(1.46) - 1.825).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        ClockDomain::new(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycle(7).to_string(), "7 cycles");
    }
}
