//! Scratchpad and double-buffer models.

use crate::clock::Cycle;

/// A simple capacity-checked scratchpad (e.g. GoSPA's on-chip psum buffer,
/// or the 128-byte weight buffer inside a TPPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchBuffer {
    capacity_bytes: usize,
}

impl ScratchBuffer {
    /// Creates a scratchpad of `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        ScratchBuffer { capacity_bytes }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Whether an object of `bytes` fits entirely on chip.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity_bytes as u64
    }

    /// How many bytes of an object of `bytes` spill off chip.
    pub fn overflow_bytes(&self, bytes: u64) -> u64 {
        bytes.saturating_sub(self.capacity_bytes as u64)
    }
}

/// A double buffer: loads for tile `i+1` overlap the compute of tile `i`
/// (the paper's global cache is "256 KB (double-buffered)").
///
/// # Examples
///
/// ```
/// use loas_sim::{Cycle, DoubleBuffer};
///
/// let db = DoubleBuffer::new(128 * 1024);
/// // Perfect overlap: the phase takes the max of load and compute.
/// assert_eq!(db.phase_cycles(Cycle(10), Cycle(25)), Cycle(25));
/// assert_eq!(db.phase_cycles(Cycle(40), Cycle(25)), Cycle(40));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleBuffer {
    half_capacity_bytes: usize,
}

impl DoubleBuffer {
    /// Creates a double buffer where each half holds `half_capacity_bytes`.
    pub fn new(half_capacity_bytes: usize) -> Self {
        DoubleBuffer {
            half_capacity_bytes,
        }
    }

    /// Capacity of one half.
    pub fn half_capacity_bytes(&self) -> usize {
        self.half_capacity_bytes
    }

    /// Cycles for one pipelined phase: overlapped load and compute.
    pub fn phase_cycles(&self, load: Cycle, compute: Cycle) -> Cycle {
        load.max(compute)
    }

    /// Cycles for a sequence of phases with software pipelining: the first
    /// load is exposed, after which each phase costs `max(load, compute)`.
    pub fn pipeline_cycles(&self, phases: &[(Cycle, Cycle)]) -> Cycle {
        let Some((first_load, _)) = phases.first() else {
            return Cycle::ZERO;
        };
        let steady: Cycle = phases
            .iter()
            .map(|&(load, compute)| self.phase_cycles(load, compute))
            .sum();
        *first_load + steady
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_fits_and_overflow() {
        let s = ScratchBuffer::new(100);
        assert!(s.fits(100));
        assert!(!s.fits(101));
        assert_eq!(s.overflow_bytes(150), 50);
        assert_eq!(s.overflow_bytes(10), 0);
    }

    #[test]
    fn double_buffer_overlaps() {
        let db = DoubleBuffer::new(1024);
        assert_eq!(db.phase_cycles(Cycle(5), Cycle(9)), Cycle(9));
        assert_eq!(db.phase_cycles(Cycle(9), Cycle(5)), Cycle(9));
    }

    #[test]
    fn pipeline_exposes_first_load_only() {
        let db = DoubleBuffer::new(1024);
        let phases = [(Cycle(10), Cycle(20)), (Cycle(10), Cycle(20))];
        // 10 (first load) + 20 + 20
        assert_eq!(db.pipeline_cycles(&phases), Cycle(50));
        assert_eq!(db.pipeline_cycles(&[]), Cycle::ZERO);
    }
}
