//! Banked, set-associative on-chip SRAM cache (FiberCache-style).
//!
//! LoAS uses a 256 KB, 16-bank, 16-way-associative unified global cache for
//! compressed fibers (Table III), following Gamma's FiberCache. The model
//! here simulates tag behaviour (LRU within each set) to produce the
//! normalized miss-rate comparison of Fig. 14, and ledgers all read/write
//! bytes for the on-chip traffic plots of Fig. 13.
//!
//! # Simulator performance (PR 5)
//!
//! Three layers of mechanism keep the tag-accurate model off the profile
//! without changing a single hit/miss outcome:
//!
//! 1. **Indexed lookup** — resident lines live in an O(1) hash index
//!    (line id → slot), replacing the per-access linear scan over the
//!    `ways` tags of a set (16 compares per access in the default
//!    geometry). The LRU victim scan on a miss is unchanged — and provably
//!    identical, because valid ways always form the prefix `[0, filled)`
//!    of a set.
//! 2. **Span batching** — callers that touch a multi-line object describe
//!    it once as a [`LineSpan`] and call [`SramCache::access_span`] /
//!    [`SramCache::probe_span`]: one ledger record and one tight loop
//!    instead of a function call per 64-byte line.
//! 3. **Residency fast path** — a caller that re-touches the same span
//!    many times (Gamma's B-row walk, LoAS's per-tile fiber-B broadcast)
//!    keeps a [`SpanResidency`] token. The cache tracks, per set, the tick
//!    of the last eviction; when a span's last full probe postdates every
//!    eviction in its sets, every line is still resident, so the access is
//!    all-hits and only the LRU/tick updates run — no tag compares at all.
//!    When the whole-span check fails (or the probe length varies, as in
//!    the per-pair payload probes), a per-line salvage tier revalidates
//!    each recorded slot with a single tag compare before falling back to
//!    the hash index.

use crate::stats::{CacheStats, TrafficClass, TrafficLedger};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line was fetched (and possibly evicted another line).
    Miss,
}

/// A contiguous run of cache lines covering one object, precomputed so the
/// hot replay loops do no per-access address arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineSpan {
    /// First covering line id.
    pub first_line: u64,
    /// Number of covering lines (0 for empty objects).
    pub n_lines: u64,
}

impl LineSpan {
    /// The lines covering `bytes` bytes starting at abstract address
    /// `addr`. Saturating span math: an object extending past `u64::MAX`
    /// clamps to the last representable line instead of wrapping around to
    /// line 0 (the `addr + bytes - 1` overflow hazard of the original
    /// `access_range`).
    pub fn of_range(addr: u64, bytes: u64, line_bytes: usize) -> Self {
        if bytes == 0 {
            return LineSpan::default();
        }
        let line = line_bytes as u64;
        let first = addr / line;
        let last = addr.saturating_add(bytes - 1) / line;
        LineSpan {
            first_line: first,
            n_lines: last - first + 1,
        }
    }

    /// The lines covering `bytes` bytes starting `intra` bytes into line
    /// `first_line` — the per-pair form: base line and intra-line offset
    /// are precomputed once per row, only the length varies per pair.
    /// Clamps to the last representable line like
    /// [`LineSpan::of_range`], so spans never wrap past `u64::MAX`.
    pub fn tail(first_line: u64, intra: u64, bytes: u64, line_bytes: usize) -> Self {
        if bytes == 0 {
            return LineSpan::default();
        }
        let extra_lines =
            (intra.saturating_add(bytes - 1) / line_bytes as u64).min(u64::MAX - first_line);
        LineSpan {
            first_line,
            // Saturates for the degenerate full-address-space span (the
            // count 2^64 is unrepresentable; the last line is dropped).
            n_lines: extra_lines.saturating_add(1),
        }
    }

    /// Whether the span covers no lines.
    pub fn is_empty(&self) -> bool {
        self.n_lines == 0
    }
}

/// A caller-held residency token for a [`LineSpan`] that is probed
/// repeatedly (see [`SramCache::access_span_resident`]). Holds the span's
/// slots as of its last recording plus the tick its last full probe
/// finished at; the cache validates them against its per-set eviction
/// epochs (whole-span all-hits fast path) or per line against the tag
/// array (salvage path, one compare per line instead of a hash probe).
///
/// A token is bound to one base address: probes through the same token
/// may vary in length (`n_lines`) — shorter probes reuse the recorded
/// slot prefix, longer ones extend it — which is what the per-pair
/// payload probes of the LoAS replay need.
#[derive(Debug, Clone, Default)]
pub struct SpanResidency {
    /// The longest span recorded through this token (fast paths only fire
    /// on a matching `first_line`, so reusing a token across objects
    /// degrades safely to the slow path).
    span: LineSpan,
    /// Tick at which the last probe covering the whole recorded span
    /// completed (0: never).
    last_full_tick: u64,
    /// Cache generation the slots were recorded in.
    generation: u64,
    /// Epoch-path eligibility: spans longer than the set count can evict
    /// their own earlier lines mid-probe, so they never take the
    /// whole-span fast path (the per-line salvage path still applies).
    eligible: bool,
    /// Slot of each recorded line, in span order.
    slots: Vec<u32>,
}

/// Hashes abstract line ids with one multiply + xor-shift — line ids are
/// already well-distributed addresses, so SipHash would be pure overhead
/// on the hottest loop of the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LineIdHash;

struct LineIdHasher(u64);

impl Hasher for LineIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; keep a correct fallback anyway.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        let mut h = value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h;
    }
}

impl BuildHasher for LineIdHash {
    type Hasher = LineIdHasher;

    fn build_hasher(&self) -> LineIdHasher {
        LineIdHasher(0)
    }
}

/// A set-associative cache with per-set LRU replacement.
///
/// Addresses are abstract line identifiers: callers hash whatever object
/// identity they track (fiber id, psum tile id, ...) into a `u64`.
///
/// # Examples
///
/// ```
/// use loas_sim::{Access, SramCache, TrafficClass};
///
/// let mut cache = SramCache::new(4 * 64, 64, 2, 1);
/// assert_eq!(cache.access_line(0, TrafficClass::Weight), Access::Miss);
/// assert_eq!(cache.access_line(0, TrafficClass::Weight), Access::Hit);
/// assert!(cache.stats().miss_rate() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SramCache {
    line_bytes: usize,
    ways: usize,
    sets: usize,
    banks: usize,
    /// `sets x ways` tags; `None` = invalid. Tag includes the set bits
    /// (full line id) for simplicity.
    tags: Vec<Option<u64>>,
    /// LRU counters parallel to `tags` (higher = more recently used).
    lru: Vec<u64>,
    /// Resident-line index: line id → slot in `tags`/`lru`. Kept exactly
    /// in sync with `tags` so lookups are O(1) instead of O(ways).
    index: HashMap<u64, u32, LineIdHash>,
    /// Per-set tick of the last eviction (0: never evicted). Insertions
    /// into invalid ways displace nothing and leave the epoch untouched.
    evict_epoch: Vec<u64>,
    /// Bumped on [`SramCache::take_results`] so stale [`SpanResidency`]
    /// tokens recorded before a reset never validate.
    generation: u64,
    tick: u64,
    stats: CacheStats,
    traffic: TrafficLedger,
}

impl SramCache {
    /// The paper's global cache: 256 KB, 16 banks, 16-way associative, with
    /// 64-byte lines.
    pub fn loas_default() -> Self {
        SramCache::new(256 * 1024, 64, 16, 16)
    }

    /// Creates a cache of `capacity_bytes` with the given line size,
    /// associativity, and bank count.
    ///
    /// # Panics
    ///
    /// Panics when the geometry does not divide evenly or is degenerate.
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize, banks: usize) -> Self {
        assert!(line_bytes > 0 && ways > 0 && banks > 0, "degenerate cache");
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways, "capacity below one set");
        assert!(lines <= u32::MAX as usize, "slot ids are u32");
        let sets = lines / ways;
        SramCache {
            line_bytes,
            ways,
            sets,
            banks,
            tags: vec![None; sets * ways],
            lru: vec![0; sets * ways],
            index: HashMap::with_capacity_and_hasher(sets * ways, LineIdHash),
            evict_epoch: vec![0; sets],
            generation: 0,
            tick: 0,
            stats: CacheStats::default(),
            traffic: TrafficLedger::new(),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// Number of banks (for concurrent-access modeling).
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Number of sets (the wrap bound for span fast-path eligibility).
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// The [`LineSpan`] covering `bytes` at `addr` under this cache's line
    /// size.
    pub fn span_of(&self, addr: u64, bytes: u64) -> LineSpan {
        LineSpan::of_range(addr, bytes, self.line_bytes)
    }

    /// Tag-touches one line without ledgering traffic: the shared core of
    /// every access/probe entry point. Returns the outcome and the line's
    /// slot after the access.
    #[inline]
    fn touch_line(&mut self, line_id: u64) -> (Access, u32) {
        self.tick += 1;
        self.lookup_ticked(line_id)
    }

    /// [`SramCache::touch_line`] with the tick already advanced (the
    /// salvage path bumps the tick before its tag compare).
    #[inline]
    fn lookup_ticked(&mut self, line_id: u64) -> (Access, u32) {
        if let Some(&slot) = self.index.get(&line_id) {
            self.lru[slot as usize] = self.tick;
            self.stats.hits += 1;
            return (Access::Hit, slot);
        }
        // Miss: evict LRU way (invalid ways preferred, lowest index first —
        // the exact victim order of the pre-index linear-scan model).
        self.stats.misses += 1;
        let set = (line_id % self.sets as u64) as usize;
        let base = set * self.ways;
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                if self.tags[base + w].is_none() {
                    0 // prefer invalid ways
                } else {
                    self.lru[base + w] + 1
                }
            })
            .expect("ways > 0");
        let slot = base + victim;
        if let Some(evicted) = self.tags[slot] {
            self.index.remove(&evicted);
            self.evict_epoch[set] = self.tick;
        }
        self.tags[slot] = Some(line_id);
        self.lru[slot] = self.tick;
        self.index.insert(line_id, slot as u32);
        (Access::Miss, slot as u32)
    }

    /// Looks up line `line_id`, inserting on miss (LRU eviction). Records
    /// one line of SRAM read traffic of the given class.
    #[inline]
    pub fn access_line(&mut self, line_id: u64, class: TrafficClass) -> Access {
        self.traffic.record(class, self.line_bytes as u64);
        self.touch_line(line_id).0
    }

    /// Accesses an object spanning `bytes` starting at abstract address
    /// `addr`: touches every covering line, returns the number of missed
    /// lines. Span math saturates, so objects extending past `u64::MAX`
    /// clamp to the last line instead of wrapping.
    pub fn access_range(&mut self, addr: u64, bytes: u64, class: TrafficClass) -> u64 {
        self.access_span(self.span_of(addr, bytes), class)
    }

    /// Tags an access like [`SramCache::access_range`] but without
    /// ledgering line traffic — for sub-line streaming reads whose exact
    /// byte traffic the caller ledgers separately via
    /// [`SramCache::read_untagged`].
    pub fn probe_range(&mut self, addr: u64, bytes: u64) -> u64 {
        self.probe_span(self.span_of(addr, bytes))
    }

    /// Accesses every line of a precomputed span, ledgering one record of
    /// `n_lines` lines of read traffic. Hit/miss outcomes, statistics, and
    /// LRU state are identical to looping [`SramCache::access_line`] over
    /// the span.
    #[inline]
    pub fn access_span(&mut self, span: LineSpan, class: TrafficClass) -> u64 {
        if span.is_empty() {
            return 0;
        }
        self.traffic
            .record(class, span.n_lines * self.line_bytes as u64);
        self.touch_span(span)
    }

    /// Tag-touches every line of a span without ledgering traffic (the
    /// span form of [`SramCache::probe_range`]).
    #[inline]
    pub fn probe_span(&mut self, span: LineSpan) -> u64 {
        self.touch_span(span)
    }

    #[inline]
    fn touch_span(&mut self, span: LineSpan) -> u64 {
        let mut missed = 0;
        for i in 0..span.n_lines {
            if self.touch_line(span.first_line + i).0 == Access::Miss {
                missed += 1;
            }
        }
        missed
    }

    /// Like [`SramCache::access_span`] for a span the caller probes
    /// repeatedly, carrying a [`SpanResidency`] token between calls. When
    /// the token's last full probe postdates every eviction in the span's
    /// sets, all lines are provably still resident: the access is counted
    /// as `n_lines` hits and only the LRU/tick updates run. Outcomes are
    /// identical to the untracked span call for every access sequence.
    #[inline]
    pub fn access_span_resident(
        &mut self,
        span: LineSpan,
        residency: &mut SpanResidency,
        class: TrafficClass,
    ) -> u64 {
        if span.is_empty() {
            return 0;
        }
        self.traffic
            .record(class, span.n_lines * self.line_bytes as u64);
        if self.span_all_resident(span, residency) {
            self.touch_resident_hits(span, residency);
            return 0;
        }
        self.touch_span_fallback(span, residency)
    }

    /// The probe (non-ledgering) form of [`SramCache::access_span_resident`].
    #[inline]
    pub fn probe_span_resident(&mut self, span: LineSpan, residency: &mut SpanResidency) -> u64 {
        if span.is_empty() {
            return 0;
        }
        if self.span_all_resident(span, residency) {
            self.touch_resident_hits(span, residency);
            return 0;
        }
        self.touch_span_fallback(span, residency)
    }

    /// Whole-span all-hits fast path: per line, in span order, the same
    /// tick/LRU updates the slow path would perform — and nothing else (no
    /// tag reads, no hashing).
    #[inline]
    fn touch_resident_hits(&mut self, span: LineSpan, residency: &mut SpanResidency) {
        let mut tick = self.tick;
        for &slot in &residency.slots {
            tick += 1;
            self.lru[slot as usize] = tick;
        }
        self.tick = tick;
        self.stats.hits += span.n_lines;
        residency.last_full_tick = tick;
    }

    /// The salvage and recording tiers of a tracked span touch — outlined
    /// so the all-resident fast path above stays small enough to inline
    /// into the replay loops.
    fn touch_span_fallback(&mut self, span: LineSpan, residency: &mut SpanResidency) -> u64 {
        if residency.generation == self.generation && residency.span.first_line == span.first_line {
            // Per-line salvage: a recorded slot whose tag still matches is
            // a hit validated by one array compare (no hash probe); stale
            // or unrecorded lines take the indexed lookup. A probe may be
            // shorter than the recorded span (reuse the slot prefix) or
            // longer (extend it) — what the varying-length payload probes
            // of the traffic replay need.
            let recorded = residency.slots.len() as u64;
            let common = span.n_lines.min(recorded);
            let mut missed = 0;
            for i in 0..common {
                let line = span.first_line + i;
                let slot = residency.slots[i as usize];
                self.tick += 1;
                if self.tags[slot as usize] == Some(line) {
                    self.lru[slot as usize] = self.tick;
                    self.stats.hits += 1;
                } else {
                    let (access, new_slot) = self.lookup_ticked(line);
                    if access == Access::Miss {
                        missed += 1;
                    }
                    residency.slots[i as usize] = new_slot;
                }
            }
            for i in common..span.n_lines {
                let (access, slot) = self.touch_line(span.first_line + i);
                if access == Access::Miss {
                    missed += 1;
                }
                residency.slots.push(slot);
            }
            if span.n_lines >= residency.span.n_lines {
                // The probe covered the whole recorded prefix: the token
                // now vouches for it as of this tick. (A shorter probe
                // keeps the older vouch — still sound, because the epoch
                // check rejects any set evicted since that tick.)
                residency.span = span;
                residency.eligible = span.n_lines <= self.sets as u64;
                residency.last_full_tick = self.tick;
            }
            return missed;
        }
        // First recording (or a token rebound to a new base address).
        residency.span = span;
        residency.generation = self.generation;
        residency.eligible = span.n_lines <= self.sets as u64;
        residency.slots.clear();
        residency.slots.reserve(span.n_lines as usize);
        let mut missed = 0;
        for i in 0..span.n_lines {
            let (access, slot) = self.touch_line(span.first_line + i);
            if access == Access::Miss {
                missed += 1;
            }
            residency.slots.push(slot);
        }
        residency.last_full_tick = self.tick;
        missed
    }

    /// Whether every line of `span` is provably resident: the token is
    /// bound to this span in this cache generation, the span cannot evict
    /// its own lines (distinct sets), and no set the span maps to has
    /// evicted since the token's last full probe. Lines of a fully-probed
    /// span are resident at probe end; residency is only ever ended by an
    /// eviction in the line's set; therefore no eviction since ⇒ all
    /// resident (and their slots unchanged).
    #[inline]
    fn span_all_resident(&self, span: LineSpan, residency: &SpanResidency) -> bool {
        let bound = residency.eligible
            & (residency.last_full_tick != 0)
            & (residency.generation == self.generation)
            & (residency.span == span);
        if !bound {
            return false;
        }
        let sets = self.sets as u64;
        (0..span.n_lines).all(|i| {
            self.evict_epoch[((span.first_line + i) % sets) as usize] <= residency.last_full_tick
        })
    }

    /// Records a write of `bytes` (writes are ledgered, not tagged: the
    /// models use write-through traffic accounting).
    pub fn write(&mut self, class: TrafficClass, bytes: u64) {
        self.traffic.record(class, bytes);
    }

    /// Records a read of `bytes` that bypasses tag simulation (scratchpad
    /// reads within a known-resident buffer).
    pub fn read_untagged(&mut self, class: TrafficClass, bytes: u64) {
        self.traffic.record(class, bytes);
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// SRAM traffic ledger (reads + writes).
    pub fn traffic(&self) -> &TrafficLedger {
        &self.traffic
    }

    /// Extracts the ledger and statistics, resetting tag state.
    pub fn take_results(&mut self) -> (TrafficLedger, CacheStats) {
        let out = (std::mem::take(&mut self.traffic), self.stats);
        self.stats = CacheStats::default();
        self.tags.fill(None);
        self.lru.fill(0);
        self.index.clear();
        self.evict_epoch.fill(0);
        self.generation += 1;
        self.tick = 0;
        out
    }

    /// Full tag/LRU state in slot order — an equivalence-test hook (tag
    /// arrays equal ⇒ every eviction picked the same victim), not a
    /// modeling API.
    #[doc(hidden)]
    pub fn tag_snapshot(&self) -> Vec<(Option<u64>, u64)> {
        self.tags
            .iter()
            .copied()
            .zip(self.lru.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_default_matches_table3() {
        let c = SramCache::loas_default();
        assert_eq!(c.capacity_bytes(), 256 * 1024);
        assert_eq!(c.banks(), 16);
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.sets(), 256);
    }

    #[test]
    fn hits_after_first_touch() {
        let mut c = SramCache::new(1024, 64, 2, 1);
        assert_eq!(c.access_line(7, TrafficClass::Weight), Access::Miss);
        assert_eq!(c.access_line(7, TrafficClass::Weight), Access::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set, 2 ways: line ids that collide in set 0.
        let mut c = SramCache::new(2 * 64, 64, 2, 1);
        c.access_line(0, TrafficClass::Input); // miss
        c.access_line(1, TrafficClass::Input); // miss
        c.access_line(0, TrafficClass::Input); // hit (0 now MRU)
        c.access_line(2, TrafficClass::Input); // miss, evicts 1
        assert_eq!(c.access_line(0, TrafficClass::Input), Access::Hit);
        assert_eq!(c.access_line(1, TrafficClass::Input), Access::Miss);
    }

    #[test]
    fn access_range_touches_all_lines() {
        let mut c = SramCache::new(16 * 64, 64, 4, 1);
        let missed = c.access_range(0, 200, TrafficClass::Weight); // lines 0..=3
        assert_eq!(missed, 4);
        assert_eq!(c.access_range(0, 200, TrafficClass::Weight), 0);
        assert_eq!(c.access_range(0, 0, TrafficClass::Weight), 0);
    }

    #[test]
    fn access_range_saturates_instead_of_wrapping() {
        // Regression: `addr + bytes - 1` used to wrap for objects near the
        // top of the address space, touching line 0 instead of the tail.
        let mut c = SramCache::new(16 * 64, 64, 4, 1);
        let addr = u64::MAX - 100;
        let missed = c.access_range(addr, 1000, TrafficClass::Weight);
        let first = addr / 64;
        let last = u64::MAX / 64;
        assert_eq!(missed, last - first + 1);
        // The clamped span re-touches as all hits; line 0 was never pulled.
        assert_eq!(c.access_range(addr, 1000, TrafficClass::Weight), 0);
        assert_eq!(c.access_line(0, TrafficClass::Weight), Access::Miss);
        // The span helper agrees with the saturating math.
        let span = LineSpan::of_range(addr, 1000, 64);
        assert_eq!(span.first_line, first);
        assert_eq!(span.n_lines, last - first + 1);
    }

    #[test]
    fn span_of_range_and_tail_agree() {
        for (addr, bytes) in [(0u64, 1u64), (63, 1), (63, 2), (100, 700), (64, 0)] {
            let direct = LineSpan::of_range(addr, bytes, 64);
            let tail = LineSpan::tail(addr / 64, addr % 64, bytes, 64);
            assert_eq!(direct, tail, "addr {addr} bytes {bytes}");
        }
        assert!(LineSpan::of_range(4, 0, 64).is_empty());
        // Each form clamps in its own address space instead of wrapping:
        // `of_range` at the last byte-addressable line, `tail` at the last
        // line id (its base is a line id, not a byte address).
        let top = LineSpan::tail(u64::MAX, 63, 1_000_000, 64);
        assert_eq!(top.first_line, u64::MAX);
        assert_eq!(top.n_lines, 1);
        let near_top = LineSpan::tail(u64::MAX - 3, 0, u64::MAX, 64);
        assert_eq!(near_top.n_lines, 4);
        // Degenerate full-address-space span: the count saturates instead
        // of overflowing to an empty (or panicking) span.
        let everything = LineSpan::tail(0, u64::MAX, 2, 1);
        assert_eq!(everything.n_lines, u64::MAX);
    }

    #[test]
    fn span_calls_match_per_line_loop() {
        let mut spanned = SramCache::new(8 * 64, 64, 2, 1);
        let mut lined = SramCache::new(8 * 64, 64, 2, 1);
        for (addr, bytes) in [(0u64, 500u64), (120, 130), (0, 500), (4096, 64)] {
            let span = spanned.span_of(addr, bytes);
            let a = spanned.access_span(span, TrafficClass::Weight);
            let mut b = 0;
            for i in 0..span.n_lines {
                if lined.access_line(span.first_line + i, TrafficClass::Weight) == Access::Miss {
                    b += 1;
                }
            }
            assert_eq!(a, b, "addr {addr} bytes {bytes}");
        }
        assert_eq!(spanned.stats(), lined.stats());
        assert_eq!(spanned.traffic(), lined.traffic());
        assert_eq!(spanned.tag_snapshot(), lined.tag_snapshot());
    }

    #[test]
    fn resident_fast_path_matches_slow_path() {
        // Two identical caches: one probes a hot span through a residency
        // token, the other through the plain span API. Interleave accesses
        // that do and do not evict the hot span's sets.
        let mut fast = SramCache::new(8 * 64, 64, 2, 1); // 4 sets
        let mut slow = SramCache::new(8 * 64, 64, 2, 1);
        let hot = LineSpan {
            first_line: 0,
            n_lines: 3,
        };
        let mut token = SpanResidency::default();
        for round in 0..20u64 {
            let a = fast.access_span_resident(hot, &mut token, TrafficClass::Weight);
            let b = slow.access_span(hot, TrafficClass::Weight);
            assert_eq!(a, b, "round {round}");
            // Pressure: collides with the hot sets every third round.
            if round % 3 == 0 {
                for i in 0..3 {
                    let line = 100 + round * 8 + i * 4;
                    assert_eq!(
                        fast.access_line(line, TrafficClass::Input),
                        slow.access_line(line, TrafficClass::Input)
                    );
                }
            }
        }
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.traffic(), slow.traffic());
        assert_eq!(fast.tag_snapshot(), slow.tag_snapshot());
    }

    #[test]
    fn resident_fast_path_survives_take_results() {
        let mut c = SramCache::new(8 * 64, 64, 2, 1);
        let span = LineSpan {
            first_line: 0,
            n_lines: 2,
        };
        let mut token = SpanResidency::default();
        assert_eq!(
            c.access_span_resident(span, &mut token, TrafficClass::Weight),
            2
        );
        assert_eq!(
            c.access_span_resident(span, &mut token, TrafficClass::Weight),
            0
        );
        let _ = c.take_results();
        // A stale token from before the reset must not claim residency.
        assert_eq!(
            c.access_span_resident(span, &mut token, TrafficClass::Weight),
            2
        );
    }

    #[test]
    fn spans_longer_than_the_set_count_never_fast_path() {
        // 4 sets: a 9-line span wraps and can evict its own earlier lines,
        // so every probe must take the full tag walk.
        let mut c = SramCache::new(8 * 64, 64, 2, 1);
        let span = LineSpan {
            first_line: 0,
            n_lines: 9,
        };
        let mut token = SpanResidency::default();
        let mut reference = SramCache::new(8 * 64, 64, 2, 1);
        for _ in 0..4 {
            let a = c.access_span_resident(span, &mut token, TrafficClass::Weight);
            let b = reference.access_span(span, TrafficClass::Weight);
            assert_eq!(a, b);
        }
        assert_eq!(c.stats(), reference.stats());
        assert_eq!(c.tag_snapshot(), reference.tag_snapshot());
    }

    #[test]
    fn traffic_ledgered_per_line() {
        let mut c = SramCache::new(1024, 64, 2, 1);
        c.access_line(0, TrafficClass::Weight);
        c.write(TrafficClass::Output, 10);
        c.read_untagged(TrafficClass::Psum, 6);
        assert_eq!(c.traffic().get(TrafficClass::Weight), 64);
        assert_eq!(c.traffic().get(TrafficClass::Output), 10);
        assert_eq!(c.traffic().total(), 80);
    }

    #[test]
    fn probe_span_tags_without_ledgering() {
        let mut c = SramCache::new(1024, 64, 2, 1);
        assert_eq!(c.probe_range(0, 100), 2);
        assert_eq!(c.traffic().total(), 0);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(
            c.probe_span(LineSpan {
                first_line: 0,
                n_lines: 2
            }),
            0
        );
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn take_results_resets() {
        let mut c = SramCache::new(1024, 64, 2, 1);
        c.access_line(3, TrafficClass::Input);
        let (ledger, stats) = c.take_results();
        assert_eq!(ledger.total(), 64);
        assert_eq!(stats.misses, 1);
        assert_eq!(c.stats().accesses(), 0);
        // After reset the same line misses again.
        assert_eq!(c.access_line(3, TrafficClass::Input), Access::Miss);
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        let mut c = SramCache::new(4 * 64, 64, 2, 2);
        for i in 0..100u64 {
            c.access_line(i % 7, TrafficClass::Other);
        }
        assert_eq!(c.stats().accesses(), 100);
    }
}
