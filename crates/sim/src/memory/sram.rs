//! Banked, set-associative on-chip SRAM cache (FiberCache-style).
//!
//! LoAS uses a 256 KB, 16-bank, 16-way-associative unified global cache for
//! compressed fibers (Table III), following Gamma's FiberCache. The model
//! here simulates tag behaviour (LRU within each set) to produce the
//! normalized miss-rate comparison of Fig. 14, and ledgers all read/write
//! bytes for the on-chip traffic plots of Fig. 13.

use crate::stats::{CacheStats, TrafficClass, TrafficLedger};

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line was fetched (and possibly evicted another line).
    Miss,
}

/// A set-associative cache with per-set LRU replacement.
///
/// Addresses are abstract line identifiers: callers hash whatever object
/// identity they track (fiber id, psum tile id, ...) into a `u64`.
///
/// # Examples
///
/// ```
/// use loas_sim::{Access, SramCache, TrafficClass};
///
/// let mut cache = SramCache::new(4 * 64, 64, 2, 1);
/// assert_eq!(cache.access_line(0, TrafficClass::Weight), Access::Miss);
/// assert_eq!(cache.access_line(0, TrafficClass::Weight), Access::Hit);
/// assert!(cache.stats().miss_rate() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SramCache {
    line_bytes: usize,
    ways: usize,
    sets: usize,
    banks: usize,
    /// `sets x ways` tags; `None` = invalid. Tag includes the set bits
    /// (full line id) for simplicity.
    tags: Vec<Option<u64>>,
    /// LRU counters parallel to `tags` (higher = more recently used).
    lru: Vec<u64>,
    tick: u64,
    stats: CacheStats,
    traffic: TrafficLedger,
}

impl SramCache {
    /// The paper's global cache: 256 KB, 16 banks, 16-way associative, with
    /// 64-byte lines.
    pub fn loas_default() -> Self {
        SramCache::new(256 * 1024, 64, 16, 16)
    }

    /// Creates a cache of `capacity_bytes` with the given line size,
    /// associativity, and bank count.
    ///
    /// # Panics
    ///
    /// Panics when the geometry does not divide evenly or is degenerate.
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize, banks: usize) -> Self {
        assert!(line_bytes > 0 && ways > 0 && banks > 0, "degenerate cache");
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways, "capacity below one set");
        let sets = lines / ways;
        SramCache {
            line_bytes,
            ways,
            sets,
            banks,
            tags: vec![None; sets * ways],
            lru: vec![0; sets * ways],
            tick: 0,
            stats: CacheStats::default(),
            traffic: TrafficLedger::new(),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// Number of banks (for concurrent-access modeling).
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Looks up line `line_id`, inserting on miss (LRU eviction). Records
    /// one line of SRAM read traffic of the given class.
    pub fn access_line(&mut self, line_id: u64, class: TrafficClass) -> Access {
        self.traffic.record(class, self.line_bytes as u64);
        self.tick += 1;
        let set = (line_id % self.sets as u64) as usize;
        let base = set * self.ways;
        // Hit?
        for way in 0..self.ways {
            if self.tags[base + way] == Some(line_id) {
                self.lru[base + way] = self.tick;
                self.stats.hits += 1;
                return Access::Hit;
            }
        }
        // Miss: evict LRU way.
        self.stats.misses += 1;
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                if self.tags[base + w].is_none() {
                    0 // prefer invalid ways
                } else {
                    self.lru[base + w] + 1
                }
            })
            .expect("ways > 0");
        self.tags[base + victim] = Some(line_id);
        self.lru[base + victim] = self.tick;
        Access::Miss
    }

    /// Accesses an object spanning `bytes` starting at abstract address
    /// `addr`: touches every covering line, returns the number of missed
    /// lines.
    pub fn access_range(&mut self, addr: u64, bytes: u64, class: TrafficClass) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.line_bytes as u64;
        let last = (addr + bytes - 1) / self.line_bytes as u64;
        let mut missed = 0;
        for line in first..=last {
            if self.access_line(line, class) == Access::Miss {
                missed += 1;
            }
        }
        missed
    }

    /// Tags an access like [`SramCache::access_range`] but without ledgering
    /// line traffic — for sub-line streaming reads whose exact byte traffic
    /// the caller ledgers separately via [`SramCache::read_untagged`].
    pub fn probe_range(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let saved = self.traffic;
        let missed = self.access_range(addr, bytes, TrafficClass::Other);
        self.traffic = saved;
        missed
    }

    /// Records a write of `bytes` (writes are ledgered, not tagged: the
    /// models use write-through traffic accounting).
    pub fn write(&mut self, class: TrafficClass, bytes: u64) {
        self.traffic.record(class, bytes);
    }

    /// Records a read of `bytes` that bypasses tag simulation (scratchpad
    /// reads within a known-resident buffer).
    pub fn read_untagged(&mut self, class: TrafficClass, bytes: u64) {
        self.traffic.record(class, bytes);
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// SRAM traffic ledger (reads + writes).
    pub fn traffic(&self) -> &TrafficLedger {
        &self.traffic
    }

    /// Extracts the ledger and statistics, resetting tag state.
    pub fn take_results(&mut self) -> (TrafficLedger, CacheStats) {
        let out = (std::mem::take(&mut self.traffic), self.stats);
        self.stats = CacheStats::default();
        self.tags.fill(None);
        self.lru.fill(0);
        self.tick = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_default_matches_table3() {
        let c = SramCache::loas_default();
        assert_eq!(c.capacity_bytes(), 256 * 1024);
        assert_eq!(c.banks(), 16);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn hits_after_first_touch() {
        let mut c = SramCache::new(1024, 64, 2, 1);
        assert_eq!(c.access_line(7, TrafficClass::Weight), Access::Miss);
        assert_eq!(c.access_line(7, TrafficClass::Weight), Access::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set, 2 ways: line ids that collide in set 0.
        let mut c = SramCache::new(2 * 64, 64, 2, 1);
        c.access_line(0, TrafficClass::Input); // miss
        c.access_line(1, TrafficClass::Input); // miss
        c.access_line(0, TrafficClass::Input); // hit (0 now MRU)
        c.access_line(2, TrafficClass::Input); // miss, evicts 1
        assert_eq!(c.access_line(0, TrafficClass::Input), Access::Hit);
        assert_eq!(c.access_line(1, TrafficClass::Input), Access::Miss);
    }

    #[test]
    fn access_range_touches_all_lines() {
        let mut c = SramCache::new(16 * 64, 64, 4, 1);
        let missed = c.access_range(0, 200, TrafficClass::Weight); // lines 0..=3
        assert_eq!(missed, 4);
        assert_eq!(c.access_range(0, 200, TrafficClass::Weight), 0);
        assert_eq!(c.access_range(0, 0, TrafficClass::Weight), 0);
    }

    #[test]
    fn traffic_ledgered_per_line() {
        let mut c = SramCache::new(1024, 64, 2, 1);
        c.access_line(0, TrafficClass::Weight);
        c.write(TrafficClass::Output, 10);
        c.read_untagged(TrafficClass::Psum, 6);
        assert_eq!(c.traffic().get(TrafficClass::Weight), 64);
        assert_eq!(c.traffic().get(TrafficClass::Output), 10);
        assert_eq!(c.traffic().total(), 80);
    }

    #[test]
    fn take_results_resets() {
        let mut c = SramCache::new(1024, 64, 2, 1);
        c.access_line(3, TrafficClass::Input);
        let (ledger, stats) = c.take_results();
        assert_eq!(ledger.total(), 64);
        assert_eq!(stats.misses, 1);
        assert_eq!(c.stats().accesses(), 0);
        // After reset the same line misses again.
        assert_eq!(c.access_line(3, TrafficClass::Input), Access::Miss);
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        let mut c = SramCache::new(4 * 64, 64, 2, 2);
        for i in 0..100u64 {
            c.access_line(i % 7, TrafficClass::Other);
        }
        assert_eq!(c.stats().accesses(), 100);
    }
}
