//! Off-chip HBM model.
//!
//! Table III: "128 GB/s over 16 64-bit HBM channels". The model is a
//! bandwidth roofline plus a per-class traffic ledger: accelerator models
//! record what crosses the chip boundary, and the execution-time model takes
//! `max(compute, dram_cycles)` per phase.

use crate::clock::{ClockDomain, Cycle};
use crate::stats::{TrafficClass, TrafficLedger};

/// An HBM-style off-chip memory: aggregate bandwidth + traffic ledger.
///
/// # Examples
///
/// ```
/// use loas_sim::{HbmModel, TrafficClass};
///
/// let mut hbm = HbmModel::loas_default();
/// hbm.read(TrafficClass::Weight, 1600);
/// assert_eq!(hbm.ledger().total(), 1600);
/// assert_eq!(hbm.transfer_cycles(1600).get(), 10); // 160 B/cycle
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HbmModel {
    bandwidth_gbps: f64,
    channels: usize,
    clock: ClockDomain,
    ledger: TrafficLedger,
}

impl HbmModel {
    /// The paper's configuration: 128 GB/s over 16 channels at the 800 MHz
    /// accelerator clock.
    pub fn loas_default() -> Self {
        HbmModel::new(128.0, 16, ClockDomain::default())
    }

    /// Creates an HBM model with `bandwidth_gbps` aggregate bandwidth.
    ///
    /// # Panics
    ///
    /// Panics when bandwidth or channel count is zero.
    pub fn new(bandwidth_gbps: f64, channels: usize, clock: ClockDomain) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(channels > 0, "need at least one channel");
        HbmModel {
            bandwidth_gbps,
            channels,
            clock,
            ledger: TrafficLedger::new(),
        }
    }

    /// Aggregate bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Sustained bytes per accelerator cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.clock.bytes_per_cycle(self.bandwidth_gbps)
    }

    /// Cycles to transfer `bytes` at the sustained bandwidth.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycle {
        Cycle((bytes as f64 / self.bytes_per_cycle()).ceil() as u64)
    }

    /// Records a read of `bytes` of the given class.
    pub fn read(&mut self, class: TrafficClass, bytes: u64) {
        self.ledger.record(class, bytes);
    }

    /// Records a read measured in bits (rounded up to bytes).
    pub fn read_bits(&mut self, class: TrafficClass, bits: u64) {
        self.ledger.record_bits(class, bits);
    }

    /// Records a write of `bytes` of the given class.
    pub fn write(&mut self, class: TrafficClass, bytes: u64) {
        self.ledger.record(class, bytes);
    }

    /// Records a write measured in bits (rounded up to bytes).
    pub fn write_bits(&mut self, class: TrafficClass, bits: u64) {
        self.ledger.record_bits(class, bits);
    }

    /// The accumulated traffic ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// Extracts the ledger, resetting the model.
    pub fn take_ledger(&mut self) -> TrafficLedger {
        std::mem::take(&mut self.ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let hbm = HbmModel::loas_default();
        assert_eq!(hbm.channels(), 16);
        assert!((hbm.bandwidth_gbps() - 128.0).abs() < 1e-12);
        assert!((hbm.bytes_per_cycle() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_cycles_round_up() {
        let hbm = HbmModel::loas_default();
        assert_eq!(hbm.transfer_cycles(0).get(), 0);
        assert_eq!(hbm.transfer_cycles(1).get(), 1);
        assert_eq!(hbm.transfer_cycles(161).get(), 2);
    }

    #[test]
    fn ledger_tracks_reads_and_writes() {
        let mut hbm = HbmModel::loas_default();
        hbm.read(TrafficClass::Input, 100);
        hbm.write(TrafficClass::Output, 50);
        hbm.read_bits(TrafficClass::Format, 12);
        assert_eq!(hbm.ledger().get(TrafficClass::Input), 100);
        assert_eq!(hbm.ledger().get(TrafficClass::Output), 50);
        assert_eq!(hbm.ledger().get(TrafficClass::Format), 2);
        let taken = hbm.take_ledger();
        assert_eq!(taken.total(), 152);
        assert_eq!(hbm.ledger().total(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        HbmModel::new(0.0, 16, ClockDomain::default());
    }
}
