//! Memory hierarchy models: off-chip HBM, on-chip cache, scratchpads.

mod buffer;
mod dram;
mod sram;

pub use buffer::{DoubleBuffer, ScratchBuffer};
pub use dram::HbmModel;
pub use sram::{Access, LineSpan, SpanResidency, SramCache};
