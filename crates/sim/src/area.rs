//! Component area/power bookkeeping (the substrate for Table IV, Fig. 15,
//! and the Fig. 16(a) scaling study).

/// One hardware component with synthesized area and power.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Display name (e.g. `"Fast Prefix"`).
    pub name: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

impl Component {
    /// Creates a component record.
    pub fn new(name: impl Into<String>, area_mm2: f64, power_mw: f64) -> Self {
        Component {
            name: name.into(),
            area_mm2,
            power_mw,
        }
    }

    /// Scales both area and power by an instance count.
    pub fn replicated(&self, count: usize) -> Component {
        Component {
            name: format!("{} x{}", self.name, count),
            area_mm2: self.area_mm2 * count as f64,
            power_mw: self.power_mw * count as f64,
        }
    }
}

/// A table of components with totals and percentage breakdowns.
///
/// # Examples
///
/// ```
/// use loas_sim::{Component, ComponentTable};
///
/// let mut t = ComponentTable::new();
/// t.push(Component::new("a", 1.0, 10.0));
/// t.push(Component::new("b", 3.0, 30.0));
/// assert_eq!(t.total_area_mm2(), 4.0);
/// assert_eq!(t.area_share("b").unwrap(), 0.75);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComponentTable {
    components: Vec<Component>,
}

impl ComponentTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a component.
    pub fn push(&mut self, component: Component) {
        self.components.push(component);
    }

    /// The components in insertion order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total power in mW.
    pub fn total_power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }

    /// Area share of the named component in `[0, 1]`, or `None` if absent.
    pub fn area_share(&self, name: &str) -> Option<f64> {
        let total = self.total_area_mm2();
        self.components.iter().find(|c| c.name == name).map(|c| {
            if total == 0.0 {
                0.0
            } else {
                c.area_mm2 / total
            }
        })
    }

    /// Power share of the named component in `[0, 1]`, or `None` if absent.
    pub fn power_share(&self, name: &str) -> Option<f64> {
        let total = self.total_power_mw();
        self.components.iter().find(|c| c.name == name).map(|c| {
            if total == 0.0 {
                0.0
            } else {
                c.power_mw / total
            }
        })
    }
}

impl FromIterator<Component> for ComponentTable {
    fn from_iter<I: IntoIterator<Item = Component>>(iter: I) -> Self {
        ComponentTable {
            components: iter.into_iter().collect(),
        }
    }
}

/// An affine-in-`T` area/power scaling model: `value(T) = base + per_t · T`.
///
/// The paper's Fig. 16(a) reports the share of TPPE area/power that grows
/// with the timestep count: 12.5% / 22.2% / 36.3% of area at T = 4 / 8 / 16,
/// which is exactly an affine model (the t-dependent portion is the
/// accumulators and the input data buffer). This type solves for the model
/// from one calibration point and reproduces the scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineScaling {
    base: f64,
    per_t: f64,
}

impl AffineScaling {
    /// Builds the model from a total at a calibration `t` and the share of
    /// that total that is t-dependent (e.g. area 0.06 mm² at T=4 with a
    /// 12.5% t-dependent share).
    ///
    /// # Panics
    ///
    /// Panics for non-positive totals or shares outside `(0, 1)`.
    pub fn from_share(total_at_t: f64, t_dependent_share: f64, t: usize) -> Self {
        assert!(total_at_t > 0.0, "total must be positive");
        assert!(
            (0.0..1.0).contains(&t_dependent_share) && t_dependent_share > 0.0,
            "share must be in (0, 1)"
        );
        assert!(t > 0, "calibration T must be positive");
        let per_t = total_at_t * t_dependent_share / t as f64;
        AffineScaling {
            base: total_at_t * (1.0 - t_dependent_share),
            per_t,
        }
    }

    /// The value at `t` timesteps.
    pub fn at(&self, t: usize) -> f64 {
        self.base + self.per_t * t as f64
    }

    /// The t-dependent share at `t` timesteps (the "yellow region" of
    /// Fig. 16(a)).
    pub fn share_at(&self, t: usize) -> f64 {
        let total = self.at(t);
        if total == 0.0 {
            0.0
        } else {
            self.per_t * t as f64 / total
        }
    }

    /// Growth ratio between two timestep counts.
    pub fn ratio(&self, t_num: usize, t_den: usize) -> f64 {
        self.at(t_num) / self.at(t_den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_totals_and_shares() {
        let t: ComponentTable = [
            Component::new("Fast Prefix", 0.04, 1.46),
            Component::new("Laggy Prefix", 0.005, 0.32),
        ]
        .into_iter()
        .collect();
        assert!((t.total_area_mm2() - 0.045).abs() < 1e-12);
        assert!((t.total_power_mw() - 1.78).abs() < 1e-12);
        assert!(t.area_share("Fast Prefix").unwrap() > 0.8);
        assert!(t.power_share("missing").is_none());
    }

    #[test]
    fn replication_scales() {
        let c = Component::new("TPPE", 0.06, 2.82).replicated(16);
        assert!((c.area_mm2 - 0.96).abs() < 1e-12);
        assert!((c.power_mw - 45.12).abs() < 1e-9);
    }

    #[test]
    fn affine_reproduces_fig16a_area_shares() {
        // Area: 12.5% t-dependent at T=4 must give 22.2% at T=8 and 36.3%
        // at T=16 with a 1.37x growth from T=4 to T=16 (paper numbers).
        let model = AffineScaling::from_share(0.06, 0.125, 4);
        assert!((model.share_at(4) - 0.125).abs() < 1e-9);
        assert!((model.share_at(8) - 0.222).abs() < 2e-3);
        assert!((model.share_at(16) - 0.363).abs() < 2e-3);
        assert!((model.ratio(16, 4) - 1.37).abs() < 0.01);
    }

    #[test]
    fn affine_reproduces_fig16a_power_shares() {
        // Power: 8.4% at T=4 -> 15.5% at T=8 -> 26.8% at T=16, 1.25x growth.
        let model = AffineScaling::from_share(2.82, 0.084, 4);
        assert!((model.share_at(8) - 0.155).abs() < 2e-3);
        assert!((model.share_at(16) - 0.268).abs() < 2e-3);
        assert!((model.ratio(16, 4) - 1.25).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "share must be in")]
    fn bad_share_rejected() {
        AffineScaling::from_share(1.0, 1.5, 4);
    }
}
