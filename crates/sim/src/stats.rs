//! Traffic, operation, and cache statistics collected by accelerator models.

use crate::clock::Cycle;
use std::fmt;
use std::ops::{Add, AddAssign};

/// The traffic categories of the paper's Fig. 14 breakup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Weight fibers / dense weights (`B`).
    Weight,
    /// Input spikes or activations (`A`).
    Input,
    /// Partial sums spilled and refetched.
    Psum,
    /// Output spikes / activations (`C`).
    Output,
    /// Compression metadata: bitmasks, CSR coordinates, pointers.
    Format,
    /// Everything else (instructions, descriptors).
    Other,
}

impl TrafficClass {
    /// All classes, in Fig. 14 display order.
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::Weight,
        TrafficClass::Input,
        TrafficClass::Psum,
        TrafficClass::Output,
        TrafficClass::Format,
        TrafficClass::Other,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Weight => "weight",
            TrafficClass::Input => "input",
            TrafficClass::Psum => "psum",
            TrafficClass::Output => "output",
            TrafficClass::Format => "format",
            TrafficClass::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            TrafficClass::Weight => 0,
            TrafficClass::Input => 1,
            TrafficClass::Psum => 2,
            TrafficClass::Output => 3,
            TrafficClass::Format => 4,
            TrafficClass::Other => 5,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Byte counts per [`TrafficClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficLedger {
    bytes: [u64; 6],
}

impl TrafficLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` of traffic of the given class.
    pub fn record(&mut self, class: TrafficClass, bytes: u64) {
        self.bytes[class.index()] += bytes;
    }

    /// Records traffic measured in bits, rounding up to whole bytes.
    pub fn record_bits(&mut self, class: TrafficClass, bits: u64) {
        self.record(class, bits.div_ceil(8));
    }

    /// Bytes recorded for one class.
    pub fn get(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total bytes across all classes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total in kilobytes (the unit of Fig. 13's off-chip plot).
    pub fn total_kb(&self) -> f64 {
        self.total() as f64 / 1024.0
    }

    /// Total in megabytes (the unit of Fig. 13's on-chip plot).
    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / (1024.0 * 1024.0)
    }

    /// Iterator over `(class, bytes)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (TrafficClass, u64)> + '_ {
        TrafficClass::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

impl Add for TrafficLedger {
    type Output = TrafficLedger;
    fn add(mut self, rhs: TrafficLedger) -> TrafficLedger {
        self += rhs;
        self
    }
}

impl AddAssign for TrafficLedger {
    fn add_assign(&mut self, rhs: TrafficLedger) {
        for i in 0..6 {
            self.bytes[i] += rhs.bytes[i];
        }
    }
}

/// Datapath operation counts, used by the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Accumulate (bitwise-AND + add) operations — the SNN compute primitive.
    pub accumulates: u64,
    /// Multiply-accumulate operations (ANN baselines only).
    pub macs: u64,
    /// Active cycles of fast prefix-sum circuits (summed over instances).
    pub fast_prefix_cycles: u64,
    /// Active cycles of laggy prefix-sum circuits (summed over instances).
    pub laggy_prefix_cycles: u64,
    /// LIF neuron updates (one per output neuron per timestep).
    pub lif_updates: u64,
    /// Merger operations (OP/Gustavson baselines).
    pub merges: u64,
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        self.accumulates += rhs.accumulates;
        self.macs += rhs.macs;
        self.fast_prefix_cycles += rhs.fast_prefix_cycles;
        self.laggy_prefix_cycles += rhs.laggy_prefix_cycles;
        self.lif_updates += rhs.lif_updates;
        self.merges += rhs.merges;
    }
}

/// Cache hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
    }
}

/// Everything an accelerator model reports for one simulated unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimStats {
    /// End-to-end latency.
    pub cycles: Cycle,
    /// Cycles the execution was limited by memory bandwidth rather than
    /// compute (for roofline diagnostics).
    pub stall_cycles: Cycle,
    /// Off-chip (DRAM/HBM) traffic by class.
    pub dram: TrafficLedger,
    /// On-chip SRAM traffic by class (reads + writes).
    pub sram: TrafficLedger,
    /// Global-cache behaviour.
    pub cache: CacheStats,
    /// Datapath operation counts.
    pub ops: OpCounts,
}

impl SimStats {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another record into this one, summing every counter and
    /// adding latencies (sequential composition, e.g. layer after layer).
    pub fn merge_sequential(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.dram += other.dram;
        self.sram += other.sram;
        self.cache += other.cache;
        self.ops += other.ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_by_class() {
        let mut l = TrafficLedger::new();
        l.record(TrafficClass::Weight, 100);
        l.record(TrafficClass::Weight, 50);
        l.record_bits(TrafficClass::Format, 9); // -> 2 bytes
        assert_eq!(l.get(TrafficClass::Weight), 150);
        assert_eq!(l.get(TrafficClass::Format), 2);
        assert_eq!(l.total(), 152);
    }

    #[test]
    fn ledger_addition() {
        let mut a = TrafficLedger::new();
        a.record(TrafficClass::Input, 10);
        let mut b = TrafficLedger::new();
        b.record(TrafficClass::Input, 5);
        b.record(TrafficClass::Psum, 7);
        let c = a + b;
        assert_eq!(c.get(TrafficClass::Input), 15);
        assert_eq!(c.get(TrafficClass::Psum), 7);
    }

    #[test]
    fn unit_conversions() {
        let mut l = TrafficLedger::new();
        l.record(TrafficClass::Output, 2048);
        assert!((l.total_kb() - 2.0).abs() < 1e-12);
        assert!((l.total_mb() - 2.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn cache_miss_rate() {
        let c = CacheStats {
            hits: 90,
            misses: 10,
        };
        assert!((c.miss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn merge_sequential_sums_everything() {
        let mut a = SimStats::new();
        a.cycles = Cycle(100);
        a.ops.accumulates = 5;
        let mut b = SimStats::new();
        b.cycles = Cycle(50);
        b.ops.accumulates = 3;
        b.dram.record(TrafficClass::Weight, 64);
        a.merge_sequential(&b);
        assert_eq!(a.cycles, Cycle(150));
        assert_eq!(a.ops.accumulates, 8);
        assert_eq!(a.dram.get(TrafficClass::Weight), 64);
    }

    #[test]
    fn class_iteration_ordered() {
        let l = TrafficLedger::new();
        let names: Vec<&str> = l.iter().map(|(c, _)| c.name()).collect();
        assert_eq!(
            names,
            vec!["weight", "input", "psum", "output", "format", "other"]
        );
    }
}
