//! Swizzle-switch crossbar model (Section IV-D: "a simple
//! swizzle-switch-based crossbar" distributes data from the scheduler to the
//! TPPEs; Table III configures two 16x16 crossbars).

use crate::clock::Cycle;

/// A `ports x ports` swizzle-switch crossbar with a fixed per-port bus
/// width.
///
/// # Examples
///
/// ```
/// use loas_sim::{Crossbar, Cycle};
///
/// let xbar = Crossbar::new(16, 16);
/// // Broadcasting 64 bytes over a 16-byte bus takes 4 beats.
/// assert_eq!(xbar.broadcast_cycles(64), Cycle(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crossbar {
    ports: usize,
    bus_bytes: usize,
}

impl Crossbar {
    /// The LoAS configuration: 16x16 with a 16-byte (128-bit) bus, matching
    /// the 128-bit bitmask buffers it feeds.
    pub fn loas_default() -> Self {
        Crossbar::new(16, 16)
    }

    /// Creates a crossbar with `ports` ports and `bus_bytes` per-beat width.
    ///
    /// # Panics
    ///
    /// Panics for zero ports or zero bus width.
    pub fn new(ports: usize, bus_bytes: usize) -> Self {
        assert!(ports > 0 && bus_bytes > 0, "degenerate crossbar");
        Crossbar { ports, bus_bytes }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Per-beat bus width in bytes.
    pub fn bus_bytes(&self) -> usize {
        self.bus_bytes
    }

    /// Cycles to broadcast `bytes` to all ports (a single stream occupies
    /// the broadcast bus for `ceil(bytes / bus)` beats).
    pub fn broadcast_cycles(&self, bytes: u64) -> Cycle {
        Cycle(bytes.div_ceil(self.bus_bytes as u64))
    }

    /// Cycles to deliver distinct streams to each port: ports transfer in
    /// parallel, so the cost is the largest stream.
    pub fn scatter_cycles(&self, per_port_bytes: &[u64]) -> Cycle {
        assert!(
            per_port_bytes.len() <= self.ports,
            "more streams ({}) than ports ({})",
            per_port_bytes.len(),
            self.ports
        );
        per_port_bytes
            .iter()
            .map(|&b| self.broadcast_cycles(b))
            .max()
            .unwrap_or(Cycle::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_rounds_up() {
        let x = Crossbar::new(16, 16);
        assert_eq!(x.broadcast_cycles(0), Cycle::ZERO);
        assert_eq!(x.broadcast_cycles(1), Cycle(1));
        assert_eq!(x.broadcast_cycles(17), Cycle(2));
    }

    #[test]
    fn scatter_takes_max() {
        let x = Crossbar::new(4, 8);
        assert_eq!(x.scatter_cycles(&[8, 24, 16]), Cycle(3));
        assert_eq!(x.scatter_cycles(&[]), Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "more streams")]
    fn too_many_streams_panics() {
        Crossbar::new(2, 8).scatter_cycles(&[1, 2, 3]);
    }

    #[test]
    fn default_is_16x16() {
        let x = Crossbar::loas_default();
        assert_eq!(x.ports(), 16);
        assert_eq!(x.bus_bytes(), 16);
    }
}
