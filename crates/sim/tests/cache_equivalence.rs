//! Property test: the indexed, span-batched, residency-tracked
//! [`SramCache`] is observationally identical to the original per-line
//! linear-tag-scan model over random access/probe/span sequences —
//! identical hit/miss outcomes, statistics, traffic ledger, and eviction
//! victims (asserted through full tag/LRU state equality after every
//! operation, which pins the victim choice of every eviction).

use loas_sim::{Access, LineSpan, SpanResidency, SramCache, TrafficClass};
use proptest::prelude::*;

/// The pre-index reference model: a verbatim keep of the original
/// `SramCache` tag logic — per-access linear scan over the ways of a set,
/// one call per line, no index, no spans, no residency state. Kept
/// private to this test on purpose: it exists only to pin behaviour.
struct ReferenceCache {
    line_bytes: usize,
    ways: usize,
    sets: usize,
    tags: Vec<Option<u64>>,
    lru: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    bytes: Vec<(TrafficClass, u64)>,
}

impl ReferenceCache {
    fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        let lines = capacity_bytes / line_bytes;
        let sets = lines / ways;
        ReferenceCache {
            line_bytes,
            ways,
            sets,
            tags: vec![None; sets * ways],
            lru: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
            bytes: Vec::new(),
        }
    }

    fn touch_line(&mut self, line_id: u64) -> Access {
        self.tick += 1;
        let set = (line_id % self.sets as u64) as usize;
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == Some(line_id) {
                self.lru[base + way] = self.tick;
                self.hits += 1;
                return Access::Hit;
            }
        }
        self.misses += 1;
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                if self.tags[base + w].is_none() {
                    0
                } else {
                    self.lru[base + w] + 1
                }
            })
            .expect("ways > 0");
        self.tags[base + victim] = Some(line_id);
        self.lru[base + victim] = self.tick;
        Access::Miss
    }

    fn access_line(&mut self, line_id: u64, class: TrafficClass) -> Access {
        self.bytes.push((class, self.line_bytes as u64));
        self.touch_line(line_id)
    }

    /// Span semantics the batched APIs must match: saturating line math,
    /// then one per-line touch each, in order.
    fn touch_span(&mut self, span: LineSpan) -> u64 {
        let mut missed = 0;
        for i in 0..span.n_lines {
            if self.touch_line(span.first_line + i) == Access::Miss {
                missed += 1;
            }
        }
        missed
    }

    fn access_span(&mut self, span: LineSpan, class: TrafficClass) -> u64 {
        if span.n_lines == 0 {
            return 0;
        }
        self.bytes
            .push((class, span.n_lines * self.line_bytes as u64));
        self.touch_span(span)
    }

    fn snapshot(&self) -> Vec<(Option<u64>, u64)> {
        self.tags
            .iter()
            .copied()
            .zip(self.lru.iter().copied())
            .collect()
    }

    fn take_results(&mut self) -> (u64, u64, Vec<(TrafficClass, u64)>) {
        let out = (self.hits, self.misses, std::mem::take(&mut self.bytes));
        self.hits = 0;
        self.misses = 0;
        self.tags.fill(None);
        self.lru.fill(0);
        self.tick = 0;
        out
    }
}

const CLASSES: [TrafficClass; 3] = [
    TrafficClass::Weight,
    TrafficClass::Input,
    TrafficClass::Format,
];

/// The fixed spans the persistent residency tokens are bound to: a 1-line
/// hot object, a multi-line object, one longer than the set count of the
/// small geometry (epoch-ineligible), and a prefix-probed payload region.
const TRACKED_SPANS: [LineSpan; 4] = [
    LineSpan {
        first_line: 3,
        n_lines: 1,
    },
    LineSpan {
        first_line: 16,
        n_lines: 5,
    },
    LineSpan {
        first_line: 40,
        n_lines: 11,
    },
    LineSpan {
        first_line: 64,
        n_lines: 6,
    },
];

fn ledger_of(cache: &SramCache) -> Vec<u64> {
    cache.traffic().iter().map(|(_, b)| b).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_cache_matches_linear_scan_reference(
        geometry in (0usize..3),
        ops in proptest::collection::vec(
            (0u8..8, any::<u64>(), 1u64..400, 0u64..3),
            1..120,
        ),
    ) {
        // Small geometries keep sets colliding and evictions frequent.
        let (capacity, line, ways) = [(8 * 64, 64, 2), (16 * 32, 32, 4), (64 * 64, 64, 16)][geometry];
        let mut cache = SramCache::new(capacity, line, ways, 1);
        let mut reference = ReferenceCache::new(capacity, line, ways);
        let mut tokens: Vec<SpanResidency> =
            (0..TRACKED_SPANS.len()).map(|_| SpanResidency::default()).collect();

        for (kind, raw_addr, bytes, class_pick) in ops {
            let class = CLASSES[class_pick as usize];
            // Mostly a small address window (collisions + reuse), sometimes
            // the far end of the address space (saturation paths).
            let addr = if raw_addr % 7 == 0 {
                u64::MAX - (raw_addr % 512)
            } else {
                raw_addr % (capacity as u64 * 3)
            };
            match kind {
                0 => {
                    let line_id = addr / line as u64;
                    prop_assert_eq!(
                        cache.access_line(line_id, class),
                        reference.access_line(line_id, class)
                    );
                }
                1 => {
                    let span = LineSpan::of_range(addr, bytes, line);
                    prop_assert_eq!(
                        cache.access_range(addr, bytes, class),
                        reference.access_span(span, class)
                    );
                }
                2 => {
                    let span = LineSpan::of_range(addr, bytes, line);
                    prop_assert_eq!(cache.probe_range(addr, bytes), reference.touch_span(span));
                }
                3 => {
                    let span = LineSpan::of_range(addr, bytes, line);
                    prop_assert_eq!(
                        cache.access_span(span, class),
                        reference.access_span(span, class)
                    );
                }
                4 | 5 => {
                    // Persistent-token access of one of the fixed spans:
                    // exercises the epoch fast path, the per-line salvage
                    // tier, and the epoch-ineligible long span.
                    let which = (raw_addr % TRACKED_SPANS.len() as u64) as usize;
                    let span = TRACKED_SPANS[which];
                    prop_assert_eq!(
                        cache.access_span_resident(span, &mut tokens[which], class),
                        reference.access_span(span, class)
                    );
                }
                6 => {
                    // Varying-length prefix probe through one token — the
                    // per-pair payload-probe pattern of the LoAS replay.
                    let span = LineSpan {
                        first_line: TRACKED_SPANS[3].first_line,
                        n_lines: bytes % (TRACKED_SPANS[3].n_lines + 3),
                    };
                    prop_assert_eq!(
                        cache.probe_span_resident(span, &mut tokens[3]),
                        reference.touch_span(span)
                    );
                }
                _ => {
                    let (ledger, stats) = cache.take_results();
                    let (hits, misses, ref_bytes) = reference.take_results();
                    prop_assert_eq!(stats.hits, hits);
                    prop_assert_eq!(stats.misses, misses);
                    let total: u64 = ref_bytes.iter().map(|&(_, b)| b).sum();
                    prop_assert_eq!(ledger.total(), total);
                    // Stale tokens must never validate against the reset
                    // tags (generation bump) — keep using them below.
                }
            }
            // Tag arrays equal after every op ⇒ every eviction picked the
            // same victim; LRU equal ⇒ future victims stay locked together.
            prop_assert_eq!(cache.tag_snapshot(), reference.snapshot());
        }

        prop_assert_eq!(cache.stats().hits, reference.hits);
        prop_assert_eq!(cache.stats().misses, reference.misses);
        let mut per_class = vec![0u64; 6];
        for &(class, b) in &reference.bytes {
            let index = TrafficClass::ALL.iter().position(|&c| c == class).unwrap();
            per_class[index] += b;
        }
        prop_assert_eq!(ledger_of(&cache), per_class);
    }
}
