//! Offline drop-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen` for `f64`/`bool`,
//! and `Rng::gen_range` over integer and float ranges.
//!
//! The build environment has no registry access, so the real `rand` crate
//! cannot be fetched. Stream *quality* matters here (the workload generator
//! calibrates sparsity statistics against tight tolerances) but bit-for-bit
//! equality with upstream `StdRng` does not: every consumer in the workspace
//! only relies on seeded self-consistency. The generator is xoshiro256++
//! seeded through SplitMix64, both public-domain reference algorithms.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard seeded RNG: xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full 256-bit state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution of upstream
/// `rand`).
pub trait Standard: Sized {
    /// Draws one value from the RNG.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(0usize..4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = rng.gen_range(-20i8..=20);
            assert!((-20..=20).contains(&v));
        }
        for _ in 0..200 {
            let v = rng.gen_range(1u16..16);
            assert!((1..16).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }
}
