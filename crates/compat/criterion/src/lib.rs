//! Offline drop-in for the subset of the `criterion` API this workspace
//! uses: `Criterion`, `criterion_group!`/`criterion_main!`, benchmark
//! groups, `Bencher::iter`, and `Bencher::iter_batched`.
//!
//! The build environment has no registry access, so the real criterion
//! crate cannot be fetched. This shim runs each benchmark for the
//! configured measurement window and prints median per-iteration wall time
//! — no statistics engine, plots, or baselines — which is enough for
//! `cargo bench` to exercise every benched code path and give ballpark
//! numbers.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Batching policy for [`Bencher::iter_batched`] (ignored by the shim; all
/// variants run the setup once per iteration, outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    measurement_time: Duration,
}

impl Bencher {
    fn new(measurement_time: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            measurement_time,
        }
    }

    /// Times repeated calls of `routine` until the measurement window is
    /// spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let deadline = Instant::now() + self.measurement_time;
        loop {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }

    fn report(&mut self, name: &str) {
        match self.median() {
            None => println!("{name:<40} (no samples)"),
            Some(median) => println!(
                "{name:<40} median {:>12.3} µs over {} iters",
                median.as_secs_f64() * 1e6,
                self.samples.len()
            ),
        }
    }
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample count (accepted for API compatibility;
    /// the shim sizes runs by time, not sample count).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d.min(Duration::from_secs(2));
        self
    }

    /// Sets the warm-up window (accepted for API compatibility; unused).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.measurement_time);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Shim extension (not in real criterion): runs `f` like
    /// [`Criterion::bench_function`] but *returns* the median
    /// per-iteration wall time, so programmatic harnesses (the perf
    /// trajectory experiments) can persist measured numbers instead of
    /// scraping stdout. Returns `None` when the closure never iterated.
    pub fn measure_median<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> Option<Duration> {
        let mut bencher = Bencher::new(self.measurement_time);
        f(&mut bencher);
        bencher.report(name);
        bencher.median()
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.criterion.bench_function(name, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn measure_median_returns_a_sample() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        let median = c.measure_median("spin", |b| b.iter(|| std::hint::black_box(3 * 7)));
        assert!(median.is_some());
        let idle = c.measure_median("never-iterates", |_b| {});
        assert!(idle.is_none());
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut bencher = Bencher::new(Duration::from_millis(5));
        bencher.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(!bencher.samples.is_empty());
    }
}
