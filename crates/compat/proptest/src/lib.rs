//! Offline drop-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, range and tuple strategies, `any`,
//! `prop_map`, and `proptest::collection::{vec, btree_set}`.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of cases sampled from a generator seeded deterministically from
//! the test name, so failures reproduce exactly across runs and thread
//! counts.

#![warn(missing_docs)]

use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: enough to exercise the structural invariants under test
    /// while keeping the simulation-heavy properties fast.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The per-test driver holding the deterministic RNG.
#[derive(Debug)]
pub struct TestRunner {
    rng: rand::StdRng,
}

impl TestRunner {
    /// Creates a runner seeded from the test name (FNV-1a), so every test
    /// has an independent but fully reproducible stream.
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: rand::StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut rand::StdRng {
        &mut self.rng
    }
}

/// A generator of test values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// A strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An element-count specification: an exact size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, runner: &mut TestRunner) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                runner.rng().gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = self.size.pick(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let target = self.size.pick(runner);
            let mut set = BTreeSet::new();
            // Bounded attempts: duplicate draws may keep the set below the
            // target size, which proptest's contract allows (the size is a
            // maximum when the element domain is small).
            for _ in 0..target.saturating_mul(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(runner));
            }
            set
        }
    }

    /// A strategy producing `BTreeSet`s of `element` values with a size
    /// drawn from `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts a property holds, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts two values are equal, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests, mirroring `proptest::proptest!`. Each declared
/// function becomes a `#[test]` that runs `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut runner);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn mapped_tuples_compose(v in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 9);
        }

        #[test]
        fn collections_honour_sizes(
            xs in crate::collection::vec(0u8..4, 2..6),
            set in crate::collection::btree_set(0usize..100, 0..10),
        ) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(set.len() < 10);
        }
    }

    #[test]
    fn runner_streams_are_deterministic() {
        let mut a = crate::TestRunner::new("t");
        let mut b = crate::TestRunner::new("t");
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..16).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn config_cases_respected() {
        assert_eq!(ProptestConfig::with_cases(24).cases, 24);
    }
}
