//! ANN-mode workloads for the dual-sparse SNN vs dual-sparse ANN comparison
//! (Fig. 18).
//!
//! The paper's ANN reference is a VGG16 with 8-bit weights at 98.2% sparsity
//! and 8-bit activations at 43.9% sparsity, processed in a single "timestep".

use crate::error::WorkloadError;
use crate::generator::WorkloadGenerator;
use crate::shape::LayerShape;
use loas_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dual-sparse ANN layer workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnWorkload {
    /// Display name.
    pub name: String,
    /// Shape with `t = 1`.
    pub shape: LayerShape,
    /// 8-bit unsigned activations, `M × K`.
    pub activations: DenseMatrix<u8>,
    /// 8-bit signed weights, `K × N`.
    pub weights: DenseMatrix<i8>,
}

impl AnnWorkload {
    /// Realised activation sparsity.
    pub fn activation_sparsity(&self) -> f64 {
        self.activations.value_sparsity()
    }

    /// Realised weight sparsity.
    pub fn weight_sparsity(&self) -> f64 {
        self.weights.sparsity()
    }
}

/// Generates an ANN workload with the given activation/weight sparsities.
///
/// # Errors
///
/// Returns [`WorkloadError::FractionOutOfRange`] for sparsities outside
/// `[0, 1]`.
pub fn generate_ann(
    generator: &WorkloadGenerator,
    name: &str,
    shape: LayerShape,
    activation_sparsity: f64,
    weight_sparsity: f64,
) -> Result<AnnWorkload, WorkloadError> {
    for (pname, v) in [
        ("activation_sparsity", activation_sparsity),
        ("weight_sparsity", weight_sparsity),
    ] {
        if !(0.0..=1.0).contains(&v) {
            return Err(WorkloadError::FractionOutOfRange {
                name: pname,
                value: v,
            });
        }
    }
    let mut rng = StdRng::seed_from_u64(generator.seed() ^ name.len() as u64 ^ 0xA99);
    let mut activations = DenseMatrix::zeros(shape.m, shape.k);
    for m in 0..shape.m {
        for k in 0..shape.k {
            if rng.gen::<f64>() >= activation_sparsity {
                activations.set(m, k, rng.gen_range(1..=255) as u8);
            }
        }
    }
    let mut weights = DenseMatrix::zeros(shape.k, shape.n);
    for k in 0..shape.k {
        for n in 0..shape.n {
            if rng.gen::<f64>() >= weight_sparsity {
                let magnitude = rng.gen_range(1..=127) as i8;
                weights.set(
                    k,
                    n,
                    if rng.gen::<bool>() {
                        magnitude
                    } else {
                        -magnitude
                    },
                );
            }
        }
    }
    Ok(AnnWorkload {
        name: name.to_owned(),
        shape: LayerShape { t: 1, ..shape },
        activations,
        weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsities_track_targets() {
        let generator = WorkloadGenerator::default();
        let w = generate_ann(
            &generator,
            "ann",
            LayerShape::new(1, 64, 64, 512),
            0.439,
            0.982,
        )
        .unwrap();
        assert!((w.activation_sparsity() - 0.439).abs() < 0.02);
        assert!((w.weight_sparsity() - 0.982).abs() < 0.01);
        assert_eq!(w.shape.t, 1);
    }

    #[test]
    fn bad_sparsity_rejected() {
        let generator = WorkloadGenerator::default();
        assert!(generate_ann(&generator, "x", LayerShape::new(1, 2, 2, 2), 1.5, 0.5).is_err());
    }

    #[test]
    fn deterministic() {
        let generator = WorkloadGenerator::new(3);
        let shape = LayerShape::new(1, 8, 8, 64);
        let a = generate_ann(&generator, "d", shape, 0.4, 0.9).unwrap();
        let b = generate_ann(&generator, "d", shape, 0.4, 0.9).unwrap();
        assert_eq!(a, b);
    }
}
