//! # loas-workloads — evaluation workloads for the LoAS reproduction
//!
//! The paper evaluates on LTH-pruned, direct-coded SNNs (AlexNet, VGG16,
//! ResNet19 on CIFAR-10; a SpikeTransformer feed-forward layer) whose
//! sparsity statistics are published in Table II. Trained checkpoints are
//! not available offline, and the accelerators under study are
//! data-value-agnostic, so this crate *synthesises* workloads whose sparsity
//! structure matches Table II exactly in expectation (see `DESIGN.md`,
//! substitutions):
//!
//! * [`SparsityProfile`] — the Table II statistics + a three-category
//!   firing-model calibration that hits origin sparsity, silent density, and
//!   FT-silent density simultaneously;
//! * [`WorkloadGenerator`] / [`LayerWorkload`] — seeded, reproducible
//!   generation of spike tensors and pruned weight matrices;
//! * [`networks`] — the full per-layer shape tables (CIFAR-10 im2col
//!   geometry; the selected layers A-L4 / V-L8 / R-L19 / T-HFF match the
//!   published `(T, M, N, K)` tuples exactly);
//! * [`AnnWorkload`] — the dual-sparse ANN comparison workloads of Fig. 18.
//!
//! # Examples
//!
//! Generate the paper's V-L8 layer:
//!
//! ```
//! use loas_workloads::{networks, WorkloadGenerator};
//!
//! let generator = WorkloadGenerator::default();
//! let v_l8 = &networks::selected_layers()[1];
//! let workload = v_l8.generate(&generator)?;
//! assert_eq!(workload.shape.k, 2304);
//! # Ok::<(), loas_workloads::WorkloadError>(())
//! ```

#![warn(missing_docs)]

mod ann;
mod error;
mod generator;
pub mod networks;
mod shape;
mod sparsity;

pub use ann::{generate_ann, AnnWorkload};
pub use error::WorkloadError;
pub use generator::{LayerWorkload, WorkloadGenerator, DEFAULT_SEED};
pub use shape::LayerShape;
pub use sparsity::{FiringModel, SparsityProfile, TemporalScalingModel};
