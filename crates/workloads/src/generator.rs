//! Seeded dual-sparse workload generation.
//!
//! The accelerators under study are data-value-agnostic: cycles, traffic,
//! and energy depend only on the *positions* of non-zeros. The generator
//! therefore synthesises spike tensors and weight matrices whose sparsity
//! structure matches the Table II statistics exactly in expectation (see
//! [`crate::SparsityProfile`]), with fully seeded, reproducible randomness.

use crate::error::WorkloadError;
use crate::shape::LayerShape;
use crate::sparsity::SparsityProfile;
use loas_snn::{preprocess, LifParams, SnnLayer, SparsityStats, SpikeTensor};
use loas_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The workspace-wide default generation seed (all reported experiments use
/// it; [`WorkloadGenerator::default`] and the campaign engine share it).
pub const DEFAULT_SEED: u64 = 0x10A5;

/// One generated dual-sparse layer workload: the unit every accelerator
/// model consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWorkload {
    /// Display name (e.g. `"VGG16-L8"`).
    pub name: String,
    /// The `(T, M, N, K)` shape.
    pub shape: LayerShape,
    /// Input spike tensor `A ∈ {0,1}^{M×K×T}`.
    pub spikes: SpikeTensor,
    /// Weight matrix `B ∈ Z^{K×N}` (8-bit, Table III).
    pub weights: DenseMatrix<i8>,
    /// LIF parameters for the output stage.
    pub lif: LifParams,
}

impl LayerWorkload {
    /// Measures the realised sparsity statistics (Table II accounting).
    pub fn stats(&self) -> SparsityStats {
        SparsityStats::measure(&self.spikes, &self.weights)
    }

    /// The fine-tuned-preprocessing variant: neurons firing at most once are
    /// masked silent (Section V). Shapes and weights are unchanged.
    pub fn with_preprocessing(&self) -> LayerWorkload {
        LayerWorkload {
            name: format!("{}+FT", self.name),
            shape: self.shape,
            spikes: preprocess::mask_low_activity(&self.spikes, 1),
            weights: self.weights.clone(),
            lif: self.lif,
        }
    }

    /// Builds the golden [`SnnLayer`] for functional verification.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrix is empty (generated workloads never are).
    pub fn golden_layer(&self) -> SnnLayer {
        SnnLayer::new(self.weights.clone(), self.lif).expect("generated weights are non-empty")
    }
}

/// Seeded generator for dual-sparse workloads.
///
/// # Examples
///
/// ```
/// use loas_workloads::{LayerShape, SparsityProfile, WorkloadGenerator};
///
/// let generator = WorkloadGenerator::new(42);
/// let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2)?;
/// let w = generator.generate("demo", LayerShape::new(4, 8, 16, 128), &profile)?;
/// assert_eq!(w.spikes.timesteps(), 4);
/// assert_eq!(w.weights.rows(), 128);
/// # Ok::<(), loas_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadGenerator {
    seed: u64,
}

impl WorkloadGenerator {
    /// Creates a generator with a master seed.
    pub fn new(seed: u64) -> Self {
        WorkloadGenerator { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates one layer workload with the target profile.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InfeasibleProfile`] when the profile cannot
    /// be realised at the shape's timestep count.
    pub fn generate(
        &self,
        name: &str,
        shape: LayerShape,
        profile: &SparsityProfile,
    ) -> Result<LayerWorkload, WorkloadError> {
        let model = profile.firing_model(shape.t)?;
        let mut rng = self.rng_for(name);
        let mut spikes = SpikeTensor::zeros(shape.m, shape.k, shape.t);
        let mut timestep_pool: Vec<usize> = (0..shape.t).collect();
        for m in 0..shape.m {
            for k in 0..shape.k {
                let count = model.sample_count(rng.gen::<f64>(), rng.gen::<f64>());
                // Partial Fisher-Yates: pick `count` distinct timesteps.
                for i in 0..count {
                    let j = rng.gen_range(i..shape.t);
                    timestep_pool.swap(i, j);
                }
                for &t in &timestep_pool[..count] {
                    spikes.set(m, k, t, true);
                }
            }
        }
        let weights = self.generate_weights(&mut rng, shape.k, shape.n, profile.weight);
        Ok(LayerWorkload {
            name: name.to_owned(),
            shape,
            spikes,
            weights,
            lif: Self::default_lif(shape, profile),
        })
    }

    /// A LIF setting that produces plausible (high) output sparsity: the
    /// threshold scales with the expected accumulation magnitude.
    fn default_lif(shape: LayerShape, profile: &SparsityProfile) -> LifParams {
        let expected_matches = shape.k as f64 * (1.0 - profile.silent) * (1.0 - profile.weight);
        // Mean |weight| is ~64 for uniform +-[1,127]; threshold at ~1.5x the
        // expected net drift keeps output firing sparse.
        let v_th = (expected_matches * 32.0).max(16.0) as i32;
        LifParams::new(v_th, 1)
    }

    fn generate_weights(
        &self,
        rng: &mut StdRng,
        k: usize,
        n: usize,
        weight_sparsity: f64,
    ) -> DenseMatrix<i8> {
        let mut weights = DenseMatrix::zeros(k, n);
        for ki in 0..k {
            for ni in 0..n {
                if rng.gen::<f64>() >= weight_sparsity {
                    let magnitude = rng.gen_range(1..=127) as i8;
                    let value = if rng.gen::<bool>() {
                        magnitude
                    } else {
                        -magnitude
                    };
                    weights.set(ki, ni, value);
                }
            }
        }
        weights
    }

    fn rng_for(&self, name: &str) -> StdRng {
        // Stable FNV-1a over the name, mixed with the master seed, so each
        // workload has an independent but reproducible stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(self.seed ^ h)
    }
}

impl Default for WorkloadGenerator {
    /// The workspace-wide default seed (all reported experiments use it).
    fn default() -> Self {
        WorkloadGenerator::new(DEFAULT_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_profile() -> SparsityProfile {
        SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = WorkloadGenerator::new(7);
        let shape = LayerShape::new(4, 16, 8, 64);
        let a = generator.generate("x", shape, &vgg_profile()).unwrap();
        let b = generator.generate("x", shape, &vgg_profile()).unwrap();
        assert_eq!(a.spikes, b.spikes);
        assert_eq!(a.weights, b.weights);
        let c = generator.generate("y", shape, &vgg_profile()).unwrap();
        assert_ne!(a.spikes, c.spikes, "different names give different streams");
    }

    #[test]
    fn realised_sparsity_tracks_profile() {
        let generator = WorkloadGenerator::default();
        let shape = LayerShape::new(4, 64, 32, 512); // 32k neurons
        let profile = vgg_profile();
        let w = generator.generate("cal", shape, &profile).unwrap();
        let stats = w.stats();
        assert!(
            (stats.spike_origin_pct / 100.0 - profile.spike_origin).abs() < 0.01,
            "origin sparsity {} vs target {}",
            stats.spike_origin_pct,
            profile.spike_origin * 100.0
        );
        assert!(
            (stats.silent_pct / 100.0 - profile.silent).abs() < 0.01,
            "silent {} vs target {}",
            stats.silent_pct,
            profile.silent * 100.0
        );
        assert!(
            (stats.silent_ft_pct / 100.0 - profile.silent_ft).abs() < 0.01,
            "silent+FT {} vs target {}",
            stats.silent_ft_pct,
            profile.silent_ft * 100.0
        );
        assert!(
            (stats.weight_pct / 100.0 - profile.weight).abs() < 0.01,
            "weight {} vs target {}",
            stats.weight_pct,
            profile.weight * 100.0
        );
    }

    #[test]
    fn preprocessing_variant_increases_silence() {
        let generator = WorkloadGenerator::default();
        let shape = LayerShape::new(4, 32, 8, 256);
        let w = generator.generate("ft", shape, &vgg_profile()).unwrap();
        let ft = w.with_preprocessing();
        assert!(ft.spikes.packed_sparsity() >= w.spikes.packed_sparsity());
        assert_eq!(ft.weights, w.weights);
        assert!(ft.name.ends_with("+FT"));
    }

    #[test]
    fn golden_layer_runs() {
        let generator = WorkloadGenerator::default();
        let shape = LayerShape::new(4, 4, 8, 32);
        let w = generator.generate("g", shape, &vgg_profile()).unwrap();
        let out = w.golden_layer().forward(&w.spikes).unwrap();
        assert_eq!(out.spikes.m(), 4);
        assert_eq!(out.spikes.k(), 8);
    }

    #[test]
    fn weights_are_nonzero_when_kept() {
        let generator = WorkloadGenerator::default();
        let shape = LayerShape::new(4, 2, 16, 128);
        let w = generator.generate("w", shape, &vgg_profile()).unwrap();
        // Every kept weight must be non-zero (zero means pruned).
        let nnz = w.weights.nnz(|&v| v == 0);
        assert!(nnz > 0, "some weights survive at 98.2% sparsity");
    }
}
