//! Error types for workload construction.

use std::error::Error;
use std::fmt;

/// Errors produced when building or calibrating workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The requested sparsity statistics are mutually inconsistent (e.g. a
    /// spike density that cannot be reached given the silent fraction and
    /// timestep count).
    InfeasibleProfile {
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A fraction parameter was outside `[0, 1]`.
    FractionOutOfRange {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InfeasibleProfile { reason } => {
                write!(f, "infeasible sparsity profile: {reason}")
            }
            WorkloadError::FractionOutOfRange { name, value } => {
                write!(f, "parameter `{name}` = {value} outside [0, 1]")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let e = WorkloadError::FractionOutOfRange {
            name: "silent",
            value: 1.5,
        };
        assert!(e.to_string().contains("silent"));
    }
}
