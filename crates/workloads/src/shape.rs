//! Layer shapes in the paper's `(T, M, N, K)` convention.
//!
//! Convolution layers are viewed through im2col: `M` = output spatial
//! positions (`OH·OW`), `K` = input patch size (`Cin·kh·kw`), `N` = output
//! channels — exactly the `T,M,N,K` tuples of Table II.

use std::fmt;

/// The shape of one spMspM layer workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Number of timesteps `T`.
    pub t: usize,
    /// Output rows `M`.
    pub m: usize,
    /// Output columns `N`.
    pub n: usize,
    /// Contraction dimension `K`.
    pub k: usize,
}

impl LayerShape {
    /// Creates a shape from the paper's `(T, M, N, K)` tuple order.
    pub fn new(t: usize, m: usize, n: usize, k: usize) -> Self {
        LayerShape { t, m, n, k }
    }

    /// The im2col shape of a square convolution: `channels_in`, square
    /// kernel `kernel`, producing `out_hw x out_hw` spatial outputs with
    /// `channels_out` filters.
    pub fn conv(
        t: usize,
        out_hw: usize,
        channels_in: usize,
        channels_out: usize,
        kernel: usize,
    ) -> Self {
        LayerShape {
            t,
            m: out_hw * out_hw,
            n: channels_out,
            k: channels_in * kernel * kernel,
        }
    }

    /// A fully-connected layer (`M = 1` per sample).
    pub fn linear(t: usize, inputs: usize, outputs: usize) -> Self {
        LayerShape {
            t,
            m: 1,
            n: outputs,
            k: inputs,
        }
    }

    /// Dense multiply-accumulate count for one inference (`M·N·K·T`): the
    /// work a dense accelerator performs.
    pub fn dense_ops(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64 * self.t as u64
    }

    /// Number of output neurons (`M·N`).
    pub fn outputs(&self) -> usize {
        self.m * self.n
    }

    /// Number of pre-synaptic neuron positions (`M·K`).
    pub fn inputs(&self) -> usize {
        self.m * self.k
    }
}

impl fmt::Display for LayerShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{},{},{}", self.t, self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_selected_layers() {
        // A-L4: 4,64,256,3456 — AlexNet conv4: 8x8 output, 384->256, 3x3.
        assert_eq!(
            LayerShape::conv(4, 8, 384, 256, 3),
            LayerShape::new(4, 64, 256, 3456)
        );
        // V-L8: 4,16,512,2304 — VGG16 conv8: 4x4 output, 256->512, 3x3.
        assert_eq!(
            LayerShape::conv(4, 4, 256, 512, 3),
            LayerShape::new(4, 16, 512, 2304)
        );
    }

    #[test]
    fn linear_has_m_one() {
        let s = LayerShape::linear(4, 512, 10);
        assert_eq!(s.m, 1);
        assert_eq!(s.k, 512);
        assert_eq!(s.n, 10);
    }

    #[test]
    fn counts() {
        let s = LayerShape::new(4, 2, 3, 5);
        assert_eq!(s.dense_ops(), 120);
        assert_eq!(s.outputs(), 6);
        assert_eq!(s.inputs(), 10);
        assert_eq!(s.to_string(), "4,2,3,5");
    }
}
