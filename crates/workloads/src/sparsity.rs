//! Sparsity profiles and the firing-model calibration.
//!
//! Table II characterises each workload by three spike statistics —
//! `AvSpA-origin` (per-timestep spike sparsity), `AvSpA-packed` (silent
//! neuron fraction), and `AvSpA-packed+FT` (silent fraction after masking
//! fire-once neurons) — plus the weight sparsity `AvSpB`. Real SNN firing is
//! over-dispersed (these three numbers cannot be produced by an i.i.d.
//! Bernoulli model), so the generator uses a three-category neuron mixture:
//!
//! * **silent** with probability `s` (never fires);
//! * **fire-once** with probability `l = silent_ft − silent` (fires at
//!   exactly one uniformly chosen timestep — the neurons the fine-tuned
//!   preprocessing removes);
//! * **active** with probability `a = 1 − silent_ft`, whose spike count is
//!   Binomial(`T`, `p`) conditioned on at least two fires, with `p` solved
//!   by bisection so the total spike density matches `1 − origin`.
//!
//! This hits all three Table II statistics simultaneously and exactly (in
//! expectation).

use crate::error::WorkloadError;

/// The sparsity statistics of a dual-sparse workload (fractions in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityProfile {
    /// `AvSpA-origin`: fraction of zero spike bits over `M·K·T`.
    pub spike_origin: f64,
    /// `AvSpA-packed`: fraction of silent neurons over `M·K`.
    pub silent: f64,
    /// `AvSpA-packed+FT`: silent fraction after fine-tuned preprocessing.
    pub silent_ft: f64,
    /// `AvSpB`: fraction of zero weights.
    pub weight: f64,
}

impl SparsityProfile {
    /// Creates a profile from percentages as printed in Table II.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when any percentage is outside `[0, 100]`
    /// or the values are mutually inconsistent (`silent_ft < silent`).
    pub fn from_percentages(
        spike_origin: f64,
        silent: f64,
        silent_ft: f64,
        weight: f64,
    ) -> Result<Self, WorkloadError> {
        for (name, v) in [
            ("spike_origin", spike_origin),
            ("silent", silent),
            ("silent_ft", silent_ft),
            ("weight", weight),
        ] {
            if !(0.0..=100.0).contains(&v) {
                return Err(WorkloadError::FractionOutOfRange { name, value: v });
            }
        }
        if silent_ft < silent {
            return Err(WorkloadError::InfeasibleProfile {
                reason: format!(
                    "silent_ft ({silent_ft}%) below silent ({silent}%): preprocessing cannot reduce silence"
                ),
            });
        }
        Ok(SparsityProfile {
            spike_origin: spike_origin / 100.0,
            silent: silent / 100.0,
            silent_ft: silent_ft / 100.0,
            weight: weight / 100.0,
        })
    }

    /// Overall spike density `1 − origin`.
    pub fn spike_density(&self) -> f64 {
        1.0 - self.spike_origin
    }

    /// Solves the three-category firing model for `t` timesteps.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InfeasibleProfile`] when the statistics are
    /// unreachable (e.g. density outside what the mixture can express).
    pub fn firing_model(&self, t: usize) -> Result<FiringModel, WorkloadError> {
        FiringModel::solve(self, t)
    }
}

/// The calibrated per-neuron firing model (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FiringModel {
    timesteps: usize,
    silent_p: f64,
    once_p: f64,
    /// Conditional probability mass over spike counts `2..=T` for active
    /// neurons.
    active_count_pmf: Vec<f64>,
    bernoulli_p: f64,
}

impl FiringModel {
    /// Solves the model for a profile at `t` timesteps.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InfeasibleProfile`] when no Bernoulli
    /// parameter can reach the requested density.
    pub fn solve(profile: &SparsityProfile, t: usize) -> Result<Self, WorkloadError> {
        if t == 0 {
            return Err(WorkloadError::InfeasibleProfile {
                reason: "zero timesteps".to_owned(),
            });
        }
        let s = profile.silent;
        let l = profile.silent_ft - profile.silent;
        let a = 1.0 - profile.silent_ft;
        let density = profile.spike_density();
        if t == 1 {
            // A one-timestep window: packed view == per-timestep view, so
            // the silent fraction is exactly the origin sparsity and every
            // non-silent neuron fires exactly once.
            return Ok(FiringModel {
                timesteps: 1,
                silent_p: profile.spike_origin,
                once_p: density,
                active_count_pmf: vec![],
                bernoulli_p: 0.0,
            });
        }
        let expected_fires = density * t as f64; // per neuron
        if a <= 1e-12 {
            // No active neurons: all spikes come from fire-once neurons.
            if (expected_fires - l).abs() > 0.02 {
                return Err(WorkloadError::InfeasibleProfile {
                    reason: format!(
                        "no active neurons but density requires {expected_fires:.3} fires/neuron vs {l:.3} from fire-once"
                    ),
                });
            }
            return Ok(FiringModel {
                timesteps: t,
                silent_p: s,
                once_p: l,
                active_count_pmf: vec![],
                bernoulli_p: 0.0,
            });
        }
        let e2_target = (expected_fires - l) / a;
        if t >= 2 && !(2.0 - 1e-9..=t as f64 + 1e-9).contains(&e2_target) {
            return Err(WorkloadError::InfeasibleProfile {
                reason: format!(
                    "active neurons would need {e2_target:.3} mean fires, outside [2, {t}]"
                ),
            });
        }
        // Bisection on p: E[X | X >= 2] is monotone increasing in p.
        let (mut lo, mut hi) = (1e-9, 1.0 - 1e-9);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if conditional_mean_ge2(t, mid) < e2_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = 0.5 * (lo + hi);
        let pmf = conditional_pmf_ge2(t, p);
        Ok(FiringModel {
            timesteps: t,
            silent_p: s,
            once_p: l,
            active_count_pmf: pmf,
            bernoulli_p: p,
        })
    }

    /// Number of timesteps the model covers.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Probability a neuron is silent.
    pub fn silent_p(&self) -> f64 {
        self.silent_p
    }

    /// Probability a neuron fires exactly once.
    pub fn once_p(&self) -> f64 {
        self.once_p
    }

    /// The solved Bernoulli parameter for active neurons.
    pub fn bernoulli_p(&self) -> f64 {
        self.bernoulli_p
    }

    /// Expected spike density implied by the model (sanity check: equals the
    /// profile's `1 − origin` when solvable).
    pub fn expected_density(&self) -> f64 {
        let a = 1.0 - self.silent_p - self.once_p;
        let mean_active: f64 = self
            .active_count_pmf
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as f64 + 2.0) * p)
            .sum();
        (self.once_p + a * mean_active) / self.timesteps as f64
    }

    /// Samples a spike count for one neuron from three uniform draws in
    /// `[0, 1)`: category selector and count selector (the third drives
    /// position choice externally).
    pub fn sample_count(&self, u_category: f64, u_count: f64) -> usize {
        if u_category < self.silent_p {
            return 0;
        }
        if u_category < self.silent_p + self.once_p {
            return 1;
        }
        let mut acc = 0.0;
        for (i, &p) in self.active_count_pmf.iter().enumerate() {
            acc += p;
            if u_count < acc {
                return i + 2;
            }
        }
        self.timesteps.min(self.active_count_pmf.len() + 1)
    }
}

/// Extrapolates silent-neuron statistics to other timestep counts
/// (Fig. 16(b), Fig. 17's T sweep).
///
/// Neuron firing rates are modeled as a three-point mixture fitted to the
/// `T = 4` profile: a *dead* mass (never fires at any window length), a
/// *slow* mass (rate `r_slow`, the neurons whose silence erodes as `T`
/// grows), and a *fast* mass (rate `r_fast`, carrying the bulk of the spike
/// density). The dead share of the observed silent fraction is the
/// `alpha` parameter (default 0.6, documented in DESIGN.md): larger `alpha`
/// means silence persists longer with growing `T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalScalingModel {
    pi_dead: f64,
    pi_slow: f64,
    r_slow: f64,
    pi_fast: f64,
    r_fast: f64,
    weight: f64,
}

impl TemporalScalingModel {
    /// Default dead share of the silent fraction.
    pub const DEFAULT_ALPHA: f64 = 0.6;

    /// Fits the mixture to a profile calibrated at `t_cal` timesteps.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for an `alpha` outside `(0, 1)` or an
    /// unsolvable profile.
    pub fn fit(profile: &SparsityProfile, t_cal: usize, alpha: f64) -> Result<Self, WorkloadError> {
        if !(0.0..1.0).contains(&alpha) || alpha <= 0.0 {
            return Err(WorkloadError::FractionOutOfRange {
                name: "alpha",
                value: alpha,
            });
        }
        let t = t_cal as f64;
        let s4 = profile.silent;
        let once4 = (profile.silent_ft - profile.silent).max(0.0);
        let density = profile.spike_density();
        let pi_dead = alpha * s4;
        let slow_silent = (1.0 - alpha) * s4; // pi_slow * (1-r_slow)^t

        // Divide the once-firing identity by the slow-silent identity:
        // t * r / (1 - r) = once4 / slow_silent.
        let ratio = if slow_silent > 1e-12 {
            once4 / slow_silent
        } else {
            0.0
        };
        let r_slow = ratio / (t + ratio);
        let pi_slow = if r_slow < 1.0 {
            slow_silent / (1.0 - r_slow).powf(t)
        } else {
            0.0
        };
        let pi_fast = (1.0 - pi_dead - pi_slow).max(0.0);
        let r_fast = if pi_fast > 1e-12 {
            ((density - pi_slow * r_slow) / pi_fast).clamp(0.0, 1.0)
        } else {
            0.0
        };
        if pi_dead + pi_slow > 1.0 + 1e-9 {
            return Err(WorkloadError::InfeasibleProfile {
                reason: format!("mixture masses exceed 1 (dead {pi_dead:.3} + slow {pi_slow:.3})"),
            });
        }
        Ok(TemporalScalingModel {
            pi_dead,
            pi_slow,
            r_slow,
            pi_fast,
            r_fast,
            weight: profile.weight,
        })
    }

    /// Silent-neuron fraction at window length `t`.
    pub fn silent_at(&self, t: usize) -> f64 {
        self.pi_dead
            + self.pi_slow * (1.0 - self.r_slow).powf(t as f64)
            + self.pi_fast * (1.0 - self.r_fast).powf(t as f64)
    }

    /// Silent fraction after fine-tuned preprocessing (silent + fire-once).
    pub fn silent_ft_at(&self, t: usize) -> f64 {
        let tf = t as f64;
        let once = self.pi_slow * tf * self.r_slow * (1.0 - self.r_slow).powf(tf - 1.0)
            + self.pi_fast * tf * self.r_fast * (1.0 - self.r_fast).powf(tf - 1.0);
        (self.silent_at(t) + once).min(1.0)
    }

    /// Per-timestep spike density (independent of `t` in this model).
    pub fn density(&self) -> f64 {
        self.pi_slow * self.r_slow + self.pi_fast * self.r_fast
    }

    /// A full profile at window length `t`, suitable for workload
    /// generation (Fig. 17's `T = 8` LoAS runs).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if the extrapolated statistics are
    /// mutually infeasible at `t`.
    pub fn profile_at(&self, t: usize) -> Result<SparsityProfile, WorkloadError> {
        SparsityProfile::from_percentages(
            (1.0 - self.density()) * 100.0,
            self.silent_at(t) * 100.0,
            self.silent_ft_at(t) * 100.0,
            self.weight * 100.0,
        )
    }
}

/// `E[X | X >= 2]` for `X ~ Binomial(t, p)`.
fn conditional_mean_ge2(t: usize, p: f64) -> f64 {
    let q = 1.0 - p;
    let p0 = q.powi(t as i32);
    let p1 = t as f64 * p * q.powi(t as i32 - 1);
    let z = 1.0 - p0 - p1;
    if z <= 1e-300 {
        2.0
    } else {
        (t as f64 * p - p1) / z
    }
}

/// PMF of `X | X >= 2` over `x = 2..=t` for `X ~ Binomial(t, p)`.
fn conditional_pmf_ge2(t: usize, p: f64) -> Vec<f64> {
    let q = 1.0 - p;
    let mut probs = Vec::with_capacity(t.saturating_sub(1));
    let mut z = 0.0;
    for x in 2..=t {
        let prob = binomial(t, x) * p.powi(x as i32) * q.powi((t - x) as i32);
        probs.push(prob);
        z += prob;
    }
    if z > 0.0 {
        for pr in &mut probs {
            *pr /= z;
        }
    }
    probs
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II network-average profiles.
    fn table2_profiles() -> Vec<(&'static str, SparsityProfile)> {
        vec![
            (
                "AlexNet",
                SparsityProfile::from_percentages(81.2, 71.3, 76.7, 98.2).unwrap(),
            ),
            (
                "VGG16",
                SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap(),
            ),
            (
                "ResNet19",
                SparsityProfile::from_percentages(68.6, 59.6, 66.1, 96.8).unwrap(),
            ),
            (
                "A-L4",
                SparsityProfile::from_percentages(75.8, 63.2, 69.7, 98.9).unwrap(),
            ),
            (
                "V-L8",
                SparsityProfile::from_percentages(88.1, 76.5, 86.8, 96.8).unwrap(),
            ),
            (
                "R-L19",
                SparsityProfile::from_percentages(57.9, 51.4, 55.7, 99.1).unwrap(),
            ),
        ]
    }

    #[test]
    fn all_table2_profiles_are_solvable_at_t4() {
        for (name, profile) in table2_profiles() {
            let model = profile.firing_model(4).unwrap_or_else(|e| {
                panic!("profile {name} should be solvable: {e}");
            });
            assert!(
                (model.expected_density() - profile.spike_density()).abs() < 1e-6,
                "{name}: model density {} vs target {}",
                model.expected_density(),
                profile.spike_density()
            );
        }
    }

    #[test]
    fn category_probabilities_match_profile() {
        let profile = SparsityProfile::from_percentages(68.6, 59.6, 66.1, 96.8).unwrap();
        let model = profile.firing_model(4).unwrap();
        assert!((model.silent_p() - 0.596).abs() < 1e-9);
        assert!((model.once_p() - 0.065).abs() < 1e-9);
        assert!(
            model.bernoulli_p() > 0.5,
            "ResNet19 active neurons fire often"
        );
    }

    #[test]
    fn sample_count_respects_categories() {
        let profile = SparsityProfile::from_percentages(80.0, 70.0, 75.0, 98.0).unwrap();
        let model = profile.firing_model(4).unwrap();
        assert_eq!(model.sample_count(0.0, 0.5), 0); // silent region
        assert_eq!(model.sample_count(0.72, 0.5), 1); // once region
        let c = model.sample_count(0.9, 0.0);
        assert!(c >= 2, "active neurons fire at least twice, got {c}");
    }

    #[test]
    fn infeasible_density_detected() {
        // 90% silent but density 0.5: impossible (max 0.1 non-silent * 1.0).
        let p = SparsityProfile::from_percentages(50.0, 90.0, 92.0, 98.0).unwrap();
        assert!(matches!(
            p.firing_model(4),
            Err(WorkloadError::InfeasibleProfile { .. })
        ));
    }

    #[test]
    fn ft_below_silent_rejected() {
        assert!(SparsityProfile::from_percentages(80.0, 70.0, 60.0, 98.0).is_err());
    }

    #[test]
    fn percent_out_of_range_rejected() {
        assert!(SparsityProfile::from_percentages(120.0, 70.0, 75.0, 98.0).is_err());
    }

    #[test]
    fn conditional_mean_bounds() {
        assert!(conditional_mean_ge2(4, 1e-6) - 2.0 < 1e-3);
        assert!((conditional_mean_ge2(4, 1.0 - 1e-9) - 4.0).abs() < 1e-3);
    }

    #[test]
    fn pmf_sums_to_one() {
        let pmf = conditional_pmf_ge2(8, 0.3);
        let sum: f64 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(pmf.len(), 7); // counts 2..=8
    }

    #[test]
    fn binomial_coefficients() {
        assert_eq!(binomial(4, 2) as u64, 6);
        assert_eq!(binomial(10, 3) as u64, 120);
    }

    #[test]
    fn temporal_model_reproduces_calibration_point() {
        let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap();
        let model =
            TemporalScalingModel::fit(&profile, 4, TemporalScalingModel::DEFAULT_ALPHA).unwrap();
        assert!((model.silent_at(4) - 0.741).abs() < 5e-3);
        assert!((model.silent_ft_at(4) - 0.796).abs() < 5e-3);
        assert!((model.density() - profile.spike_density()).abs() < 1e-9);
    }

    #[test]
    fn silent_ratio_declines_with_timesteps() {
        // Fig. 16(b): silence erodes as the window grows, but the FT curve
        // at T=8 stays close to the origin curve at T=4.
        let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap();
        let model =
            TemporalScalingModel::fit(&profile, 4, TemporalScalingModel::DEFAULT_ALPHA).unwrap();
        let s4 = model.silent_at(4);
        let s8 = model.silent_at(8);
        let s16 = model.silent_at(16);
        assert!(s8 < s4 && s16 < s8, "silence erodes: {s4} {s8} {s16}");
        let ft8 = model.silent_ft_at(8);
        assert!(
            ft8 >= s4 * 0.95,
            "FT at T=8 keeps near the T=4 silent ratio: {ft8} vs {s4}"
        );
    }

    #[test]
    fn extrapolated_profiles_are_generatable() {
        let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap();
        let model =
            TemporalScalingModel::fit(&profile, 4, TemporalScalingModel::DEFAULT_ALPHA).unwrap();
        for t in [4usize, 8] {
            let p = model.profile_at(t).unwrap();
            p.firing_model(t)
                .unwrap_or_else(|e| panic!("T={t} profile unsolvable: {e}"));
        }
    }

    #[test]
    fn bad_alpha_rejected() {
        let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap();
        assert!(TemporalScalingModel::fit(&profile, 4, 0.0).is_err());
        assert!(TemporalScalingModel::fit(&profile, 4, 1.0).is_err());
    }
}
