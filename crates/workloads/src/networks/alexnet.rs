//! AlexNet for CIFAR-10: 7 layers (5 conv + 2 FC), Table II row 1.

use super::{profiles, LayerSpec, NetworkSpec, DEFAULT_TIMESTEPS};
use crate::shape::LayerShape;

/// The 7-layer CIFAR-10 AlexNet. Layer 4 matches Table II's A-L4 tuple
/// `(4, 64, 256, 3456)`.
pub fn alexnet() -> NetworkSpec {
    let t = DEFAULT_TIMESTEPS;
    let profile = profiles::alexnet();
    let shapes = [
        // (out_hw, cin, cout, kernel) for conv layers
        LayerShape::conv(t, 32, 3, 64, 3),   // L1: 32x32, 3 -> 64
        LayerShape::conv(t, 16, 64, 192, 3), // L2: pooled to 16x16
        LayerShape::conv(t, 8, 192, 384, 3), // L3: pooled to 8x8
        LayerShape::conv(t, 8, 384, 256, 3), // L4: A-L4 = (4, 64, 256, 3456)
        LayerShape::conv(t, 8, 256, 256, 3), // L5
        LayerShape::linear(t, 256 * 2 * 2, 1024), // L6: FC after 2x2 pool
        LayerShape::linear(t, 1024, 10),     // L7: classifier
    ];
    NetworkSpec {
        name: "AlexNet".to_owned(),
        layers: shapes
            .into_iter()
            .enumerate()
            .map(|(i, shape)| LayerSpec {
                name: format!("AlexNet-L{}", i + 1),
                shape,
                profile,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer4_is_a_l4() {
        let net = alexnet();
        assert_eq!(net.layers[3].shape, LayerShape::new(4, 64, 256, 3456));
    }

    #[test]
    fn has_seven_layers_named_in_order() {
        let net = alexnet();
        assert_eq!(net.depth(), 7);
        assert_eq!(net.layers[0].name, "AlexNet-L1");
        assert_eq!(net.layers[6].name, "AlexNet-L7");
    }
}
