//! ResNet19 for CIFAR-10: 19 layers, Table II row 3.
//!
//! The SNN literature's ResNet19 (Zheng et al., "Going deeper with
//! directly-trained larger SNNs") is a three-stage residual network. Im2col
//! shapes below follow a plausible CIFAR-10 geometry anchored at the
//! *published* final-layer tuple: Table II gives R-L19 = `(4, 16, 512, 2304)`
//! (a 3x3 conv from 256 channels to 512 at 4x4 spatial), which layer 19
//! reproduces exactly. Residual-branch adds are not separate spMspM layers
//! and are omitted, as in the paper's workload table.

use super::{profiles, LayerSpec, NetworkSpec, DEFAULT_TIMESTEPS};
use crate::shape::LayerShape;

/// The 19-layer CIFAR-10 ResNet19. Layer 19 matches Table II's R-L19 tuple
/// `(4, 16, 512, 2304)`.
pub fn resnet19() -> NetworkSpec {
    let t = DEFAULT_TIMESTEPS;
    let profile = profiles::resnet19();
    let mut shapes = Vec::with_capacity(19);
    // Stem.
    shapes.push(LayerShape::conv(t, 32, 3, 128, 3)); // L1

    // Stage 1: 128 channels at 32x32 (3 blocks x 2 convs).
    for _ in 0..6 {
        shapes.push(LayerShape::conv(t, 32, 128, 128, 3)); // L2-L7
    }
    // Stage 2: downsample to 16x16, 256 channels.
    shapes.push(LayerShape::conv(t, 16, 128, 256, 3)); // L8
    for _ in 0..4 {
        shapes.push(LayerShape::conv(t, 16, 256, 256, 3)); // L9-L12
    }
    // Stage 3: downsample to 8x8, 256 channels.
    shapes.push(LayerShape::conv(t, 8, 256, 256, 3)); // L13
    for _ in 0..5 {
        shapes.push(LayerShape::conv(t, 8, 256, 256, 3)); // L14-L18
    }
    // Final block: 256 -> 512 at 4x4 — the published R-L19 shape.
    shapes.push(LayerShape::conv(t, 4, 256, 512, 3)); // L19
    NetworkSpec {
        name: "ResNet19".to_owned(),
        layers: shapes
            .into_iter()
            .enumerate()
            .map(|(i, shape)| LayerSpec {
                name: format!("ResNet19-L{}", i + 1),
                shape,
                profile,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer19_is_r_l19() {
        let net = resnet19();
        assert_eq!(net.layers[18].shape, LayerShape::new(4, 16, 512, 2304));
    }

    #[test]
    fn nineteen_layers() {
        assert_eq!(resnet19().depth(), 19);
    }

    #[test]
    fn resnet_is_heaviest_network() {
        // ResNet19's lower sparsity and wide early stages make it the
        // largest workload of the three CNNs (consistent with Fig. 12/13).
        let r = resnet19().dense_ops();
        let v = super::super::vgg16().dense_ops();
        let a = super::super::alexnet().dense_ops();
        assert!(r > v && r > a, "resnet {r} vs vgg {v} vs alexnet {a}");
    }
}
