//! The evaluation networks of Table II.
//!
//! Layer geometry follows the CIFAR-10 versions of each network viewed
//! through im2col (`M` = output spatial positions, `K` = `Cin·kh·kw`,
//! `N` = `Cout`); the selected layers A-L4 / V-L8 / R-L19 match the
//! `(T, M, N, K)` tuples printed in Table II exactly. Sparsity profiles are
//! the Table II network averages (applied to every layer of a network run,
//! since the paper publishes only the averages) and the per-layer values for
//! the selected layers.

mod alexnet;
mod resnet19;
mod transformer;
mod vgg16;

pub use alexnet::alexnet;
pub use resnet19::resnet19;
pub use transformer::spike_transformer_hff;
pub use vgg16::vgg16;

use crate::error::WorkloadError;
use crate::generator::{LayerWorkload, WorkloadGenerator};
use crate::shape::LayerShape;
use crate::sparsity::SparsityProfile;

/// The number of timesteps used across all Table II workloads.
pub const DEFAULT_TIMESTEPS: usize = 4;

/// One layer of a network spec: a name, a shape, and a sparsity profile.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Display name (e.g. `"VGG16-L8"`).
    pub name: String,
    /// The `(T, M, N, K)` shape.
    pub shape: LayerShape,
    /// The sparsity statistics to realise.
    pub profile: SparsityProfile,
}

impl LayerSpec {
    /// Generates the workload for this layer.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures from the profile.
    pub fn generate(&self, generator: &WorkloadGenerator) -> Result<LayerWorkload, WorkloadError> {
        generator.generate(&self.name, self.shape, &self.profile)
    }

    /// The quick-mode (CI) variant: `M`/`N`/`K` shrunk to the workspace
    /// quick shapes. Sparsity statistics and model behaviour are
    /// scale-free, so trends hold while runtimes drop by orders of
    /// magnitude. Every quick-mode consumer (bench context, campaign CLI)
    /// shares this one definition.
    pub fn shrunk_for_quick(&self) -> LayerSpec {
        let mut shrunk = self.clone();
        shrunk.shape.m = shrunk.shape.m.clamp(1, 16);
        shrunk.shape.n = shrunk.shape.n.min(32);
        shrunk.shape.k = shrunk.shape.k.min(512);
        shrunk
    }
}

/// A whole evaluation network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Network name (Table II's `SNN` column).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Number of layers (`NL` in Table II).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Generates every layer's workload.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn generate(
        &self,
        generator: &WorkloadGenerator,
    ) -> Result<Vec<LayerWorkload>, WorkloadError> {
        self.layers.iter().map(|l| l.generate(generator)).collect()
    }

    /// Total dense operation count across layers.
    pub fn dense_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.shape.dense_ops()).sum()
    }
}

/// Table II network-average profiles.
pub mod profiles {
    use super::SparsityProfile;

    /// AlexNet: 81.2 / 71.3 (76.7) / 98.2.
    pub fn alexnet() -> SparsityProfile {
        SparsityProfile::from_percentages(81.2, 71.3, 76.7, 98.2)
            .expect("paper values are consistent")
    }

    /// VGG16: 82.3 / 74.1 (79.6) / 98.2.
    pub fn vgg16() -> SparsityProfile {
        SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2)
            .expect("paper values are consistent")
    }

    /// ResNet19: 68.6 / 59.6 (66.1) / 96.8.
    pub fn resnet19() -> SparsityProfile {
        SparsityProfile::from_percentages(68.6, 59.6, 66.1, 96.8)
            .expect("paper values are consistent")
    }

    /// AlexNet layer 4 (A-L4): 75.8 / 63.2 (69.7) / 98.9.
    pub fn a_l4() -> SparsityProfile {
        SparsityProfile::from_percentages(75.8, 63.2, 69.7, 98.9)
            .expect("paper values are consistent")
    }

    /// VGG16 layer 8 (V-L8): 88.1 / 76.5 (86.8) / 96.8.
    pub fn v_l8() -> SparsityProfile {
        SparsityProfile::from_percentages(88.1, 76.5, 86.8, 96.8)
            .expect("paper values are consistent")
    }

    /// ResNet19 layer 19 (R-L19): 57.9 / 51.4 (55.7) / 99.1.
    pub fn r_l19() -> SparsityProfile {
        SparsityProfile::from_percentages(57.9, 51.4, 55.7, 99.1)
            .expect("paper values are consistent")
    }

    /// SpikeTransformer hidden feed-forward (T-HFF). Table II publishes only
    /// the `packed+FT` (86.8%) and weight (96.8%) values; the remaining
    /// statistics are taken from the closest published layer (V-L8), as
    /// documented in DESIGN.md.
    pub fn t_hff() -> SparsityProfile {
        SparsityProfile::from_percentages(88.1, 76.5, 86.8, 96.8)
            .expect("paper values are consistent")
    }
}

/// The three selected single layers of Table II plus the transformer layer.
pub fn selected_layers() -> Vec<LayerSpec> {
    vec![
        LayerSpec {
            name: "A-L4".to_owned(),
            shape: LayerShape::new(DEFAULT_TIMESTEPS, 64, 256, 3456),
            profile: profiles::a_l4(),
        },
        LayerSpec {
            name: "V-L8".to_owned(),
            shape: LayerShape::new(DEFAULT_TIMESTEPS, 16, 512, 2304),
            profile: profiles::v_l8(),
        },
        LayerSpec {
            name: "R-L19".to_owned(),
            shape: LayerShape::new(DEFAULT_TIMESTEPS, 16, 512, 2304),
            profile: profiles::r_l19(),
        },
        spike_transformer_hff(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_table2() {
        assert_eq!(alexnet().depth(), 7);
        assert_eq!(vgg16().depth(), 14);
        assert_eq!(resnet19().depth(), 19);
    }

    #[test]
    fn selected_layer_shapes_match_table2() {
        let layers = selected_layers();
        assert_eq!(layers[0].shape, LayerShape::new(4, 64, 256, 3456));
        assert_eq!(layers[1].shape, LayerShape::new(4, 16, 512, 2304));
        assert_eq!(layers[2].shape, LayerShape::new(4, 16, 512, 2304));
        assert_eq!(layers[3].shape, LayerShape::new(4, 784, 3072, 3072));
    }

    #[test]
    fn network_embedded_selected_layers_match() {
        // A-L4 is AlexNet's 4th layer, V-L8 is VGG16's 8th.
        assert_eq!(alexnet().layers[3].shape, LayerShape::new(4, 64, 256, 3456));
        assert_eq!(vgg16().layers[7].shape, LayerShape::new(4, 16, 512, 2304));
        assert_eq!(
            resnet19().layers[18].shape,
            LayerShape::new(4, 16, 512, 2304)
        );
    }

    #[test]
    fn all_profiles_solvable() {
        for spec in [alexnet(), vgg16(), resnet19()] {
            for layer in &spec.layers {
                layer
                    .profile
                    .firing_model(layer.shape.t)
                    .unwrap_or_else(|e| panic!("{} unsolvable: {e}", layer.name));
            }
        }
        for layer in selected_layers() {
            layer.profile.firing_model(layer.shape.t).unwrap();
        }
    }

    #[test]
    fn generate_small_network_smoke() {
        // Generate only the smallest network end-to-end to keep tests fast.
        let generator = WorkloadGenerator::default();
        let spec = alexnet();
        let last = spec.layers.last().unwrap();
        let w = last.generate(&generator).unwrap();
        assert_eq!(w.shape, last.shape);
    }
}
