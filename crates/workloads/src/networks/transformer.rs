//! The SpikeTransformer hidden feed-forward layer (T-HFF) used in the
//! Fig. 17 layer-size scalability study.

use super::{profiles, LayerSpec, DEFAULT_TIMESTEPS};
use crate::shape::LayerShape;

/// T-HFF: the hidden feed-forward layer of a Spike-driven Transformer,
/// Table II's `(4, 784, 3072, 3072)` (784 = 14x14 tokens, 3072 = 4x768
/// hidden width).
pub fn spike_transformer_hff() -> LayerSpec {
    LayerSpec {
        name: "T-HFF".to_owned(),
        shape: LayerShape::new(DEFAULT_TIMESTEPS, 784, 3072, 3072),
        profile: profiles::t_hff(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table2() {
        let l = spike_transformer_hff();
        assert_eq!(l.shape, LayerShape::new(4, 784, 3072, 3072));
        assert_eq!(l.name, "T-HFF");
    }

    #[test]
    fn much_larger_than_v_l8() {
        // The Fig. 17 point: T-HFF is a far larger layer than V-L8.
        let hff = spike_transformer_hff().shape.dense_ops();
        let v_l8 = LayerShape::new(4, 16, 512, 2304).dense_ops();
        assert!(hff > 100 * v_l8);
    }
}
