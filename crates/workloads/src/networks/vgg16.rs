//! VGG16 for CIFAR-10: 14 layers (13 conv + 1 FC), Table II row 2.

use super::{profiles, LayerSpec, NetworkSpec, DEFAULT_TIMESTEPS};
use crate::shape::LayerShape;

/// The 14-layer CIFAR-10 VGG16 (13 conv + classifier), the common SNN
/// variant. Layer 8 matches Table II's V-L8 tuple `(4, 16, 512, 2304)`.
pub fn vgg16() -> NetworkSpec {
    let t = DEFAULT_TIMESTEPS;
    let profile = profiles::vgg16();
    let shapes = [
        LayerShape::conv(t, 32, 3, 64, 3),    // L1
        LayerShape::conv(t, 32, 64, 64, 3),   // L2, pool -> 16
        LayerShape::conv(t, 16, 64, 128, 3),  // L3
        LayerShape::conv(t, 16, 128, 128, 3), // L4, pool -> 8
        LayerShape::conv(t, 8, 128, 256, 3),  // L5
        LayerShape::conv(t, 8, 256, 256, 3),  // L6
        LayerShape::conv(t, 8, 256, 256, 3),  // L7, pool -> 4
        LayerShape::conv(t, 4, 256, 512, 3),  // L8: V-L8 = (4, 16, 512, 2304)
        LayerShape::conv(t, 4, 512, 512, 3),  // L9
        LayerShape::conv(t, 4, 512, 512, 3),  // L10, pool -> 2
        LayerShape::conv(t, 2, 512, 512, 3),  // L11
        LayerShape::conv(t, 2, 512, 512, 3),  // L12
        LayerShape::conv(t, 2, 512, 512, 3),  // L13, pool -> 1
        LayerShape::linear(t, 512, 10),       // L14: classifier
    ];
    NetworkSpec {
        name: "VGG16".to_owned(),
        layers: shapes
            .into_iter()
            .enumerate()
            .map(|(i, shape)| LayerSpec {
                name: format!("VGG16-L{}", i + 1),
                shape,
                profile,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer8_is_v_l8() {
        let net = vgg16();
        assert_eq!(net.layers[7].shape, LayerShape::new(4, 16, 512, 2304));
    }

    #[test]
    fn fourteen_layers() {
        assert_eq!(vgg16().depth(), 14);
    }

    #[test]
    fn channel_progression_chains() {
        // Conv channel outputs feed the next layer's Cin (kernel 3x3).
        let net = vgg16();
        for pair in net.layers.windows(2) {
            let n_prev = pair[0].shape.n;
            let k_next = pair[1].shape.k;
            // Either a conv following a conv (k = 9 * n_prev) or the final FC.
            assert!(
                k_next == 9 * n_prev || k_next == n_prev,
                "layers {} -> {} do not chain",
                pair[0].name,
                pair[1].name
            );
        }
    }
}
