//! Compressed fibers: bitmask + pointer + non-zero payload.
//!
//! A *fiber* (terminology from Gamma/Sparseloop, adopted by the paper) is one
//! compressed row or column of a sparse matrix. LoAS stores a fiber as a
//! bitmask marking non-zero coordinates, a pointer to the payload, and the
//! densely packed non-zero values (Fig. 8, step 3). Rows of the spike matrix
//! `A` carry [`PackedSpikes`] payloads; columns of the weight matrix `B`
//! carry `i8` payloads.

use crate::bitmask::Bitmask;
use crate::error::SparseError;
use crate::packed::PackedSpikes;

/// Bits used for the pointer field stored after each bitmask in the global
/// cache line layout (Section IV-D).
pub const POINTER_BITS: usize = 32;

/// A compressed fiber with coordinates in a [`Bitmask`] and payload values
/// stored densely in coordinate order.
///
/// # Examples
///
/// ```
/// use loas_sparse::Fiber;
///
/// let dense = [0i8, 3, 0, -2];
/// let fiber = Fiber::from_dense(&dense, |w| *w == 0);
/// assert_eq!(fiber.nnz(), 2);
/// assert_eq!(fiber.value_at(1), Some(&3));
/// assert_eq!(fiber.value_at(0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fiber<V> {
    bitmask: Bitmask,
    values: Vec<V>,
}

impl<V> Fiber<V> {
    /// Builds a fiber from a dense slice, dropping elements for which
    /// `is_zero` returns true.
    pub fn from_dense(dense: &[V], is_zero: impl Fn(&V) -> bool) -> Self
    where
        V: Clone,
    {
        let mut bitmask = Bitmask::zeros(dense.len());
        let mut values = Vec::new();
        for (i, v) in dense.iter().enumerate() {
            if !is_zero(v) {
                bitmask.set(i, true);
                values.push(v.clone());
            }
        }
        Fiber { bitmask, values }
    }

    /// Builds a fiber from parts.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ValueCountMismatch`] when the number of values
    /// differs from the bitmask popcount.
    pub fn from_parts(bitmask: Bitmask, values: Vec<V>) -> Result<Self, SparseError> {
        if bitmask.popcount() != values.len() {
            return Err(SparseError::ValueCountMismatch {
                expected: bitmask.popcount(),
                actual: values.len(),
            });
        }
        Ok(Fiber { bitmask, values })
    }

    /// The coordinate bitmask.
    pub fn bitmask(&self) -> &Bitmask {
        &self.bitmask
    }

    /// The densely packed non-zero values, in coordinate order.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Uncompressed length of the fiber (number of coordinates).
    pub fn len(&self) -> usize {
        self.bitmask.len()
    }

    /// Whether the fiber covers zero coordinates.
    pub fn is_empty(&self) -> bool {
        self.bitmask.is_empty()
    }

    /// Number of stored non-zero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The value at dense coordinate `k`, or `None` when that coordinate is
    /// zero. Lookup uses the bitmask `rank` — exactly the prefix-sum offset
    /// computation done in hardware.
    pub fn value_at(&self, k: usize) -> Option<&V> {
        if k < self.len() && self.bitmask.get(k) {
            Some(&self.values[self.bitmask.rank(k)])
        } else {
            None
        }
    }

    /// Iterator over `(coordinate, value)` pairs in ascending coordinate
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> + '_ {
        self.bitmask.iter_ones().zip(self.values.iter())
    }

    /// Reconstructs the dense row, filling zeros with `zero`.
    pub fn to_dense(&self, zero: V) -> Vec<V>
    where
        V: Clone,
    {
        let mut out = vec![zero; self.len()];
        for (k, v) in self.iter() {
            out[k] = v.clone();
        }
        out
    }

    /// Storage footprint in bits: bitmask + pointer + payload
    /// (`bits_per_value` bits per non-zero). This is the quantity the
    /// traffic model charges when a fiber crosses a memory boundary.
    pub fn storage_bits(&self, bits_per_value: usize) -> usize {
        self.bitmask.storage_bits() + POINTER_BITS + self.nnz() * bits_per_value
    }
}

/// A compressed row of the spike matrix `A`: payload entries are the packed
/// `T`-bit spike words of the non-silent neurons (Fig. 8).
pub type SpikeFiber = Fiber<PackedSpikes>;

/// A compressed column of the weight matrix `B`: payload entries are signed
/// 8-bit weights (Table III).
pub type WeightFiber = Fiber<i8>;

impl SpikeFiber {
    /// Compresses one row of packed spike words, dropping silent neurons.
    pub fn from_packed_row(row: &[PackedSpikes]) -> Self {
        Fiber::from_dense(row, |w| w.is_silent())
    }

    /// Compression efficiency as defined in Section IV-A: raw spike bits
    /// that needed storing (`T` per *non-silent* neuron... the paper counts
    /// the true spikes recorded) divided by the bits spent on payload. The
    /// paper's example compresses 5 raw spike bits into 4 payload bits for an
    /// efficiency of 125%.
    pub fn compression_efficiency(&self) -> f64 {
        let payload_bits: usize = self.values().iter().map(|w| w.storage_bits()).sum();
        if payload_bits == 0 {
            return 0.0;
        }
        let raw_spikes: usize = self.values().iter().map(|w| w.fire_count()).sum();
        // The paper's Fig. 8 example: a_{0,0}=1010 and a_{0,3}=0111 hold
        // 2 + 3 = 5 spikes stored in one 4-bit word each... it reports
        // "4 bits to compress 5 bits": payload bits of one word vs the raw
        // spike count. We generalise: raw spike bits / payload bits.
        raw_spikes as f64 / payload_bits as f64
    }
}

impl WeightFiber {
    /// Compresses one dense weight column/row, dropping zeros.
    pub fn from_weights(dense: &[i8]) -> Self {
        Fiber::from_dense(dense, |w| *w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_and_value_at() {
        let fiber = WeightFiber::from_weights(&[0, 7, 0, 0, -1, 2]);
        assert_eq!(fiber.nnz(), 3);
        assert_eq!(fiber.value_at(1), Some(&7));
        assert_eq!(fiber.value_at(4), Some(&-1));
        assert_eq!(fiber.value_at(5), Some(&2));
        assert_eq!(fiber.value_at(0), None);
        assert_eq!(fiber.value_at(99), None);
    }

    #[test]
    fn to_dense_roundtrip() {
        let dense = vec![0i8, 3, 0, -2, 0];
        let fiber = WeightFiber::from_weights(&dense);
        assert_eq!(fiber.to_dense(0), dense);
    }

    #[test]
    fn from_parts_validates_count() {
        let bm = Bitmask::from_indices(4, &[0, 2]).unwrap();
        assert!(Fiber::from_parts(bm.clone(), vec![1i8]).is_err());
        let fiber = Fiber::from_parts(bm, vec![1i8, 2]).unwrap();
        assert_eq!(fiber.value_at(2), Some(&2));
    }

    #[test]
    fn spike_fiber_drops_silent_neurons() {
        // Fig. 8: row 0 of A = [1010, 0000, 0000, 0111] -> bitmask 1001
        // (positions 0 and 3 set), 2 payload words.
        let row = vec![
            PackedSpikes::from_bits(0b0101, 4).unwrap(), // fires t0,t2 (displayed 1010 in paper order)
            PackedSpikes::silent(4).unwrap(),
            PackedSpikes::silent(4).unwrap(),
            PackedSpikes::from_bits(0b1110, 4).unwrap(), // fires t1,t2,t3 (displayed 0111)
        ];
        let fiber = SpikeFiber::from_packed_row(&row);
        assert_eq!(fiber.nnz(), 2);
        assert_eq!(fiber.bitmask().iter_ones().collect::<Vec<_>>(), vec![0, 3]);
        // 5 raw spikes stored in 8 payload bits... the paper's 125% counts a
        // single word: check per-fiber metric is (2+3)/(4+4) = 0.625 here and
        // that the per-word example below reproduces 125%.
        assert!((fiber.compression_efficiency() - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn paper_compression_efficiency_single_word() {
        // One non-silent neuron with 5 spikes at T=5... the exact paper
        // statement: "we end up using 4 bits to compress 5 bits" refers to
        // 5 raw spike bits across the two stored words (2 spikes in a0,0 and
        // 3 in a0,3) against the 4-bit word for a0,0; with one stored word of
        // 4 bits holding 5 raw spikes the efficiency exceeds 1.
        let row = vec![PackedSpikes::from_bits(0b11111, 5).unwrap()];
        let fiber = SpikeFiber::from_packed_row(&row);
        assert!((fiber.compression_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn storage_bits_accounting() {
        let fiber = WeightFiber::from_weights(&[0, 1, 2, 0]);
        // 4-bit mask + 32-bit pointer + 2 * 8-bit weights
        assert_eq!(fiber.storage_bits(8), 4 + POINTER_BITS + 16);
    }

    #[test]
    fn iter_yields_coordinate_order() {
        let fiber = WeightFiber::from_weights(&[0, 5, 0, 6]);
        let pairs: Vec<(usize, i8)> = fiber.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(pairs, vec![(1, 5), (3, 6)]);
    }
}
