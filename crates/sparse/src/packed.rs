//! Packed spike words: the FTP-friendly compression unit of LoAS.
//!
//! LoAS packs the `T` single-bit spikes of one pre-synaptic neuron (one
//! `(m, k)` coordinate of the spike tensor, across all timesteps) into a
//! single `T`-bit word (Fig. 8 of the paper). A neuron whose packed word is
//! all zeros never fires in the inference window and is called a *silent
//! neuron*; silent neurons are dropped entirely from memory, which is where
//! the compression ratio of the scheme comes from.

use crate::error::SparseError;

/// Maximum number of timesteps a [`PackedSpikes`] word can hold.
pub const MAX_TIMESTEPS: usize = 16;

/// The spikes of one pre-synaptic neuron across all `T` timesteps, packed
/// into one word. Bit `t` is the spike at timestep `t`.
///
/// # Examples
///
/// ```
/// use loas_sparse::PackedSpikes;
///
/// // Fires at timesteps 0 and 2 out of T=4 (the `1010` example of Fig. 8,
/// // reading bit 0 as t0).
/// let word = PackedSpikes::from_bits(0b0101, 4).unwrap();
/// assert!(word.fires_at(0));
/// assert!(!word.fires_at(1));
/// assert_eq!(word.fire_count(), 2);
/// assert!(!word.is_silent());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct PackedSpikes {
    bits: u16,
    timesteps: u8,
}

impl PackedSpikes {
    /// Creates a silent word for `timesteps` timesteps.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::TimestepOverflow`] when `timesteps` exceeds
    /// [`MAX_TIMESTEPS`].
    pub fn silent(timesteps: usize) -> Result<Self, SparseError> {
        Self::from_bits(0, timesteps)
    }

    /// Creates a word from raw bits; bits at positions `>= timesteps` must be
    /// zero (they are masked off).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::TimestepOverflow`] when `timesteps` exceeds
    /// [`MAX_TIMESTEPS`].
    pub fn from_bits(bits: u16, timesteps: usize) -> Result<Self, SparseError> {
        if timesteps > MAX_TIMESTEPS {
            return Err(SparseError::TimestepOverflow {
                timesteps,
                max: MAX_TIMESTEPS,
            });
        }
        let mask = if timesteps == MAX_TIMESTEPS {
            u16::MAX
        } else {
            (1u16 << timesteps) - 1
        };
        Ok(PackedSpikes {
            bits: bits & mask,
            timesteps: timesteps as u8,
        })
    }

    /// Packs a slice of per-timestep spikes (index = timestep).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::TimestepOverflow`] when the slice is longer
    /// than [`MAX_TIMESTEPS`].
    pub fn from_slice(spikes: &[bool]) -> Result<Self, SparseError> {
        let mut bits: u16 = 0;
        if spikes.len() > MAX_TIMESTEPS {
            return Err(SparseError::TimestepOverflow {
                timesteps: spikes.len(),
                max: MAX_TIMESTEPS,
            });
        }
        for (t, &s) in spikes.iter().enumerate() {
            if s {
                bits |= 1 << t;
            }
        }
        Self::from_bits(bits, spikes.len())
    }

    /// A word that fires at every timestep — what the pseudo-accumulator of
    /// the FTP-friendly inner-join optimistically presumes.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::TimestepOverflow`] when `timesteps` exceeds
    /// [`MAX_TIMESTEPS`].
    pub fn all_ones(timesteps: usize) -> Result<Self, SparseError> {
        if timesteps > MAX_TIMESTEPS {
            return Err(SparseError::TimestepOverflow {
                timesteps,
                max: MAX_TIMESTEPS,
            });
        }
        let bits = if timesteps == MAX_TIMESTEPS {
            u16::MAX
        } else {
            (1u16 << timesteps) - 1
        };
        Self::from_bits(bits, timesteps)
    }

    /// Raw packed bits (bit `t` = spike at timestep `t`).
    pub fn bits(&self) -> u16 {
        self.bits
    }

    /// Number of timesteps this word covers.
    pub fn timesteps(&self) -> usize {
        self.timesteps as usize
    }

    /// Whether the neuron fires at timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= timesteps`.
    pub fn fires_at(&self, t: usize) -> bool {
        assert!(
            t < self.timesteps as usize,
            "timestep {t} out of range {}",
            self.timesteps
        );
        (self.bits >> t) & 1 == 1
    }

    /// Sets the spike at timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= timesteps`.
    pub fn set(&mut self, t: usize, fires: bool) {
        assert!(
            t < self.timesteps as usize,
            "timestep {t} out of range {}",
            self.timesteps
        );
        if fires {
            self.bits |= 1 << t;
        } else {
            self.bits &= !(1 << t);
        }
    }

    /// Total number of spikes across the window.
    pub fn fire_count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the neuron never fires (a *silent neuron*, Fig. 8).
    pub fn is_silent(&self) -> bool {
        self.bits == 0
    }

    /// Whether the neuron fires at every timestep — the case in which the
    /// FTP-friendly inner-join's optimistic accumulation needs no correction.
    pub fn is_all_ones(&self) -> bool {
        self.fire_count() == self.timesteps as usize && self.timesteps > 0
    }

    /// Whether the word would be removed by the paper's fine-tuned
    /// preprocessing, which masks neurons firing at most once.
    pub fn fires_at_most_once(&self) -> bool {
        self.fire_count() <= 1
    }

    /// Unpacks into a per-timestep boolean vector.
    pub fn to_vec(self) -> Vec<bool> {
        (0..self.timesteps as usize)
            .map(|t| self.fires_at(t))
            .collect()
    }

    /// Storage footprint of the packed word in bits (`T` bits; 4 bits for
    /// the paper's default `T = 4`).
    pub fn storage_bits(&self) -> usize {
        self.timesteps as usize
    }

    /// The timesteps at which the neuron fires, ascending.
    pub fn firing_timesteps(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.timesteps as usize).filter(move |&t| self.fires_at(t))
    }
}

impl std::fmt::Display for PackedSpikes {
    /// Formats the word as the paper does: most-significant timestep first
    /// (e.g. `1010` for a neuron firing at t0 and t2 with T=4 read as
    /// `t3 t2 t1 t0`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for t in (0..self.timesteps as usize).rev() {
            write!(f, "{}", if self.fires_at(t) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let spikes = [true, false, true, false];
        let word = PackedSpikes::from_slice(&spikes).unwrap();
        assert_eq!(word.to_vec(), spikes);
        assert_eq!(word.fire_count(), 2);
    }

    #[test]
    fn paper_example_a00() {
        // Fig. 8: a_{0,0} fires at t0 and t2 -> displayed as 0101 read
        // t3..t0, i.e. bits 0b0101.
        let word = PackedSpikes::from_bits(0b0101, 4).unwrap();
        assert!(word.fires_at(0));
        assert!(word.fires_at(2));
        assert!(!word.fires_at(1));
        assert_eq!(word.to_string(), "0101");
    }

    #[test]
    fn silent_detection() {
        let word = PackedSpikes::silent(4).unwrap();
        assert!(word.is_silent());
        assert!(word.fires_at_most_once());
        assert_eq!(word.fire_count(), 0);
    }

    #[test]
    fn all_ones_detection() {
        let word = PackedSpikes::all_ones(4).unwrap();
        assert!(word.is_all_ones());
        assert_eq!(word.bits(), 0b1111);
        let partial = PackedSpikes::from_bits(0b0111, 4).unwrap();
        assert!(!partial.is_all_ones());
    }

    #[test]
    fn timestep_overflow_rejected() {
        assert!(matches!(
            PackedSpikes::from_bits(0, 17),
            Err(SparseError::TimestepOverflow { .. })
        ));
        assert!(PackedSpikes::all_ones(16).unwrap().is_all_ones());
    }

    #[test]
    fn set_and_firing_timesteps() {
        let mut word = PackedSpikes::silent(8).unwrap();
        word.set(3, true);
        word.set(7, true);
        assert_eq!(word.firing_timesteps().collect::<Vec<_>>(), vec![3, 7]);
        word.set(3, false);
        assert_eq!(word.fire_count(), 1);
        assert!(word.fires_at_most_once());
    }

    #[test]
    fn extra_bits_are_masked() {
        let word = PackedSpikes::from_bits(0xFFFF, 4).unwrap();
        assert_eq!(word.bits(), 0b1111);
        assert_eq!(word.timesteps(), 4);
    }

    #[test]
    fn storage_bits_equals_t() {
        assert_eq!(PackedSpikes::silent(4).unwrap().storage_bits(), 4);
        assert_eq!(PackedSpikes::silent(8).unwrap().storage_bits(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fires_at_out_of_range_panics() {
        PackedSpikes::silent(4).unwrap().fires_at(4);
    }
}
