//! Golden (functional) spMspM references in all three canonical loop orders.
//!
//! Every accelerator model in this repository is validated against these
//! references: whatever the dataflow, the numerical result of
//! `O[m,n,t] = Σ_k A[m,k,t] · B[k,n]` (Eq. 1) must be identical. The three
//! loop orders mirror Fig. 3 of the paper: inner-product (IP),
//! outer-product (OP), and Gustavson's (Gust); each places the timestep loop
//! innermost as the paper's Section III analysis prescribes.

use crate::error::SparseError;
use crate::matrix::{BitMatrix, DenseMatrix};

/// The spMspM result: one `M x N` accumulation plane per timestep.
pub type PsumPlanes = Vec<DenseMatrix<i32>>;

fn check_shapes(
    spikes: &[BitMatrix],
    weights: &DenseMatrix<i8>,
) -> Result<(usize, usize, usize), SparseError> {
    let t = spikes.len();
    if t == 0 {
        return Ok((0, 0, weights.cols()));
    }
    let m = spikes[0].rows();
    let k = spikes[0].cols();
    for plane in spikes {
        if plane.rows() != m || plane.cols() != k {
            return Err(SparseError::DimensionMismatch {
                dimension: "spike plane",
                left: m * k,
                right: plane.rows() * plane.cols(),
            });
        }
    }
    if weights.rows() != k {
        return Err(SparseError::DimensionMismatch {
            dimension: "K",
            left: k,
            right: weights.rows(),
        });
    }
    Ok((m, k, weights.cols()))
}

/// Dense reference: straightforward triple loop with `t` innermost.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when plane shapes disagree or
/// `K` differs between spikes and weights.
///
/// # Examples
///
/// ```
/// use loas_sparse::{BitMatrix, DenseMatrix, spmspm};
///
/// let mut a = BitMatrix::zeros(1, 2);
/// a.set(0, 0, true);
/// let b = DenseMatrix::from_vec(2, 1, vec![3i8, 5]).unwrap();
/// let o = spmspm::dense_reference(&[a], &b).unwrap();
/// assert_eq!(*o[0].get(0, 0), 3);
/// ```
pub fn dense_reference(
    spikes: &[BitMatrix],
    weights: &DenseMatrix<i8>,
) -> Result<PsumPlanes, SparseError> {
    let (m, k, n) = check_shapes(spikes, weights)?;
    let t = spikes.len();
    let mut out: PsumPlanes = (0..t).map(|_| DenseMatrix::zeros(m, n)).collect();
    for mi in 0..m {
        for ni in 0..n {
            for ki in 0..k {
                let w = *weights.get(ki, ni) as i32;
                if w == 0 {
                    continue;
                }
                for (ti, plane) in spikes.iter().enumerate() {
                    if plane.get(mi, ki) {
                        let cur = *out[ti].get(mi, ni);
                        out[ti].set(mi, ni, cur + w);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Inner-product order (`m -> n -> k -> t`), the order FTP builds on
/// (Algorithm 1). Skips zero weights and silent spike positions the way an
/// inner-join does.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
pub fn inner_product(
    spikes: &[BitMatrix],
    weights: &DenseMatrix<i8>,
) -> Result<PsumPlanes, SparseError> {
    let (m, k, n) = check_shapes(spikes, weights)?;
    let t = spikes.len();
    let mut out: PsumPlanes = (0..t).map(|_| DenseMatrix::zeros(m, n)).collect();
    for mi in 0..m {
        for ni in 0..n {
            let mut acc = vec![0i32; t];
            for ki in 0..k {
                let w = *weights.get(ki, ni) as i32;
                if w == 0 {
                    continue;
                }
                // parallel-for t (Algorithm 1, line 4): spatially unrolled.
                for (ti, plane) in spikes.iter().enumerate() {
                    if plane.get(mi, ki) {
                        acc[ti] += w;
                    }
                }
            }
            for ti in 0..t {
                out[ti].set(mi, ni, acc[ti]);
            }
        }
    }
    Ok(out)
}

/// Outer-product order (`k -> m -> n -> t`): every non-zero of `A`'s column
/// `k` meets every non-zero of `B`'s row `k`, producing rank-1 partial-sum
/// updates (the GoSPA-style dataflow).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
pub fn outer_product(
    spikes: &[BitMatrix],
    weights: &DenseMatrix<i8>,
) -> Result<PsumPlanes, SparseError> {
    let (m, k, n) = check_shapes(spikes, weights)?;
    let t = spikes.len();
    let mut out: PsumPlanes = (0..t).map(|_| DenseMatrix::zeros(m, n)).collect();
    for ki in 0..k {
        for mi in 0..m {
            // A column entry (mi, ki) across timesteps.
            for ni in 0..n {
                let w = *weights.get(ki, ni) as i32;
                if w == 0 {
                    continue;
                }
                for (ti, plane) in spikes.iter().enumerate() {
                    if plane.get(mi, ki) {
                        let cur = *out[ti].get(mi, ni);
                        out[ti].set(mi, ni, cur + w);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Gustavson's order (`m -> k -> n -> t`): for each row of `A`, scale the
/// matching rows of `B` and merge into the output row (the Gamma-style
/// dataflow).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
pub fn gustavson(
    spikes: &[BitMatrix],
    weights: &DenseMatrix<i8>,
) -> Result<PsumPlanes, SparseError> {
    let (m, k, n) = check_shapes(spikes, weights)?;
    let t = spikes.len();
    let mut out: PsumPlanes = (0..t).map(|_| DenseMatrix::zeros(m, n)).collect();
    for mi in 0..m {
        for ki in 0..k {
            for ni in 0..n {
                let w = *weights.get(ki, ni) as i32;
                if w == 0 {
                    continue;
                }
                for (ti, plane) in spikes.iter().enumerate() {
                    if plane.get(mi, ki) {
                        let cur = *out[ti].get(mi, ni);
                        out[ti].set(mi, ni, cur + w);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// ANN GEMM reference for the Fig. 18 comparison: `O = A · B` with 8-bit
/// unsigned activations and 8-bit signed weights.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `A.cols != B.rows`.
pub fn ann_matmul(
    activations: &DenseMatrix<u8>,
    weights: &DenseMatrix<i8>,
) -> Result<DenseMatrix<i32>, SparseError> {
    if activations.cols() != weights.rows() {
        return Err(SparseError::DimensionMismatch {
            dimension: "K",
            left: activations.cols(),
            right: weights.rows(),
        });
    }
    let (m, k, n) = (activations.rows(), activations.cols(), weights.cols());
    let mut out = DenseMatrix::zeros(m, n);
    for mi in 0..m {
        for ki in 0..k {
            let a = *activations.get(mi, ki) as i32;
            if a == 0 {
                continue;
            }
            for ni in 0..n {
                let w = *weights.get(ki, ni) as i32;
                if w != 0 {
                    let cur = *out.get(mi, ni);
                    out.set(mi, ni, cur + a * w);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<BitMatrix>, DenseMatrix<i8>) {
        // T=2, M=2, K=3, N=2
        let mut a0 = BitMatrix::zeros(2, 3);
        a0.set(0, 0, true);
        a0.set(0, 2, true);
        a0.set(1, 1, true);
        let mut a1 = BitMatrix::zeros(2, 3);
        a1.set(0, 1, true);
        a1.set(1, 0, true);
        a1.set(1, 2, true);
        let b = DenseMatrix::from_vec(3, 2, vec![2i8, 0, -3, 4, 0, 5]).unwrap();
        (vec![a0, a1], b)
    }

    #[test]
    fn all_orders_agree() {
        let (spikes, weights) = sample();
        let dense = dense_reference(&spikes, &weights).unwrap();
        assert_eq!(inner_product(&spikes, &weights).unwrap(), dense);
        assert_eq!(outer_product(&spikes, &weights).unwrap(), dense);
        assert_eq!(gustavson(&spikes, &weights).unwrap(), dense);
    }

    #[test]
    fn hand_computed_values() {
        let (spikes, weights) = sample();
        let o = dense_reference(&spikes, &weights).unwrap();
        // t0, m0: k0 + k2 active -> B[0,:] + B[2,:] = [2+0, 0+5]
        assert_eq!(*o[0].get(0, 0), 2);
        assert_eq!(*o[0].get(0, 1), 5);
        // t0, m1: k1 active -> [-3, 4]
        assert_eq!(*o[0].get(1, 0), -3);
        assert_eq!(*o[0].get(1, 1), 4);
        // t1, m1: k0 + k2 -> [2, 5]
        assert_eq!(*o[1].get(1, 0), 2);
        assert_eq!(*o[1].get(1, 1), 5);
    }

    #[test]
    fn shape_mismatch_detected() {
        let (mut spikes, weights) = sample();
        spikes[1] = BitMatrix::zeros(2, 4);
        assert!(dense_reference(&spikes, &weights).is_err());
        let spikes = vec![BitMatrix::zeros(2, 5)];
        assert!(inner_product(&spikes, &weights).is_err());
    }

    #[test]
    fn empty_timesteps_ok() {
        let weights = DenseMatrix::from_vec(3, 2, vec![0i8; 6]).unwrap();
        let o = dense_reference(&[], &weights).unwrap();
        assert!(o.is_empty());
    }

    #[test]
    fn ann_matmul_reference() {
        let a = DenseMatrix::from_vec(2, 2, vec![1u8, 0, 2, 3]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![1i8, -1, 4, 0]).unwrap();
        let o = ann_matmul(&a, &b).unwrap();
        assert_eq!(*o.get(0, 0), 1);
        assert_eq!(*o.get(0, 1), -1);
        assert_eq!(*o.get(1, 0), 2 + 12);
        assert_eq!(*o.get(1, 1), -2);
        assert!(ann_matmul(&a, &DenseMatrix::<i8>::zeros(3, 2)).is_err());
    }
}
