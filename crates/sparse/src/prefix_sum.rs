//! Functional and timing models of the prefix-sum circuits used by
//! inner-join units.
//!
//! SparTen-style inner-joins need prefix sums ("rank" over a bitmask) to
//! translate matched bit positions into payload memory offsets. The paper
//! distinguishes:
//!
//! * the **fast prefix-sum circuit** — a tree structure with `O(log n)`
//!   depth that produces all offsets in a single clock cycle, at high area
//!   and power cost (>45% of a SparTen PE);
//! * the **laggy prefix-sum circuit** (the paper's proposal) — a group of
//!   `adders` sequential adders that sweep the bitmask and produce all
//!   offsets after `len / adders` cycles, at roughly an eighth of the area.
//!
//! Both compute the same function; only latency/cost differ. The functional
//! results here are shared by all accelerator models and checked against
//! [`Bitmask::rank`].

use crate::bitmask::Bitmask;

/// Exclusive prefix sum over the bits of a mask: `out[i]` = number of set
/// bits strictly before position `i`. `out` has `len + 1` entries; the last
/// is the total popcount.
///
/// # Examples
///
/// ```
/// use loas_sparse::{Bitmask, prefix_sum::exclusive_prefix_sum};
///
/// let bm = Bitmask::from_indices(4, &[0, 2]).unwrap();
/// assert_eq!(exclusive_prefix_sum(&bm), vec![0, 1, 1, 2, 2]);
/// ```
pub fn exclusive_prefix_sum(mask: &Bitmask) -> Vec<u32> {
    let mut out = Vec::with_capacity(mask.len() + 1);
    let mut acc = 0u32;
    out.push(0);
    for i in 0..mask.len() {
        if mask.get(i) {
            acc += 1;
        }
        out.push(acc);
    }
    out
}

/// Timing/energy-relevant parameters of a prefix-sum circuit instance.
pub trait PrefixSumCircuit {
    /// Cycles from presenting a `width`-bit mask to all offsets being ready.
    fn latency_cycles(&self) -> u64;

    /// Datapath width in bits (the size of the bitmask buffer it scans).
    fn width(&self) -> usize;

    /// Computes the offset (exclusive rank) for every position of `mask`.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() > self.width()`.
    fn offsets(&self, mask: &Bitmask) -> Vec<u32> {
        assert!(
            mask.len() <= self.width(),
            "mask of {} bits exceeds circuit width {}",
            mask.len(),
            self.width()
        );
        exclusive_prefix_sum(mask)
    }
}

/// The fast, single-cycle tree prefix-sum circuit (as assumed for SparTen in
/// the paper's footnote 7: `O(log n)` tree running in one clock cycle, `n =
/// 128`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastPrefixSum {
    width: usize,
}

impl FastPrefixSum {
    /// Creates a fast prefix-sum circuit over `width`-bit masks.
    pub fn new(width: usize) -> Self {
        FastPrefixSum { width }
    }

    /// Number of adder nodes in the Brent-Kung style tree, used by the area
    /// model: roughly `2n - log2(n) - 2`.
    pub fn adder_count(&self) -> usize {
        let n = self.width.max(2);
        let log = usize::BITS as usize - 1 - n.leading_zeros() as usize;
        2 * n - log - 2
    }
}

impl PrefixSumCircuit for FastPrefixSum {
    fn latency_cycles(&self) -> u64 {
        1
    }

    fn width(&self) -> usize {
        self.width
    }
}

/// The laggy prefix-sum circuit (Fig. 9, left): `adders` parallel sequential
/// adders sweep the mask, producing all offsets after `width / adders`
/// cycles. The default LoAS configuration uses 16 adders over 128-bit masks
/// (8 cycles, Table III discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaggyPrefixSum {
    width: usize,
    adders: usize,
}

impl LaggyPrefixSum {
    /// Creates a laggy prefix-sum circuit with `adders` adders over
    /// `width`-bit masks.
    ///
    /// # Panics
    ///
    /// Panics when `adders == 0`.
    pub fn new(width: usize, adders: usize) -> Self {
        assert!(adders > 0, "laggy prefix-sum needs at least one adder");
        LaggyPrefixSum { width, adders }
    }

    /// Number of adders in the group.
    pub fn adder_count(&self) -> usize {
        self.adders
    }
}

impl PrefixSumCircuit for LaggyPrefixSum {
    /// `len(bm) / #adders` cycles, per Section IV-C.
    fn latency_cycles(&self) -> u64 {
        self.width.div_ceil(self.adders) as u64
    }

    fn width(&self) -> usize {
        self.width
    }
}

/// The *inverted* prefix-sum used by the output compressor (Section IV-D):
/// given a dense vector of output spikes, it produces the compacted write
/// positions for the non-silent entries. LoAS uses a laggy implementation
/// because compression is off the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvertedPrefixSum {
    inner: LaggyPrefixSum,
}

impl InvertedPrefixSum {
    /// Creates an inverted (compression-direction) laggy prefix-sum circuit.
    pub fn new(width: usize, adders: usize) -> Self {
        InvertedPrefixSum {
            inner: LaggyPrefixSum::new(width, adders),
        }
    }

    /// For each set bit of `keep`, the index in the compacted output where
    /// its payload is written.
    pub fn compact_positions(&self, keep: &Bitmask) -> Vec<(usize, usize)> {
        keep.iter_ones()
            .enumerate()
            .map(|(dst, src)| (src, dst))
            .collect()
    }

    /// Cycles to compress one `width`-bit output group.
    pub fn latency_cycles(&self) -> u64 {
        self.inner.latency_cycles()
    }

    /// Datapath width in bits.
    pub fn width(&self) -> usize {
        self.inner.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_prefix_sum_matches_rank() {
        let bm = Bitmask::from_indices(130, &[0, 5, 64, 127, 129]).unwrap();
        let ps = exclusive_prefix_sum(&bm);
        for i in 0..=bm.len() {
            assert_eq!(ps[i] as usize, bm.rank(i), "at {i}");
        }
    }

    #[test]
    fn fast_is_single_cycle() {
        let fast = FastPrefixSum::new(128);
        assert_eq!(fast.latency_cycles(), 1);
        assert_eq!(fast.width(), 128);
        assert!(fast.adder_count() > 128, "tree has ~2n adders");
    }

    #[test]
    fn laggy_matches_paper_configuration() {
        // Table III discussion: 16 adders, 128-bit buffer -> 8 cycles.
        let laggy = LaggyPrefixSum::new(128, 16);
        assert_eq!(laggy.latency_cycles(), 8);
        assert_eq!(laggy.adder_count(), 16);
    }

    #[test]
    fn laggy_rounds_up() {
        assert_eq!(LaggyPrefixSum::new(100, 16).latency_cycles(), 7);
        assert_eq!(LaggyPrefixSum::new(1, 16).latency_cycles(), 1);
    }

    #[test]
    fn circuits_compute_identical_offsets() {
        let bm = Bitmask::from_indices(128, &[2, 3, 70, 100]).unwrap();
        let fast = FastPrefixSum::new(128);
        let laggy = LaggyPrefixSum::new(128, 16);
        assert_eq!(fast.offsets(&bm), laggy.offsets(&bm));
    }

    #[test]
    #[should_panic(expected = "exceeds circuit width")]
    fn oversized_mask_panics() {
        FastPrefixSum::new(64).offsets(&Bitmask::zeros(65));
    }

    #[test]
    fn inverted_compacts_in_order() {
        let keep = Bitmask::from_indices(8, &[1, 4, 7]).unwrap();
        let inv = InvertedPrefixSum::new(8, 4);
        assert_eq!(inv.compact_positions(&keep), vec![(1, 0), (4, 1), (7, 2)]);
        assert_eq!(inv.latency_cycles(), 2);
    }
}
