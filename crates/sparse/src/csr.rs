//! Coordinate-list compressed formats (CSR/CSC) with explicit coordinate
//! bit-widths.
//!
//! GoSPA-style accelerators compress each timestep's spike plane with CSR,
//! spending `ceil(log2(cols))` bits per non-zero coordinate. The paper's
//! Section IV-A example shows why this is wasteful for unary spikes: two
//! 4-bit coordinates to record two 1-bit spikes is a 25% compression
//! efficiency. These types exist so the baseline traffic models charge the
//! same format overhead the paper charges.

use crate::bitmask::Bitmask;
use crate::error::SparseError;
use crate::matrix::{BitMatrix, DenseMatrix};

/// Number of bits needed to address `positions` coordinates (at least 1).
pub fn coordinate_bits(positions: usize) -> usize {
    if positions <= 1 {
        1
    } else {
        (usize::BITS - (positions - 1).leading_zeros()) as usize
    }
}

/// A compressed-sparse-row matrix with payload type `V`.
///
/// For unary spike planes use `CsrMatrix<()>`: the payload is empty and only
/// coordinates are stored, exactly like a spike CSR in GoSPA.
///
/// # Examples
///
/// ```
/// use loas_sparse::{BitMatrix, CsrMatrix};
///
/// let mut plane = BitMatrix::zeros(2, 8);
/// plane.set(0, 3, true);
/// plane.set(1, 0, true);
/// plane.set(1, 7, true);
/// let csr = CsrMatrix::from_bit_matrix(&plane);
/// assert_eq!(csr.nnz(), 3);
/// assert_eq!(csr.row_entries(1).map(|(c, _)| c).collect::<Vec<_>>(), vec![0, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsrMatrix<V> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<V>,
}

impl<V> CsrMatrix<V> {
    /// Builds a CSR matrix from per-row `(column, value)` pairs (columns must
    /// be ascending within each row).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if a column index is out of
    /// range.
    pub fn from_rows(
        rows: usize,
        cols: usize,
        entries: Vec<Vec<(usize, V)>>,
    ) -> Result<Self, SparseError> {
        assert_eq!(entries.len(), rows, "one entry list per row required");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in entries {
            for (c, v) in row {
                if c >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        index: c,
                        len: cols,
                    });
                }
                col_idx.push(c as u32);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of non-zeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterator over `(column, value)` entries of row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, &V)> + '_ {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()]
            .iter()
            .map(|&c| c as usize)
            .zip(self.values[span].iter())
    }

    /// Bits per stored coordinate (`ceil(log2(cols))`, the paper's footnote 5
    /// neglects offsets just like we do here; row pointers are charged via
    /// [`CsrMatrix::storage_bits`]).
    pub fn coordinate_bits(&self) -> usize {
        coordinate_bits(self.cols)
    }

    /// Total storage in bits: per-nnz coordinates + per-nnz payload +
    /// row-pointer array.
    pub fn storage_bits(&self, bits_per_value: usize) -> usize {
        let ptr_bits = coordinate_bits(self.nnz().max(1)) * (self.rows + 1);
        self.nnz() * (self.coordinate_bits() + bits_per_value) + ptr_bits
    }
}

impl CsrMatrix<()> {
    /// Compresses one spike plane (a [`BitMatrix`]) into coordinate-only CSR.
    pub fn from_bit_matrix(plane: &BitMatrix) -> Self {
        let entries = (0..plane.rows())
            .map(|r| plane.row(r).iter_ones().map(|c| (c, ())).collect())
            .collect();
        Self::from_rows(plane.rows(), plane.cols(), entries)
            .expect("bit-matrix coordinates are in range by construction")
    }
}

impl CsrMatrix<i8> {
    /// Compresses a dense weight matrix row-wise.
    pub fn from_dense(dense: &DenseMatrix<i8>) -> Self {
        let entries = (0..dense.rows())
            .map(|r| {
                dense
                    .row(r)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0)
                    .map(|(c, &v)| (c, v))
                    .collect()
            })
            .collect();
        Self::from_rows(dense.rows(), dense.cols(), entries)
            .expect("dense coordinates are in range by construction")
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> DenseMatrix<i8> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, &v) in self.row_entries(r) {
                out.set(r, c, v);
            }
        }
        out
    }
}

/// A compressed-sparse-column matrix (used for column-major weight access in
/// inner-product designs and for `A`'s columns in outer-product designs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CscMatrix<V> {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<V>,
}

impl<V> CscMatrix<V> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Number of non-zeros in column `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= cols`.
    pub fn col_nnz(&self, c: usize) -> usize {
        assert!(c < self.cols, "column {c} out of range {}", self.cols);
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Iterator over `(row, value)` entries of column `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= cols`.
    pub fn col_entries(&self, c: usize) -> impl Iterator<Item = (usize, &V)> + '_ {
        assert!(c < self.cols, "column {c} out of range {}", self.cols);
        let span = self.col_ptr[c]..self.col_ptr[c + 1];
        self.row_idx[span.clone()]
            .iter()
            .map(|&r| r as usize)
            .zip(self.values[span].iter())
    }

    /// Bits per stored coordinate.
    pub fn coordinate_bits(&self) -> usize {
        coordinate_bits(self.rows)
    }

    /// Total storage in bits (see [`CsrMatrix::storage_bits`]).
    pub fn storage_bits(&self, bits_per_value: usize) -> usize {
        let ptr_bits = coordinate_bits(self.nnz().max(1)) * (self.cols + 1);
        self.nnz() * (self.coordinate_bits() + bits_per_value) + ptr_bits
    }
}

impl CscMatrix<i8> {
    /// Compresses a dense weight matrix column-wise.
    pub fn from_dense(dense: &DenseMatrix<i8>) -> Self {
        let mut col_ptr = Vec::with_capacity(dense.cols() + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for c in 0..dense.cols() {
            for r in 0..dense.rows() {
                let v = *dense.get(r, c);
                if v != 0 {
                    row_idx.push(r as u32);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            rows: dense.rows(),
            cols: dense.cols(),
            col_ptr,
            row_idx,
            values,
        }
    }
}

impl CscMatrix<()> {
    /// Compresses the columns of a spike plane (coordinate-only), as used by
    /// outer-product dataflows that stream `A` column-wise.
    pub fn from_bit_matrix(plane: &BitMatrix) -> Self {
        let mut col_ptr = Vec::with_capacity(plane.cols() + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for c in 0..plane.cols() {
            let col: Bitmask = plane.column(c);
            for r in col.iter_ones() {
                row_idx.push(r as u32);
            }
            col_ptr.push(row_idx.len());
        }
        let nnz = row_idx.len();
        CscMatrix {
            rows: plane.rows(),
            cols: plane.cols(),
            col_ptr,
            row_idx,
            values: vec![(); nnz],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinate_bits_matches_paper_examples() {
        // 128 columns -> 7-bit coordinates (paper footnote 5).
        assert_eq!(coordinate_bits(128), 7);
        assert_eq!(coordinate_bits(16), 4);
        assert_eq!(coordinate_bits(2), 1);
        assert_eq!(coordinate_bits(1), 1);
        assert_eq!(coordinate_bits(129), 8);
    }

    #[test]
    fn csr_from_bit_matrix() {
        let mut plane = BitMatrix::zeros(3, 16);
        plane.set(0, 1, true);
        plane.set(2, 15, true);
        plane.set(2, 0, true);
        let csr = CsrMatrix::from_bit_matrix(&plane);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_nnz(0), 1);
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(
            csr.row_entries(2).map(|(c, _)| c).collect::<Vec<_>>(),
            vec![0, 15]
        );
        assert_eq!(csr.coordinate_bits(), 4);
    }

    #[test]
    fn csr_dense_roundtrip() {
        let dense = DenseMatrix::from_vec(2, 3, vec![0i8, 4, 0, -1, 0, 3]).unwrap();
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn csc_column_entries() {
        let dense = DenseMatrix::from_vec(3, 2, vec![1i8, 0, 0, 2, 3, 0]).unwrap();
        let csc = CscMatrix::from_dense(&dense);
        assert_eq!(csc.col_nnz(0), 2);
        let col0: Vec<(usize, i8)> = csc.col_entries(0).map(|(r, &v)| (r, v)).collect();
        assert_eq!(col0, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn spike_csr_storage_is_expensive() {
        // The Section IV-A inefficiency: a 128-wide row with 2 spikes costs
        // 2 * 7 coordinate bits, versus 2 packed bits in LoAS's payload.
        let mut plane = BitMatrix::zeros(1, 128);
        plane.set(0, 3, true);
        plane.set(0, 90, true);
        let csr = CsrMatrix::from_bit_matrix(&plane);
        let bits = csr.storage_bits(0);
        assert!(bits >= 14, "coordinate storage should dominate: {bits}");
    }

    #[test]
    fn csc_from_bit_matrix_counts() {
        let mut plane = BitMatrix::zeros(4, 2);
        plane.set(0, 0, true);
        plane.set(3, 0, true);
        plane.set(1, 1, true);
        let csc = CscMatrix::from_bit_matrix(&plane);
        assert_eq!(csc.col_nnz(0), 2);
        assert_eq!(csc.col_nnz(1), 1);
        assert_eq!(
            csc.col_entries(0).map(|(r, _)| r).collect::<Vec<_>>(),
            vec![0, 3]
        );
    }

    #[test]
    fn from_rows_rejects_bad_column() {
        let err = CsrMatrix::from_rows(1, 4, vec![vec![(4, 1i8)]]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
    }
}
