//! Fixed-width bitmasks backed by `u64` words.
//!
//! Bitmasks are the coordinate format used throughout LoAS and SparTen-style
//! inner-join designs: a row (or column) of a sparse matrix is described by a
//! bit string with `1`s at the positions of non-zero values. The inner-join
//! unit ANDs two bitmasks and converts the matched positions into memory
//! offsets with prefix-sum (`rank`) circuits.

use crate::error::SparseError;

const WORD_BITS: usize = 64;

/// A fixed-length sequence of bits backed by `u64` words.
///
/// # Examples
///
/// ```
/// use loas_sparse::Bitmask;
///
/// let mut bm = Bitmask::zeros(8);
/// bm.set(1, true);
/// bm.set(5, true);
/// assert_eq!(bm.popcount(), 2);
/// assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![1, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bitmask {
    len: usize,
    words: Vec<u64>,
}

impl Bitmask {
    /// Creates an all-zero bitmask of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bitmask {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates an all-one bitmask of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut bm = Bitmask {
            len,
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
        };
        bm.clear_tail();
        bm
    }

    /// Builds a bitmask from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0;
        for bit in bits {
            if len % WORD_BITS == 0 {
                words.push(0);
            }
            if bit {
                *words.last_mut().expect("word pushed above") |= 1 << (len % WORD_BITS);
            }
            len += 1;
        }
        Bitmask { len, words }
    }

    /// Builds a `len`-bit bitmask with ones at the given positions.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Result<Self, SparseError> {
        let mut bm = Bitmask::zeros(len);
        for &i in indices {
            if i >= len {
                return Err(SparseError::IndexOutOfBounds { index: i, len });
            }
            bm.set(i, true);
        }
        Ok(bm)
    }

    /// Number of bits in the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let word = &mut self.words[index / WORD_BITS];
        let bit = 1u64 << (index % WORD_BITS);
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// Number of set bits.
    pub fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits, in `[0, 1]`. Returns 0 for an empty mask.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.popcount() as f64 / self.len as f64
        }
    }

    /// Fraction of clear bits, in `[0, 1]` (the sparsity in the paper's
    /// `AvSp` notation). Returns 0 for an empty mask.
    pub fn sparsity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            1.0 - self.density()
        }
    }

    /// Bitwise AND of two equal-length masks (the inner-join AND-result).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when the lengths differ.
    pub fn and(&self, other: &Bitmask) -> Result<Bitmask, SparseError> {
        self.check_len(other)?;
        Ok(Bitmask {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        })
    }

    /// Number of positions where both masks have a set bit, without
    /// materialising the AND-result.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when the lengths differ.
    pub fn and_count(&self, other: &Bitmask) -> Result<usize, SparseError> {
        self.check_len(other)?;
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum())
    }

    /// Bitwise OR of two equal-length masks.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when the lengths differ.
    pub fn or(&self, other: &Bitmask) -> Result<Bitmask, SparseError> {
        self.check_len(other)?;
        Ok(Bitmask {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        })
    }

    /// Number of set bits strictly before `index` (exclusive rank).
    ///
    /// This is exactly the quantity the prefix-sum circuits of SparTen and
    /// LoAS compute: the memory offset of the non-zero value whose coordinate
    /// bit sits at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > len` (equality is allowed and returns the total
    /// popcount).
    pub fn rank(&self, index: usize) -> usize {
        assert!(
            index <= self.len,
            "rank index {index} out of range {}",
            self.len
        );
        let full_words = index / WORD_BITS;
        let mut count: usize = self.words[..full_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = index % WORD_BITS;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            count += (self.words[full_words] & mask).count_ones() as usize;
        }
        count
    }

    /// Position of the `i`-th set bit (0-based), or `None` if fewer than
    /// `i + 1` bits are set.
    pub fn select(&self, i: usize) -> Option<usize> {
        let mut remaining = i;
        for (w, &word) in self.words.iter().enumerate() {
            let ones = word.count_ones() as usize;
            if remaining < ones {
                let mut word = word;
                for _ in 0..remaining {
                    word &= word - 1; // clear lowest set bit
                }
                return Some(w * WORD_BITS + word.trailing_zeros() as usize);
            }
            remaining -= ones;
        }
        None
    }

    /// Iterator over the positions of set bits, in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            mask: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over all bits as booleans.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Underlying words (little-endian bit order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of `chunk_bits`-wide chunks needed to stream this mask through
    /// a circuit with a `chunk_bits`-bit datapath (e.g. the 128-bit bitmask
    /// buffers of a TPPE).
    pub fn chunk_count(&self, chunk_bits: usize) -> usize {
        assert!(chunk_bits > 0, "chunk width must be positive");
        self.len.div_ceil(chunk_bits)
    }

    /// Per-chunk AND-popcounts of two masks streamed `chunk_words` words at
    /// a time — the quantity an inner-join circuit's priority encoder sees
    /// per bitmask chunk. Missing words (when the masks have different word
    /// counts) read as zero, and at least one chunk is always yielded, so a
    /// pair of empty masks still models one scan cycle.
    pub fn chunked_and_counts<'a>(
        &'a self,
        other: &'a Bitmask,
        chunk_words: usize,
    ) -> ChunkedAndCounts<'a> {
        chunked_and_counts(&self.words, &other.words, chunk_words)
    }

    /// Extracts bits `[start, start + width)` as a new bitmask. Bits past the
    /// end of the mask read as zero, so the final chunk of a stream is padded.
    pub fn slice(&self, start: usize, width: usize) -> Bitmask {
        let mut out = Bitmask::zeros(width);
        let end = (start + width).min(self.len);
        for (offset, i) in (start..end).enumerate() {
            if self.get(i) {
                out.set(offset, true);
            }
        }
        out
    }

    /// Storage footprint of the mask itself, in bits (1 bit per position, as
    /// in the paper's bitmask compression format).
    pub fn storage_bits(&self) -> usize {
        self.len
    }

    fn check_len(&self, other: &Bitmask) -> Result<(), SparseError> {
        if self.len != other.len {
            return Err(SparseError::DimensionMismatch {
                dimension: "bits",
                left: self.len,
                right: other.len,
            });
        }
        Ok(())
    }

    fn clear_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl FromIterator<bool> for Bitmask {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Bitmask::from_bools(iter)
    }
}

/// Per-chunk AND-popcounts over raw word slices (the slice-level form of
/// [`Bitmask::chunked_and_counts`], used by hot kernels that keep their
/// masks in structure-of-arrays layouts). Words past the end of either
/// slice read as zero; at least one chunk is always yielded.
///
/// # Panics
///
/// Panics when `chunk_words` is zero.
pub fn chunked_and_counts<'a>(
    a: &'a [u64],
    b: &'a [u64],
    chunk_words: usize,
) -> ChunkedAndCounts<'a> {
    assert!(chunk_words > 0, "chunk width must be positive");
    ChunkedAndCounts {
        a,
        b,
        words: a.len().max(b.len()),
        chunk_words,
        pos: 0,
        yielded: false,
    }
}

/// Iterator over per-chunk AND-popcounts, produced by
/// [`Bitmask::chunked_and_counts`] / [`chunked_and_counts`].
#[derive(Debug, Clone)]
pub struct ChunkedAndCounts<'a> {
    a: &'a [u64],
    b: &'a [u64],
    words: usize,
    chunk_words: usize,
    pos: usize,
    yielded: bool,
}

impl Iterator for ChunkedAndCounts<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.pos >= self.words && self.yielded {
            return None;
        }
        let end = (self.pos + self.chunk_words).min(self.words);
        // The overlap of both slices streams word pairs; the tail where one
        // slice has run out contributes nothing (zero AND anything).
        let lo = self.pos.min(self.a.len()).min(self.b.len());
        let hi = end.min(self.a.len()).min(self.b.len());
        let count = self.a[lo..hi]
            .iter()
            .zip(&self.b[lo..hi])
            .map(|(aw, bw)| (aw & bw).count_ones() as u64)
            .sum();
        self.pos = end;
        self.yielded = true;
        Some(count)
    }
}

/// Iterator over set-bit positions of a [`Bitmask`], produced by
/// [`Bitmask::iter_ones`].
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    mask: &'a Bitmask,
    word_index: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.mask.words.len() {
                return None;
            }
            self.current = self.mask.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmask::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.popcount(), 0);
        let o = Bitmask::ones(70);
        assert_eq!(o.popcount(), 70);
        assert!(o.get(69));
    }

    #[test]
    fn ones_clears_tail_bits() {
        let o = Bitmask::ones(65);
        assert_eq!(o.words()[1], 1);
        assert_eq!(o.popcount(), 65);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmask::zeros(130);
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        bm.set(64, false);
        assert!(!bm.get(64));
        assert_eq!(bm.popcount(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmask::zeros(8).get(8);
    }

    #[test]
    fn from_indices_rejects_out_of_range() {
        let err = Bitmask::from_indices(4, &[5]).unwrap_err();
        assert_eq!(err, SparseError::IndexOutOfBounds { index: 5, len: 4 });
    }

    #[test]
    fn and_count_matches_and_popcount() {
        let a = Bitmask::from_indices(128, &[0, 5, 64, 100, 127]).unwrap();
        let b = Bitmask::from_indices(128, &[5, 63, 64, 127]).unwrap();
        let anded = a.and(&b).unwrap();
        assert_eq!(anded.popcount(), a.and_count(&b).unwrap());
        assert_eq!(anded.iter_ones().collect::<Vec<_>>(), vec![5, 64, 127]);
    }

    #[test]
    fn and_length_mismatch_errors() {
        let a = Bitmask::zeros(8);
        let b = Bitmask::zeros(9);
        assert!(matches!(
            a.and(&b),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rank_counts_strictly_before() {
        let bm = Bitmask::from_indices(128, &[3, 64, 65, 127]).unwrap();
        assert_eq!(bm.rank(0), 0);
        assert_eq!(bm.rank(3), 0);
        assert_eq!(bm.rank(4), 1);
        assert_eq!(bm.rank(65), 2);
        assert_eq!(bm.rank(128), 4);
    }

    #[test]
    fn select_inverts_rank() {
        let bm = Bitmask::from_indices(200, &[1, 7, 66, 150, 199]).unwrap();
        for (i, pos) in bm.iter_ones().enumerate() {
            assert_eq!(bm.select(i), Some(pos));
            assert_eq!(bm.rank(pos), i);
        }
        assert_eq!(bm.select(5), None);
    }

    #[test]
    fn slice_pads_past_end() {
        let bm = Bitmask::from_indices(10, &[0, 9]).unwrap();
        let chunk = bm.slice(8, 8);
        assert_eq!(chunk.len(), 8);
        assert_eq!(chunk.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn chunk_count_rounds_up() {
        let bm = Bitmask::zeros(300);
        assert_eq!(bm.chunk_count(128), 3);
        assert_eq!(bm.chunk_count(300), 1);
    }

    #[test]
    fn density_and_sparsity_sum_to_one() {
        let bm = Bitmask::from_indices(10, &[0, 1, 2]).unwrap();
        assert!((bm.density() - 0.3).abs() < 1e-12);
        assert!((bm.sparsity() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn from_bools_collect() {
        let bm: Bitmask = [true, false, true].into_iter().collect();
        assert_eq!(bm.len(), 3);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn chunked_and_counts_cover_all_words() {
        let a = Bitmask::from_indices(300, &[0, 1, 64, 129, 299]).unwrap();
        let b = Bitmask::from_indices(300, &[1, 64, 130, 299]).unwrap();
        // 5 words in 2-word chunks: 3 chunks, matches at 1, 64 (chunk 0)
        // and 299 (chunk 2).
        let counts: Vec<u64> = a.chunked_and_counts(&b, 2).collect();
        assert_eq!(counts, vec![2, 0, 1]);
        assert_eq!(
            counts.iter().sum::<u64>() as usize,
            a.and_count(&b).unwrap()
        );
    }

    #[test]
    fn chunked_and_counts_empty_masks_yield_one_chunk() {
        let a = Bitmask::zeros(0);
        let b = Bitmask::zeros(0);
        assert_eq!(a.chunked_and_counts(&b, 2).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn chunked_and_counts_pads_shorter_slice() {
        // Raw-slice form with unequal lengths: missing words read as zero.
        let counts: Vec<u64> = chunked_and_counts(&[u64::MAX, u64::MAX, 1], &[0b1011], 2).collect();
        assert_eq!(counts, vec![3, 0]);
    }

    #[test]
    #[should_panic(expected = "chunk width")]
    fn chunked_and_counts_rejects_zero_width() {
        let a = Bitmask::zeros(8);
        let _ = a.chunked_and_counts(&a, 0);
    }

    #[test]
    fn iter_bits_matches_get() {
        let bm = Bitmask::from_indices(67, &[0, 66]).unwrap();
        let bits: Vec<bool> = bm.iter_bits().collect();
        assert_eq!(bits.len(), 67);
        assert!(bits[0] && bits[66]);
        assert!(!bits[1]);
    }
}
