//! Error types for the sparse-format substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by sparse-format constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Two operands disagreed on a dimension that must match.
    DimensionMismatch {
        /// Human-readable name of the dimension (e.g. `"K"`).
        dimension: &'static str,
        /// Dimension size of the left operand.
        left: usize,
        /// Dimension size of the right operand.
        right: usize,
    },
    /// An index was outside the valid range of a container.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// A value count disagreed with the number of set bits in a bitmask.
    ValueCountMismatch {
        /// Number of set bits in the coordinate bitmask.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// The number of timesteps exceeds what a packed spike word can hold.
    TimestepOverflow {
        /// Requested timestep count.
        timesteps: usize,
        /// Maximum supported timestep count.
        max: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SparseError::DimensionMismatch {
                dimension,
                left,
                right,
            } => write!(
                f,
                "dimension `{dimension}` mismatch: left operand has {left}, right operand has {right}"
            ),
            SparseError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            SparseError::ValueCountMismatch { expected, actual } => write!(
                f,
                "bitmask has {expected} set bits but {actual} values were supplied"
            ),
            SparseError::TimestepOverflow { timesteps, max } => write!(
                f,
                "requested {timesteps} timesteps but packed spike words hold at most {max}"
            ),
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SparseError::DimensionMismatch {
            dimension: "K",
            left: 4,
            right: 8,
        };
        let text = err.to_string();
        assert!(text.contains('K'));
        assert!(text.contains('4'));
        assert!(text.contains('8'));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn Error> = Box::new(SparseError::IndexOutOfBounds { index: 9, len: 3 });
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
