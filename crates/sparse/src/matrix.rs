//! Dense matrices and bit-matrices used by golden references and workload
//! generators.

use crate::bitmask::Bitmask;
use crate::error::SparseError;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use loas_sparse::DenseMatrix;
///
/// let mut m = DenseMatrix::<i32>::zeros(2, 3);
/// m.set(1, 2, 42);
/// assert_eq!(*m.get(1, 2), 42);
/// assert_eq!(m.row(1), &[0, 0, 42]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> DenseMatrix<T> {
    /// Creates a `rows x cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> DenseMatrix<T> {
    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ValueCountMismatch`] when `data.len() != rows *
    /// cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, SparseError> {
        if data.len() != rows * cols {
            return Err(SparseError::ValueCountMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element reference at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn get(&self, row: usize, col: usize) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of range"
        );
        &self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of range"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` collected into a vector.
    ///
    /// # Panics
    ///
    /// Panics when `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<T>
    where
        T: Clone,
    {
        assert!(c < self.cols, "column {c} out of range {}", self.cols);
        (0..self.rows).map(|r| self.get(r, c).clone()).collect()
    }

    /// All elements in row-major order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Number of elements for which `is_zero` is false.
    pub fn nnz(&self, is_zero: impl Fn(&T) -> bool) -> usize {
        self.data.iter().filter(|v| !is_zero(v)).count()
    }
}

impl DenseMatrix<i8> {
    /// Fraction of zero entries (the paper's `AvSpB` for weight matrices).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0).count();
        zeros as f64 / self.data.len() as f64
    }
}

impl DenseMatrix<u8> {
    /// Fraction of zero entries (activation sparsity for ANN workloads).
    pub fn value_sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0).count();
        zeros as f64 / self.data.len() as f64
    }
}

/// A dense binary matrix stored as one [`Bitmask`] per row — the natural
/// representation of one timestep's spike plane `A[·, ·, t]`.
///
/// # Examples
///
/// ```
/// use loas_sparse::BitMatrix;
///
/// let mut plane = BitMatrix::zeros(2, 4);
/// plane.set(0, 3, true);
/// assert!(plane.get(0, 3));
/// assert_eq!(plane.row(0).popcount(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    row_masks: Vec<Bitmask>,
}

impl BitMatrix {
    /// Creates an all-zero `rows x cols` bit matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows,
            cols,
            row_masks: (0..rows).map(|_| Bitmask::zeros(cols)).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.row_masks[row].get(col)
    }

    /// Sets the bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.row_masks[row].set(col, value);
    }

    /// Row `r` as a bitmask.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row(&self, r: usize) -> &Bitmask {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &self.row_masks[r]
    }

    /// Column `c` collected into a bitmask of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= cols`.
    pub fn column(&self, c: usize) -> Bitmask {
        assert!(c < self.cols, "column {c} out of range {}", self.cols);
        Bitmask::from_bools((0..self.rows).map(|r| self.get(r, c)))
    }

    /// Total number of set bits.
    pub fn popcount(&self) -> usize {
        self.row_masks.iter().map(Bitmask::popcount).sum()
    }

    /// Fraction of set bits.
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.popcount() as f64 / total as f64
        }
    }

    /// Fraction of clear bits (the paper's sparsity convention).
    pub fn sparsity(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            1.0 - self.density()
        }
    }

    /// Iterator over row bitmasks.
    pub fn iter_rows(&self) -> impl Iterator<Item = &Bitmask> + '_ {
        self.row_masks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_indexing() {
        let mut m = DenseMatrix::<i32>::zeros(3, 2);
        m.set(2, 1, 7);
        assert_eq!(*m.get(2, 1), 7);
        assert_eq!(m.row(2), &[0, 7]);
        assert_eq!(m.column(1), vec![0, 0, 7]);
        assert_eq!(m.nnz(|&v| v == 0), 1);
    }

    #[test]
    fn dense_matrix_from_vec_validates() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1i8, 2, 3]).is_err());
        let m = DenseMatrix::from_vec(2, 2, vec![1i8, 0, 0, 4]).unwrap();
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bit_matrix_row_column() {
        let mut p = BitMatrix::zeros(3, 5);
        p.set(0, 0, true);
        p.set(1, 0, true);
        p.set(2, 4, true);
        assert_eq!(p.column(0).popcount(), 2);
        assert_eq!(p.row(2).iter_ones().collect::<Vec<_>>(), vec![4]);
        assert_eq!(p.popcount(), 3);
        assert!((p.density() - 3.0 / 15.0).abs() < 1e-12);
        assert!((p.sparsity() - 12.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_matrix_oob_panics() {
        BitMatrix::zeros(1, 1).get(1, 0);
    }

    #[test]
    fn row_mut_mutates() {
        let mut m = DenseMatrix::<u8>::zeros(2, 2);
        m.row_mut(0)[1] = 9;
        assert_eq!(*m.get(0, 1), 9);
        assert!((m.value_sparsity() - 0.75).abs() < 1e-12);
    }
}
