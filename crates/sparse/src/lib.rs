//! # loas-sparse — sparse formats and kernels for the LoAS reproduction
//!
//! This crate is the format substrate beneath the LoAS accelerator model
//! (MICRO 2024, "LoAS: Fully Temporal-Parallel Dataflow for Dual-Sparse
//! Spiking Neural Networks"). It provides:
//!
//! * [`Bitmask`] — the 1-bit-per-coordinate compression format shared by
//!   LoAS and SparTen-style inner-join designs;
//! * [`PackedSpikes`] — the FTP-friendly packed spike word (all `T`
//!   timesteps of one pre-synaptic neuron in one word, Fig. 8);
//! * [`Fiber`] / [`SpikeFiber`] / [`WeightFiber`] — compressed fibers
//!   (bitmask + pointer + payload);
//! * [`CsrMatrix`] / [`CscMatrix`] — coordinate-list formats with explicit
//!   coordinate bit-widths (the costly per-timestep spike format GoSPA-style
//!   baselines pay for);
//! * [`prefix_sum`] — functional + latency models of the fast and laggy
//!   prefix-sum circuits;
//! * [`spmspm`] — golden spMspM references in IP/OP/Gustavson loop orders,
//!   the correctness oracle for every accelerator model in the workspace.
//!
//! # Examples
//!
//! Compress one row of packed spikes and look values up by coordinate:
//!
//! ```
//! use loas_sparse::{PackedSpikes, SpikeFiber};
//!
//! let row = vec![
//!     PackedSpikes::from_bits(0b0101, 4)?, // fires at t0, t2
//!     PackedSpikes::silent(4)?,            // silent neuron: dropped
//!     PackedSpikes::from_bits(0b1110, 4)?, // fires at t1, t2, t3
//! ];
//! let fiber = SpikeFiber::from_packed_row(&row);
//! assert_eq!(fiber.nnz(), 2);
//! assert!(fiber.value_at(1).is_none());
//! assert_eq!(fiber.value_at(2).unwrap().fire_count(), 3);
//! # Ok::<(), loas_sparse::SparseError>(())
//! ```

#![warn(missing_docs)]

mod bitmask;
mod csr;
mod error;
mod fiber;
mod matrix;
mod packed;
pub mod prefix_sum;
pub mod spmspm;

pub use bitmask::{chunked_and_counts, Bitmask, ChunkedAndCounts, Ones};
pub use csr::{coordinate_bits, CscMatrix, CsrMatrix};
pub use error::SparseError;
pub use fiber::{Fiber, SpikeFiber, WeightFiber, POINTER_BITS};
pub use matrix::{BitMatrix, DenseMatrix};
pub use packed::{PackedSpikes, MAX_TIMESTEPS};
pub use prefix_sum::{FastPrefixSum, InvertedPrefixSum, LaggyPrefixSum, PrefixSumCircuit};
