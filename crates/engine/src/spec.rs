//! Campaign specifications: workloads, accelerators, and jobs.
//!
//! A [`Campaign`] is a flat list of [`JobSpec`]s, each pairing one
//! [`WorkloadSpec`] (a content-keyed description of a generated layer) with
//! one [`AcceleratorSpec`] (a buildable accelerator model). Jobs carry an
//! explicit seed through their workload spec, so a campaign is a complete,
//! reproducible description of an experiment sweep.

use loas_core::{catalog, Accelerator, CatalogError, LoasConfig, ModelConfig, PreparedLayer};
use loas_workloads::networks::{LayerSpec, NetworkSpec};
use loas_workloads::{LayerShape, SparsityProfile, WorkloadError, WorkloadGenerator};
use std::ops::Range;

/// Makes sure every workspace model is registered in the process-global
/// accelerator catalog before a lookup. `loas-core` seeds the catalog with
/// LoAS; the baselines register through their crate's idempotent hook.
fn ensure_catalog() {
    loas_baselines::register_catalog();
}

pub use loas_workloads::DEFAULT_SEED;

/// A content key identifying one generated-and-prepared workload. Two
/// workload specs with equal keys produce byte-identical
/// [`PreparedLayer`]s, so the engine generates each key exactly once per
/// cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    name: String,
    shape: LayerShape,
    /// Profile fractions as IEEE-754 bit patterns (exact equality is the
    /// right notion here: specs are either copied from the same source or
    /// genuinely different).
    profile_bits: [u64; 4],
    seed: u64,
    fine_tuned: bool,
}

impl WorkloadKey {
    /// Absorbs the key's identifying content into a stable hash (the
    /// workload half of a [`MemoKey`]).
    ///
    /// [`MemoKey`]: crate::MemoKey
    pub fn write_content(&self, hasher: &mut loas_core::ContentHasher) {
        hasher.write_str(&self.name);
        hasher.write_usize(self.shape.t);
        hasher.write_usize(self.shape.m);
        hasher.write_usize(self.shape.n);
        hasher.write_usize(self.shape.k);
        for &bits in &self.profile_bits {
            hasher.write_u64(bits);
        }
        hasher.write_u64(self.seed);
        hasher.write_bool(self.fine_tuned);
    }
}

impl std::fmt::Display for WorkloadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{}{}#{:x}",
            self.name,
            self.shape,
            if self.fine_tuned { "+FT" } else { "" },
            self.seed
        )
    }
}

/// A content-keyed description of one layer workload to generate and
/// prepare.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Generator stream name (also the workload display name).
    pub name: String,
    /// The `(T, M, N, K)` shape.
    pub shape: LayerShape,
    /// The sparsity statistics to realise.
    pub profile: SparsityProfile,
    /// Master seed of the generator stream.
    pub seed: u64,
    /// Whether to apply the fine-tuned silent-neuron preprocessing after
    /// generation (Section V).
    pub fine_tuned: bool,
}

impl WorkloadSpec {
    /// A workload spec with the workspace default seed.
    pub fn new(name: impl Into<String>, shape: LayerShape, profile: SparsityProfile) -> Self {
        WorkloadSpec {
            name: name.into(),
            shape,
            profile,
            seed: DEFAULT_SEED,
            fine_tuned: false,
        }
    }

    /// Builds a spec from a network layer spec.
    pub fn from_layer(layer: &LayerSpec) -> Self {
        WorkloadSpec::new(layer.name.clone(), layer.shape, layer.profile)
    }

    /// Returns the spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the fine-tuned (silent-neuron-masked) variant.
    pub fn fine_tuned(mut self) -> Self {
        self.fine_tuned = true;
        self
    }

    /// The content key of this spec.
    pub fn key(&self) -> WorkloadKey {
        WorkloadKey {
            name: self.name.clone(),
            shape: self.shape,
            profile_bits: [
                self.profile.spike_origin.to_bits(),
                self.profile.silent.to_bits(),
                self.profile.silent_ft.to_bits(),
                self.profile.weight.to_bits(),
            ],
            seed: self.seed,
            fine_tuned: self.fine_tuned,
        }
    }

    /// The workload name the prepared layer — and therefore every
    /// [`LayerReport`] simulated from it — carries: the fine-tuned
    /// preprocessor suffixes its maskings with `+FT`.
    ///
    /// [`LayerReport`]: loas_core::LayerReport
    pub fn reported_name(&self) -> String {
        if self.fine_tuned {
            format!("{}+FT", self.name)
        } else {
            self.name.clone()
        }
    }

    /// The non-fine-tuned spec this one derives from (`self` when already
    /// plain). Fine-tuned preparations are cheap maskings of their base
    /// workload, so the executor generates the base once and derives.
    pub fn base(&self) -> WorkloadSpec {
        let mut base = self.clone();
        base.fine_tuned = false;
        base
    }

    /// Generates and prepares the workload (the expensive operation the
    /// engine's cache exists to amortize).
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadError`] when the profile is infeasible at the
    /// shape's timestep count.
    pub fn prepare(&self) -> Result<PreparedLayer, WorkloadError> {
        let generator = WorkloadGenerator::new(self.seed);
        let workload = generator.generate(&self.name, self.shape, &self.profile)?;
        let workload = if self.fine_tuned {
            workload.with_preprocessing()
        } else {
            workload
        };
        Ok(PreparedLayer::new(&workload))
    }

    /// Prepares the fine-tuned variant from an already generated base
    /// preparation, skipping regeneration (the base must come from
    /// [`WorkloadSpec::base`] of this spec).
    pub fn prepare_from_base(&self, base: &PreparedLayer) -> PreparedLayer {
        debug_assert!(self.fine_tuned, "only fine-tuned specs derive from a base");
        PreparedLayer::new(&base.workload.with_preprocessing())
    }
}

/// A buildable accelerator model: a stable catalog name paired with a
/// typed configuration, resolved through the process-global
/// [`loas_core::catalog`]. Each job owns a spec and builds a fresh model,
/// so heterogeneous fleets sit in one queue and results never depend on
/// worker count or execution order. Because dispatch is a registry lookup,
/// adding a model never touches this crate: register a
/// [`loas_core::ModelEntry`] and the name becomes buildable, memoizable,
/// and expressible in serve specs.
#[derive(Debug, Clone)]
pub struct AcceleratorSpec {
    model: String,
    config: Box<dyn ModelConfig>,
}

impl PartialEq for AcceleratorSpec {
    /// Specs are equal when they name the same model with the same
    /// configuration field values (floats by bit pattern).
    fn eq(&self, other: &Self) -> bool {
        self.model == other.model && *self.config == *other.config
    }
}

impl AcceleratorSpec {
    /// A spec for the named catalog model at its default configuration.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownModel`] when no model registered the name.
    pub fn by_name(name: &str) -> Result<Self, CatalogError> {
        ensure_catalog();
        catalog::with(|catalog| {
            let entry = catalog
                .get(name)
                .ok_or_else(|| CatalogError::UnknownModel(name.to_owned()))?;
            Ok(AcceleratorSpec {
                model: entry.name().to_owned(),
                config: entry.default_config(),
            })
        })
    }

    /// A spec from an explicit typed configuration (the model name comes
    /// from [`ModelConfig::model`]).
    ///
    /// # Panics
    ///
    /// Panics when no [`loas_core::ModelEntry`] is registered under the
    /// config's model name — a config type without a catalog entry can
    /// never be built, so the mistake surfaces here, at the construction
    /// site, instead of inside a worker thread mid-campaign.
    pub fn from_config(config: impl ModelConfig) -> Self {
        ensure_catalog();
        let model = config.model();
        assert!(
            catalog::with(|catalog| catalog.get(model).is_some()),
            "model `{model}` has a ModelConfig but no registered catalog entry;              call loas_core::catalog::register before building specs"
        );
        AcceleratorSpec {
            model: model.to_owned(),
            config: Box::new(config),
        }
    }

    /// Every model name currently registered in the catalog, in
    /// registration order.
    pub fn known_models() -> Vec<&'static str> {
        ensure_catalog();
        catalog::with(|catalog| catalog.names())
    }

    /// SparTen-SNN at the paper configuration.
    pub fn sparten() -> Self {
        Self::by_name("sparten").expect("builtin model")
    }

    /// GoSPA-SNN at the paper configuration.
    pub fn gospa() -> Self {
        Self::by_name("gospa").expect("builtin model")
    }

    /// Gamma-SNN at the paper configuration.
    pub fn gamma() -> Self {
        Self::by_name("gamma").expect("builtin model")
    }

    /// PTB at the paper configuration.
    pub fn ptb() -> Self {
        Self::by_name("ptb").expect("builtin model")
    }

    /// Stellar at the paper configuration.
    pub fn stellar() -> Self {
        Self::by_name("stellar").expect("builtin model")
    }

    /// LoAS at the paper's Table III configuration.
    pub fn loas() -> Self {
        Self::from_config(LoasConfig::table3())
    }

    /// LoAS with an explicit configuration (covers the FT discard mode and
    /// every ablation/sweep override).
    pub fn loas_with(config: LoasConfig) -> Self {
        Self::from_config(config)
    }

    /// LoAS in fine-tuned mode (low-activity outputs discarded); pair with
    /// [`WorkloadSpec::fine_tuned`] workloads.
    pub fn loas_ft() -> Self {
        Self::from_config(
            LoasConfig::builder()
                .discard_low_activity_outputs(true)
                .build(),
        )
    }

    /// The paper's headline comparison fleet: the three spMspM baselines,
    /// LoAS, LoAS(FT), and the two dense temporal-parallel designs.
    pub fn headline_fleet() -> Vec<AcceleratorSpec> {
        vec![
            AcceleratorSpec::sparten(),
            AcceleratorSpec::gospa(),
            AcceleratorSpec::gamma(),
            AcceleratorSpec::loas(),
            AcceleratorSpec::loas_ft(),
            AcceleratorSpec::ptb(),
            AcceleratorSpec::stellar(),
        ]
    }

    /// The stable catalog name this spec dispatches to (also the spec-JSON
    /// `accelerator.name`).
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The typed configuration.
    pub fn config(&self) -> &dyn ModelConfig {
        self.config.as_ref()
    }

    /// Mutable access to the typed configuration (spec parsing applies
    /// field overrides through this).
    pub fn config_mut(&mut self) -> &mut dyn ModelConfig {
        self.config.as_mut()
    }

    /// The configuration downcast to its concrete type.
    pub fn typed_config<C: ModelConfig>(&self) -> Option<&C> {
        self.config.as_any().downcast_ref()
    }

    /// Runs `f` with this spec's catalog entry.
    ///
    /// # Panics
    ///
    /// Panics when the model was never registered — impossible for specs
    /// built through this type's constructors, which resolve the name at
    /// construction time.
    fn with_entry<R>(&self, f: impl FnOnce(&loas_core::ModelEntry) -> R) -> R {
        ensure_catalog();
        catalog::with(|catalog| {
            let entry = catalog
                .get(&self.model)
                .unwrap_or_else(|| panic!("model `{}` not in the catalog", self.model));
            f(entry)
        })
    }

    /// Whether this spec should consume the fine-tuned (masked) variant of
    /// its workload.
    pub fn wants_fine_tuned_workload(&self) -> bool {
        self.with_entry(|entry| entry.config_wants_fine_tuned(self.config.as_ref()))
    }

    /// Builds a fresh boxed model. Models are cheap to construct; all
    /// expensive state lives in the prepared workload.
    pub fn build(&self) -> Box<dyn Accelerator + Send> {
        self.with_entry(|entry| entry.build(self.config.as_ref()))
    }

    /// The model-reported display name (used in job labels and reports;
    /// distinct from the stable catalog [`model`](Self::model) name).
    pub fn display_name(&self) -> String {
        self.build().name()
    }

    /// Absorbs the accelerator's identifying content into a stable hash
    /// via its catalog entry: the model's legacy discriminant plus its
    /// configuration contribution (see [`loas_core::ModelEntry::write_content`]
    /// for the default-preserving layout).
    pub fn write_content(&self, hasher: &mut loas_core::ContentHasher) {
        self.with_entry(|entry| entry.write_content(self.config.as_ref(), hasher));
    }
}

/// One unit of campaign work: simulate one workload on one accelerator.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable job label (defaults to `workload @ accelerator`).
    pub label: String,
    /// Network this job's layer belongs to, for [`NetworkReport`]
    /// aggregation (`None` for standalone layers).
    ///
    /// [`NetworkReport`]: loas_core::NetworkReport
    pub network: Option<String>,
    /// Position of the layer inside its network (0 for standalone layers).
    pub layer_index: usize,
    /// The workload to simulate.
    pub workload: WorkloadSpec,
    /// The accelerator to simulate it on.
    pub accelerator: AcceleratorSpec,
}

impl JobSpec {
    /// A standalone-layer job with an auto-generated label.
    pub fn new(workload: WorkloadSpec, accelerator: AcceleratorSpec) -> Self {
        let label = format!("{} @ {}", workload.name, accelerator.display_name());
        JobSpec {
            label,
            network: None,
            layer_index: 0,
            workload,
            accelerator,
        }
    }

    /// The job's result-memoization key: a stable content hash of the
    /// `(workload, accelerator)` pair. Presentation fields (`label`,
    /// `network`, `layer_index`) are deliberately excluded — they do not
    /// influence the simulated [`LayerReport`], so jobs that differ only
    /// in labeling share one memoized result.
    ///
    /// [`LayerReport`]: loas_core::LayerReport
    pub fn memo_key(&self) -> crate::MemoKey {
        let mut hasher = loas_core::ContentHasher::new();
        hasher.write_str(crate::memo::MEMO_KEY_FORMAT);
        self.workload.key().write_content(&mut hasher);
        self.accelerator.write_content(&mut hasher);
        crate::MemoKey::new(hasher.finish())
    }
}

/// A campaign: a named batch of jobs executed together by the engine, with
/// workload preparation shared across all of them.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// Campaign name (reported in summaries).
    pub name: String,
    jobs: Vec<JobSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            jobs: Vec::new(),
        }
    }

    /// Appends one job, returning its id (index into the result records).
    pub fn push(&mut self, job: JobSpec) -> usize {
        self.jobs.push(job);
        self.jobs.len() - 1
    }

    /// Appends a standalone-layer job, returning its id.
    pub fn push_layer(&mut self, workload: WorkloadSpec, accelerator: AcceleratorSpec) -> usize {
        self.push(JobSpec::new(workload, accelerator))
    }

    /// Appends one job per layer of `network` on `accelerator`, with the
    /// fine-tuned workload variant applied when the accelerator asks for
    /// it. Returns the contiguous id range of the new jobs.
    pub fn push_network(
        &mut self,
        network: &NetworkSpec,
        accelerator: AcceleratorSpec,
        seed: u64,
    ) -> Range<usize> {
        let start = self.jobs.len();
        for (index, layer) in network.layers.iter().enumerate() {
            let mut workload = WorkloadSpec::from_layer(layer).with_seed(seed);
            if accelerator.wants_fine_tuned_workload() {
                workload = workload.fine_tuned();
            }
            let label = format!(
                "{}/{} @ {}",
                network.name,
                layer.name,
                accelerator.display_name()
            );
            self.push(JobSpec {
                label,
                network: Some(network.name.clone()),
                layer_index: index,
                workload,
                accelerator: accelerator.clone(),
            });
        }
        start..self.jobs.len()
    }

    /// Appends the full cartesian product `workloads x fleet`, applying
    /// fine-tuned workload variants where the accelerator asks for them.
    /// Returns the contiguous id range of the new jobs.
    pub fn push_product(
        &mut self,
        workloads: &[WorkloadSpec],
        fleet: &[AcceleratorSpec],
    ) -> Range<usize> {
        let start = self.jobs.len();
        for workload in workloads {
            for accelerator in fleet {
                let mut workload = workload.clone();
                if accelerator.wants_fine_tuned_workload() {
                    workload = workload.fine_tuned();
                }
                self.push_layer(workload, accelerator.clone());
            }
        }
        start..self.jobs.len()
    }

    /// The jobs in submission order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the campaign has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The distinct workload specs of this campaign, in first-use order.
    pub fn unique_workloads(&self) -> Vec<WorkloadSpec> {
        let mut seen = std::collections::HashSet::new();
        let mut unique = Vec::new();
        for job in &self.jobs {
            if seen.insert(job.workload.key()) {
                unique.push(job.workload.clone());
            }
        }
        unique
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_workloads::networks;

    fn profile() -> SparsityProfile {
        SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap()
    }

    #[test]
    fn keys_identify_content() {
        let a = WorkloadSpec::new("w", LayerShape::new(4, 8, 8, 64), profile());
        let same = a.clone();
        assert_eq!(a.key(), same.key());
        assert_ne!(a.key(), a.clone().with_seed(7).key());
        assert_ne!(a.key(), a.clone().fine_tuned().key());
        let other_shape = WorkloadSpec::new("w", LayerShape::new(4, 8, 8, 128), profile());
        assert_ne!(a.key(), other_shape.key());
    }

    #[test]
    fn reported_name_matches_prepared_layer_name() {
        // The memo-replay cross-check relies on this equality.
        let plain = WorkloadSpec::new("w", LayerShape::new(4, 4, 8, 64), profile());
        assert_eq!(plain.prepare().unwrap().name, plain.reported_name());
        let ft = plain.fine_tuned();
        assert_eq!(ft.prepare().unwrap().name, ft.reported_name());
        assert_eq!(ft.reported_name(), "w+FT");
    }

    #[test]
    fn prepare_matches_direct_generation() {
        let spec = WorkloadSpec::new("spec-prep", LayerShape::new(4, 4, 8, 64), profile());
        let prepared = spec.prepare().unwrap();
        let direct = WorkloadGenerator::default()
            .generate("spec-prep", LayerShape::new(4, 4, 8, 64), &profile())
            .unwrap();
        assert_eq!(prepared.workload.spikes, direct.spikes);
        assert_eq!(prepared.workload.weights, direct.weights);
    }

    #[test]
    fn fleet_builds_heterogeneous_boxed_models() {
        let fleet = AcceleratorSpec::headline_fleet();
        assert_eq!(fleet.len(), 7);
        let names: Vec<String> = fleet.iter().map(AcceleratorSpec::display_name).collect();
        assert!(names.contains(&"SparTen-SNN".to_owned()));
        assert!(names.contains(&"LoAS".to_owned()));
        // The FT spec asks for the masked workload; plain LoAS does not.
        assert!(AcceleratorSpec::loas_ft().wants_fine_tuned_workload());
        assert!(!AcceleratorSpec::loas().wants_fine_tuned_workload());
    }

    #[test]
    fn push_network_expands_layers_and_marks_ft() {
        let mut campaign = Campaign::new("t");
        let spec = networks::alexnet();
        let plain = campaign.push_network(&spec, AcceleratorSpec::loas(), DEFAULT_SEED);
        let ft = campaign.push_network(&spec, AcceleratorSpec::loas_ft(), DEFAULT_SEED);
        assert_eq!(plain.len(), spec.depth());
        assert_eq!(ft.len(), spec.depth());
        assert!(campaign.jobs()[plain.start..plain.end]
            .iter()
            .all(|j| !j.workload.fine_tuned));
        assert!(campaign.jobs()[ft.start..ft.end]
            .iter()
            .all(|j| j.workload.fine_tuned));
        // Unique workloads: plain + ft variants of each layer.
        assert_eq!(campaign.unique_workloads().len(), 2 * spec.depth());
    }

    #[test]
    fn product_covers_all_pairs() {
        let mut campaign = Campaign::new("p");
        let layers: Vec<WorkloadSpec> = networks::selected_layers()
            .iter()
            .map(WorkloadSpec::from_layer)
            .collect();
        let fleet = AcceleratorSpec::headline_fleet();
        let range = campaign.push_product(&layers, &fleet);
        assert_eq!(range.len(), layers.len() * fleet.len());
        // One fine-tuned + one plain variant per layer.
        assert_eq!(campaign.unique_workloads().len(), 2 * layers.len());
    }
}
