//! The content-keyed prepared-layer cache shared by all jobs of a campaign
//! (and across campaigns run on the same engine).
//!
//! Generating a workload and building its compressed views
//! ([`PreparedLayer`]) dominates campaign setup cost, and sweep-style
//! experiments reuse the same layer under many accelerator/configuration
//! variants. The cache guarantees each unique [`WorkloadKey`] is prepared
//! exactly once while resident; residency is bounded by a configurable
//! entry cap with least-recently-used eviction, so network-scale sweeps
//! cannot grow the cache without limit. The default cap is generous —
//! far above any single repro session's unique-workload count — so
//! eviction only engages on long-lived serving processes.

use crate::spec::WorkloadKey;
use loas_core::PreparedLayer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The default entry cap of a fresh cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Counters describing cache effectiveness over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreparedCacheStats {
    /// Workloads generated and prepared (one per unique key while
    /// resident; an evicted key regenerates on next use).
    pub generated: usize,
    /// Lookups served from the cache.
    pub hits: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted over the cache's lifetime.
    pub evictions: usize,
    /// The configured entry cap.
    pub capacity: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<WorkloadKey, (Arc<PreparedLayer>, u64)>,
    /// Monotonic access clock: entries stamp themselves on insert and on
    /// every hit; eviction removes the minimum stamp.
    tick: u64,
}

impl CacheInner {
    fn touch(&mut self, key: &WorkloadKey) -> Option<Arc<PreparedLayer>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(layer, stamp)| {
            *stamp = tick;
            layer.clone()
        })
    }

    /// Removes the least-recently-used entry. The min-scan is O(entries),
    /// which is fine here: an insert (the only caller at capacity) always
    /// follows a workload generation costing orders of magnitude more than
    /// scanning even the default 4096-entry cap.
    fn evict_lru(&mut self) -> bool {
        let Some(victim) = self
            .map
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(key, _)| key.clone())
        else {
            return false;
        };
        self.map.remove(&victim);
        true
    }
}

/// A thread-safe, content-keyed, LRU-bounded store of prepared layers.
#[derive(Debug)]
pub struct PreparedCache {
    inner: Mutex<CacheInner>,
    capacity: AtomicUsize,
    generated: AtomicUsize,
    hits: AtomicUsize,
    evictions: AtomicUsize,
}

impl Default for PreparedCache {
    fn default() -> Self {
        PreparedCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl PreparedCache {
    /// An empty cache at the default entry cap.
    pub fn new() -> Self {
        PreparedCache::default()
    }

    /// An empty cache holding at most `capacity` entries (clamped to at
    /// least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PreparedCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: AtomicUsize::new(capacity.max(1)),
            generated: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Reconfigures the entry cap (clamped to at least 1), evicting
    /// least-recently-used entries immediately if the cache is over the
    /// new bound.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("cache lock");
        while inner.map.len() > capacity && inner.evict_lru() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Looks a key up, counting a hit (and refreshing recency) on success.
    pub fn get(&self, key: &WorkloadKey) -> Option<Arc<PreparedLayer>> {
        let found = self.inner.lock().expect("cache lock").touch(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Whether a key is resident (no hit is counted, recency unchanged).
    pub fn contains(&self, key: &WorkloadKey) -> bool {
        self.inner.lock().expect("cache lock").map.contains_key(key)
    }

    /// Looks a key up without counting a hit (for internal derivations; job
    /// resolutions use [`PreparedCache::get`]). Recency is still refreshed
    /// so a derivation base is not the next eviction victim.
    pub fn peek(&self, key: &WorkloadKey) -> Option<Arc<PreparedLayer>> {
        self.inner.lock().expect("cache lock").touch(key)
    }

    /// Inserts a freshly generated layer, returning the resident `Arc` and
    /// evicting the least-recently-used entries if the cap is exceeded.
    /// The generation counter only advances when the key was actually
    /// vacant, so concurrent campaigns racing on one key (each campaign's
    /// own prepare phase claims every key at most once) cannot overcount.
    pub fn insert(&self, key: WorkloadKey, layer: PreparedLayer) -> Arc<PreparedLayer> {
        let capacity = self.capacity();
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let resident = match inner.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                entry.get_mut().1 = tick;
                entry.get().0.clone()
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                self.generated.fetch_add(1, Ordering::Relaxed);
                entry.insert((Arc::new(layer), tick)).0.clone()
            }
        };
        while inner.map.len() > capacity && inner.evict_lru() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        resident
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PreparedCacheStats {
        PreparedCacheStats {
            generated: self.generated.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache lock").map.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use loas_workloads::{LayerShape, SparsityProfile};

    fn spec(name: &str) -> WorkloadSpec {
        WorkloadSpec::new(
            name,
            LayerShape::new(4, 4, 8, 64),
            SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap(),
        )
    }

    #[test]
    fn hit_and_generation_accounting() {
        let cache = PreparedCache::new();
        let a = spec("a");
        assert!(cache.get(&a.key()).is_none());
        cache.insert(a.key(), a.prepare().unwrap());
        assert!(cache.get(&a.key()).is_some());
        assert!(cache.get(&a.key()).is_some());
        let stats = cache.stats();
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.capacity, DEFAULT_CACHE_CAPACITY);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let cache = PreparedCache::with_capacity(2);
        let (a, b, c) = (spec("a"), spec("b"), spec("c"));
        cache.insert(a.key(), a.prepare().unwrap());
        cache.insert(b.key(), b.prepare().unwrap());
        // Touch `a` so `b` is now least recently used.
        assert!(cache.get(&a.key()).is_some());
        cache.insert(c.key(), c.prepare().unwrap());
        assert!(cache.contains(&a.key()), "recently used entry survives");
        assert!(!cache.contains(&b.key()), "LRU entry evicted");
        assert!(cache.contains(&c.key()));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // An evicted key regenerates (and recounts) on reinsert.
        cache.insert(b.key(), b.prepare().unwrap());
        assert_eq!(cache.stats().generated, 4);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let cache = PreparedCache::with_capacity(3);
        for name in ["a", "b", "c"] {
            let s = spec(name);
            cache.insert(s.key(), s.prepare().unwrap());
        }
        cache.set_capacity(1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.capacity, 1);
        assert!(cache.contains(&spec("c").key()), "newest entry survives");
    }
}
