//! The content-keyed prepared-layer cache shared by all jobs of a campaign
//! (and across campaigns run on the same engine).
//!
//! Generating a workload and building its compressed views
//! ([`PreparedLayer`]) dominates campaign setup cost, and sweep-style
//! experiments reuse the same layer under many accelerator/configuration
//! variants. The cache guarantees each unique [`WorkloadKey`] is prepared
//! exactly once; everything downstream shares the `Arc`.

use crate::spec::WorkloadKey;
use loas_core::PreparedLayer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counters describing cache effectiveness over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreparedCacheStats {
    /// Workloads generated and prepared (one per unique key, ever).
    pub generated: usize,
    /// Lookups served from the cache.
    pub hits: usize,
    /// Entries currently resident.
    pub entries: usize,
}

/// A thread-safe, content-keyed store of prepared layers.
#[derive(Debug, Default)]
pub struct PreparedCache {
    entries: Mutex<HashMap<WorkloadKey, Arc<PreparedLayer>>>,
    generated: AtomicUsize,
    hits: AtomicUsize,
}

impl PreparedCache {
    /// An empty cache.
    pub fn new() -> Self {
        PreparedCache::default()
    }

    /// Looks a key up, counting a hit on success.
    pub fn get(&self, key: &WorkloadKey) -> Option<Arc<PreparedLayer>> {
        let found = self.entries.lock().expect("cache lock").get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Whether a key is resident (no hit is counted).
    pub fn contains(&self, key: &WorkloadKey) -> bool {
        self.entries.lock().expect("cache lock").contains_key(key)
    }

    /// Looks a key up without counting a hit (for internal derivations; job
    /// resolutions use [`PreparedCache::get`]).
    pub fn peek(&self, key: &WorkloadKey) -> Option<Arc<PreparedLayer>> {
        self.entries.lock().expect("cache lock").get(key).cloned()
    }

    /// Inserts a freshly generated layer, returning the resident `Arc`. The
    /// generation counter only advances when the key was actually vacant,
    /// so concurrent campaigns racing on one key (each campaign's own
    /// prepare phase claims every key at most once) cannot overcount.
    pub fn insert(&self, key: WorkloadKey, layer: PreparedLayer) -> Arc<PreparedLayer> {
        let mut entries = self.entries.lock().expect("cache lock");
        match entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => entry.get().clone(),
            std::collections::hash_map::Entry::Vacant(entry) => {
                self.generated.fetch_add(1, Ordering::Relaxed);
                entry.insert(Arc::new(layer)).clone()
            }
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PreparedCacheStats {
        PreparedCacheStats {
            generated: self.generated.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use loas_workloads::{LayerShape, SparsityProfile};

    fn spec(name: &str) -> WorkloadSpec {
        WorkloadSpec::new(
            name,
            LayerShape::new(4, 4, 8, 64),
            SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap(),
        )
    }

    #[test]
    fn hit_and_generation_accounting() {
        let cache = PreparedCache::new();
        let a = spec("a");
        assert!(cache.get(&a.key()).is_none());
        cache.insert(a.key(), a.prepare().unwrap());
        assert!(cache.get(&a.key()).is_some());
        assert!(cache.get(&a.key()).is_some());
        let stats = cache.stats();
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
    }
}
