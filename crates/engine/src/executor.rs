//! The campaign executor: a shard-per-worker thread pool over `std::thread`
//! and channels, with deterministic ordered result streaming.
//!
//! Scheduling is dynamic (workers claim the next job off a shared atomic
//! counter, so long jobs never serialize behind short ones) but results are
//! emitted to the sink in job-submission order, which makes campaign output
//! — including the serialized report stream — byte-identical for any worker
//! count.

use crate::cache::{PreparedCache, PreparedCacheStats};
use crate::memo::ResultStore;
use crate::report::{CampaignOutcome, JobRecord};
use crate::spec::{Campaign, WorkloadSpec};
use loas_core::{LayerReport, PreparedLayer};
use loas_workloads::WorkloadError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Errors surfaced while executing a campaign.
#[derive(Debug)]
pub enum EngineError {
    /// A workload spec could not be generated (infeasible profile).
    Workload {
        /// Name of the failing workload spec.
        workload: String,
        /// The underlying generator error.
        source: WorkloadError,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Workload { workload, source } => {
                write!(f, "cannot generate workload `{workload}`: {source}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Workload { source, .. } => Some(source),
        }
    }
}

/// The deterministic multi-threaded campaign runner.
///
/// An engine owns a [`PreparedCache`] that persists across campaigns, so a
/// sequence of campaigns sharing workloads (the typical figure-regeneration
/// session) generates each unique workload once.
#[derive(Debug)]
pub struct Engine {
    workers: usize,
    cache: PreparedCache,
}

impl Default for Engine {
    /// One worker per available hardware thread.
    fn default() -> Self {
        Engine::new(default_workers())
    }
}

/// The number of worker threads [`Engine::default`] uses: the
/// `LOAS_WORKERS` environment variable when set to a positive integer
/// (letting daemons and CI pin parallelism without plumbing flags),
/// otherwise one per available hardware thread.
pub fn default_workers() -> usize {
    if let Some(pinned) = pinned_workers(std::env::var("LOAS_WORKERS").ok().as_deref()) {
        return pinned;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Interprets a `LOAS_WORKERS` value: positive integers pin the worker
/// count, anything else (absent, unparsable, zero) falls through to the
/// hardware default.
fn pinned_workers(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|value| value.parse::<usize>().ok())
        .filter(|&workers| workers >= 1)
}

/// Intra-layer worker share per job: the engine budget divided by the
/// job-level threads actually spawned, at least 1. With more jobs than
/// budget every job runs its pure phase inline; a 1-job campaign on an
/// 8-worker engine sweeps its row tiles on all 8.
fn intra_share(budget: usize, job_workers: usize) -> usize {
    (budget / job_workers.max(1)).max(1)
}

impl Engine {
    /// An engine with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Engine {
            workers: workers.max(1),
            cache: PreparedCache::new(),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Reconfigures the worker count (clamped to at least 1). The cache is
    /// unaffected.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Lifetime cache counters.
    pub fn cache_stats(&self) -> PreparedCacheStats {
        self.cache.stats()
    }

    /// Rebounds the prepared-layer cache to at most `capacity` entries
    /// (LRU eviction; clamped to at least 1), evicting immediately if the
    /// cache is over the new bound.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// Prepares (generating in parallel where missing) the given workload
    /// specs and returns their shared layers in input order.
    ///
    /// # Errors
    ///
    /// Returns the first (by spec order) generation failure.
    pub fn prepare(&self, specs: &[WorkloadSpec]) -> Result<Vec<Arc<PreparedLayer>>, EngineError> {
        self.prepare_missing(specs)?;
        specs.iter().map(|spec| self.resolve(spec)).collect()
    }

    /// Resolves one spec to its prepared layer, regenerating privately if
    /// the entry was already evicted again (cache cap below the working
    /// set) rather than thrashing the cache or panicking.
    fn resolve(&self, spec: &WorkloadSpec) -> Result<Arc<PreparedLayer>, EngineError> {
        match self.cache.get(&spec.key()) {
            Some(layer) => Ok(layer),
            None => spec
                .prepare()
                .map(Arc::new)
                .map_err(|source| EngineError::Workload {
                    workload: spec.name.clone(),
                    source,
                }),
        }
    }

    /// Generates every spec whose key is not yet resident, each exactly
    /// once, sharded across the worker pool. Runs in two waves: plain
    /// workloads generate first (plus the bases of any missing fine-tuned
    /// specs), then fine-tuned variants derive from their cached base by
    /// masking — so a campaign running both LoAS and LoAS(FT) on a layer
    /// pays for one generation, not two.
    fn prepare_missing(&self, specs: &[WorkloadSpec]) -> Result<(), EngineError> {
        let mut seen = std::collections::HashSet::new();
        let missing: Vec<&WorkloadSpec> = specs
            .iter()
            .filter(|spec| seen.insert(spec.key()) && !self.cache.contains(&spec.key()))
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        let mut bases: Vec<WorkloadSpec> = Vec::new();
        let mut derived: Vec<&WorkloadSpec> = Vec::new();
        for spec in missing {
            if spec.fine_tuned {
                let base = spec.base();
                if !self.cache.contains(&base.key())
                    && !bases.iter().any(|b: &WorkloadSpec| b.key() == base.key())
                {
                    bases.push(base);
                }
                derived.push(spec);
            } else {
                bases.push(spec.clone());
            }
        }
        self.generate_wave(&bases, |spec| spec.prepare())?;
        self.generate_wave(&derived, |spec| {
            // The base normally survives from the first wave; under a cache
            // cap smaller than the wave it may already be evicted, in which
            // case the derived spec regenerates standalone.
            match self.cache.peek(&spec.base().key()) {
                Some(base) => Ok(spec.prepare_from_base(&base)),
                None => spec.prepare(),
            }
        })
    }

    /// Shards one wave of workload preparation across the worker pool,
    /// inserting results into the cache and surfacing the first (by spec
    /// order) failure.
    fn generate_wave<S: std::borrow::Borrow<WorkloadSpec> + Sync>(
        &self,
        wave: &[S],
        prepare: impl Fn(&WorkloadSpec) -> Result<PreparedLayer, loas_workloads::WorkloadError> + Sync,
    ) -> Result<(), EngineError> {
        if wave.is_empty() {
            return Ok(());
        }
        let next = AtomicUsize::new(0);
        let failures: Mutex<Vec<(usize, EngineError)>> = Mutex::new(Vec::new());
        let workers = self.workers.min(wave.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = wave.get(index).map(|s| s.borrow()) else {
                        break;
                    };
                    match prepare(spec) {
                        Ok(layer) => {
                            self.cache.insert(spec.key(), layer);
                        }
                        Err(source) => failures.lock().expect("failure lock").push((
                            index,
                            EngineError::Workload {
                                workload: spec.name.clone(),
                                source,
                            },
                        )),
                    }
                });
            }
        });
        let mut failures = failures.into_inner().expect("failure lock");
        failures.sort_by_key(|(index, _)| *index);
        match failures.into_iter().next() {
            Some((_, error)) => Err(error),
            None => Ok(()),
        }
    }

    /// Runs a campaign to completion.
    ///
    /// # Errors
    ///
    /// Returns the first workload-generation failure; no jobs run in that
    /// case.
    pub fn run(&self, campaign: &Campaign) -> Result<CampaignOutcome, EngineError> {
        self.run_streaming(campaign, |_| {})
    }

    /// Runs a campaign, invoking `sink` with each completed [`JobRecord`]
    /// **in job-submission order** as soon as that prefix of the campaign
    /// has finished. This is the streaming serialization hook: writing
    /// `record.to_json()` lines from the sink yields an incrementally
    /// flushed yet fully deterministic report stream.
    ///
    /// # Errors
    ///
    /// Returns the first workload-generation failure; no jobs run in that
    /// case.
    pub fn run_streaming(
        &self,
        campaign: &Campaign,
        sink: impl FnMut(&JobRecord),
    ) -> Result<CampaignOutcome, EngineError> {
        self.run_where(campaign, None, None, sink)
    }

    /// The fully general campaign entry point: runs an optional **subset**
    /// of the campaign's jobs against an optional **result store**.
    ///
    /// * `selection` — job ids to execute (`None` = all). Ids are
    ///   deduplicated and sorted; records stream and aggregate in ascending
    ///   **original** job-id order, so shard reports from disjoint
    ///   selections merge by id into the exact single-process report.
    /// * `store` — a [`ResultStore`] consulted per job before scheduling:
    ///   hits replay the memoized [`LayerReport`] without preparing the
    ///   workload or simulating, and every freshly simulated result is
    ///   written back. [`CampaignOutcome::memo_hits`] /
    ///   [`CampaignOutcome::simulated`] report the split.
    ///
    /// # Errors
    ///
    /// Returns the first workload-generation failure; no jobs run in that
    /// case.
    pub fn run_where(
        &self,
        campaign: &Campaign,
        selection: Option<&[usize]>,
        store: Option<&dyn ResultStore>,
        mut sink: impl FnMut(&JobRecord),
    ) -> Result<CampaignOutcome, EngineError> {
        let start = Instant::now();
        let stats_before = self.cache.stats();
        let jobs = campaign.jobs();
        let selected: Vec<usize> = match selection {
            Some(ids) => {
                let mut ids: Vec<usize> =
                    ids.iter().copied().filter(|&id| id < jobs.len()).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            }
            None => (0..jobs.len()).collect(),
        };

        // Memo resolution: replayed jobs skip workload preparation and
        // simulation entirely.
        let mut replayed: Vec<(usize, LayerReport)> = Vec::new();
        let mut to_run: Vec<usize> = Vec::new();
        for &index in &selected {
            let job = &jobs[index];
            match store.and_then(|s| s.load(job.memo_key())) {
                // Cross-check the stored identity against the job: a
                // 64-bit digest collision (or a store populated under a
                // different naming scheme) must read as a miss, never
                // silently substitute another job's metrics.
                Some(report)
                    if report.workload == job.workload.reported_name()
                        && report.accelerator == job.accelerator.display_name() =>
                {
                    replayed.push((index, report));
                }
                _ => to_run.push(index),
            }
        }
        let memo_hits = replayed.len();

        // Prepare only the workloads the simulated jobs need, each unique
        // key at most once. A job resolution counts as a cache hit only
        // when its key did not have to be generated for this campaign:
        // jobs beyond the first use of a fresh key, plus every use of keys
        // cached by earlier campaigns.
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<WorkloadSpec> = to_run
            .iter()
            .map(|&index| &jobs[index].workload)
            .filter(|workload| seen.insert(workload.key()))
            .cloned()
            .collect();
        let fresh_keys = unique
            .iter()
            .filter(|spec| !self.cache.contains(&spec.key()))
            .count();
        self.prepare_missing(&unique)?;
        let prepare_seconds = start.elapsed().as_secs_f64();

        let layers: Vec<Arc<PreparedLayer>> = to_run
            .iter()
            .map(|&index| self.resolve(&jobs[index].workload))
            .collect::<Result<_, _>>()?;

        let next = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel::<(usize, LayerReport, f64)>();
        let workers = self.workers.min(to_run.len().max(1));
        // Split the engine's worker budget between job-level and
        // intra-layer parallelism: campaigns with fewer jobs than budget
        // (the tail of a sharded sweep, or one huge layer) hand the spare
        // workers to each model's pure compute phase. Reports are
        // byte-identical for any split (models guarantee it).
        let intra_workers = intra_share(self.workers, workers);
        let records = std::thread::scope(|scope| {
            for _ in 0..workers {
                let sender = sender.clone();
                let next = &next;
                let layers = &layers;
                let to_run = &to_run;
                scope.spawn(move || loop {
                    let position = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = to_run.get(position) else {
                        break;
                    };
                    let job_start = Instant::now();
                    let mut model = jobs[index].accelerator.build();
                    model.set_intra_workers(intra_workers);
                    let report = model.run_layer(&layers[position]);
                    if sender
                        .send((index, report, job_start.elapsed().as_secs_f64()))
                        .is_err()
                    {
                        break;
                    }
                });
            }
            drop(sender);

            // Ordered streaming over the selected sequence: memoized
            // results seed the reorder buffer, fresh completions join as
            // they arrive, and the ready prefix is emitted in ascending
            // original-job-id order.
            let make_record = |index: usize, report: LayerReport, sim_seconds: f64| {
                let job = &jobs[index];
                JobRecord {
                    job: index,
                    label: job.label.clone(),
                    network: job.network.clone(),
                    layer_index: job.layer_index,
                    report,
                    sim_seconds,
                }
            };
            let mut pending: BTreeMap<usize, JobRecord> = std::mem::take(&mut replayed)
                .into_iter()
                .map(|(index, report)| (index, make_record(index, report, 0.0)))
                .collect();
            let mut records: Vec<JobRecord> = Vec::with_capacity(selected.len());
            let mut emit_ready = |pending: &mut BTreeMap<usize, JobRecord>,
                                  records: &mut Vec<JobRecord>| {
                while let Some(record) = selected
                    .get(records.len())
                    .and_then(|index| pending.remove(index))
                {
                    sink(&record);
                    records.push(record);
                }
            };
            emit_ready(&mut pending, &mut records);
            for (index, report, sim_seconds) in receiver {
                if let Some(store) = store {
                    store.store(jobs[index].memo_key(), &report);
                }
                pending.insert(index, make_record(index, report, sim_seconds));
                emit_ready(&mut pending, &mut records);
            }
            records
        });
        debug_assert_eq!(records.len(), selected.len());

        let stats_after = self.cache.stats();
        Ok(CampaignOutcome {
            campaign: campaign.name.clone(),
            workers: self.workers,
            records,
            wall_seconds: start.elapsed().as_secs_f64(),
            prepare_seconds,
            workloads_generated: stats_after.generated - stats_before.generated,
            cache_hits: to_run.len().saturating_sub(fresh_keys),
            memo_hits,
            simulated: to_run.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AcceleratorSpec;
    use loas_workloads::{LayerShape, SparsityProfile};

    fn small(name: &str) -> WorkloadSpec {
        WorkloadSpec::new(
            name,
            LayerShape::new(4, 6, 8, 96),
            SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap(),
        )
    }

    #[test]
    fn streaming_sink_sees_jobs_in_submission_order() {
        let engine = Engine::new(4);
        let mut campaign = Campaign::new("order");
        for accelerator in AcceleratorSpec::headline_fleet() {
            campaign.push_layer(small("order-w"), accelerator);
        }
        let mut seen = Vec::new();
        let outcome = engine
            .run_streaming(&campaign, |record| seen.push(record.job))
            .unwrap();
        assert_eq!(seen, (0..campaign.len()).collect::<Vec<_>>());
        assert_eq!(outcome.records.len(), campaign.len());
        assert!(outcome.wall_seconds > 0.0);
    }

    #[test]
    fn infeasible_profile_surfaces_as_error() {
        let engine = Engine::new(2);
        let mut campaign = Campaign::new("bad");
        // silent+FT below silent-only is inconsistent in any firing model
        // with these densities; profile construction succeeds but the
        // firing-model solve at T=1 cannot (density too high for 1 step).
        let profile = SparsityProfile::from_percentages(1.0, 50.0, 55.0, 98.0);
        if let Ok(profile) = profile {
            let spec = WorkloadSpec::new("bad", LayerShape::new(1, 4, 4, 16), profile);
            if spec.prepare().is_err() {
                campaign.push_layer(spec, AcceleratorSpec::loas());
                let error = engine.run(&campaign).unwrap_err();
                assert!(error.to_string().contains("bad"));
            }
        }
    }

    #[test]
    fn loas_workers_override_parsing() {
        // The env read itself is a one-liner; the interpretation rules are
        // what need pinning (and testing them via set_var would race the
        // parallel test harness).
        assert_eq!(pinned_workers(Some("3")), Some(3));
        assert_eq!(pinned_workers(Some("1")), Some(1));
        assert_eq!(pinned_workers(Some("0")), None, "zero is rejected");
        assert_eq!(pinned_workers(Some("not-a-number")), None);
        assert_eq!(pinned_workers(Some("")), None);
        assert_eq!(pinned_workers(None), None);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn intra_share_splits_the_budget() {
        assert_eq!(intra_share(8, 8), 1, "budget fully spent on jobs");
        assert_eq!(intra_share(8, 2), 4, "spare budget goes intra-layer");
        assert_eq!(intra_share(8, 1), 8, "single job gets everything");
        assert_eq!(intra_share(1, 1), 1);
        assert_eq!(intra_share(0, 0), 1, "degenerate inputs clamp to 1");
    }

    #[test]
    fn intra_worker_budgets_leave_campaign_output_byte_identical() {
        // The same campaign with wildly different worker budgets (and
        // therefore different intra-layer shares) must serialize
        // identically — the engine's determinism contract extended to the
        // two-phase kernels.
        let mut campaign = Campaign::new("intra-det");
        for accelerator in AcceleratorSpec::headline_fleet() {
            campaign.push_layer(small("intra-w"), accelerator);
        }
        let golden = Engine::new(1).run(&campaign).unwrap().jsonl();
        for workers in [2usize, 5] {
            let outcome = Engine::new(workers).run(&campaign).unwrap();
            assert_eq!(outcome.jsonl(), golden, "workers={workers}");
        }
    }

    #[test]
    fn empty_campaign_completes_trivially() {
        let engine = Engine::new(3);
        let outcome = engine.run(&Campaign::new("empty")).unwrap();
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.jsonl(), "");
    }
}
