//! Result memoization: stable job keys, the pluggable [`ResultStore`]
//! source/sink, and the on-disk content-addressed [`MemoStore`].
//!
//! Campaign jobs are pure functions of their `(workload, accelerator)`
//! content, so completed [`LayerReport`]s can be persisted and replayed:
//! a resubmitted or overlapping campaign reloads cached results
//! byte-identically and only simulates novel jobs. The engine consults a
//! [`ResultStore`] before scheduling each job ([`Engine::run_where`]) and
//! writes every freshly simulated result back through it.
//!
//! [`Engine::run_where`]: crate::Engine::run_where

use loas_core::LayerReport;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Version salt folded into every [`MemoKey`](crate::MemoKey); bump when
/// the key derivation or the simulated semantics behind it change, so old
/// store entries become unreachable instead of wrong.
pub(crate) const MEMO_KEY_FORMAT: &str = "loas-memo/1";

/// A stable 64-bit content key identifying one `(workload, accelerator)`
/// simulation result across processes and platforms. Obtained from
/// [`JobSpec::memo_key`](crate::JobSpec::memo_key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemoKey(u64);

impl MemoKey {
    /// Wraps a digest (normally produced by the job-hashing path).
    pub fn new(digest: u64) -> Self {
        MemoKey(digest)
    }

    /// The raw 64-bit digest.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for MemoKey {
    /// Fixed-width lowercase hex — also the store's file-name stem.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A pluggable source/sink of memoized job results. Implementations must
/// be callable from the engine's emission loop; `load` misses must be
/// cheap because every job of an uncached campaign probes once.
pub trait ResultStore: Sync {
    /// Returns the memoized report for `key`, or `None` on a miss (or any
    /// decoding failure — a corrupt entry is a miss, never an error).
    fn load(&self, key: MemoKey) -> Option<LayerReport>;

    /// Persists a freshly simulated report under `key`. Failures are
    /// swallowed by implementations (memoization is an optimization; the
    /// campaign result is already in hand).
    fn store(&self, key: MemoKey, report: &LayerReport);
}

/// Counters describing one [`MemoStore`]'s lifetime effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStoreStats {
    /// Loads served from disk.
    pub hits: usize,
    /// Loads that found no (valid) entry.
    pub misses: usize,
    /// Reports written.
    pub stored: usize,
}

/// The on-disk content-addressed result store: one file per [`MemoKey`]
/// (`<digest-hex>.report`) holding the portable serialization of the
/// [`LayerReport`] (see [`loas_core::PORTABLE_FORMAT`]).
///
/// Writes go through a per-process temporary file and an atomic rename,
/// so concurrent shard processes sharing one store directory never
/// observe torn entries; racing writers of the same key settle on one
/// byte-identical winner (both serialize the same deterministic result).
#[derive(Debug)]
pub struct MemoStore {
    dir: PathBuf,
    hits: AtomicUsize,
    misses: AtomicUsize,
    stored: AtomicUsize,
}

impl MemoStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(MemoStore {
            dir,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            stored: AtomicUsize::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "report"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters.
    pub fn stats(&self) -> MemoStoreStats {
        MemoStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: MemoKey) -> PathBuf {
        self.dir.join(format!("{key}.report"))
    }
}

impl ResultStore for MemoStore {
    fn load(&self, key: MemoKey) -> Option<LayerReport> {
        let loaded = std::fs::read_to_string(self.entry_path(key))
            .ok()
            .and_then(|text| LayerReport::from_portable(&text).ok());
        match &loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    fn store(&self, key: MemoKey, report: &LayerReport) {
        let target = self.entry_path(key);
        let temp = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        if std::fs::write(&temp, report.to_portable()).is_ok()
            && std::fs::rename(&temp, &target).is_ok()
        {
            self.stored.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&temp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AcceleratorSpec, JobSpec, WorkloadSpec};
    use loas_core::LoasConfig;
    use loas_sim::{Cycle, EnergyBreakdown, SimStats};
    use loas_workloads::{LayerShape, SparsityProfile};

    fn job(name: &str, accelerator: AcceleratorSpec) -> JobSpec {
        let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap();
        JobSpec::new(
            WorkloadSpec::new(name, LayerShape::new(4, 4, 8, 64), profile),
            accelerator,
        )
    }

    fn report(cycles: u64) -> LayerReport {
        let mut stats = SimStats::new();
        stats.cycles = Cycle(cycles);
        LayerReport {
            workload: "w".to_owned(),
            accelerator: "a".to_owned(),
            stats,
            energy: EnergyBreakdown::default(),
            output: None,
        }
    }

    fn temp_store(tag: &str) -> MemoStore {
        let dir = std::env::temp_dir().join(format!("loas-memo-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        MemoStore::open(dir).unwrap()
    }

    #[test]
    fn memo_keys_identify_job_content_not_presentation() {
        let a = job("w", AcceleratorSpec::loas());
        let mut relabeled = job("w", AcceleratorSpec::loas());
        relabeled.label = "different label".to_owned();
        relabeled.network = Some("net".to_owned());
        relabeled.layer_index = 3;
        assert_eq!(a.memo_key(), relabeled.memo_key());

        assert_ne!(
            a.memo_key(),
            job("other", AcceleratorSpec::loas()).memo_key()
        );
        assert_ne!(
            a.memo_key(),
            job("w", AcceleratorSpec::sparten()).memo_key()
        );
        let tweaked = AcceleratorSpec::loas_with(LoasConfig::builder().timesteps(8).build());
        assert_ne!(a.memo_key(), job("w", tweaked).memo_key());
        // Stable across processes: a fixed spec hashes to a fixed digest.
        assert_eq!(a.memo_key(), a.clone().memo_key());
    }

    #[test]
    fn store_round_trips_and_counts() {
        let store = temp_store("roundtrip");
        let key = job("w", AcceleratorSpec::loas()).memo_key();
        assert!(store.load(key).is_none());
        store.store(key, &report(42));
        let loaded = store.load(key).expect("stored entry loads");
        assert_eq!(loaded.stats.cycles, Cycle(42));
        assert_eq!(store.len(), 1);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.stored), (1, 1, 1));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let store = temp_store("corrupt");
        let key = job("w", AcceleratorSpec::gamma()).memo_key();
        std::fs::write(store.entry_path(key), "not a report").unwrap();
        assert!(store.load(key).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
