//! The headline campaign: the paper's full accelerator fleet (SparTen-SNN,
//! GoSPA-SNN, Gamma-SNN, LoAS, LoAS-FT, PTB, Stellar) over the four
//! selected layers (A-L4, V-L8, R-L19, T-HFF), executed as one sharded
//! campaign.
//!
//! ```text
//! cargo run --release -p loas-engine --bin campaign -- \
//!     [--workers N] [--quick] [--jsonl <path>] [--no-serial] [--seed S]
//! ```
//!
//! By default the campaign runs twice — once on a single worker, once on
//! the full pool — verifies the two report streams are byte-identical, and
//! reports the measured wall-clock speedup in the campaign summary.

use loas_engine::{
    default_workers, AcceleratorSpec, Campaign, Engine, MemoStore, WorkloadSpec, DEFAULT_SEED,
};
use loas_workloads::networks;

const USAGE: &str = "usage: campaign [--workers N] [--quick] [--jsonl <path>] [--no-serial] \
                     [--seed S] [--store <dir>]";

struct Options {
    workers: usize,
    quick: bool,
    jsonl: Option<std::path::PathBuf>,
    compare_serial: bool,
    seed: u64,
    store: Option<std::path::PathBuf>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        workers: default_workers(),
        quick: false,
        jsonl: None,
        compare_serial: true,
        seed: DEFAULT_SEED,
        store: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let value = args.next().ok_or("--workers needs a value")?;
                options.workers = value
                    .parse()
                    .map_err(|_| format!("bad --workers value `{value}`"))?;
            }
            "--quick" => options.quick = true,
            "--jsonl" => {
                let value = args.next().ok_or("--jsonl needs a path")?;
                options.jsonl = Some(value.into());
            }
            "--no-serial" => options.compare_serial = false,
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("bad --seed value `{value}`"))?;
            }
            "--store" => {
                let value = args.next().ok_or("--store needs a directory")?;
                options.store = Some(value.into());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

fn headline_campaign(options: &Options) -> Campaign {
    let mut campaign = Campaign::new(if options.quick {
        "headline (quick)"
    } else {
        "headline"
    });
    let layers: Vec<WorkloadSpec> = networks::selected_layers()
        .iter()
        .map(|layer| {
            let layer = if options.quick {
                layer.shrunk_for_quick()
            } else {
                layer.clone()
            };
            WorkloadSpec::from_layer(&layer).with_seed(options.seed)
        })
        .collect();
    campaign.push_product(&layers, &AcceleratorSpec::headline_fleet());
    campaign
}

fn comparison_table(outcome: &loas_engine::CampaignOutcome) {
    // Rows = layers, columns = accelerators, cells = speedup over the
    // SparTen-SNN job on the same layer (the Fig. 12-style normalization).
    let fleet: Vec<String> = AcceleratorSpec::headline_fleet()
        .iter()
        .map(AcceleratorSpec::display_name)
        .collect();
    let per_layer = fleet.len();
    println!("\nspeedup over SparTen-SNN (per selected layer):");
    print!("{:<10}", "layer");
    for name in &fleet {
        print!("{name:>14}");
    }
    println!();
    for chunk in outcome.records.chunks(per_layer) {
        let baseline = &chunk[0].report; // SparTen is first in the fleet
        print!("{:<10}", chunk[0].report.workload);
        for record in chunk {
            print!("{:>13.2}x", record.report.speedup_over(baseline));
        }
        println!();
    }
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let campaign = headline_campaign(&options);
    let fleet_size = AcceleratorSpec::headline_fleet().len();
    println!(
        "headline campaign: {} jobs ({} layers x {} accelerators){}",
        campaign.len(),
        campaign.len() / fleet_size,
        fleet_size,
        if options.quick { " [quick shapes]" } else { "" }
    );

    let serial = if options.compare_serial {
        println!("reference pass: 1 worker...");
        let engine = Engine::new(1);
        Some(engine.run(&campaign).unwrap_or_else(|error| {
            eprintln!("campaign failed: {error}");
            std::process::exit(1);
        }))
    } else {
        None
    };

    let store = options.store.as_ref().map(|dir| {
        MemoStore::open(dir).unwrap_or_else(|error| {
            eprintln!("cannot open memo store {}: {error}", dir.display());
            std::process::exit(1);
        })
    });
    println!("parallel pass: {} workers...", options.workers);
    let engine = Engine::new(options.workers);
    let mut streamed = 0usize;
    let outcome = engine
        .run_where(
            &campaign,
            None,
            store.as_ref().map(|s| s as &dyn loas_engine::ResultStore),
            |record| {
                streamed += 1;
                eprintln!("  done [{:>3}] {}", record.job, record.label);
            },
        )
        .unwrap_or_else(|error| {
            eprintln!("campaign failed: {error}");
            std::process::exit(1);
        });
    assert_eq!(streamed, campaign.len());

    print!("\n{}", outcome.summary_table());
    if let Some(store) = &store {
        println!(
            "memo store at {}: {} hits, {} simulated this run; {} entries on disk",
            store.dir().display(),
            outcome.memo_hits,
            outcome.simulated,
            store.len()
        );
    }
    if let Some(serial) = &serial {
        let identical = serial.jsonl() == outcome.jsonl();
        println!(
            "single-worker vs {}-worker reports byte-identical: {}",
            options.workers, identical
        );
        println!(
            "measured wall-clock speedup: {:.2}x ({:.3}s -> {:.3}s)",
            serial.wall_seconds / outcome.wall_seconds.max(1e-9),
            serial.wall_seconds,
            outcome.wall_seconds
        );
        if !identical {
            eprintln!("DETERMINISM VIOLATION: report streams differ");
            std::process::exit(1);
        }
    }

    comparison_table(&outcome);

    if let Some(path) = &options.jsonl {
        std::fs::write(path, outcome.jsonl()).unwrap_or_else(|error| {
            eprintln!("cannot write {}: {error}", path.display());
            std::process::exit(1);
        });
        println!(
            "\nwrote {} records to {}",
            outcome.records.len(),
            path.display()
        );
    }
}
