//! Campaign results: per-job records, streaming serialization (JSON lines),
//! network-level aggregation, and the human summary table.
//!
//! Serialized job records are **deterministic**: they contain only fields
//! derived from the simulation itself, never wall-clock measurements, so a
//! campaign run with one worker and with N workers produces byte-identical
//! report streams. Timing lives in the [`CampaignOutcome`] summary instead.

use loas_core::{LayerReport, NetworkReport};
use loas_sim::TrafficClass;
use std::fmt::Write as _;

/// One completed job: the simulated [`LayerReport`] plus the campaign
/// bookkeeping needed to aggregate and serialize it.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (index in campaign submission order).
    pub job: usize,
    /// Human-readable job label.
    pub label: String,
    /// Owning network, if any.
    pub network: Option<String>,
    /// Layer position inside the owning network.
    pub layer_index: usize,
    /// The simulation result.
    pub report: LayerReport,
    /// Wall-clock seconds this job's simulation took (excluded from
    /// serialized records to keep them deterministic).
    pub sim_seconds: f64,
}

/// Escapes a string for embedding in the report streams' JSON (and in any
/// generated spec JSON — `loas-serve` shares this helper so both sides of
/// a byte-identity comparison escape identically).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JobRecord {
    /// Serializes the deterministic portion of this record as one JSON
    /// object (no trailing newline). Key order is fixed.
    pub fn to_json(&self) -> String {
        let stats = &self.report.stats;
        let energy = &self.report.energy;
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"job\":{},\"label\":\"{}\",",
            self.job,
            json_escape(&self.label)
        );
        match &self.network {
            Some(network) => {
                let _ = write!(
                    line,
                    "\"network\":\"{}\",\"layer_index\":{},",
                    json_escape(network),
                    self.layer_index
                );
            }
            None => line.push_str("\"network\":null,\"layer_index\":0,"),
        }
        let _ = write!(
            line,
            "\"workload\":\"{}\",\"accelerator\":\"{}\",",
            json_escape(&self.report.workload),
            json_escape(&self.report.accelerator)
        );
        let _ = write!(
            line,
            "\"cycles\":{},\"stall_cycles\":{},",
            stats.cycles.get(),
            stats.stall_cycles.get()
        );
        let _ = write!(
            line,
            "\"dram_bytes\":{},\"sram_bytes\":{},\"cache_miss_rate\":{},",
            stats.dram.total(),
            stats.sram.total(),
            stats.cache.miss_rate()
        );
        let _ = write!(
            line,
            "\"dram_by_class\":{{\"weight\":{},\"input\":{},\"psum\":{},\"output\":{},\"format\":{}}},",
            stats.dram.get(TrafficClass::Weight),
            stats.dram.get(TrafficClass::Input),
            stats.dram.get(TrafficClass::Psum),
            stats.dram.get(TrafficClass::Output),
            stats.dram.get(TrafficClass::Format),
        );
        let _ = write!(
            line,
            "\"energy_pj\":{{\"dram\":{},\"sram\":{},\"compute\":{},\"sparsity\":{},\"static\":{},\"total\":{}}}}}",
            energy.dram_pj,
            energy.sram_pj,
            energy.compute_pj,
            energy.sparsity_pj,
            energy.static_pj,
            energy.total_pj()
        );
        line
    }
}

/// The completed campaign: records in job order plus execution metadata.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Campaign name.
    pub campaign: String,
    /// Worker threads used.
    pub workers: usize,
    /// Completed jobs, in submission order.
    pub records: Vec<JobRecord>,
    /// End-to-end wall-clock seconds (preparation + execution).
    pub wall_seconds: f64,
    /// Wall-clock seconds of the workload-preparation phase.
    pub prepare_seconds: f64,
    /// Workloads generated for this campaign (cache misses).
    pub workloads_generated: usize,
    /// Jobs served by a shared preparation: job resolutions beyond the
    /// first use of each freshly generated key, plus every use of keys
    /// cached by earlier campaigns on the same engine.
    pub cache_hits: usize,
    /// Jobs replayed from the result-memoization store (zero when no store
    /// was supplied).
    pub memo_hits: usize,
    /// Jobs actually simulated this run (`records.len() - memo_hits`).
    pub simulated: usize,
}

impl CampaignOutcome {
    /// The layer report of job `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn layer_report(&self, job: usize) -> &LayerReport {
        &self.records[job].report
    }

    /// The deterministic JSON-lines serialization of all records (one
    /// object per line, trailing newline). Byte-identical across worker
    /// counts for identical campaigns and seeds.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }

    /// Aggregates records into [`NetworkReport`]s, grouped by
    /// `(network, accelerator)` in first-appearance order with layers in
    /// network position order. Standalone-layer jobs are skipped.
    pub fn network_reports(&self) -> Vec<NetworkReport> {
        let mut order: Vec<(String, String)> = Vec::new();
        let mut grouped: std::collections::HashMap<(String, String), Vec<&JobRecord>> =
            std::collections::HashMap::new();
        for record in &self.records {
            let Some(network) = &record.network else {
                continue;
            };
            let group = (network.clone(), record.report.accelerator.clone());
            if !grouped.contains_key(&group) {
                order.push(group.clone());
            }
            grouped.entry(group).or_default().push(record);
        }
        order
            .into_iter()
            .map(|group| {
                let mut members = grouped.remove(&group).expect("group recorded");
                members.sort_by_key(|record| record.layer_index);
                NetworkReport::new(
                    &group.0,
                    &group.1,
                    members.into_iter().map(|r| r.report.clone()).collect(),
                )
            })
            .collect()
    }

    /// Total simulation seconds summed over jobs (CPU-side work; exceeds
    /// `wall_seconds` when workers overlap).
    pub fn total_sim_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.sim_seconds).sum()
    }

    /// The human-readable campaign summary: per-job table plus execution
    /// and cache statistics (this is where wall-clock timing is reported).
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign `{}`: {} jobs on {} worker{} in {:.3}s wall ({:.3}s preparing workloads, {:.3}s total simulation)",
            self.campaign,
            self.records.len(),
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall_seconds,
            self.prepare_seconds,
            self.total_sim_seconds(),
        );
        let _ = writeln!(
            out,
            "workload cache: {} generated, {} hits",
            self.workloads_generated, self.cache_hits
        );
        if self.memo_hits > 0 {
            let _ = writeln!(
                out,
                "result memo: {} hits, {} simulated",
                self.memo_hits, self.simulated
            );
        }
        let label_width = self
            .records
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(3)
            .max(5);
        let _ = writeln!(
            out,
            "{:>4}  {:<label_width$}  {:>14}  {:>12}  {:>12}  {:>9}",
            "job", "label", "cycles", "dram KB", "energy uJ", "sim s"
        );
        for record in &self.records {
            let _ = writeln!(
                out,
                "{:>4}  {:<label_width$}  {:>14}  {:>12.1}  {:>12.2}  {:>9.3}",
                record.job,
                record.label,
                record.report.stats.cycles.get(),
                record.report.stats.dram.total_kb(),
                record.report.energy.total_pj() / 1e6,
                record.sim_seconds,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_sim::{Cycle, EnergyBreakdown, SimStats};

    fn record(job: usize, network: Option<&str>, layer_index: usize, cycles: u64) -> JobRecord {
        let mut stats = SimStats::new();
        stats.cycles = Cycle(cycles);
        JobRecord {
            job,
            label: format!("job-{job}"),
            network: network.map(str::to_owned),
            layer_index,
            report: LayerReport {
                workload: format!("w{job}"),
                accelerator: "LoAS".to_owned(),
                stats,
                energy: EnergyBreakdown::default(),
                output: None,
            },
            sim_seconds: 0.25,
        }
    }

    fn outcome(records: Vec<JobRecord>) -> CampaignOutcome {
        let simulated = records.len();
        CampaignOutcome {
            campaign: "t".to_owned(),
            workers: 2,
            records,
            wall_seconds: 1.0,
            prepare_seconds: 0.5,
            workloads_generated: 1,
            cache_hits: 3,
            memo_hits: 0,
            simulated,
        }
    }

    #[test]
    fn json_lines_are_deterministic_and_escaped() {
        let mut with_quote = record(0, None, 0, 10);
        with_quote.label = "needs \"escaping\"\n".to_owned();
        let out = outcome(vec![with_quote, record(1, Some("net"), 0, 20)]);
        let jsonl = out.jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("needs \\\"escaping\\\"\\n"));
        assert!(jsonl.contains("\"network\":\"net\""));
        assert!(jsonl.contains("\"cycles\":10"));
        // Timing never leaks into the deterministic stream.
        assert!(!jsonl.contains("sim_seconds"));
        assert!(!jsonl.contains("0.25"));
    }

    #[test]
    fn network_grouping_orders_layers_by_index() {
        // Records arrive "out of order" relative to layer position.
        let out = outcome(vec![
            record(0, Some("net"), 1, 20),
            record(1, Some("net"), 0, 10),
            record(2, None, 0, 99),
        ]);
        let reports = out.network_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].network, "net");
        assert_eq!(reports[0].layers.len(), 2);
        assert_eq!(reports[0].layers[0].stats.cycles, Cycle(10));
        assert_eq!(reports[0].total_cycles(), Cycle(30));
    }

    #[test]
    fn summary_reports_walltime_and_cache() {
        let out = outcome(vec![record(0, None, 0, 10)]);
        let summary = out.summary_table();
        assert!(summary.contains("1 jobs on 2 workers"));
        assert!(summary.contains("1 generated, 3 hits"));
        assert!(summary.contains("cycles"));
    }
}
