//! # loas-engine — a deterministic, parallel simulation-campaign runner
//!
//! The LoAS reproduction evaluates accelerator models one `(accelerator,
//! layer)` pair at a time. This crate turns those pairs into **jobs** and
//! batches of them into **campaigns**, executed by a shard-per-worker
//! thread pool with three guarantees:
//!
//! 1. **Determinism** — every job carries an explicit seed and results are
//!    emitted in submission order, so campaign reports (including the
//!    streaming JSON-lines serialization) are byte-identical for any worker
//!    count;
//! 2. **Prepared-layer caching** — workloads are content-keyed
//!    ([`WorkloadKey`]) and each unique workload is generated and
//!    compressed exactly once per engine, however many jobs or campaigns
//!    reference it;
//! 3. **Streaming reports** — a sink observes each [`JobRecord`] as soon as
//!    its prefix of the campaign completes, and [`CampaignOutcome`]
//!    aggregates per-layer results into [`NetworkReport`]s plus a human
//!    summary with measured wall-clock timing.
//!
//! On top of those, [`Engine::run_where`] generalizes execution for the
//! `loas-serve` front end: an optional **job-id selection** runs one shard
//! of a campaign (records keep their original ids, so shard reports merge
//! byte-identically), and an optional [`ResultStore`] **memoizes results**
//! by `(workload, accelerator)` content hash ([`JobSpec::memo_key`]) so
//! resubmitted campaigns replay cached reports instead of simulating. The
//! on-disk [`MemoStore`] is the durable implementation shared by
//! `loas-serve`, the `campaign` binary (`--store`), and `repro`
//! (`--store`).
//!
//! The `campaign` binary replays the paper's headline comparison (the full
//! accelerator fleet over the four selected layers) as one campaign:
//!
//! ```text
//! cargo run --release -p loas-engine --bin campaign -- --quick --workers 8
//! ```
//!
//! [`NetworkReport`]: loas_core::NetworkReport
//!
//! # Examples
//!
//! Run a two-accelerator comparison campaign on one small layer:
//!
//! ```
//! use loas_engine::{AcceleratorSpec, Campaign, Engine, WorkloadSpec};
//! use loas_workloads::{LayerShape, SparsityProfile};
//!
//! let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2)?;
//! let layer = WorkloadSpec::new("demo", LayerShape::new(4, 8, 16, 128), profile);
//! let mut campaign = Campaign::new("demo");
//! let loas = campaign.push_layer(layer.clone(), AcceleratorSpec::loas());
//! let sparten = campaign.push_layer(layer, AcceleratorSpec::sparten());
//!
//! let engine = Engine::new(2);
//! let outcome = engine.run(&campaign)?;
//! let speedup = outcome.layer_report(loas).speedup_over(outcome.layer_report(sparten));
//! assert!(speedup > 1.0);
//! // The same workload key backs both jobs: generated once, shared after.
//! assert_eq!(outcome.workloads_generated, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cache;
mod executor;
pub(crate) mod memo;
mod report;
mod spec;

pub use cache::{PreparedCache, PreparedCacheStats, DEFAULT_CACHE_CAPACITY};
pub use executor::{default_workers, Engine, EngineError};
pub use memo::{MemoKey, MemoStore, MemoStoreStats, ResultStore};
pub use report::{json_escape, CampaignOutcome, JobRecord};
pub use spec::{AcceleratorSpec, Campaign, JobSpec, WorkloadKey, WorkloadSpec, DEFAULT_SEED};
