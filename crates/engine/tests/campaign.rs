//! Engine acceptance tests: campaign determinism across worker counts,
//! exactly-once workload preparation, and network-level aggregation
//! equivalence with direct accelerator runs.

use loas_core::Accelerator;
use loas_engine::{AcceleratorSpec, Campaign, Engine, WorkloadSpec};
use loas_workloads::networks;
use loas_workloads::{LayerShape, SparsityProfile};

fn profile() -> SparsityProfile {
    SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap()
}

fn small_layer(name: &str, seed: u64) -> WorkloadSpec {
    WorkloadSpec::new(name, LayerShape::new(4, 8, 16, 192), profile()).with_seed(seed)
}

/// A small but heterogeneous campaign: 3 workloads x the full 7-model
/// fleet, with distinct seeds on two of the workloads.
fn mixed_campaign() -> Campaign {
    let mut campaign = Campaign::new("mixed");
    let layers = [
        small_layer("det-a", 1),
        small_layer("det-b", 2),
        small_layer("det-c", loas_engine::DEFAULT_SEED),
    ];
    campaign.push_product(&layers, &AcceleratorSpec::headline_fleet());
    campaign
}

/// The acceptance gate of the two-phase kernel PR: the full headline
/// campaign — 7 accelerators x the 4 selected Table II layers — produces
/// byte-identical portable `LayerReport`s for intra-layer worker counts
/// {1, 2, 4}, job by job.
#[test]
fn headline_campaign_is_byte_identical_across_intra_worker_counts() {
    let mut campaign = Campaign::new("headline-intra");
    let layers: Vec<WorkloadSpec> = networks::selected_layers()
        .iter()
        .map(WorkloadSpec::from_layer)
        .collect();
    campaign.push_product(&layers, &AcceleratorSpec::headline_fleet());
    assert_eq!(campaign.len(), 7 * 4);

    let engine = Engine::new(2);
    let prepared: Vec<_> = campaign
        .jobs()
        .iter()
        .map(|job| {
            engine
                .prepare(std::slice::from_ref(&job.workload))
                .unwrap()
                .remove(0)
        })
        .collect();
    for (job, layer) in campaign.jobs().iter().zip(&prepared) {
        let golden = {
            let mut model = job.accelerator.build();
            model.set_intra_workers(1);
            model.run_layer(layer).to_portable()
        };
        for intra in [2usize, 4] {
            let mut model = job.accelerator.build();
            model.set_intra_workers(intra);
            assert_eq!(
                model.run_layer(layer).to_portable(),
                golden,
                "{} diverges at {intra} intra workers",
                job.label
            );
        }
    }
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let campaign = mixed_campaign();
    let serial = Engine::new(1).run(&campaign).unwrap();
    let parallel = Engine::new(4).run(&campaign).unwrap();
    let wide = Engine::new(13).run(&campaign).unwrap();
    assert_eq!(serial.records.len(), campaign.len());
    let reference = serial.jsonl();
    assert!(!reference.is_empty());
    assert_eq!(reference, parallel.jsonl(), "1 vs 4 workers diverged");
    assert_eq!(reference, wide.jsonl(), "1 vs 13 workers diverged");
    // Network grouping and summaries derive from the same records; spot
    // check cycles line up job by job.
    for (a, b) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(a.job, b.job);
        assert_eq!(a.report.stats.cycles, b.report.stats.cycles);
        assert_eq!(a.report.energy.total_pj(), b.report.energy.total_pj());
    }
}

#[test]
fn each_unique_workload_key_is_generated_exactly_once() {
    let campaign = mixed_campaign();
    // 3 plain + 3 fine-tuned variants (LoAS-FT asks for masked workloads).
    let unique = campaign.unique_workloads().len();
    assert_eq!(unique, 6);

    let engine = Engine::new(4);
    let outcome = engine.run(&campaign).unwrap();
    assert_eq!(outcome.workloads_generated, unique);
    assert_eq!(engine.cache_stats().generated, unique);
    assert_eq!(engine.cache_stats().entries, unique);
    // Each fresh key is "missed" once; all other jobs share a preparation.
    assert_eq!(outcome.cache_hits, campaign.len() - unique);

    // Re-running the same campaign on the same engine generates nothing:
    // every job is a cache hit.
    let again = engine.run(&campaign).unwrap();
    assert_eq!(again.workloads_generated, 0);
    assert_eq!(again.cache_hits, campaign.len());
    assert_eq!(engine.cache_stats().generated, unique);
    assert_eq!(again.jsonl(), outcome.jsonl());
}

#[test]
fn network_aggregation_matches_direct_run() {
    let mut spec = networks::alexnet();
    for layer in &mut spec.layers {
        layer.shape.m = layer.shape.m.clamp(1, 8);
        layer.shape.n = layer.shape.n.min(16);
        layer.shape.k = layer.shape.k.min(256);
    }
    let mut campaign = Campaign::new("network");
    campaign.push_network(&spec, AcceleratorSpec::loas(), loas_engine::DEFAULT_SEED);
    let outcome = Engine::new(4).run(&campaign).unwrap();

    let reports = outcome.network_reports();
    assert_eq!(reports.len(), 1);
    let engine_report = &reports[0];
    assert_eq!(engine_report.network, spec.name);
    assert_eq!(engine_report.layers.len(), spec.depth());

    // Direct reference: generate + prepare + run the same layers inline.
    let generator = loas_workloads::WorkloadGenerator::default();
    let layers: Vec<loas_core::PreparedLayer> = spec
        .generate(&generator)
        .unwrap()
        .iter()
        .map(loas_core::PreparedLayer::new)
        .collect();
    let direct = loas_core::Loas::default().run_network(&spec.name, &layers);
    assert_eq!(engine_report.total_cycles(), direct.total_cycles());
    assert_eq!(
        engine_report.total_energy().total_pj(),
        direct.total_energy().total_pj()
    );
}

#[test]
fn boxed_fleet_runs_through_the_accelerator_trait() {
    // The enum dispatcher builds boxed trait objects usable wherever the
    // trait is expected — the seam heterogeneous fleets rely on.
    let layer = small_layer("boxed", 3).prepare().unwrap();
    let mut fleet: Vec<Box<dyn Accelerator + Send>> = AcceleratorSpec::headline_fleet()
        .iter()
        .map(AcceleratorSpec::build)
        .collect();
    let mut names = Vec::new();
    for model in &mut fleet {
        let report = model.run_layer(&layer);
        assert!(report.stats.cycles.get() > 0);
        names.push(model.name());
    }
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 7, "each fleet member reports a distinct name");
}

#[test]
fn subset_runs_partition_and_merge_byte_identically() {
    let campaign = mixed_campaign();
    let full = Engine::new(3).run(&campaign).unwrap();
    let reference = full.jsonl();

    // Round-robin shards: job i belongs to shard (i % n). Each shard runs
    // on its own engine (separate caches, like separate processes); lines
    // keep original job ids, so interleaving by id rebuilds the reference.
    for shards in [1usize, 2, 3, 5] {
        let mut lines: Vec<Option<String>> = vec![None; campaign.len()];
        for rank in 0..shards {
            let ids: Vec<usize> = (0..campaign.len()).filter(|i| i % shards == rank).collect();
            let engine = Engine::new(2);
            let outcome = engine
                .run_where(&campaign, Some(&ids), None, |_| {})
                .unwrap();
            assert_eq!(outcome.records.len(), ids.len());
            assert_eq!(outcome.simulated, ids.len());
            for record in &outcome.records {
                assert!(lines[record.job].replace(record.to_json()).is_none());
            }
        }
        let merged: String = lines
            .into_iter()
            .map(|line| line.expect("every job covered by exactly one shard") + "\n")
            .collect();
        assert_eq!(merged, reference, "{shards}-way shard merge diverged");
    }
}

#[test]
fn memo_store_replays_warm_campaigns_without_simulating() {
    let dir = std::env::temp_dir().join(format!("loas-engine-memo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = loas_engine::MemoStore::open(&dir).unwrap();
    let campaign = mixed_campaign();

    let cold_engine = Engine::new(4);
    let cold = cold_engine
        .run_where(&campaign, None, Some(&store), |_| {})
        .unwrap();
    assert_eq!(cold.memo_hits, 0);
    assert_eq!(cold.simulated, campaign.len());
    assert_eq!(store.len(), campaign.len(), "every result persisted");

    // A fresh engine (fresh prepared cache — a new process in miniature)
    // replays everything from the store: zero generations, zero jobs
    // simulated, byte-identical report.
    let warm_engine = Engine::new(4);
    let warm = warm_engine
        .run_where(&campaign, None, Some(&store), |_| {})
        .unwrap();
    assert_eq!(warm.memo_hits, campaign.len());
    assert_eq!(warm.simulated, 0);
    assert_eq!(warm.workloads_generated, 0);
    assert_eq!(warm_engine.cache_stats().generated, 0);
    assert_eq!(warm.jsonl(), cold.jsonl());

    // Overlapping campaign: half the jobs known, half novel.
    let mut extended = mixed_campaign();
    extended.push_layer(small_layer("novel", 9), AcceleratorSpec::loas());
    let mixed = Engine::new(4)
        .run_where(&extended, None, Some(&store), |_| {})
        .unwrap();
    assert_eq!(mixed.memo_hits, campaign.len());
    assert_eq!(mixed.simulated, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// The `LOAS_WORKERS` override rules are unit-tested against the pure
// parser in `executor.rs` (`loas_workers_override_parsing`); mutating the
// process environment here would race the parallel test harness.

#[test]
fn tiny_cache_capacity_still_completes_and_matches() {
    // Regression: a cache cap below the campaign's unique-workload count
    // (including the FT-derived second wave) must degrade to regeneration,
    // not panic, and must not change the report bytes.
    let campaign = mixed_campaign();
    let reference = Engine::new(2).run(&campaign).unwrap().jsonl();
    let tiny = Engine::new(2);
    tiny.set_cache_capacity(1);
    let outcome = tiny.run(&campaign).unwrap();
    assert_eq!(outcome.jsonl(), reference);
    assert!(tiny.cache_stats().evictions > 0, "the cap actually engaged");
    // The standalone prepare path survives a tiny cache too.
    let specs: Vec<loas_engine::WorkloadSpec> = campaign.unique_workloads();
    let layers = tiny.prepare(&specs).unwrap();
    assert_eq!(layers.len(), specs.len());
}
