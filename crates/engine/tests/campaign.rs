//! Engine acceptance tests: campaign determinism across worker counts,
//! exactly-once workload preparation, and network-level aggregation
//! equivalence with direct accelerator runs.

use loas_core::Accelerator;
use loas_engine::{AcceleratorSpec, Campaign, Engine, WorkloadSpec};
use loas_workloads::networks;
use loas_workloads::{LayerShape, SparsityProfile};

fn profile() -> SparsityProfile {
    SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap()
}

fn small_layer(name: &str, seed: u64) -> WorkloadSpec {
    WorkloadSpec::new(name, LayerShape::new(4, 8, 16, 192), profile()).with_seed(seed)
}

/// A small but heterogeneous campaign: 3 workloads x the full 7-model
/// fleet, with distinct seeds on two of the workloads.
fn mixed_campaign() -> Campaign {
    let mut campaign = Campaign::new("mixed");
    let layers = [
        small_layer("det-a", 1),
        small_layer("det-b", 2),
        small_layer("det-c", loas_engine::DEFAULT_SEED),
    ];
    campaign.push_product(&layers, &AcceleratorSpec::headline_fleet());
    campaign
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let campaign = mixed_campaign();
    let serial = Engine::new(1).run(&campaign).unwrap();
    let parallel = Engine::new(4).run(&campaign).unwrap();
    let wide = Engine::new(13).run(&campaign).unwrap();
    assert_eq!(serial.records.len(), campaign.len());
    let reference = serial.jsonl();
    assert!(!reference.is_empty());
    assert_eq!(reference, parallel.jsonl(), "1 vs 4 workers diverged");
    assert_eq!(reference, wide.jsonl(), "1 vs 13 workers diverged");
    // Network grouping and summaries derive from the same records; spot
    // check cycles line up job by job.
    for (a, b) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(a.job, b.job);
        assert_eq!(a.report.stats.cycles, b.report.stats.cycles);
        assert_eq!(a.report.energy.total_pj(), b.report.energy.total_pj());
    }
}

#[test]
fn each_unique_workload_key_is_generated_exactly_once() {
    let campaign = mixed_campaign();
    // 3 plain + 3 fine-tuned variants (LoAS-FT asks for masked workloads).
    let unique = campaign.unique_workloads().len();
    assert_eq!(unique, 6);

    let engine = Engine::new(4);
    let outcome = engine.run(&campaign).unwrap();
    assert_eq!(outcome.workloads_generated, unique);
    assert_eq!(engine.cache_stats().generated, unique);
    assert_eq!(engine.cache_stats().entries, unique);
    // Each fresh key is "missed" once; all other jobs share a preparation.
    assert_eq!(outcome.cache_hits, campaign.len() - unique);

    // Re-running the same campaign on the same engine generates nothing:
    // every job is a cache hit.
    let again = engine.run(&campaign).unwrap();
    assert_eq!(again.workloads_generated, 0);
    assert_eq!(again.cache_hits, campaign.len());
    assert_eq!(engine.cache_stats().generated, unique);
    assert_eq!(again.jsonl(), outcome.jsonl());
}

#[test]
fn network_aggregation_matches_direct_run() {
    let mut spec = networks::alexnet();
    for layer in &mut spec.layers {
        layer.shape.m = layer.shape.m.clamp(1, 8);
        layer.shape.n = layer.shape.n.min(16);
        layer.shape.k = layer.shape.k.min(256);
    }
    let mut campaign = Campaign::new("network");
    campaign.push_network(&spec, AcceleratorSpec::loas(), loas_engine::DEFAULT_SEED);
    let outcome = Engine::new(4).run(&campaign).unwrap();

    let reports = outcome.network_reports();
    assert_eq!(reports.len(), 1);
    let engine_report = &reports[0];
    assert_eq!(engine_report.network, spec.name);
    assert_eq!(engine_report.layers.len(), spec.depth());

    // Direct reference: generate + prepare + run the same layers inline.
    let generator = loas_workloads::WorkloadGenerator::default();
    let layers: Vec<loas_core::PreparedLayer> = spec
        .generate(&generator)
        .unwrap()
        .iter()
        .map(loas_core::PreparedLayer::new)
        .collect();
    let direct = loas_core::Loas::default().run_network(&spec.name, &layers);
    assert_eq!(engine_report.total_cycles(), direct.total_cycles());
    assert_eq!(
        engine_report.total_energy().total_pj(),
        direct.total_energy().total_pj()
    );
}

#[test]
fn boxed_fleet_runs_through_the_accelerator_trait() {
    // The enum dispatcher builds boxed trait objects usable wherever the
    // trait is expected — the seam heterogeneous fleets rely on.
    let layer = small_layer("boxed", 3).prepare().unwrap();
    let mut fleet: Vec<Box<dyn Accelerator + Send>> = AcceleratorSpec::headline_fleet()
        .iter()
        .map(AcceleratorSpec::build)
        .collect();
    let mut names = Vec::new();
    for model in &mut fleet {
        let report = model.run_layer(&layer);
        assert!(report.stats.cycles.get() > 0);
        names.push(model.name());
    }
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 7, "each fleet member reports a distinct name");
}
