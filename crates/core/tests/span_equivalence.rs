//! Property tests of the precomputed traffic spans: on random prepared
//! layers, the spans stored in [`PreparedLayer`] (and rebuilt for
//! non-default geometries) must agree with the original per-access
//! address arithmetic formula by formula — and the span-driven kernel
//! replay must produce byte-identical reports to the address-arithmetic
//! reference oracle.

use loas_core::{Accelerator, Loas, PreparedLayer, SweepStrategy, TrafficSpans};
use loas_sim::LineSpan;
use loas_sparse::POINTER_BITS;
use loas_workloads::{LayerShape, SparsityProfile, WorkloadGenerator};
use proptest::prelude::*;

/// Recomputes every span with the replay's original address arithmetic —
/// kept deliberately independent of `TrafficSpans::build`.
fn spans_by_address_arithmetic(
    layer: &PreparedLayer,
    weight_bits: usize,
    line_bytes: usize,
) -> TrafficSpans {
    let shape = layer.shape;
    let line = line_bytes as u64;
    let bm_bytes = (shape.k + POINTER_BITS).div_ceil(8) as u64;
    let manual_span = |addr: u64, bytes: u64| {
        if bytes == 0 {
            LineSpan::default()
        } else {
            let first = addr / line;
            let last = (addr + bytes - 1) / line;
            LineSpan {
                first_line: first,
                n_lines: last - first + 1,
            }
        }
    };
    let mut spans = TrafficSpans {
        weight_bits,
        line_bytes,
        a_bm_bytes: bm_bytes,
        a_bm_span: Vec::new(),
        a_payload_line: Vec::new(),
        a_payload_intra: Vec::new(),
        b_bm_bytes: bm_bytes,
        b_bm_span: Vec::new(),
        b_payload_span: Vec::new(),
        out_row_bytes: ((shape.n + POINTER_BITS) as u64 + (shape.n as u64 / 10) * shape.t as u64)
            .div_ceil(8),
    };
    let mut addr = 0u64;
    for fiber in &layer.a_fibers {
        spans.a_bm_span.push(manual_span(addr, bm_bytes));
        spans.a_payload_line.push((addr + bm_bytes) / line);
        spans.a_payload_intra.push((addr + bm_bytes) % line);
        addr += fiber.storage_bits(shape.t).div_ceil(8) as u64;
    }
    for fiber in &layer.b_fibers {
        spans.b_bm_span.push(manual_span(addr, bm_bytes));
        let payload_bytes = (fiber.nnz() * weight_bits).div_ceil(8) as u64;
        spans
            .b_payload_span
            .push(manual_span(addr + bm_bytes, payload_bytes));
        addr += fiber.storage_bits(weight_bits).div_ceil(8) as u64;
    }
    spans
}

fn generate_layer(
    t: usize,
    m: usize,
    n: usize,
    k: usize,
    profile: (f64, f64, f64, f64),
) -> Option<PreparedLayer> {
    let (origin, silent, silent_ft, weight) = profile;
    let profile = SparsityProfile::from_percentages(origin, silent, silent_ft, weight).ok()?;
    let workload = WorkloadGenerator::default()
        .generate(
            &format!("span-prop-{t}-{m}-{n}-{k}"),
            LayerShape::new(t, m, n, k),
            &profile,
        )
        .ok()?;
    Some(PreparedLayer::new(&workload))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn precomputed_spans_match_address_arithmetic(
        shape in (1usize..=8, 1usize..=24, 1usize..=24, 16usize..=320),
        profile in (55.0f64..90.0, 40.0f64..70.0, 0.0f64..12.0, 80.0f64..99.0),
        geometry in (0usize..3),
    ) {
        let (t, m, n, k) = shape;
        let (origin, silent, ft_extra, weight) = profile;
        let Some(layer) = generate_layer(t, m, n, k, (origin, silent, silent + ft_extra, weight))
        else {
            continue; // infeasible profile draw: nothing to check
        };
        let (weight_bits, line_bytes) = [(8, 64), (16, 64), (8, 32)][geometry];
        let built = layer.traffic_spans(weight_bits, line_bytes);
        let manual = spans_by_address_arithmetic(&layer, weight_bits, line_bytes);
        prop_assert_eq!(built.as_ref(), &manual);
        // The prepare-time table is the default-geometry build.
        prop_assert_eq!(
            &layer.traffic_spans,
            &spans_by_address_arithmetic(&layer, 8, 64)
        );
        // Per-pair payload spans: the (base line, intra offset) form must
        // agree with direct range math at every length.
        let a_bm = manual.a_bm_bytes;
        let mut byte_addr = 0u64;
        for (row, fiber) in layer.a_fibers.iter().enumerate() {
            for payload_bytes in [0u64, 1, 7, 63, 64, 65, 300] {
                prop_assert_eq!(
                    built.a_payload_span(row, payload_bytes),
                    LineSpan::of_range(byte_addr + a_bm, payload_bytes, line_bytes)
                );
            }
            byte_addr += fiber.storage_bits(layer.shape.t).div_ceil(8) as u64;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn span_replay_is_byte_identical_to_the_reference_oracle(
        shape in (2usize..=20, 2usize..=16, 16usize..=160),
        profile in (60.0f64..88.0, 45.0f64..65.0, 1.0f64..10.0, 82.0f64..98.0),
    ) {
        let (m, n, k) = shape;
        let (origin, silent, ft_extra, weight) = profile;
        let Some(layer) = generate_layer(4, m, n, k, (origin, silent, silent + ft_extra, weight))
        else {
            continue;
        };
        let golden = Loas::default()
            .with_sweep(SweepStrategy::Reference)
            .run_layer(&layer)
            .to_portable();
        let span = Loas::default()
            .with_sweep(SweepStrategy::Kernel)
            .run_layer(&layer)
            .to_portable();
        prop_assert_eq!(span, golden);
    }
}
