//! LoAS configuration (Table III).

/// Configuration of a LoAS instance. Defaults reproduce Table III:
/// 16 TPPEs, 8-bit weights, 256 KB 16-bank 16-way global cache, 16×16
/// swizzle-switch crossbars, 128 GB/s HBM, fast prefix-sum in 1 cycle,
/// laggy prefix-sum with 16 adders over 128-bit buffers (8 cycles), depth-8
/// FIFOs, 128-byte TPPE weight buffer, and T = 4 timesteps.
///
/// # Examples
///
/// ```
/// use loas_core::LoasConfig;
///
/// let config = LoasConfig::builder().tppes(32).timesteps(8).build();
/// assert_eq!(config.tppes, 32);
/// assert_eq!(config.timesteps, 8);
/// assert_eq!(config.laggy_latency_cycles(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoasConfig {
    /// Number of temporal-parallel processing elements.
    pub tppes: usize,
    /// Timesteps supported in parallel (accumulator lanes per TPPE).
    pub timesteps: usize,
    /// Weight precision in bits.
    pub weight_bits: usize,
    /// Bitmask buffer width in bits (chunk size streamed through the
    /// inner-join).
    pub bitmask_bits: usize,
    /// Adders in the laggy prefix-sum circuit.
    pub laggy_adders: usize,
    /// Depth of FIFO-mp / FIFO-B.
    pub fifo_depth: usize,
    /// TPPE weight buffer capacity in bytes.
    pub weight_buffer_bytes: usize,
    /// Global cache capacity in bytes.
    pub cache_bytes: usize,
    /// Global cache banks.
    pub cache_banks: usize,
    /// Global cache associativity.
    pub cache_ways: usize,
    /// Global cache line size in bytes.
    pub cache_line_bytes: usize,
    /// Off-chip bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Off-chip channels.
    pub hbm_channels: usize,
    /// Crossbar per-beat bus width in bytes.
    pub crossbar_bus_bytes: usize,
    /// Whether the runtime compressor discards output neurons with 0 or 1
    /// spikes (the fine-tuned-preprocessing execution mode, Section V).
    pub discard_low_activity_outputs: bool,
    /// Whether timesteps are processed in parallel (FTP, the paper's
    /// contribution) or sequentially on the same hardware — the dataflow
    /// ablation of DESIGN.md. Default: true.
    pub temporal_parallel: bool,
    /// Whether the inner-join uses two fast prefix-sum circuits
    /// (SparTen-style) instead of the FTP-friendly fast + laggy pair — the
    /// inner-join ablation. Two fast circuits remove the correction tail
    /// and FIFO backpressure but roughly double the prefix-sum area/power
    /// (Section IV-C). Default: false (fast + laggy).
    pub two_fast_prefix: bool,
}

impl LoasConfig {
    /// The Table III configuration.
    pub fn table3() -> Self {
        LoasConfig {
            tppes: 16,
            timesteps: 4,
            weight_bits: 8,
            bitmask_bits: 128,
            laggy_adders: 16,
            fifo_depth: 8,
            weight_buffer_bytes: 128,
            cache_bytes: 256 * 1024,
            cache_banks: 16,
            cache_ways: 16,
            cache_line_bytes: 64,
            hbm_gbps: 128.0,
            hbm_channels: 16,
            crossbar_bus_bytes: 16,
            discard_low_activity_outputs: false,
            temporal_parallel: true,
            two_fast_prefix: false,
        }
    }

    /// A builder starting from the Table III defaults.
    pub fn builder() -> LoasConfigBuilder {
        LoasConfigBuilder {
            config: Self::table3(),
        }
    }

    /// Checks the cross-field invariants the simulator relies on (the
    /// builder panics on violations; the serve spec parser surfaces them
    /// as schema errors).
    ///
    /// # Errors
    ///
    /// A message naming the first degenerate field.
    pub fn check(&self) -> Result<(), String> {
        if self.tppes == 0 {
            return Err("need at least one TPPE".to_owned());
        }
        if self.timesteps == 0 || self.timesteps > loas_sparse::MAX_TIMESTEPS {
            return Err(format!(
                "timesteps must be in 1..={}",
                loas_sparse::MAX_TIMESTEPS
            ));
        }
        if self.laggy_adders == 0 {
            return Err("laggy prefix-sum needs adders".to_owned());
        }
        if self.bitmask_bits == 0 {
            return Err("degenerate bitmask width".to_owned());
        }
        if self.cache_line_bytes == 0 || self.cache_ways == 0 || self.cache_banks == 0 {
            return Err("degenerate cache geometry".to_owned());
        }
        if self.cache_bytes < self.cache_line_bytes * self.cache_ways {
            return Err("cache capacity below one set".to_owned());
        }
        if self.hbm_gbps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("off-chip bandwidth must be positive".to_owned());
        }
        Ok(())
    }

    /// Laggy prefix-sum latency over one bitmask chunk:
    /// `bitmask_bits / laggy_adders` cycles (8 with Table III values).
    pub fn laggy_latency_cycles(&self) -> u64 {
        (self.bitmask_bits as u64).div_ceil(self.laggy_adders as u64)
    }

    /// Bytes of one packed spike payload word (`T` bits rounded up).
    pub fn packed_word_bits(&self) -> usize {
        self.timesteps
    }

    /// Absorbs every configuration field into a stable content hash, so
    /// memoization keys distinguish any two configurations that could
    /// simulate differently.
    pub fn write_content(&self, hasher: &mut crate::ContentHasher) {
        hasher.write_usize(self.tppes);
        hasher.write_usize(self.timesteps);
        hasher.write_usize(self.weight_bits);
        hasher.write_usize(self.bitmask_bits);
        hasher.write_usize(self.laggy_adders);
        hasher.write_usize(self.fifo_depth);
        hasher.write_usize(self.weight_buffer_bytes);
        hasher.write_usize(self.cache_bytes);
        hasher.write_usize(self.cache_banks);
        hasher.write_usize(self.cache_ways);
        hasher.write_usize(self.cache_line_bytes);
        hasher.write_f64(self.hbm_gbps);
        hasher.write_usize(self.hbm_channels);
        hasher.write_usize(self.crossbar_bus_bytes);
        hasher.write_bool(self.discard_low_activity_outputs);
        hasher.write_bool(self.temporal_parallel);
        hasher.write_bool(self.two_fast_prefix);
    }
}

impl Default for LoasConfig {
    fn default() -> Self {
        Self::table3()
    }
}

// Catalog introspection: field order mirrors `write_content` exactly (the
// "loas" entry hashes these values raw, reproducing the legacy layout).
crate::impl_model_config!(LoasConfig, "loas", {
    tppes: usize,
    timesteps: usize,
    weight_bits: usize,
    bitmask_bits: usize,
    laggy_adders: usize,
    fifo_depth: usize,
    weight_buffer_bytes: usize,
    cache_bytes: usize,
    cache_banks: usize,
    cache_ways: usize,
    cache_line_bytes: usize,
    hbm_gbps: f64,
    hbm_channels: usize,
    crossbar_bus_bytes: usize,
    discard_low_activity_outputs: bool,
    temporal_parallel: bool,
    two_fast_prefix: bool,
});

/// Builder for [`LoasConfig`] (non-consuming terminal, Table III defaults).
#[derive(Debug, Clone)]
pub struct LoasConfigBuilder {
    config: LoasConfig,
}

impl LoasConfigBuilder {
    /// Sets the TPPE count.
    pub fn tppes(mut self, tppes: usize) -> Self {
        self.config.tppes = tppes;
        self
    }

    /// Sets the parallel timestep count.
    pub fn timesteps(mut self, timesteps: usize) -> Self {
        self.config.timesteps = timesteps;
        self
    }

    /// Sets the global cache capacity in bytes.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.config.cache_bytes = bytes;
        self
    }

    /// Sets the off-chip bandwidth in GB/s.
    pub fn hbm_gbps(mut self, gbps: f64) -> Self {
        self.config.hbm_gbps = gbps;
        self
    }

    /// Enables runtime discarding of 0/1-spike output neurons.
    pub fn discard_low_activity_outputs(mut self, enable: bool) -> Self {
        self.config.discard_low_activity_outputs = enable;
        self
    }

    /// Selects parallel (FTP) or sequential timestep processing (ablation).
    pub fn temporal_parallel(mut self, enable: bool) -> Self {
        self.config.temporal_parallel = enable;
        self
    }

    /// Selects the two-fast-prefix-sum inner-join variant (ablation).
    pub fn two_fast_prefix(mut self, enable: bool) -> Self {
        self.config.two_fast_prefix = enable;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate values (zero TPPEs, zero timesteps, timesteps
    /// beyond the packed-word limit — see [`LoasConfig::check`]).
    pub fn build(self) -> LoasConfig {
        if let Err(message) = self.config.check() {
            panic!("{message}");
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults() {
        let c = LoasConfig::table3();
        assert_eq!(c.tppes, 16);
        assert_eq!(c.timesteps, 4);
        assert_eq!(c.cache_bytes, 256 * 1024);
        assert_eq!(c.cache_banks, 16);
        assert_eq!(c.cache_ways, 16);
        assert!((c.hbm_gbps - 128.0).abs() < 1e-12);
        assert_eq!(c.hbm_channels, 16);
        assert_eq!(c.laggy_latency_cycles(), 8);
    }

    #[test]
    fn builder_overrides() {
        let c = LoasConfig::builder()
            .tppes(8)
            .timesteps(16)
            .cache_bytes(1024)
            .hbm_gbps(64.0)
            .discard_low_activity_outputs(true)
            .build();
        assert_eq!(c.tppes, 8);
        assert_eq!(c.timesteps, 16);
        assert!(c.discard_low_activity_outputs);
    }

    #[test]
    #[should_panic(expected = "timesteps")]
    fn excessive_timesteps_rejected() {
        LoasConfig::builder().timesteps(17).build();
    }
}
