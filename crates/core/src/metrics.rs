//! Reports produced by accelerator models and the common `Accelerator`
//! interface.

use crate::prepared::PreparedLayer;
use loas_sim::{Cycle, EnergyBreakdown, SimStats};
use loas_snn::SpikeTensor;

/// The result of simulating one layer on one accelerator.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Workload name.
    pub workload: String,
    /// Accelerator name.
    pub accelerator: String,
    /// Cycles, traffic, cache, and op counts.
    pub stats: SimStats,
    /// Energy rollup.
    pub energy: EnergyBreakdown,
    /// Functional output spikes (present when the model computes them, for
    /// verification against the golden layer).
    pub output: Option<SpikeTensor>,
}

impl LayerReport {
    /// End-to-end latency.
    pub fn cycles(&self) -> Cycle {
        self.stats.cycles
    }

    /// Speedup of this report relative to a baseline report on the same
    /// workload (`baseline_cycles / self_cycles`).
    pub fn speedup_over(&self, baseline: &LayerReport) -> f64 {
        let own = self.stats.cycles.get().max(1);
        baseline.stats.cycles.get() as f64 / own as f64
    }

    /// Energy-efficiency gain relative to a baseline (`baseline_energy /
    /// self_energy`).
    pub fn energy_gain_over(&self, baseline: &LayerReport) -> f64 {
        let own = self.energy.total_pj().max(1e-12);
        baseline.energy.total_pj() / own
    }
}

/// Aggregated results over a whole network (layers run back to back).
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Accelerator name.
    pub accelerator: String,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Builds a network report from layer reports.
    pub fn new(network: &str, accelerator: &str, layers: Vec<LayerReport>) -> Self {
        NetworkReport {
            network: network.to_owned(),
            accelerator: accelerator.to_owned(),
            layers,
        }
    }

    /// Summed statistics across layers (sequential execution).
    pub fn total_stats(&self) -> SimStats {
        let mut total = SimStats::new();
        for l in &self.layers {
            total.merge_sequential(&l.stats);
        }
        total
    }

    /// Summed energy across layers.
    pub fn total_energy(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for l in &self.layers {
            total.dram_pj += l.energy.dram_pj;
            total.sram_pj += l.energy.sram_pj;
            total.compute_pj += l.energy.compute_pj;
            total.sparsity_pj += l.energy.sparsity_pj;
            total.static_pj += l.energy.static_pj;
        }
        total
    }

    /// Total cycles across layers.
    pub fn total_cycles(&self) -> Cycle {
        self.total_stats().cycles
    }

    /// Network-level speedup over a baseline.
    pub fn speedup_over(&self, baseline: &NetworkReport) -> f64 {
        baseline.total_cycles().get() as f64 / self.total_cycles().get().max(1) as f64
    }

    /// Network-level energy-efficiency gain over a baseline.
    pub fn energy_gain_over(&self, baseline: &NetworkReport) -> f64 {
        baseline.total_energy().total_pj() / self.total_energy().total_pj().max(1e-12)
    }
}

/// The interface every accelerator model implements. Models are stateful
/// (they own cache state) but `run_layer` resets per-layer state, so calls
/// are independent.
pub trait Accelerator {
    /// Human-readable accelerator name (e.g. `"SparTen-SNN"`).
    fn name(&self) -> String;

    /// Simulates one prepared layer end to end.
    fn run_layer(&mut self, layer: &PreparedLayer) -> LayerReport;

    /// Grants the model an intra-layer worker budget for its pure compute
    /// phase (see [`crate::kernel`]). Models without a parallel phase
    /// ignore it; implementations must produce byte-identical reports for
    /// every budget. The campaign engine splits its total worker budget
    /// between job-level and intra-layer parallelism through this hook.
    fn set_intra_workers(&mut self, _workers: usize) {}

    /// Simulates a sequence of layers as one network.
    fn run_network(&mut self, network: &str, layers: &[PreparedLayer]) -> NetworkReport {
        let reports = layers.iter().map(|l| self.run_layer(l)).collect();
        NetworkReport::new(network, &self.name(), reports)
    }
}

/// Boxed accelerators forward to their inner model, so heterogeneous
/// fleets (`Vec<Box<dyn Accelerator + Send>>`) can be used anywhere a
/// concrete model is expected.
impl<A: Accelerator + ?Sized> Accelerator for Box<A> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn run_layer(&mut self, layer: &PreparedLayer) -> LayerReport {
        (**self).run_layer(layer)
    }

    fn set_intra_workers(&mut self, workers: usize) {
        (**self).set_intra_workers(workers)
    }

    fn run_network(&mut self, network: &str, layers: &[PreparedLayer]) -> NetworkReport {
        (**self).run_network(network, layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, dram_pj: f64) -> LayerReport {
        let mut stats = SimStats::new();
        stats.cycles = Cycle(cycles);
        LayerReport {
            workload: "w".to_owned(),
            accelerator: "a".to_owned(),
            stats,
            energy: EnergyBreakdown {
                dram_pj,
                ..Default::default()
            },
            output: None,
        }
    }

    #[test]
    fn speedup_and_energy_gain() {
        let fast = report(100, 10.0);
        let slow = report(400, 35.0);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((fast.energy_gain_over(&slow) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn network_totals() {
        let net = NetworkReport::new("n", "a", vec![report(100, 1.0), report(50, 2.0)]);
        assert_eq!(net.total_cycles(), Cycle(150));
        assert!((net.total_energy().total_pj() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn network_speedup() {
        let a = NetworkReport::new("n", "a", vec![report(100, 1.0)]);
        let b = NetworkReport::new("n", "b", vec![report(300, 1.0)]);
        assert!((a.speedup_over(&b) - 3.0).abs() < 1e-12);
    }
}
