//! Area and power model (Table IV, Fig. 15, Fig. 16(a)).
//!
//! Component values are the paper's synthesized numbers (Synopsys DC,
//! 32 nm, 800 MHz; CACTI for memories). The timestep scaling follows the
//! affine model the paper's own Fig. 16(a) percentages imply: only the
//! accumulators and the input data buffer grow with `T`.

use loas_sim::{AffineScaling, Component, ComponentTable};

/// Table IV (right): one TPPE at the calibration point `T = 4`.
pub mod tppe_t4 {
    /// Accumulators (1 pseudo + 4 correction): area in mm².
    pub const ACCUMULATORS_AREA: f64 = 2e-3;
    /// Accumulators: power in mW.
    pub const ACCUMULATORS_POWER: f64 = 0.16;
    /// Fast prefix-sum circuit: area in mm².
    pub const FAST_PREFIX_AREA: f64 = 0.04;
    /// Fast prefix-sum circuit: power in mW.
    pub const FAST_PREFIX_POWER: f64 = 1.46;
    /// Laggy prefix-sum circuit: area in mm².
    pub const LAGGY_PREFIX_AREA: f64 = 5e-3;
    /// Laggy prefix-sum circuit: power in mW.
    pub const LAGGY_PREFIX_POWER: f64 = 0.32;
    /// Everything else (FIFOs, buffers, control): area in mm².
    pub const OTHERS_AREA: f64 = 0.01;
    /// Everything else: power in mW.
    pub const OTHERS_POWER: f64 = 0.88;
    /// TPPE total area (Table IV prints the rounded 0.06).
    pub const TOTAL_AREA: f64 =
        ACCUMULATORS_AREA + FAST_PREFIX_AREA + LAGGY_PREFIX_AREA + OTHERS_AREA;
    /// TPPE total power (Table IV prints 2.82).
    pub const TOTAL_POWER: f64 =
        ACCUMULATORS_POWER + FAST_PREFIX_POWER + LAGGY_PREFIX_POWER + OTHERS_POWER;
}

/// Table IV (left): system-level components for the Table III configuration.
pub mod system {
    /// 16 P-LIF units: area in mm².
    pub const PLIFS_AREA: f64 = 0.02;
    /// 16 P-LIF units: power in mW.
    pub const PLIFS_POWER: f64 = 1.2;
    /// 256 KB global cache: area in mm².
    pub const GLOBAL_CACHE_AREA: f64 = 0.80;
    /// 256 KB global cache: power in mW.
    pub const GLOBAL_CACHE_POWER: f64 = 124.5;
    /// Crossbars, scheduler, compressor, misc: area in mm².
    pub const OTHERS_AREA: f64 = 0.30;
    /// Crossbars, scheduler, compressor, misc: power in mW.
    pub const OTHERS_POWER: f64 = 18.1;
}

/// Fig. 16(a) calibration: the T-dependent share of a TPPE at `T = 4`
/// (12.5% of area, 8.4% of power).
const T_SHARE_AREA_AT_4: f64 = 0.125;
const T_SHARE_POWER_AT_4: f64 = 0.084;

/// The LoAS area/power model, parameterised by timestep count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPowerModel {
    tppes: usize,
    area_scaling: AffineScaling,
    power_scaling: AffineScaling,
}

impl AreaPowerModel {
    /// The Table III instance (16 TPPEs).
    pub fn loas_default() -> Self {
        AreaPowerModel::new(16)
    }

    /// Creates a model for `tppes` TPPEs.
    pub fn new(tppes: usize) -> Self {
        AreaPowerModel {
            tppes,
            area_scaling: AffineScaling::from_share(tppe_t4::TOTAL_AREA, T_SHARE_AREA_AT_4, 4),
            power_scaling: AffineScaling::from_share(tppe_t4::TOTAL_POWER, T_SHARE_POWER_AT_4, 4),
        }
    }

    /// One TPPE's area in mm² at `t` timesteps.
    pub fn tppe_area_mm2(&self, t: usize) -> f64 {
        self.area_scaling.at(t)
    }

    /// One TPPE's power in mW at `t` timesteps.
    pub fn tppe_power_mw(&self, t: usize) -> f64 {
        self.power_scaling.at(t)
    }

    /// The T-dependent share of TPPE area (the yellow region of Fig. 16(a)).
    pub fn tppe_area_t_share(&self, t: usize) -> f64 {
        self.area_scaling.share_at(t)
    }

    /// The T-dependent share of TPPE power.
    pub fn tppe_power_t_share(&self, t: usize) -> f64 {
        self.power_scaling.share_at(t)
    }

    /// The Table IV (right) TPPE component table at `T = 4`.
    pub fn tppe_table(&self) -> ComponentTable {
        [
            Component::new(
                "Accumulators",
                tppe_t4::ACCUMULATORS_AREA,
                tppe_t4::ACCUMULATORS_POWER,
            ),
            Component::new(
                "Fast Prefix",
                tppe_t4::FAST_PREFIX_AREA,
                tppe_t4::FAST_PREFIX_POWER,
            ),
            Component::new(
                "Laggy Prefix",
                tppe_t4::LAGGY_PREFIX_AREA,
                tppe_t4::LAGGY_PREFIX_POWER,
            ),
            Component::new("Others", tppe_t4::OTHERS_AREA, tppe_t4::OTHERS_POWER),
        ]
        .into_iter()
        .collect()
    }

    /// The TPPE table of the two-fast-prefix ablation variant: the laggy
    /// circuit replaced with a second fast circuit (what a SparTen-style
    /// join would cost inside a TPPE — original SparTen uses two, footnote
    /// 10, and the fast circuit dominates area and power).
    pub fn tppe_two_fast_table(&self) -> ComponentTable {
        [
            Component::new(
                "Accumulators",
                tppe_t4::ACCUMULATORS_AREA,
                tppe_t4::ACCUMULATORS_POWER,
            ),
            Component::new(
                "Fast Prefix",
                tppe_t4::FAST_PREFIX_AREA,
                tppe_t4::FAST_PREFIX_POWER,
            ),
            Component::new(
                "Fast Prefix #2",
                tppe_t4::FAST_PREFIX_AREA,
                tppe_t4::FAST_PREFIX_POWER,
            ),
            Component::new("Others", tppe_t4::OTHERS_AREA, tppe_t4::OTHERS_POWER),
        ]
        .into_iter()
        .collect()
    }

    /// The Table IV (left) system component table at `t` timesteps.
    pub fn system_table(&self, t: usize) -> ComponentTable {
        [
            Component::new(
                format!("{} TPPEs", self.tppes),
                self.tppe_area_mm2(t) * self.tppes as f64,
                self.tppe_power_mw(t) * self.tppes as f64,
            ),
            Component::new(
                format!("{} PLIFs", self.tppes),
                system::PLIFS_AREA,
                system::PLIFS_POWER,
            ),
            Component::new(
                "Global cache",
                system::GLOBAL_CACHE_AREA,
                system::GLOBAL_CACHE_POWER,
            ),
            Component::new("Others", system::OTHERS_AREA, system::OTHERS_POWER),
        ]
        .into_iter()
        .map(|c| Component::new(c.name.clone(), c.area_mm2, c.power_mw))
        .collect()
    }
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        AreaPowerModel::loas_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tppe_table_matches_table4() {
        let model = AreaPowerModel::loas_default();
        let table = model.tppe_table();
        assert!((table.total_area_mm2() - 0.057).abs() < 1e-9);
        assert!((table.total_power_mw() - 2.82).abs() < 1e-9);
        // Fig. 15: fast prefix-sum is 51.8% of TPPE power, laggy 11.4%.
        assert!((table.power_share("Fast Prefix").unwrap() - 0.518).abs() < 0.01);
        assert!((table.power_share("Laggy Prefix").unwrap() - 0.114).abs() < 0.01);
        // Fast prefix dominates area at ~2/3 (paper: 66.7%).
        assert!((table.area_share("Fast Prefix").unwrap() - 0.667).abs() < 0.05);
    }

    #[test]
    fn system_table_matches_table4() {
        let model = AreaPowerModel::loas_default();
        let table = model.system_table(4);
        // Totals: 2.08 mm², 188.9 mW (Table IV prints rounded values).
        assert!((table.total_area_mm2() - 2.08).abs() < 0.05);
        assert!((table.total_power_mw() - 188.9).abs() < 1.0);
        // Fig. 15: global cache ~65.9% of system power, TPPEs ~23.9%.
        assert!((table.power_share("Global cache").unwrap() - 0.659).abs() < 0.01);
        assert!((table.power_share("16 TPPEs").unwrap() - 0.239).abs() < 0.01);
    }

    #[test]
    fn fig16a_scaling() {
        let model = AreaPowerModel::loas_default();
        // Shares: 12.5 / 22.2 / 36.3 % area, 8.4 / 15.5 / 26.8 % power.
        assert!((model.tppe_area_t_share(4) - 0.125).abs() < 1e-9);
        assert!((model.tppe_area_t_share(8) - 0.222).abs() < 3e-3);
        assert!((model.tppe_area_t_share(16) - 0.363).abs() < 3e-3);
        assert!((model.tppe_power_t_share(8) - 0.155).abs() < 3e-3);
        assert!((model.tppe_power_t_share(16) - 0.268).abs() < 3e-3);
        // Growth from T=4 to T=16: 1.37x area, 1.25x power.
        assert!((model.tppe_area_mm2(16) / model.tppe_area_mm2(4) - 1.37).abs() < 0.01);
        assert!((model.tppe_power_mw(16) / model.tppe_power_mw(4) - 1.25).abs() < 0.01);
    }
}
