//! # loas-core — the LoAS accelerator: fully temporal-parallel dataflow for
//! dual-sparse SNNs
//!
//! This crate implements the primary contribution of *"LoAS: Fully
//! Temporal-Parallel Dataflow for Dual-Sparse Spiking Neural Networks"*
//! (MICRO 2024):
//!
//! * [`dataflow`] — the FTP dataflow (Algorithm 1): the timestep loop placed
//!   innermost in inner-product spMspM and spatially unrolled, plus the
//!   Section III design-space analysis showing FTP is the unique placement
//!   meeting all three SNN-friendliness goals;
//! * [`compress`] — FTP-friendly spike compression (Fig. 8): `T`-bit packed
//!   spike words behind a non-silent-neuron bitmask;
//! * [`InnerJoinUnit`] — the FTP-friendly inner-join (Figs. 9-10): one fast
//!   prefix-sum for weight offsets, one cheap *laggy* prefix-sum for spike
//!   offsets, with optimistic pseudo-accumulation and per-timestep
//!   correction;
//! * [`Tppe`] / [`ParallelLif`] / [`Compressor`] — the processing element,
//!   the one-shot parallel LIF unit, and the output compressor (Fig. 7);
//! * [`Loas`] — the end-to-end cycle-level accelerator model (Table III
//!   configuration) reporting cycles, SRAM/DRAM traffic by class, cache
//!   behaviour, and energy;
//! * [`kernel`] — the two-phase layer kernel: a pure, cache-friendly
//!   pair-intersection sweep (parallelizable across row tiles with
//!   deterministic collection) feeding the sequential traffic phase;
//! * [`AreaPowerModel`] — the Table IV / Fig. 15 / Fig. 16(a) area & power
//!   model;
//! * [`PreparedLayer`] / [`Accelerator`] / [`LayerReport`] — the shared
//!   workload and reporting interface all baseline models implement too;
//! * [`catalog`] — the open accelerator catalog: models register a stable
//!   name, a typed [`ModelConfig`], a content-hash contribution, and a
//!   boxed-[`Accelerator`] factory, and every downstream layer (campaign
//!   specs, memo keys, the serve JSON schema) dispatches through it.
//!
//! # Examples
//!
//! ```
//! use loas_core::{Accelerator, Loas, PreparedLayer};
//! use loas_workloads::{networks, WorkloadGenerator};
//!
//! let generator = WorkloadGenerator::default();
//! let v_l8 = networks::selected_layers()[1].generate(&generator)?;
//! let report = Loas::default().run_layer(&PreparedLayer::new(&v_l8));
//! println!("V-L8 on LoAS: {} cycles", report.stats.cycles.get());
//! # Ok::<(), loas_workloads::WorkloadError>(())
//! ```

#![warn(missing_docs)]

mod accelerator;
mod accumulator;
mod area_power;
pub mod catalog;
pub mod compress;
mod compressor;
mod config;
pub mod dataflow;
mod hash;
mod inner_join;
pub mod kernel;
mod metrics;
mod plif;
mod portable;
mod prepared;
mod tppe;

pub use accelerator::{Loas, SweepStrategy};
pub use accumulator::{Accumulator, AccumulatorBank};
pub use area_power::AreaPowerModel;
pub use catalog::{Catalog, CatalogError, ConfigValue, ModelConfig, ModelEntry};
pub use compressor::{CompressedRow, Compressor};
pub use config::{LoasConfig, LoasConfigBuilder};
pub use hash::ContentHasher;
pub use inner_join::{reference_sums, InnerJoinUnit, JoinOutcome, JoinScratch};
pub use metrics::{Accelerator, LayerReport, NetworkReport};
pub use plif::{ParallelLif, PlifOutcome};
pub use portable::{PortableError, PORTABLE_FORMAT};
pub use prepared::{PreparedLayer, TrafficSpans, DEFAULT_LINE_BYTES, DEFAULT_WEIGHT_BITS};
pub use tppe::{Tppe, TppeOutcome};
