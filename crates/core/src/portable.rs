//! Portable, byte-exact serialization of simulation metrics.
//!
//! The result-memoization store persists completed [`LayerReport`]s across
//! processes, and replayed results must reproduce the original report
//! streams **byte-identically**. This module defines the durable format:
//! a versioned, line-oriented `key=value` text encoding of every
//! deterministic field of a report (names, cycle counts, traffic ledgers,
//! cache counters, op counts, and the energy rollup). Floating-point
//! fields round-trip exactly because Rust's `{}` formatting of `f64` is
//! shortest-round-trip and `str::parse::<f64>` recovers the identical bit
//! pattern.
//!
//! Functional outputs (`LayerReport::output`) are intentionally **not**
//! persisted: they exist for golden-model verification at simulation time
//! and never enter serialized campaign reports, so memoized replays carry
//! `output: None`.

use crate::metrics::LayerReport;
use loas_sim::{
    CacheStats, Cycle, EnergyBreakdown, OpCounts, SimStats, TrafficClass, TrafficLedger,
};
use std::fmt::Write as _;

/// Magic first line of the portable format; bump the suffix on any layout
/// change so stale store entries are rejected (treated as misses), never
/// misread.
pub const PORTABLE_FORMAT: &str = "loas-layer-report/1";

/// Errors decoding a portable report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortableError {
    /// The first line was not [`PORTABLE_FORMAT`].
    BadHeader(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// A field failed to parse.
    BadField {
        /// The field name.
        field: &'static str,
        /// The offending value text.
        value: String,
    },
}

impl std::fmt::Display for PortableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortableError::BadHeader(found) => {
                write!(
                    f,
                    "bad portable-report header `{found}` (want `{PORTABLE_FORMAT}`)"
                )
            }
            PortableError::MissingField(field) => write!(f, "missing field `{field}`"),
            PortableError::BadField { field, value } => {
                write!(f, "cannot parse field `{field}` from `{value}`")
            }
        }
    }
}

impl std::error::Error for PortableError {}

fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

fn ledger_values(ledger: &TrafficLedger) -> String {
    TrafficClass::ALL
        .iter()
        .map(|&class| ledger.get(class).to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_list<T: std::str::FromStr>(
    field: &'static str,
    value: &str,
    want: usize,
) -> Result<Vec<T>, PortableError> {
    let parts: Result<Vec<T>, _> = value.split(',').map(str::parse).collect();
    match parts {
        Ok(parts) if parts.len() == want => Ok(parts),
        _ => Err(PortableError::BadField {
            field,
            value: value.to_owned(),
        }),
    }
}

fn ledger_from(values: &[u64]) -> TrafficLedger {
    let mut ledger = TrafficLedger::new();
    for (&class, &bytes) in TrafficClass::ALL.iter().zip(values) {
        ledger.record(class, bytes);
    }
    ledger
}

impl LayerReport {
    /// Serializes the deterministic fields of this report into the durable
    /// text format (ends with a newline).
    pub fn to_portable(&self) -> String {
        let stats = &self.stats;
        let energy = &self.energy;
        let mut out = String::with_capacity(512);
        let _ = writeln!(out, "{PORTABLE_FORMAT}");
        let _ = writeln!(out, "workload={}", escape(&self.workload));
        let _ = writeln!(out, "accelerator={}", escape(&self.accelerator));
        let _ = writeln!(out, "cycles={}", stats.cycles.get());
        let _ = writeln!(out, "stall_cycles={}", stats.stall_cycles.get());
        let _ = writeln!(out, "dram={}", ledger_values(&stats.dram));
        let _ = writeln!(out, "sram={}", ledger_values(&stats.sram));
        let _ = writeln!(out, "cache={},{}", stats.cache.hits, stats.cache.misses);
        let _ = writeln!(
            out,
            "ops={},{},{},{},{},{}",
            stats.ops.accumulates,
            stats.ops.macs,
            stats.ops.fast_prefix_cycles,
            stats.ops.laggy_prefix_cycles,
            stats.ops.lif_updates,
            stats.ops.merges
        );
        let _ = writeln!(
            out,
            "energy={},{},{},{},{}",
            energy.dram_pj, energy.sram_pj, energy.compute_pj, energy.sparsity_pj, energy.static_pj
        );
        out
    }

    /// Decodes a report serialized by [`LayerReport::to_portable`]. The
    /// functional `output` field is always `None` on decoded reports.
    ///
    /// # Errors
    ///
    /// Returns [`PortableError`] on a header mismatch (stale format
    /// version) or any missing/ill-formed field.
    pub fn from_portable(text: &str) -> Result<LayerReport, PortableError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header != PORTABLE_FORMAT {
            return Err(PortableError::BadHeader(header.to_owned()));
        }
        let mut workload = None;
        let mut accelerator = None;
        let mut cycles = None;
        let mut stall_cycles = None;
        let mut dram = None;
        let mut sram = None;
        let mut cache = None;
        let mut ops = None;
        let mut energy = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(PortableError::BadField {
                    field: "line",
                    value: line.to_owned(),
                });
            };
            match key {
                "workload" => workload = Some(unescape(value)),
                "accelerator" => accelerator = Some(unescape(value)),
                "cycles" => {
                    cycles = Some(value.parse::<u64>().map_err(|_| PortableError::BadField {
                        field: "cycles",
                        value: value.to_owned(),
                    })?)
                }
                "stall_cycles" => {
                    stall_cycles =
                        Some(value.parse::<u64>().map_err(|_| PortableError::BadField {
                            field: "stall_cycles",
                            value: value.to_owned(),
                        })?)
                }
                "dram" => dram = Some(parse_list::<u64>("dram", value, TrafficClass::ALL.len())?),
                "sram" => sram = Some(parse_list::<u64>("sram", value, TrafficClass::ALL.len())?),
                "cache" => cache = Some(parse_list::<u64>("cache", value, 2)?),
                "ops" => ops = Some(parse_list::<u64>("ops", value, 6)?),
                "energy" => energy = Some(parse_list::<f64>("energy", value, 5)?),
                // Unknown keys from newer minor revisions are ignored.
                _ => {}
            }
        }
        let cache = cache.ok_or(PortableError::MissingField("cache"))?;
        let ops = ops.ok_or(PortableError::MissingField("ops"))?;
        let energy = energy.ok_or(PortableError::MissingField("energy"))?;
        let stats = SimStats {
            cycles: Cycle(cycles.ok_or(PortableError::MissingField("cycles"))?),
            stall_cycles: Cycle(stall_cycles.ok_or(PortableError::MissingField("stall_cycles"))?),
            dram: ledger_from(&dram.ok_or(PortableError::MissingField("dram"))?),
            sram: ledger_from(&sram.ok_or(PortableError::MissingField("sram"))?),
            cache: CacheStats {
                hits: cache[0],
                misses: cache[1],
            },
            ops: OpCounts {
                accumulates: ops[0],
                macs: ops[1],
                fast_prefix_cycles: ops[2],
                laggy_prefix_cycles: ops[3],
                lif_updates: ops[4],
                merges: ops[5],
            },
        };
        Ok(LayerReport {
            workload: workload.ok_or(PortableError::MissingField("workload"))?,
            accelerator: accelerator.ok_or(PortableError::MissingField("accelerator"))?,
            stats,
            energy: EnergyBreakdown {
                dram_pj: energy[0],
                sram_pj: energy[1],
                compute_pj: energy[2],
                sparsity_pj: energy[3],
                static_pj: energy[4],
            },
            output: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayerReport {
        let mut stats = SimStats::new();
        stats.cycles = Cycle(123_456);
        stats.stall_cycles = Cycle(789);
        stats.dram.record(TrafficClass::Weight, 1000);
        stats.dram.record(TrafficClass::Format, 17);
        stats.sram.record(TrafficClass::Input, 4096);
        stats.cache.hits = 90;
        stats.cache.misses = 10;
        stats.ops.accumulates = 5555;
        stats.ops.laggy_prefix_cycles = 8;
        LayerReport {
            workload: "V-L8\nodd \\name".to_owned(),
            accelerator: "LoAS(FT)".to_owned(),
            stats,
            energy: EnergyBreakdown {
                dram_pj: 31.2 * 1017.0,
                sram_pj: 0.1 + 0.2, // deliberately non-representable exactly
                compute_pj: 555.5,
                sparsity_pj: 3.2,
                static_pj: 6_172_800.0,
            },
            output: None,
        }
    }

    #[test]
    fn round_trips_every_field_exactly() {
        let report = sample();
        let decoded = LayerReport::from_portable(&report.to_portable()).unwrap();
        assert_eq!(decoded.workload, report.workload);
        assert_eq!(decoded.accelerator, report.accelerator);
        assert_eq!(decoded.stats, report.stats);
        assert_eq!(
            decoded.energy.dram_pj.to_bits(),
            report.energy.dram_pj.to_bits()
        );
        assert_eq!(
            decoded.energy.sram_pj.to_bits(),
            report.energy.sram_pj.to_bits()
        );
        assert_eq!(
            decoded.energy.static_pj.to_bits(),
            report.energy.static_pj.to_bits()
        );
        assert!(decoded.output.is_none());
        // Re-encoding is byte-stable.
        assert_eq!(decoded.to_portable(), report.to_portable());
    }

    #[test]
    fn stale_header_is_rejected() {
        let mut text = sample().to_portable();
        text = text.replace(PORTABLE_FORMAT, "loas-layer-report/0");
        assert!(matches!(
            LayerReport::from_portable(&text),
            Err(PortableError::BadHeader(_))
        ));
    }

    #[test]
    fn missing_and_malformed_fields_error() {
        let text = format!("{PORTABLE_FORMAT}\nworkload=w\naccelerator=a\ncycles=ten\n");
        assert!(matches!(
            LayerReport::from_portable(&text),
            Err(PortableError::BadField {
                field: "cycles",
                ..
            })
        ));
        let text = format!("{PORTABLE_FORMAT}\nworkload=w\n");
        assert!(LayerReport::from_portable(&text).is_err());
    }
}
