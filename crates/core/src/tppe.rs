//! The Temporal-Parallel Processing Element (TPPE, Fig. 7).
//!
//! Each TPPE produces the full sum of **one output neuron across all
//! timesteps** (Algorithm 1, line 5): it holds the bitmask of one row fiber
//! of `A` in a 128-bit buffer, receives the broadcast weight fiber of `B`
//! (bitmask into the second buffer, non-zeros into the 128-byte weight
//! buffer), runs the FTP-friendly inner-join, and hands the corrected
//! per-timestep sums to a P-LIF unit that emits all output spikes in one
//! shot.

use crate::config::LoasConfig;
use crate::inner_join::{InnerJoinUnit, JoinOutcome, JoinScratch};
use crate::plif::{ParallelLif, PlifOutcome};
use loas_snn::LifParams;
use loas_sparse::{SpikeFiber, WeightFiber};

/// The result of one TPPE pass over one output neuron.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TppeOutcome {
    /// Inner-join result (sums, matches, corrections, circuit activity).
    pub join: JoinOutcome,
    /// P-LIF result (packed output spikes + final membrane).
    pub plif: PlifOutcome,
    /// Cycles to load the broadcast fiber-B payload into the weight buffer
    /// (overlappable with the previous neuron's compute by double
    /// buffering).
    pub b_load_cycles: u64,
    /// Total compute cycles for this neuron (join + one P-LIF cycle).
    pub compute_cycles: u64,
}

/// One temporal-parallel processing element.
#[derive(Debug, Clone, PartialEq)]
pub struct Tppe {
    join_unit: InnerJoinUnit,
    weight_buffer_bytes: usize,
    weight_bits: usize,
    crossbar_bus_bytes: usize,
    timesteps: usize,
}

impl Tppe {
    /// Builds a TPPE from the LoAS configuration.
    pub fn new(config: &LoasConfig) -> Self {
        Tppe {
            join_unit: InnerJoinUnit::new(config),
            weight_buffer_bytes: config.weight_buffer_bytes,
            weight_bits: config.weight_bits,
            crossbar_bus_bytes: config.crossbar_bus_bytes,
            timesteps: config.timesteps,
        }
    }

    /// The inner-join unit (exposed for component-level studies).
    pub fn join_unit(&self) -> &InnerJoinUnit {
        &self.join_unit
    }

    /// Cycles to stream a fiber-B payload of `nnz` weights over the
    /// crossbar into the weight buffer. Payloads larger than the buffer are
    /// streamed in rounds; the transfer count is unchanged, so the cost
    /// model is simply bandwidth-bound.
    pub fn b_load_cycles(&self, nnz: usize) -> u64 {
        let bytes = (nnz * self.weight_bits).div_ceil(8) as u64;
        bytes.div_ceil(self.crossbar_bus_bytes as u64)
    }

    /// Whether a fiber-B payload fits the weight buffer in one round.
    pub fn b_fits_buffer(&self, nnz: usize) -> bool {
        (nnz * self.weight_bits).div_ceil(8) <= self.weight_buffer_bytes
    }

    /// Processes one output neuron: inner-join `fiber_a` (row of `A`) with
    /// `fiber_b` (column of `B`), then fire the P-LIF.
    ///
    /// # Panics
    ///
    /// Panics when fiber lengths disagree.
    pub fn process(
        &self,
        fiber_a: &SpikeFiber,
        fiber_b: &WeightFiber,
        lif: LifParams,
    ) -> TppeOutcome {
        self.process_with(fiber_a, fiber_b, lif, &mut JoinScratch::new(self.timesteps))
    }

    /// [`Tppe::process`] with caller-provided join scratch, reused across
    /// output neurons (the verified datapath's hot loop).
    ///
    /// # Panics
    ///
    /// Panics when fiber lengths disagree.
    pub fn process_with(
        &self,
        fiber_a: &SpikeFiber,
        fiber_b: &WeightFiber,
        lif: LifParams,
        scratch: &mut JoinScratch,
    ) -> TppeOutcome {
        let join = self.join_unit.join_with(fiber_a, fiber_b, scratch);
        let plif = ParallelLif::new(lif, self.timesteps).fire(&join.sums);
        let b_load_cycles = self.b_load_cycles(fiber_b.nnz());
        let compute_cycles = join.cycles + 1; // P-LIF one-shot
        TppeOutcome {
            join,
            plif,
            b_load_cycles,
            compute_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_sparse::PackedSpikes;

    fn tppe() -> Tppe {
        Tppe::new(&LoasConfig::table3())
    }

    fn sample_fibers() -> (SpikeFiber, WeightFiber) {
        let mut row = vec![PackedSpikes::silent(4).unwrap(); 16];
        row[1] = PackedSpikes::from_bits(0b1111, 4).unwrap();
        row[9] = PackedSpikes::from_bits(0b0101, 4).unwrap();
        let fa = SpikeFiber::from_packed_row(&row);
        let mut dense = vec![0i8; 16];
        dense[1] = 4;
        dense[9] = 100;
        dense[12] = -3;
        (fa, WeightFiber::from_weights(&dense))
    }

    #[test]
    fn process_produces_exact_spikes() {
        let (fa, fb) = sample_fibers();
        let lif = LifParams::new(50, 0);
        let out = tppe().process(&fa, &fb, lif);
        // sums: t0: 104, t1: 4, t2: 104, t3: 4
        assert_eq!(out.join.sums, vec![104, 4, 104, 4]);
        // v_th = 50, no leak: t0 fires (104) and resets; t1 integrates 4;
        // t2 fires (108) and resets; t3 leaves U = 4.
        assert_eq!(out.plif.spikes.to_vec(), vec![true, false, true, false]);
        assert_eq!(out.plif.membrane, 4);
        assert_eq!(out.compute_cycles, out.join.cycles + 1);
    }

    #[test]
    fn b_load_bandwidth_model() {
        let t = tppe();
        assert_eq!(t.b_load_cycles(0), 0);
        assert_eq!(t.b_load_cycles(16), 1); // 16 bytes over a 16-byte bus
        assert_eq!(t.b_load_cycles(17), 2);
        assert!(t.b_fits_buffer(128));
        assert!(!t.b_fits_buffer(129));
    }

    #[test]
    fn silent_row_outputs_nothing() {
        let fa = SpikeFiber::from_packed_row(&[PackedSpikes::silent(4).unwrap(); 8]);
        let mut dense = vec![0i8; 8];
        dense[3] = 7;
        let fb = WeightFiber::from_weights(&dense);
        let out = tppe().process(&fa, &fb, LifParams::new(1, 0));
        assert!(out.plif.spikes.is_silent());
        assert_eq!(out.join.matches, 0);
    }
}
