//! FTP-friendly spike compression (Section IV-A, Fig. 8).
//!
//! The two problems this format solves:
//!
//! 1. **Compression ratio of 1-bit spikes.** CSR-style coordinates spend
//!    `ceil(log2(K))` bits per 1-bit spike, per timestep. Packing all `T`
//!    spikes of a neuron into one word and marking non-silent neurons with a
//!    1-bit bitmask makes the metadata cost 1 bit per neuron position plus
//!    `T` bits per *non-silent* neuron.
//! 2. **Contiguous access across timesteps.** The packed word keeps all of
//!    a neuron's timesteps adjacent, so the spatially-unrolled `t` loop of
//!    FTP reads one contiguous word instead of `T` strided rows.

use loas_snn::SpikeTensor;
use loas_sparse::{CsrMatrix, SpikeFiber, POINTER_BITS};

/// Summary of compressing one spike tensor with the LoAS format, with the
/// CSR cost for comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionReport {
    /// Number of neuron positions (`M · K`).
    pub positions: usize,
    /// Non-silent neurons stored.
    pub stored_neurons: usize,
    /// Total spikes represented.
    pub spikes: usize,
    /// Packed payload bits (`T` per stored neuron).
    pub payload_bits: u64,
    /// Bitmask + pointer bits.
    pub format_bits: u64,
    /// Total bits of the same tensor in per-timestep CSR (coordinates only).
    pub csr_bits: u64,
    /// Raw dense bits (`M · K · T`).
    pub dense_bits: u64,
}

impl CompressionReport {
    /// Total compressed size in bits.
    pub fn total_bits(&self) -> u64 {
        self.payload_bits + self.format_bits
    }

    /// The paper's compression-efficiency notion: raw spike bits captured
    /// per payload bit spent (>1 when neurons fire more than once on
    /// average; the Fig. 8 example reports 125%).
    pub fn efficiency(&self) -> f64 {
        if self.payload_bits == 0 {
            0.0
        } else {
            self.spikes as f64 / self.payload_bits as f64
        }
    }

    /// Size advantage over per-timestep CSR (`csr_bits / total_bits`).
    pub fn gain_over_csr(&self) -> f64 {
        self.csr_bits as f64 / self.total_bits().max(1) as f64
    }

    /// Size advantage over dense spike trains (`dense / total`).
    pub fn gain_over_dense(&self) -> f64 {
        self.dense_bits as f64 / self.total_bits().max(1) as f64
    }
}

/// Compresses a spike tensor into row fibers and reports the cost.
///
/// # Examples
///
/// ```
/// use loas_core::compress;
/// use loas_snn::SpikeTensor;
///
/// let mut a = SpikeTensor::zeros(1, 4, 4);
/// a.set(0, 0, 0, true);
/// a.set(0, 0, 2, true); // a_{0,0} = 1010 (paper example)
/// a.set(0, 3, 1, true);
/// a.set(0, 3, 2, true);
/// a.set(0, 3, 3, true); // a_{0,3} = 0111
/// let (fibers, report) = compress::compress_tensor(&a);
/// assert_eq!(fibers[0].nnz(), 2);
/// assert_eq!(report.spikes, 5);
/// assert_eq!(report.payload_bits, 8); // two 4-bit words
/// ```
pub fn compress_tensor(tensor: &SpikeTensor) -> (Vec<SpikeFiber>, CompressionReport) {
    let fibers = tensor.to_row_fibers();
    let stored_neurons: usize = fibers.iter().map(SpikeFiber::nnz).sum();
    let payload_bits = (stored_neurons * tensor.timesteps()) as u64;
    let format_bits: u64 = fibers
        .iter()
        .map(|f| (f.bitmask().storage_bits() + POINTER_BITS) as u64)
        .sum();
    let csr_bits: u64 = tensor
        .planes()
        .iter()
        .map(|plane| CsrMatrix::from_bit_matrix(plane).storage_bits(0) as u64)
        .sum();
    let report = CompressionReport {
        positions: tensor.m() * tensor.k(),
        stored_neurons,
        spikes: tensor.spike_count(),
        payload_bits,
        format_bits,
        csr_bits,
        dense_bits: (tensor.m() * tensor.k() * tensor.timesteps()) as u64,
    };
    (fibers, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig8_row() -> SpikeTensor {
        let mut a = SpikeTensor::zeros(1, 4, 4);
        a.set(0, 0, 0, true);
        a.set(0, 0, 2, true);
        a.set(0, 3, 1, true);
        a.set(0, 3, 2, true);
        a.set(0, 3, 3, true);
        a
    }

    #[test]
    fn fig8_example_counts() {
        let (fibers, report) = compress_tensor(&fig8_row());
        assert_eq!(fibers.len(), 1);
        assert_eq!(report.stored_neurons, 2);
        assert_eq!(report.spikes, 5);
        // Paper: "we end up using 4 bits to compress 5 bits" per stored word
        // on average -> efficiency 5/8 per-tensor here (two words).
        assert!(report.efficiency() > 0.6);
    }

    #[test]
    fn packed_beats_csr_at_realistic_width() {
        // On a K=128 row (footnote 5's example width: 7-bit coordinates),
        // the packed format wins decisively over per-timestep CSR.
        let mut a = SpikeTensor::zeros(4, 128, 4);
        for m in 0..4 {
            for k in (0..128).step_by(3) {
                a.set(m, k, (k + m) % 4, true);
                a.set(m, k, (k + m + 1) % 4, true);
            }
        }
        let (_, report) = compress_tensor(&a);
        assert!(
            report.gain_over_csr() > 1.5,
            "packed should beat CSR: gain {}",
            report.gain_over_csr()
        );
    }

    #[test]
    fn silent_tensor_compresses_to_format_only() {
        let a = SpikeTensor::zeros(2, 8, 4);
        let (_, report) = compress_tensor(&a);
        assert_eq!(report.payload_bits, 0);
        assert_eq!(report.efficiency(), 0.0);
        assert_eq!(report.total_bits(), report.format_bits);
    }

    #[test]
    fn dense_tensor_payload_dominates() {
        let mut a = SpikeTensor::zeros(2, 8, 4);
        for m in 0..2 {
            for k in 0..8 {
                for t in 0..4 {
                    a.set(m, k, t, true);
                }
            }
        }
        let (_, report) = compress_tensor(&a);
        assert_eq!(report.stored_neurons, 16);
        assert_eq!(report.payload_bits, 64);
        assert!((report.efficiency() - 1.0).abs() < 1e-12, "all-ones words");
        // Dense spike trains would be the same payload without masks; the
        // format adds the bitmask overhead.
        assert!(report.gain_over_dense() < 2.0);
    }

    #[test]
    fn sparser_tensors_gain_more_over_dense() {
        let mut sparse = SpikeTensor::zeros(4, 64, 4);
        sparse.set(0, 0, 0, true);
        sparse.set(0, 0, 1, true);
        let (_, sparse_report) = compress_tensor(&sparse);
        let mut denser = SpikeTensor::zeros(4, 64, 4);
        for k in 0..32 {
            denser.set(0, k, 0, true);
            denser.set(0, k, 1, true);
        }
        let (_, denser_report) = compress_tensor(&denser);
        assert!(sparse_report.gain_over_dense() > denser_report.gain_over_dense());
    }
}
