//! The two-phase layer kernel: a cache-friendly pair-intersection sweep.
//!
//! [`Loas::run_layer`] and the AND-popcount baselines spend essentially all
//! of their time intersecting row bitmasks of `A` with column bitmasks of
//! `B` — `O(M·N·K/64)` word operations interleaved, in the pre-kernel code
//! path, with the sequential tag-accurate cache model. This module splits
//! that work out as a **pure compute phase**:
//!
//! * [`RowBlocks`] — a structure-of-arrays layout of the `A`-side data:
//!   per row, the non-silent bitmask words followed by the `T` per-timestep
//!   plane-row words, contiguous, so one pair sweep is a single linear pass
//!   with no bounds-checked `get(i).copied().unwrap_or(0)` lookups;
//! * [`PairSweepKernel`] — for one fiber-B (words hoisted once), streams
//!   all row pairs of a tile and produces per-pair match counts plus the
//!   per-chunk stall/laggy bookkeeping of the inner-join cycle model;
//! * [`TileSweep`] — the per-tile result: per-pair matches, the per-column
//!   worst-TPPE drain, and the op-count aggregates the traffic phase folds
//!   into [`SimStats`] after replaying the memory system sequentially.
//!
//! Because the sweep is pure (no cache or DRAM state), it parallelizes
//! across row tiles with scoped threads; results are collected in tile
//! order, so reports are byte-identical for every worker count.
//!
//! In fully temporal-parallel mode the per-timestep `fired` counts are not
//! even swept: `fired` only ever enters the report through *global* sums
//! (`accumulates += matches + corrections` with
//! `corrections = T·matches − fired`), and
//! `Σ_{m,n,t} |A_t[m] ∧ B[n]| = Σ_k rowNNZ_B(k) · colSpikes_A(k)`, which
//! [`fired_grand_total`] computes in `O(K)` from precomputed column spike
//! counts. The sequential-timestep ablation, which needs per-timestep
//! counts per pair for its cycle model, sweeps the plane rows of the
//! [`RowBlocks`] layout linearly instead.
//!
//! [`Loas::run_layer`]: crate::Loas
//! [`SimStats`]: loas_sim::SimStats

use loas_sparse::{Bitmask, SpikeFiber};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Largest timestep count a packed spike word can carry (`u16` lanes).
pub const MAX_TIMESTEPS: usize = 16;

/// Structure-of-arrays `A`-side data: per row, `row_words` bitmask words
/// followed by `planes × row_words` per-timestep plane-row words, all
/// contiguous in one allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBlocks {
    rows: usize,
    row_words: usize,
    planes: usize,
    words: Vec<u64>,
}

impl RowBlocks {
    /// Builds the layout from per-row spike fibers: the fiber's non-silent
    /// bitmask becomes the mask words, and the packed spike words are
    /// scattered into `timesteps` plane rows.
    ///
    /// # Panics
    ///
    /// Panics when `timesteps` exceeds [`MAX_TIMESTEPS`] or the fibers have
    /// unequal uncompressed lengths.
    pub fn from_spike_fibers(fibers: &[SpikeFiber], timesteps: usize) -> Self {
        assert!(
            timesteps <= MAX_TIMESTEPS,
            "timesteps {timesteps} exceed the packed-word limit {MAX_TIMESTEPS}"
        );
        let k = fibers.first().map(SpikeFiber::len).unwrap_or(0);
        let row_words = k.div_ceil(64);
        let stride = row_words * (timesteps + 1);
        let mut words = vec![0u64; fibers.len() * stride];
        for (m, fiber) in fibers.iter().enumerate() {
            assert_eq!(fiber.len(), k, "row fibers must share the K dimension");
            let base = m * stride;
            words[base..base + fiber.bitmask().words().len()]
                .copy_from_slice(fiber.bitmask().words());
            for (k_pos, packed) in fiber.iter() {
                let (word, bit) = (k_pos / 64, k_pos % 64);
                for t in packed.firing_timesteps() {
                    words[base + (t + 1) * row_words + word] |= 1u64 << bit;
                }
            }
        }
        RowBlocks {
            rows: fibers.len(),
            row_words,
            planes: timesteps,
            words,
        }
    }

    /// Builds a plane-less layout (mask words only) from plain row
    /// bitmasks — the `A` side of single-pass ANN models.
    ///
    /// # Panics
    ///
    /// Panics when the masks have unequal lengths.
    pub fn from_masks(masks: &[Bitmask]) -> Self {
        let k = masks.first().map(Bitmask::len).unwrap_or(0);
        let row_words = k.div_ceil(64);
        let mut words = vec![0u64; masks.len() * row_words];
        for (m, mask) in masks.iter().enumerate() {
            assert_eq!(mask.len(), k, "row masks must share the K dimension");
            words[m * row_words..m * row_words + mask.words().len()].copy_from_slice(mask.words());
        }
        RowBlocks {
            rows: masks.len(),
            row_words,
            planes: 0,
            words,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Words per row of one plane (or of the mask).
    pub fn row_words(&self) -> usize {
        self.row_words
    }

    /// Number of per-timestep planes (0 for mask-only layouts).
    pub fn planes(&self) -> usize {
        self.planes
    }

    fn stride(&self) -> usize {
        self.row_words * (self.planes + 1)
    }

    /// Mask words of row `m`.
    pub fn mask(&self, m: usize) -> &[u64] {
        let base = m * self.stride();
        &self.words[base..base + self.row_words]
    }

    /// Plane-row words of row `m` at timestep `t`.
    pub fn plane(&self, m: usize, t: usize) -> &[u64] {
        assert!(t < self.planes, "plane {t} out of range {}", self.planes);
        let base = m * self.stride() + (t + 1) * self.row_words;
        &self.words[base..base + self.row_words]
    }

    /// The full contiguous block of row `m`: mask words then plane rows.
    pub fn block(&self, m: usize) -> &[u64] {
        let stride = self.stride();
        &self.words[m * stride..(m + 1) * stride]
    }
}

/// Per-pair counts from one intersection sweep, in the terms of the
/// inner-join cycle model ([`crate::InnerJoinUnit`] semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairCounts {
    /// AND-matched positions (`|bm_a ∧ bm_b|`).
    pub matches: u64,
    /// Bitmask chunks streamed (at least one, even for empty masks).
    pub chunks: u64,
    /// Cycles lost to FIFO backpressure (`Σ_chunk max(0, c − fifo)`).
    pub stalls: u64,
    /// Chunks that produced at least one match (laggy-circuit activations).
    pub laggy_chunks: u64,
    /// Total fired bits across matched positions (`Σ_t |A_t ∧ B|`).
    pub fired: u64,
    /// Per-timestep match counts (`|A_t ∧ B|`), valid for `planes` lanes.
    pub t_counts: [u32; MAX_TIMESTEPS],
}

/// Which cycle model the per-column worst-TPPE drain uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Fully temporal-parallel LoAS: a pair drains in
    /// `max(chunks, matches + stalls) + 1` cycles (P-LIF one-shot) and the
    /// per-timestep counts are never materialized (see
    /// [`fired_grand_total`]).
    TemporalParallel,
    /// The sequential-timestep ablation: each timestep re-runs the join, so
    /// a pair drains in `Σ_t (max(chunks, |A_t ∧ B|) + 1)` cycles and the
    /// sweep reads the plane rows.
    SequentialT,
}

/// One tile's worth of pure-compute results, consumed by the sequential
/// traffic phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileSweep {
    /// Rows covered by this tile.
    pub rows: Range<usize>,
    /// Per-pair match counts, column-major over the tile:
    /// `matches[n * rows.len() + r]` is row `rows.start + r` against
    /// fiber-B `n`.
    pub matches: Vec<u32>,
    /// Per-column worst-TPPE drain cycles (the synchronous-broadcast
    /// barrier), already including the per-pair tail of the active
    /// [`SweepMode`].
    pub worst: Vec<u64>,
    /// Σ matches over the tile's pairs.
    pub matches_total: u64,
    /// Σ FIFO-backpressure stalls over the tile's pairs.
    pub stall_total: u64,
    /// Σ laggy-circuit chunk activations over the tile's pairs.
    pub laggy_chunk_total: u64,
    /// Σ fired bits over the tile's pairs (only filled by sweeps that read
    /// the plane rows; the temporal-parallel kernel leaves it zero and the
    /// caller uses [`fired_grand_total`]).
    pub fired_total: u64,
}

/// The pure pair-intersection kernel of one layer sweep.
///
/// # Examples
///
/// ```
/// use loas_core::kernel::{PairSweepKernel, RowBlocks};
/// use loas_sparse::{PackedSpikes, SpikeFiber};
///
/// let row = vec![PackedSpikes::from_bits(0b0101, 4).unwrap(); 8];
/// let blocks = RowBlocks::from_spike_fibers(&[SpikeFiber::from_packed_row(&row)], 4);
/// let kernel = PairSweepKernel::new(128, Some(8));
/// let b = loas_sparse::Bitmask::from_indices(8, &[1, 5]).unwrap();
/// let counts = kernel.pair_counts(&blocks, 0, b.words());
/// assert_eq!(counts.matches, 2);
/// assert_eq!(counts.fired, 4); // two matches firing at two timesteps each
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairSweepKernel {
    chunk_words: usize,
    fifo: u64,
    /// Whether the host CPU has a hardware popcount — detected once at
    /// construction so the per-pair loops pay no dispatch cost.
    popcnt: bool,
}

impl PairSweepKernel {
    /// A kernel streaming `chunk_bits`-wide bitmask chunks with the given
    /// FIFO depth (`None` models an unbounded FIFO — the two-fast-prefix
    /// ablation, which never backpressures).
    pub fn new(chunk_bits: usize, fifo_depth: Option<usize>) -> Self {
        PairSweepKernel {
            chunk_words: (chunk_bits / 64).max(1),
            fifo: fifo_depth.map_or(u64::MAX, |d| d as u64),
            popcnt: popcnt_available(),
        }
    }

    /// Chunks streamed per pair for a `row_words`-word mask (at least one,
    /// matching the scan-cycle floor of the join model).
    pub fn chunks_for(&self, row_words: usize) -> u64 {
        (row_words.div_ceil(self.chunk_words) as u64).max(1)
    }

    /// Mask-only sweep of one pair: matches plus the per-chunk stall/laggy
    /// bookkeeping. `a` and `b` must have equal lengths (the layer's `K`
    /// words). Dispatches to a hardware-popcount build of the same loop
    /// when the CPU has one (the portable `count_ones` lowers to a ~12-op
    /// SWAR sequence on baseline x86-64, which dominates the sweep).
    #[inline]
    fn mask_counts(&self, a: &[u64], b: &[u64]) -> (u64, u64, u64) {
        #[cfg(target_arch = "x86_64")]
        if self.popcnt {
            // SAFETY: `popcnt` was set by the runtime feature check.
            return unsafe { self.mask_counts_popcnt(a, b) };
        }
        self.mask_counts_portable(a, b)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "popcnt")]
    unsafe fn mask_counts_popcnt(&self, a: &[u64], b: &[u64]) -> (u64, u64, u64) {
        self.mask_counts_portable(a, b)
    }

    /// The dispatch target: `#[inline(always)]` so the body re-compiles
    /// inside the `target_feature` wrapper with hardware popcount.
    #[inline(always)]
    fn mask_counts_portable(&self, a: &[u64], b: &[u64]) -> (u64, u64, u64) {
        let mut matches = 0u64;
        let mut stalls = 0u64;
        let mut laggy = 0u64;
        if self.chunk_words == 2 {
            // The Table III configuration (128-bit chunks): a hand-tiled
            // pass over word pairs, bounds checks hoisted by chunks_exact.
            let mut chunks_a = a.chunks_exact(2);
            let mut chunks_b = b.chunks_exact(2);
            for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
                let chunk_matches =
                    ((ca[0] & cb[0]).count_ones() + (ca[1] & cb[1]).count_ones()) as u64;
                matches += chunk_matches;
                stalls += chunk_matches.saturating_sub(self.fifo);
                laggy += (chunk_matches > 0) as u64;
            }
            let tail_a = chunks_a.remainder();
            let tail_b = chunks_b.remainder();
            if let (Some(aw), Some(bw)) = (tail_a.first(), tail_b.first()) {
                let chunk_matches = (aw & bw).count_ones() as u64;
                matches += chunk_matches;
                stalls += chunk_matches.saturating_sub(self.fifo);
                laggy += (chunk_matches > 0) as u64;
            }
            return (matches, stalls, laggy);
        }
        for (ca, cb) in a.chunks(self.chunk_words).zip(b.chunks(self.chunk_words)) {
            let mut chunk_matches = 0u64;
            for (aw, bw) in ca.iter().zip(cb) {
                chunk_matches += (aw & bw).count_ones() as u64;
            }
            matches += chunk_matches;
            stalls += chunk_matches.saturating_sub(self.fifo);
            laggy += (chunk_matches > 0) as u64;
        }
        (matches, stalls, laggy)
    }

    /// Full sweep of one pair: mask counts plus the per-timestep plane
    /// counts, in one linear pass over the row's contiguous block.
    pub fn pair_counts(&self, blocks: &RowBlocks, m: usize, b: &[u64]) -> PairCounts {
        debug_assert_eq!(blocks.row_words(), b.len(), "fiber-B word count");
        let (matches, stalls, laggy_chunks) = self.mask_counts(blocks.mask(m), b);
        let mut counts = PairCounts {
            matches,
            chunks: self.chunks_for(blocks.row_words().max(b.len())),
            stalls,
            laggy_chunks,
            fired: 0,
            t_counts: [0; MAX_TIMESTEPS],
        };
        for t in 0..blocks.planes() {
            let fired_t = self.and_count(blocks.plane(m, t), b);
            counts.t_counts[t] = fired_t as u32;
            counts.fired += fired_t;
        }
        counts
    }

    /// `|a ∧ b|` over word slices, through the construction-time popcount
    /// dispatch.
    #[inline]
    fn and_count(&self, a: &[u64], b: &[u64]) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if self.popcnt {
            // SAFETY: `popcnt` was set by the runtime feature check.
            return unsafe { and_count_words_popcnt(a, b) };
        }
        and_count_words_portable(a, b)
    }

    /// Sweeps one row tile against every fiber-B: the pure compute phase of
    /// a layer. Fiber-B words are hoisted once per column and streamed over
    /// the tile's contiguous row blocks.
    pub fn sweep_tile(
        &self,
        blocks: &RowBlocks,
        rows: Range<usize>,
        b_words: &[&[u64]],
        mode: SweepMode,
    ) -> TileSweep {
        let row_count = rows.len();
        let chunks = self.chunks_for(blocks.row_words());
        let mut sweep = TileSweep {
            rows: rows.clone(),
            matches: vec![0u32; row_count * b_words.len()],
            worst: vec![0u64; b_words.len()],
            ..TileSweep::default()
        };
        for (n, b) in b_words.iter().enumerate() {
            debug_assert_eq!(blocks.row_words(), b.len(), "fiber-B word count");
            let mut worst = 0u64;
            for (r, m) in rows.clone().enumerate() {
                match mode {
                    SweepMode::TemporalParallel => {
                        let (matches, stalls, laggy) = self.mask_counts(blocks.mask(m), b);
                        sweep.matches[n * row_count + r] = matches as u32;
                        sweep.matches_total += matches;
                        sweep.stall_total += stalls;
                        sweep.laggy_chunk_total += laggy;
                        worst = worst.max(chunks.max(matches + stalls) + 1);
                    }
                    SweepMode::SequentialT => {
                        let counts = self.pair_counts(blocks, m, b);
                        sweep.matches[n * row_count + r] = counts.matches as u32;
                        sweep.matches_total += counts.matches;
                        sweep.stall_total += counts.stalls;
                        sweep.laggy_chunk_total += counts.laggy_chunks;
                        sweep.fired_total += counts.fired;
                        let mut drain = 0u64;
                        for &fired_t in &counts.t_counts[..blocks.planes()] {
                            drain += chunks.max(fired_t as u64) + 1;
                        }
                        worst = worst.max(drain);
                    }
                }
            }
            sweep.worst[n] = worst;
        }
        sweep
    }

    /// Sweeps a whole layer tile by tile, fanning the tiles out over
    /// `workers` scoped threads (`1` runs inline). Tiles are claimed off a
    /// shared counter but each worker writes its own pre-allocated slot, so
    /// the returned tile order — and therefore every downstream report —
    /// is identical for any worker count.
    pub fn sweep_layer(
        &self,
        blocks: &RowBlocks,
        b_words: &[&[u64]],
        tile_rows: usize,
        mode: SweepMode,
        workers: usize,
    ) -> Vec<TileSweep> {
        assert!(tile_rows > 0, "tile height must be positive");
        let tiles: Vec<Range<usize>> = (0..blocks.rows())
            .step_by(tile_rows)
            .map(|start| start..(start + tile_rows).min(blocks.rows()))
            .collect();
        let workers = workers.max(1).min(tiles.len().max(1));
        if workers <= 1 {
            return tiles
                .into_iter()
                .map(|rows| self.sweep_tile(blocks, rows, b_words, mode))
                .collect();
        }
        let slots: Vec<OnceLock<TileSweep>> = (0..tiles.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(rows) = tiles.get(index) else {
                        break;
                    };
                    let sweep = self.sweep_tile(blocks, rows.clone(), b_words, mode);
                    slots[index].set(sweep).expect("each tile is claimed once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all tiles swept"))
            .collect()
    }
}

/// Whether the host CPU exposes a hardware popcount (detected once per
/// [`PairSweepKernel`] construction; std caches the cpuid result).
fn popcnt_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("popcnt")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn and_count_words_popcnt(a: &[u64], b: &[u64]) -> u64 {
    and_count_words_portable(a, b)
}

#[inline(always)]
fn and_count_words_portable(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(aw, bw)| (aw & bw).count_ones() as u64)
        .sum()
}

/// `Σ_{m,n,t} |A_t[m] ∧ B[n]|` in `O(K)`: every matched `(m, k, n)` triple
/// contributes the fire count of word `(m, k)`, and column `k` of `A` meets
/// `rowNNZ_B(k)` fiber-Bs.
pub fn fired_grand_total(col_spikes: &[u32], b_row_nnz: &[usize]) -> u64 {
    debug_assert_eq!(col_spikes.len(), b_row_nnz.len(), "K dimension");
    col_spikes
        .iter()
        .zip(b_row_nnz)
        .map(|(&spikes, &nnz)| spikes as u64 * nnz as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_sparse::PackedSpikes;

    fn fiber(words: &[(usize, u16)], k: usize, t: usize) -> SpikeFiber {
        let mut row = vec![PackedSpikes::silent(t).unwrap(); k];
        for &(pos, bits) in words {
            row[pos] = PackedSpikes::from_bits(bits, t).unwrap();
        }
        SpikeFiber::from_packed_row(&row)
    }

    #[test]
    fn row_blocks_mirror_fiber_and_planes() {
        let fibers = vec![
            fiber(&[(0, 0b0110), (130, 0b1111)], 200, 4),
            fiber(&[(64, 0b0001)], 200, 4),
        ];
        let blocks = RowBlocks::from_spike_fibers(&fibers, 4);
        assert_eq!(blocks.rows(), 2);
        assert_eq!(blocks.row_words(), 4);
        assert_eq!(blocks.planes(), 4);
        for (m, f) in fibers.iter().enumerate() {
            assert_eq!(blocks.mask(m), f.bitmask().words());
        }
        // Plane bits: row 0 fires at k=0 for t in {1,2} and k=130 for all t.
        assert_eq!(blocks.plane(0, 0)[0], 0);
        assert_eq!(blocks.plane(0, 1)[0], 1);
        assert_eq!(blocks.plane(0, 1)[2], 1 << 2);
        assert_eq!(blocks.plane(1, 0)[1], 1);
        assert_eq!(blocks.plane(1, 1)[1], 0);
        assert_eq!(blocks.block(0).len(), 4 * 5);
    }

    #[test]
    fn pair_counts_match_bitmask_ops() {
        let f = fiber(&[(0, 0b0110), (5, 0b1111), (130, 0b0001)], 200, 4);
        let blocks = RowBlocks::from_spike_fibers(std::slice::from_ref(&f), 4);
        let b = Bitmask::from_indices(200, &[0, 5, 131]).unwrap();
        let kernel = PairSweepKernel::new(128, Some(8));
        let counts = kernel.pair_counts(&blocks, 0, b.words());
        assert_eq!(counts.matches, 2);
        assert_eq!(counts.chunks, 2);
        assert_eq!(counts.stalls, 0);
        assert_eq!(counts.laggy_chunks, 1);
        // k=0 fires at t1,t2; k=5 fires everywhere.
        assert_eq!(counts.fired, 6);
        assert_eq!(&counts.t_counts[..4], &[1, 2, 2, 1]);
    }

    #[test]
    fn empty_masks_still_scan_one_chunk() {
        let blocks = RowBlocks::from_masks(&[Bitmask::zeros(0)]);
        let kernel = PairSweepKernel::new(128, Some(8));
        let counts = kernel.pair_counts(&blocks, 0, &[]);
        assert_eq!(counts.matches, 0);
        assert_eq!(counts.chunks, 1);
    }

    #[test]
    fn unbounded_fifo_never_stalls() {
        let positions: Vec<(usize, u16)> = (0..30).map(|i| (i, 1u16)).collect();
        let f = fiber(&positions, 64, 4);
        let blocks = RowBlocks::from_spike_fibers(std::slice::from_ref(&f), 4);
        let b = Bitmask::ones(64);
        let bounded = PairSweepKernel::new(128, Some(8)).pair_counts(&blocks, 0, b.words());
        let unbounded = PairSweepKernel::new(128, None).pair_counts(&blocks, 0, b.words());
        assert_eq!(bounded.stalls, 22);
        assert_eq!(unbounded.stalls, 0);
        assert_eq!(bounded.matches, unbounded.matches);
    }

    #[test]
    fn sweep_layer_is_worker_count_invariant() {
        let fibers: Vec<SpikeFiber> = (0..13)
            .map(|m| fiber(&[(m * 7 % 90, 0b1010), (m * 13 % 90, 0b0111)], 90, 4))
            .collect();
        let blocks = RowBlocks::from_spike_fibers(&fibers, 4);
        let b_masks: Vec<Bitmask> = (0..5)
            .map(|n| Bitmask::from_indices(90, &[n * 11 % 90, n * 17 % 90, 3]).unwrap())
            .collect();
        let b_words: Vec<&[u64]> = b_masks.iter().map(|b| b.words()).collect();
        let kernel = PairSweepKernel::new(128, Some(8));
        let reference = kernel.sweep_layer(&blocks, &b_words, 4, SweepMode::TemporalParallel, 1);
        assert_eq!(reference.len(), 4);
        for workers in [2, 4, 8] {
            let swept =
                kernel.sweep_layer(&blocks, &b_words, 4, SweepMode::TemporalParallel, workers);
            assert_eq!(swept, reference, "workers={workers}");
        }
        for workers in [1, 2, 4] {
            let seq = kernel.sweep_layer(&blocks, &b_words, 4, SweepMode::SequentialT, workers);
            assert_eq!(
                seq,
                kernel.sweep_layer(&blocks, &b_words, 4, SweepMode::SequentialT, 1),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn fired_grand_total_matches_per_pair_sweep() {
        let fibers: Vec<SpikeFiber> = (0..6)
            .map(|m| fiber(&[(m * 5 % 70, 0b1100), ((m * 9 + 2) % 70, 0b0011)], 70, 4))
            .collect();
        let blocks = RowBlocks::from_spike_fibers(&fibers, 4);
        let b_masks: Vec<Bitmask> = (0..4)
            .map(|n| Bitmask::from_indices(70, &[n * 3, n * 7 + 1, 12]).unwrap())
            .collect();
        let b_words: Vec<&[u64]> = b_masks.iter().map(|b| b.words()).collect();
        let kernel = PairSweepKernel::new(128, Some(8));
        let per_pair: u64 = kernel
            .sweep_layer(&blocks, &b_words, 16, SweepMode::SequentialT, 1)
            .iter()
            .map(|tile| tile.fired_total)
            .sum();
        let mut col_spikes = vec![0u32; 70];
        for f in &fibers {
            for (k, word) in f.iter() {
                col_spikes[k] += word.fire_count() as u32;
            }
        }
        let mut b_row_nnz = vec![0usize; 70];
        for b in &b_masks {
            for k in b.iter_ones() {
                b_row_nnz[k] += 1;
            }
        }
        assert_eq!(fired_grand_total(&col_spikes, &b_row_nnz), per_pair);
    }
}
