//! The end-to-end LoAS accelerator model (Section IV, Fig. 7).
//!
//! # Modeled execution
//!
//! The scheduler assigns one row fiber of `A` to each of the 16 TPPEs (a
//! *row tile*); weight fibers of `B` are broadcast column by column over the
//! swizzle-switch crossbar. Each TPPE runs the FTP-friendly inner-join and
//! accumulates all `T` timesteps of one output neuron, then a P-LIF fires
//! all `T` output spikes in one shot and the compressor packs them back
//! into fibers. Fiber-B loads are double-buffered behind compute.
//!
//! # Two-phase execution (simulator performance)
//!
//! `run_layer` runs in two phases. The **pure compute phase** hands the
//! whole pair-intersection sweep to the [`crate::kernel`] module: a
//! [`PairSweepKernel`] streams every row pair of a tile through the
//! workload's precomputed [`RowBlocks`] structure-of-arrays layout (with
//! fiber-B words hoisted), optionally fanned out across row tiles on
//! scoped worker threads. The **sequential traffic phase** then replays
//! the per-pair counts through the HBM/SRAM/crossbar models in the exact
//! pre-kernel order. On the kernel strategy the replay consumes the
//! layer's precomputed [`TrafficSpans`] — fixed cache-line spans per
//! row/column object, no per-pair address arithmetic — and carries
//! [`SpanResidency`](loas_sim::SpanResidency) tokens on the per-column
//! fiber-B broadcasts so re-touching a still-resident fiber takes the
//! cache's all-hits fast path; the reference strategy keeps the original
//! per-access arithmetic as the oracle. Reports are byte-identical by
//! construction for any [`SweepStrategy`] and worker count (asserted via
//! the portable serialization in this crate's tests).
//!
//! # Traffic accounting (what the paper's Figs. 13-14 count)
//!
//! *Off-chip*: compressed `A` (packed payload [`Input`] + bitmasks/pointers
//! [`Format`]) and compressed `B` are read once — the FiberCache captures
//! intra-layer reuse — and compressed outputs are written once.
//!
//! *On-chip*: `bm-A` of each row is read once per layer into the TPPE
//! (held while every `n` streams by, the paper's "hold fibers of A as long
//! as possible"); `bm-B` + non-zero weights are re-broadcast once per
//! `(row-tile, n)`; matched packed words of `A` are fetched on demand
//! (`matches x T` bits); outputs are written once. The banked
//! set-associative cache is simulated tag-accurately for the Fig. 14 miss
//! rates.
//!
//! [`Input`]: loas_sim::TrafficClass::Input
//! [`Format`]: loas_sim::TrafficClass::Format
//! [`RowBlocks`]: crate::kernel::RowBlocks

use crate::compressor::Compressor;
use crate::config::LoasConfig;
use crate::inner_join::JoinScratch;
use crate::kernel::{fired_grand_total, PairSweepKernel, SweepMode, TileSweep};
use crate::metrics::{Accelerator, LayerReport};
use crate::prepared::{PreparedLayer, TrafficSpans};
use crate::tppe::Tppe;
use loas_sim::{
    ClockDomain, Crossbar, Cycle, EnergyModel, HbmModel, SimStats, SpanResidency, SramCache,
    TrafficClass,
};
use loas_snn::SpikeTensor;
use loas_sparse::{Bitmask, PackedSpikes, POINTER_BITS};
use std::borrow::Cow;

/// How a model computes its pure pair-intersection phase.
///
/// Both strategies produce byte-identical reports; [`SweepStrategy::Kernel`]
/// is the optimized default and [`SweepStrategy::Reference`] preserves the
/// pre-kernel scalar code path for cross-checking and as the benchmark
/// baseline every perf PR is judged against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepStrategy {
    /// The cache-friendly [`PairSweepKernel`] sweep over the prepared
    /// structure-of-arrays layout, parallelizable across row tiles.
    #[default]
    Kernel,
    /// The pre-kernel scalar path: per-pair bitmask chunk iteration plus
    /// per-timestep `and_count`s, sequential.
    Reference,
}

impl SweepStrategy {
    /// Resolves the strategy from the `LOAS_SWEEP` environment variable:
    /// `scalar` / `reference` select the pre-kernel path (letting CI and
    /// A/B runs toggle whole campaigns without plumbing flags), `kernel` /
    /// unset the kernel.
    ///
    /// # Panics
    ///
    /// Panics on any other value: a typo here would silently turn the
    /// scalar-vs-kernel golden A/B into a kernel-vs-kernel no-op, so
    /// unknown toggles fail loud instead.
    pub fn from_env() -> Self {
        match std::env::var("LOAS_SWEEP").ok().as_deref() {
            Some("scalar") | Some("reference") => SweepStrategy::Reference,
            Some("kernel") | Some("") | None => SweepStrategy::Kernel,
            Some(other) => panic!(
                "unknown LOAS_SWEEP value `{other}` (expected `kernel`, `scalar`, or `reference`)"
            ),
        }
    }
}

/// The LoAS accelerator simulator.
///
/// # Examples
///
/// ```
/// use loas_core::{Accelerator, Loas, PreparedLayer};
/// use loas_workloads::{LayerShape, SparsityProfile, WorkloadGenerator};
///
/// let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2)?;
/// let workload = WorkloadGenerator::default()
///     .generate("demo", LayerShape::new(4, 16, 32, 256), &profile)?;
/// let prepared = PreparedLayer::new(&workload);
/// let report = Loas::default().run_layer(&prepared);
/// assert!(report.stats.cycles.get() > 0);
/// # Ok::<(), loas_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Loas {
    config: LoasConfig,
    energy: EnergyModel,
    verify_outputs: bool,
    sweep: SweepStrategy,
    intra_workers: usize,
}

impl Loas {
    /// Creates a LoAS instance with the given configuration.
    pub fn new(config: LoasConfig) -> Self {
        Loas {
            config,
            energy: EnergyModel::default(),
            verify_outputs: false,
            sweep: SweepStrategy::from_env(),
            intra_workers: 1,
        }
    }

    /// Enables the bit-exact datapath (per-pair TPPE simulation producing
    /// output spikes) — slower, used for functional verification.
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify_outputs = verify;
        self
    }

    /// Selects the pure-phase sweep strategy explicitly (overriding the
    /// `LOAS_SWEEP` environment default).
    pub fn with_sweep(mut self, sweep: SweepStrategy) -> Self {
        self.sweep = sweep;
        self
    }

    /// Sets the intra-layer worker budget: the pure compute phase fans row
    /// tiles out over up to this many scoped threads. Reports are
    /// byte-identical for every value; `1` (the default) runs inline.
    pub fn with_intra_workers(mut self, workers: usize) -> Self {
        self.intra_workers = workers.max(1);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &LoasConfig {
        &self.config
    }

    fn chunk_words(&self) -> usize {
        self.config.bitmask_bits / 64
    }

    fn fifo_depth(&self) -> Option<usize> {
        // The two-fast-prefix ablation variant has both offsets ready every
        // cycle: no FIFO buffering, no backpressure — at double the
        // prefix-sum area/power (Section IV-C).
        if self.config.two_fast_prefix {
            None
        } else {
            Some(self.config.fifo_depth)
        }
    }

    fn sweep_kernel(&self) -> PairSweepKernel {
        PairSweepKernel::new(self.config.bitmask_bits.max(64), self.fifo_depth())
    }

    fn sweep_mode(&self) -> SweepMode {
        if self.config.temporal_parallel {
            SweepMode::TemporalParallel
        } else {
            SweepMode::SequentialT
        }
    }

    /// Per-pair cycle/op metrics from word-level popcounts.
    ///
    /// Counting semantics (matches, prefix-sum activity, backpressure)
    /// are identical to [`crate::InnerJoinUnit::join`]; the *latency* model
    /// here is the steady-state pipelined one: chunk streaming (one
    /// 128-bit chunk per cycle) overlaps match draining (one match per
    /// cycle from the fast prefix-sum), so a pair costs
    /// `max(chunks, matches + backpressure)`. The laggy-correction tail is
    /// amortized across back-to-back output neurons (the next pair's
    /// streaming proceeds while the previous corrections drain, Fig. 10's
    /// "new fetch") and is exposed once per row tile in `run_layer`.
    fn pair_metrics(&self, bm_a: &Bitmask, bm_b: &Bitmask) -> PairMetrics {
        let chunk_words = self.chunk_words().max(1);
        let fifo = self.fifo_depth().map_or(u64::MAX, |d| d as u64);
        let mut matches = 0u64;
        let mut laggy_chunks = 0u64;
        let mut stalls = 0u64;
        let mut chunks_scanned = 0u64;
        for chunk_matches in bm_a.chunked_and_counts(bm_b, chunk_words) {
            matches += chunk_matches;
            chunks_scanned += 1;
            stalls += chunk_matches.saturating_sub(fifo);
            if chunk_matches > 0 {
                laggy_chunks += 1;
            }
        }
        // Pipelined latency: streaming and draining overlap. Fast/laggy
        // prefix-sum activity (`chunks + matches` per pair, laggy sweeps
        // per active chunk) is folded into the stats from tile aggregates.
        PairMetrics {
            matches,
            chunks: chunks_scanned,
            cycles: chunks_scanned.max(matches + stalls),
            laggy_chunks,
            stall_cycles: stalls,
        }
    }

    /// The pre-kernel scalar sweep: fills the same per-tile results as
    /// [`PairSweepKernel::sweep_layer`] from per-pair [`Loas::pair_metrics`]
    /// calls plus per-timestep plane `and_count`s, sequentially.
    fn reference_sweep(&self, layer: &PreparedLayer, mode: SweepMode) -> Vec<TileSweep> {
        let shape = layer.shape;
        let planes = layer.workload.spikes.planes();
        let tppes = self.config.tppes;
        let mut sweeps = Vec::with_capacity(shape.m.div_ceil(tppes.max(1)));
        let mut tile_start = 0usize;
        while tile_start < shape.m {
            let tile_end = (tile_start + tppes).min(shape.m);
            let rows = tile_start..tile_end;
            let row_count = rows.len();
            let mut sweep = TileSweep {
                rows: rows.clone(),
                matches: vec![0u32; row_count * shape.n],
                worst: vec![0u64; shape.n],
                ..TileSweep::default()
            };
            for (n, fiber_b) in layer.b_fibers.iter().enumerate() {
                let mut worst = 0u64;
                for (r, m) in rows.clone().enumerate() {
                    let metrics = self.pair_metrics(layer.a_mask(m), fiber_b.bitmask());
                    sweep.matches[n * row_count + r] = metrics.matches as u32;
                    sweep.matches_total += metrics.matches;
                    sweep.stall_total += metrics.stall_cycles;
                    sweep.laggy_chunk_total += metrics.laggy_chunks;
                    let mut sequential_cycles = 0u64;
                    for plane in planes {
                        let matches_t =
                            plane.row(m).and_count(fiber_b.bitmask()).expect("equal K") as u64;
                        sweep.fired_total += matches_t;
                        sequential_cycles += metrics.chunks.max(matches_t) + 1; // + LIF step
                    }
                    worst = match mode {
                        SweepMode::TemporalParallel => worst.max(metrics.cycles + 1), // + P-LIF
                        SweepMode::SequentialT => worst.max(sequential_cycles),
                    };
                }
                sweep.worst[n] = worst;
            }
            sweeps.push(sweep);
            tile_start = tile_end;
        }
        sweeps
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PairMetrics {
    matches: u64,
    chunks: u64,
    cycles: u64,
    laggy_chunks: u64,
    stall_cycles: u64,
}

/// The tag-accurate probe endpoints of the sequential traffic replay.
///
/// [`SweepStrategy::Kernel`] drives the cache through the layer's
/// precomputed [`TrafficSpans`] — no per-access address arithmetic, and
/// [`SpanResidency`] tokens on the per-column fiber-B objects so the
/// re-broadcast of a still-resident fiber to the next row tile takes the
/// all-hits fast path. [`SweepStrategy::Reference`] keeps the original
/// address map and per-access `access_range`/`probe_range` arithmetic as
/// the oracle. Both variants touch the same lines in the same order, so
/// reports are byte-identical (asserted in tests and ci.sh).
enum TrafficProbes<'a> {
    Spans {
        spans: Cow<'a, TrafficSpans>,
        a_payload_residency: Vec<SpanResidency>,
        b_bm_residency: Vec<SpanResidency>,
        b_payload_residency: Vec<SpanResidency>,
    },
    Address {
        a_addr: Vec<u64>,
        b_addr: Vec<u64>,
        bm_bytes: u64,
    },
}

impl<'a> TrafficProbes<'a> {
    fn spans(layer: &'a PreparedLayer, weight_bits: usize, line_bytes: usize) -> Self {
        let spans = layer.traffic_spans(weight_bits, line_bytes);
        TrafficProbes::Spans {
            a_payload_residency: vec![SpanResidency::default(); layer.shape.m],
            b_bm_residency: vec![SpanResidency::default(); layer.shape.n],
            b_payload_residency: vec![SpanResidency::default(); layer.shape.n],
            spans,
        }
    }

    fn address(layer: &PreparedLayer, weight_bits: usize) -> Self {
        // Address map for the tag-accurate cache: A fibers then B.
        let shape = layer.shape;
        let mut a_addr = Vec::with_capacity(shape.m);
        let mut addr = 0u64;
        for fiber in &layer.a_fibers {
            a_addr.push(addr);
            addr += fiber.storage_bits(shape.t).div_ceil(8) as u64;
        }
        let mut b_addr = Vec::with_capacity(shape.n);
        for fiber in &layer.b_fibers {
            b_addr.push(addr);
            addr += fiber.storage_bits(weight_bits).div_ceil(8) as u64;
        }
        TrafficProbes::Address {
            a_addr,
            b_addr,
            bm_bytes: (shape.k + POINTER_BITS).div_ceil(8) as u64,
        }
    }

    /// Loads `bm-A` (+ pointer) of row `m`; returns missed lines.
    fn load_a_bitmask(&mut self, cache: &mut SramCache, m: usize) -> u64 {
        match self {
            TrafficProbes::Spans { spans, .. } => {
                cache.access_span(spans.a_bm_span[m], TrafficClass::Format)
            }
            TrafficProbes::Address {
                a_addr, bm_bytes, ..
            } => cache.access_range(a_addr[m], *bm_bytes, TrafficClass::Format),
        }
    }

    /// Broadcasts `bm-B` + the weight payload of column `n`; returns the
    /// bitmask's missed lines (the Format refetch the HBM model charges).
    fn load_b_fiber(&mut self, cache: &mut SramCache, n: usize, payload_bytes: u64) -> u64 {
        match self {
            TrafficProbes::Spans {
                spans,
                b_bm_residency,
                b_payload_residency,
                ..
            } => {
                let missed_bm = cache.access_span_resident(
                    spans.b_bm_span[n],
                    &mut b_bm_residency[n],
                    TrafficClass::Format,
                );
                cache.access_span_resident(
                    spans.b_payload_span[n],
                    &mut b_payload_residency[n],
                    TrafficClass::Weight,
                );
                missed_bm
            }
            TrafficProbes::Address {
                b_addr, bm_bytes, ..
            } => {
                let missed_bm = cache.access_range(b_addr[n], *bm_bytes, TrafficClass::Format);
                cache.access_range(b_addr[n] + *bm_bytes, payload_bytes, TrafficClass::Weight);
                missed_bm
            }
        }
    }

    /// Compressed output bytes written per output row (precomputed on the
    /// span path; the original formula on the oracle).
    fn out_row_bytes(&self, n: usize, t: usize) -> u64 {
        match self {
            TrafficProbes::Spans { spans, .. } => spans.out_row_bytes,
            TrafficProbes::Address { .. } => {
                ((n + POINTER_BITS) as u64 + (n as u64 / 10) * t as u64).div_ceil(8)
            }
        }
    }

    /// Tags the on-demand fetch of row `m`'s first `payload_bytes` packed
    /// payload bytes (byte traffic is ledgered separately by the caller).
    fn probe_a_payload(&mut self, cache: &mut SramCache, m: usize, payload_bytes: u64) {
        match self {
            TrafficProbes::Spans {
                spans,
                a_payload_residency,
                ..
            } => {
                // The per-pair probe: same base line every pair of row
                // `m`, only the length varies — the residency token's
                // prefix salvage keeps it at one tag compare per line.
                cache.probe_span_resident(
                    spans.a_payload_span(m, payload_bytes),
                    &mut a_payload_residency[m],
                );
            }
            TrafficProbes::Address {
                a_addr, bm_bytes, ..
            } => {
                cache.probe_range(a_addr[m] + *bm_bytes, payload_bytes);
            }
        }
    }
}

impl Default for Loas {
    /// The Table III configuration.
    fn default() -> Self {
        Loas::new(LoasConfig::table3())
    }
}

impl Accelerator for Loas {
    fn name(&self) -> String {
        let mut name = String::from("LoAS");
        if !self.config.temporal_parallel {
            name.push_str("-seqT");
        }
        if self.config.two_fast_prefix {
            name.push_str("-2fast");
        }
        if self.config.discard_low_activity_outputs {
            name.push_str("-FT");
        }
        name
    }

    fn set_intra_workers(&mut self, workers: usize) {
        self.intra_workers = workers.max(1);
    }

    fn run_layer(&mut self, layer: &PreparedLayer) -> LayerReport {
        let shape = layer.shape;
        assert_eq!(
            shape.t, self.config.timesteps,
            "configure LoAS with timesteps matching the workload (got T={} vs config {})",
            shape.t, self.config.timesteps
        );
        let clock = ClockDomain::default();
        let mut hbm = HbmModel::new(self.config.hbm_gbps, self.config.hbm_channels, clock);
        let mut cache = SramCache::new(
            self.config.cache_bytes,
            self.config.cache_line_bytes,
            self.config.cache_ways,
            self.config.cache_banks,
        );
        let crossbar = Crossbar::new(self.config.tppes, self.config.crossbar_bus_bytes);
        let tppe = Tppe::new(&self.config);
        let compressor = Compressor::new(&self.config);
        let mut stats = SimStats::new();

        // ---- Phase 1 (pure compute): the pair-intersection sweep, with no
        // memory-system state touched, fanned out across row tiles.
        let mode = self.sweep_mode();
        let tile_sweeps: Vec<TileSweep> = match self.sweep {
            SweepStrategy::Kernel => {
                let b_words: Vec<&[u64]> = layer
                    .b_fibers
                    .iter()
                    .map(|fiber| fiber.bitmask().words())
                    .collect();
                self.sweep_kernel().sweep_layer(
                    &layer.row_blocks,
                    &b_words,
                    self.config.tppes,
                    mode,
                    self.intra_workers,
                )
            }
            SweepStrategy::Reference => self.reference_sweep(layer, mode),
        };
        // Per-row per-timestep firing counts enter the report only through
        // global sums: corrections = T * matches - fired. The kernel path
        // computes the layer total in O(K) instead of sweeping plane rows.
        let fired_total: u64 = match (mode, self.sweep) {
            (SweepMode::TemporalParallel, SweepStrategy::Kernel) => {
                fired_grand_total(&layer.col_spikes, &layer.b_row_nnz)
            }
            _ => tile_sweeps.iter().map(|sweep| sweep.fired_total).sum(),
        };

        // ---- Phase 2 (sequential traffic): off-chip streaming plus the
        // tag-accurate cache replayed in the exact pre-kernel order.

        // Off-chip traffic: the packed A payload streams in once
        // (compulsory); bitmasks and weight fibers are charged miss-driven
        // through the FiberCache tags below, so capacity behaviour (not an
        // assumption) decides refetches.
        let (a_payload_bits, _) = layer.a_compressed_bits();
        hbm.read_bits(TrafficClass::Input, a_payload_bits);
        let (b_payload_bits, _) = layer.b_compressed_bits(self.config.weight_bits);
        hbm.read_bits(TrafficClass::Weight, b_payload_bits);
        let line = self.config.cache_line_bytes as u64;

        // Probe endpoints for the tag-accurate cache: the kernel strategy
        // replays through the precomputed spans, the reference strategy
        // through the original address arithmetic (the oracle).
        let mut probes = match self.sweep {
            SweepStrategy::Kernel => {
                TrafficProbes::spans(layer, self.config.weight_bits, self.config.cache_line_bytes)
            }
            SweepStrategy::Reference => TrafficProbes::address(layer, self.config.weight_bits),
        };

        let mut compute = 0u64;
        let mut verified_output = if self.verify_outputs {
            Some(SpikeTensor::zeros(shape.m, shape.n, shape.t))
        } else {
            None
        };
        // Scratch state reused across every verified pair and output row
        // (no per-pair allocation churn on the bit-exact datapath).
        let mut join_scratch = JoinScratch::new(shape.t);
        let mut row_words_buf: Vec<PackedSpikes> = Vec::new();

        for sweep in &tile_sweeps {
            let rows = sweep.rows.clone();
            let row_count = rows.len();
            // Load bm-A (+ held payload stream) for each TPPE in the tile:
            // one cache pass per row per layer.
            let mut a_scatter = Vec::with_capacity(row_count);
            for m in rows.clone() {
                let bm_bytes = (shape.k + POINTER_BITS).div_ceil(8) as u64;
                let missed = probes.load_a_bitmask(&mut cache, m);
                hbm.read(TrafficClass::Format, missed * line);
                a_scatter.push(bm_bytes);
            }
            compute += crossbar.scatter_cycles(&a_scatter).get();

            let mut prev_b_load = 0u64;
            for (n, fiber_b) in layer.b_fibers.iter().enumerate() {
                // bm-B + weights broadcast: one cache read serves all TPPEs.
                let b_bm_bytes = (shape.k + POINTER_BITS).div_ceil(8) as u64;
                let b_payload_bytes = (fiber_b.nnz() * self.config.weight_bits).div_ceil(8) as u64;
                let missed_bm = probes.load_b_fiber(&mut cache, n, b_payload_bytes);
                hbm.read(TrafficClass::Format, missed_bm * line);
                let b_load =
                    tppe.b_load_cycles(fiber_b.nnz()) + crossbar.broadcast_cycles(b_bm_bytes).get();

                // All TPPEs in the tile join against the same fiber-B; the
                // tile advances at the slowest TPPE (synchronous broadcast,
                // precomputed by the sweep as `worst`).
                for (r, m) in rows.clone().enumerate() {
                    let matches = sweep.matches[n * row_count + r] as u64;
                    // Matched packed words of A fetched on demand: exact
                    // bytes ledgered, lines tagged (resident payload hits).
                    let payload_bytes = (matches * shape.t as u64).div_ceil(8);
                    cache.read_untagged(TrafficClass::Input, payload_bytes);
                    probes.probe_a_payload(&mut cache, m, payload_bytes);

                    if let Some(out) = verified_output.as_mut() {
                        let outcome = tppe.process_with(
                            &layer.a_fibers[m],
                            fiber_b,
                            layer.lif(),
                            &mut join_scratch,
                        );
                        debug_assert_eq!(outcome.join.matches, matches);
                        for t in 0..shape.t {
                            if outcome.plif.spikes.fires_at(t) {
                                out.set(m, n, t, true);
                            }
                        }
                    }
                }
                // Double-buffered fiber-B: the previous load overlaps this
                // compute; expose whichever is longer.
                compute += sweep.worst[n].max(prev_b_load);
                prev_b_load = b_load;
            }
            compute += prev_b_load.min(1); // drain

            // The last pair's laggy-correction tail is exposed once per
            // tile (hidden behind the next pair everywhere else). The
            // two-fast and sequential-T variants have no correction tail.
            if self.config.temporal_parallel && !self.config.two_fast_prefix {
                compute += self.config.laggy_latency_cycles();
            }

            // Output compression per row in the tile: the inverted laggy
            // prefix-sum overlaps the next tile's compute, so only traffic
            // is charged. Both execution paths charge the same estimate —
            // a bitmask + pointer per row plus packed payload at the ~90%
            // output sparsity the paper reports (Section II-B) — so that
            // verification mode never perturbs the performance model.
            let out_row_bytes = probes.out_row_bytes(shape.n, shape.t);
            for m in rows {
                if let Some(out) = verified_output.as_ref() {
                    // Exercise the real compressor datapath (discard filter
                    // included) on the verified outputs.
                    row_words_buf.clear();
                    row_words_buf.extend((0..shape.n).map(|n| {
                        let mut w = PackedSpikes::silent(shape.t).expect("t in range");
                        for t in 0..shape.t {
                            if out.get(m, n, t) {
                                w.set(t, true);
                            }
                        }
                        w
                    }));
                    let _ = compressor.compress_row(&row_words_buf);
                }
                cache.write(TrafficClass::Output, out_row_bytes);
                hbm.write(TrafficClass::Output, out_row_bytes);
            }
        }

        // ---- Fold the sweep's op-count aggregates into the stats. Every
        // term is a commutative sum over pairs, so tile-level aggregation
        // reproduces the per-pair accumulation of the pre-kernel loop
        // exactly (asserted byte-identical in tests).
        let pairs = (shape.m * shape.n) as u64;
        let chunks_per_pair = self.sweep_kernel().chunks_for(shape.k.div_ceil(64));
        let matches_total: u64 = tile_sweeps.iter().map(|s| s.matches_total).sum();
        let stall_total: u64 = tile_sweeps.iter().map(|s| s.stall_total).sum();
        let laggy_chunk_total: u64 = tile_sweeps.iter().map(|s| s.laggy_chunk_total).sum();
        let fast_raw = pairs * chunks_per_pair + matches_total;
        if self.config.temporal_parallel {
            let corrections = matches_total * shape.t as u64 - fired_total;
            stats.ops.accumulates += matches_total + corrections;
            if self.config.two_fast_prefix {
                stats.ops.fast_prefix_cycles += 2 * fast_raw;
            } else {
                stats.ops.fast_prefix_cycles += fast_raw;
                stats.ops.laggy_prefix_cycles +=
                    laggy_chunk_total * self.config.laggy_latency_cycles();
            }
            stats.stall_cycles += Cycle(stall_total);
        } else {
            // Sequential-T ablation: same compression and hardware, but
            // each timestep re-runs the join and accumulates directly (no
            // pseudo/corrections, no laggy circuit involved).
            stats.ops.accumulates += fired_total;
            stats.ops.fast_prefix_cycles += shape.t as u64 * pairs * chunks_per_pair + fired_total;
        }
        stats.ops.lif_updates += pairs * shape.t as u64;

        // ---- Roofline: compute overlapped with off-chip streaming and
        // with aggregate banked-SRAM bandwidth (banks x 16-byte ports).
        let dram_cycles = hbm.transfer_cycles(hbm.ledger().total()).get();
        stats.dram = hbm.take_ledger();
        let (sram_traffic, cache_stats) = cache.take_results();
        stats.sram = sram_traffic;
        stats.cache = cache_stats;
        let sram_bw = (self.config.cache_banks * self.config.crossbar_bus_bytes) as u64;
        let sram_cycles = stats.sram.total().div_ceil(sram_bw.max(1));
        let total = compute.max(dram_cycles).max(sram_cycles);
        stats.cycles = Cycle(total);
        if total > compute {
            stats.stall_cycles += Cycle(total - compute);
        }
        let energy = self.energy.energy_of(&stats);
        LayerReport {
            workload: layer.name.clone(),
            accelerator: self.name(),
            stats,
            energy,
            output: verified_output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_workloads::{LayerShape, SparsityProfile, WorkloadGenerator};

    fn small_layer() -> PreparedLayer {
        let profile = SparsityProfile::from_percentages(75.0, 60.0, 68.0, 90.0).unwrap();
        let w = WorkloadGenerator::default()
            .generate("loas-test", LayerShape::new(4, 20, 12, 96), &profile)
            .unwrap();
        PreparedLayer::new(&w)
    }

    #[test]
    fn verified_output_matches_golden() {
        let layer = small_layer();
        let mut loas = Loas::default().with_verification(true);
        let report = loas.run_layer(&layer);
        let golden = layer
            .workload
            .golden_layer()
            .forward(&layer.workload.spikes)
            .unwrap();
        assert_eq!(report.output.as_ref().unwrap(), &golden.spikes);
    }

    #[test]
    fn fast_and_verified_paths_agree_on_cycles() {
        let layer = small_layer();
        let fast = Loas::default().run_layer(&layer);
        let slow = Loas::default().with_verification(true).run_layer(&layer);
        assert_eq!(fast.stats.cycles, slow.stats.cycles);
        assert_eq!(fast.stats.ops.accumulates, slow.stats.ops.accumulates);
    }

    #[test]
    fn report_has_sane_totals() {
        let layer = small_layer();
        let report = Loas::default().run_layer(&layer);
        assert!(report.stats.cycles.get() > 0);
        assert!(report.stats.dram.total() > 0);
        assert!(report.stats.sram.total() > 0);
        assert!(report.energy.total_pj() > 0.0);
        assert!(report.stats.cache.accesses() > 0);
    }

    #[test]
    fn ft_mode_reduces_or_preserves_cycles() {
        let layer = small_layer();
        let ft_workload = layer.workload.with_preprocessing();
        let ft_layer = PreparedLayer::new(&ft_workload);
        let base = Loas::default().run_layer(&layer);
        let ft = Loas::new(
            LoasConfig::builder()
                .discard_low_activity_outputs(true)
                .build(),
        )
        .run_layer(&ft_layer);
        assert!(ft.stats.cycles <= base.stats.cycles);
        assert!(ft.stats.ops.accumulates <= base.stats.ops.accumulates);
    }

    #[test]
    fn name_reflects_ft_mode() {
        assert_eq!(Loas::default().name(), "LoAS");
        let ft = Loas::new(
            LoasConfig::builder()
                .discard_low_activity_outputs(true)
                .build(),
        );
        assert_eq!(ft.name(), "LoAS-FT");
        let seq = Loas::new(LoasConfig::builder().temporal_parallel(false).build());
        assert_eq!(seq.name(), "LoAS-seqT");
        let two = Loas::new(LoasConfig::builder().two_fast_prefix(true).build());
        assert_eq!(two.name(), "LoAS-2fast");
    }

    #[test]
    fn sequential_t_ablation_is_slower_and_correction_free() {
        // The dataflow ablation: same compression and hardware, timesteps
        // processed sequentially — FTP's latency benefit in isolation.
        let layer = small_layer();
        let ftp = Loas::default().run_layer(&layer);
        let seq =
            Loas::new(LoasConfig::builder().temporal_parallel(false).build()).run_layer(&layer);
        assert!(
            seq.stats.cycles > ftp.stats.cycles,
            "sequential {} vs FTP {}",
            seq.stats.cycles.get(),
            ftp.stats.cycles.get()
        );
        assert_eq!(
            seq.stats.ops.laggy_prefix_cycles, 0,
            "no corrections sequentially"
        );
        // Same traffic: the ablation isolates latency, not data movement.
        assert_eq!(seq.stats.dram.total(), ftp.stats.dram.total());
    }

    #[test]
    fn two_fast_ablation_is_at_least_as_fast_but_never_stalls() {
        // The inner-join ablation: a second fast prefix-sum removes the
        // correction tail at roughly double the prefix-sum power.
        let layer = small_layer();
        let laggy = Loas::default().run_layer(&layer);
        let two = Loas::new(LoasConfig::builder().two_fast_prefix(true).build()).run_layer(&layer);
        assert!(two.stats.cycles <= laggy.stats.cycles);
        assert_eq!(two.stats.stall_cycles.get(), 0);
        assert_eq!(two.stats.ops.laggy_prefix_cycles, 0);
        assert!(two.stats.ops.fast_prefix_cycles > laggy.stats.ops.fast_prefix_cycles);
        // The paper's claim: "almost no throughput penalty". On this tiny
        // test layer the per-tile correction tail is proportionally large;
        // on paper-sized layers the ablation harness measures <1%.
        let penalty = laggy.stats.cycles.get() as f64 / two.stats.cycles.get().max(1) as f64;
        assert!(penalty < 1.15, "throughput penalty {penalty}");
    }

    /// Every LoAS variant must produce byte-identical portable reports for
    /// the kernel and pre-kernel sweep strategies, at any intra-layer
    /// worker count — the two-phase refactor's core guarantee.
    #[test]
    fn kernel_and_reference_sweeps_are_byte_identical() {
        let layer = small_layer();
        let configs = [
            LoasConfig::table3(),
            LoasConfig::builder().temporal_parallel(false).build(),
            LoasConfig::builder().two_fast_prefix(true).build(),
            LoasConfig::builder()
                .discard_low_activity_outputs(true)
                .build(),
        ];
        for config in configs {
            let golden = Loas::new(config.clone())
                .with_sweep(SweepStrategy::Reference)
                .run_layer(&layer)
                .to_portable();
            for workers in [1usize, 2, 4] {
                let report = Loas::new(config.clone())
                    .with_sweep(SweepStrategy::Kernel)
                    .with_intra_workers(workers)
                    .run_layer(&layer)
                    .to_portable();
                assert_eq!(
                    report,
                    golden,
                    "strategy/worker divergence for {} at {workers} workers",
                    Loas::new(config.clone()).name()
                );
            }
        }
    }

    #[test]
    fn sweep_strategy_env_parsing() {
        // from_env reads the process environment; the mapping itself is
        // what needs pinning (set_var would race the parallel harness).
        assert_eq!(SweepStrategy::default(), SweepStrategy::Kernel);
        let map = |v: Option<&str>| match v {
            Some("scalar") | Some("reference") => Some(SweepStrategy::Reference),
            Some("kernel") | Some("") | None => Some(SweepStrategy::Kernel),
            Some(_) => None, // from_env panics: a typo must not pass as Kernel
        };
        assert_eq!(map(Some("scalar")), Some(SweepStrategy::Reference));
        assert_eq!(map(Some("reference")), Some(SweepStrategy::Reference));
        assert_eq!(map(Some("kernel")), Some(SweepStrategy::Kernel));
        assert_eq!(map(Some("")), Some(SweepStrategy::Kernel));
        assert_eq!(map(None), Some(SweepStrategy::Kernel));
        assert_eq!(map(Some("Scalar")), None, "case typos fail loud");
    }
}
