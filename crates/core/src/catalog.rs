//! The open accelerator catalog: a process-global registry mapping stable
//! model names to typed configurations and boxed-[`Accelerator`] factories.
//!
//! The engine's original dispatcher was a closed enum: every model variant
//! was hard-coded into `AcceleratorSpec`, so adding a baseline (or giving
//! one a sweepable configuration) meant editing the engine, the serving
//! front end, and the bench harness in lockstep. The catalog inverts that
//! dependency: models **register** a [`ModelEntry`] — stable name, default
//! [`ModelConfig`], content-hash contribution, build function — and every
//! downstream layer (campaign specs, memo keys, JSON spec schema, CLI
//! validation) resolves through the registry. Adding a model touches only
//! the crate that defines it.
//!
//! # Registration
//!
//! `loas-core` registers the LoAS model itself; `loas-baselines` registers
//! the five comparison designs via its `register_catalog()`. A model in a
//! new crate registers the same way:
//!
//! ```
//! use loas_core::{catalog, ConfigValue, LoasConfig, ModelConfig};
//!
//! // The built-in entries are always present:
//! assert!(catalog::with(|c| c.get("loas").is_some()));
//! let fields = LoasConfig::table3().fields();
//! assert_eq!(fields[0], ("tppes", ConfigValue::UInt(16)));
//! ```
//!
//! # Memo-key stability
//!
//! Entries absorb their **legacy discriminant** into content hashes first,
//! and a baseline's configuration fields are only absorbed when they differ
//! from the registered default. Pre-catalog campaign specs therefore hash
//! to the exact same [`MemoKey`]s as before the redesign — warm memo
//! stores stay warm — while every non-default configuration gets a
//! distinct key. LoAS opts into `hash_config_always`, preserving its
//! original always-hashed layout.
//!
//! [`MemoKey`]: https://docs.rs/loas-engine

use crate::hash::ContentHasher;
use crate::metrics::Accelerator;
use std::sync::{OnceLock, RwLock};

/// One typed configuration field value. The three kinds cover every knob
/// the simulators expose (counts/geometry, bandwidths, mode flags).
#[derive(Debug, Clone, Copy)]
pub enum ConfigValue {
    /// An unsigned integer (counts, sizes, widths).
    UInt(u64),
    /// A float (bandwidths, utilizations). Compared and hashed by IEEE-754
    /// bit pattern — configs are either copies or genuinely different.
    Float(f64),
    /// A mode flag.
    Bool(bool),
}

impl ConfigValue {
    /// The value as `u64`, if it is an integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            ConfigValue::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `usize`, if it is an integer that fits.
    pub fn as_usize(self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `f64`, if it is a float.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            ConfigValue::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a flag.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            ConfigValue::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The kind name used in error messages and schema docs.
    pub fn kind(self) -> &'static str {
        match self {
            ConfigValue::UInt(_) => "integer",
            ConfigValue::Float(_) => "number",
            ConfigValue::Bool(_) => "boolean",
        }
    }

    /// Absorbs the value into a content hash (width-delimited, like the
    /// typed [`ContentHasher`] writers).
    pub fn write_content(self, hasher: &mut ContentHasher) {
        match self {
            ConfigValue::UInt(v) => hasher.write_u64(v),
            ConfigValue::Float(v) => hasher.write_f64(v),
            ConfigValue::Bool(v) => hasher.write_bool(v),
        }
    }
}

impl PartialEq for ConfigValue {
    /// Floats compare by bit pattern (the memo-key equality notion), so
    /// `-0.0 != 0.0` and comparisons agree with [`ConfigValue::write_content`].
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ConfigValue::UInt(a), ConfigValue::UInt(b)) => a == b,
            (ConfigValue::Float(a), ConfigValue::Float(b)) => a.to_bits() == b.to_bits(),
            (ConfigValue::Bool(a), ConfigValue::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for ConfigValue {}

impl std::fmt::Display for ConfigValue {
    /// The value as a JSON token (floats via shortest-round-trip
    /// formatting, so serialized specs re-parse bit-exactly).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigValue::UInt(v) => write!(f, "{v}"),
            ConfigValue::Float(v) => write!(f, "{v}"),
            ConfigValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Errors raised by catalog lookups and configuration edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// No registered model under this name.
    UnknownModel(String),
    /// A second registration under an existing name.
    DuplicateModel(String),
    /// A configuration edit named a field the model does not have.
    UnknownField {
        /// The model whose config was edited.
        model: String,
        /// The unrecognized field name.
        field: String,
    },
    /// A configuration edit supplied the wrong value kind.
    FieldType {
        /// The model whose config was edited.
        model: String,
        /// The field name.
        field: String,
        /// The kind the field requires.
        expected: &'static str,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownModel(name) => {
                write!(f, "unknown accelerator model `{name}`")
            }
            CatalogError::DuplicateModel(name) => {
                write!(f, "accelerator model `{name}` is already registered")
            }
            CatalogError::UnknownField { model, field } => {
                write!(f, "model `{model}` has no config field `{field}`")
            }
            CatalogError::FieldType {
                model,
                field,
                expected,
            } => write!(f, "config field `{model}.{field}` must be {expected}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A typed, introspectable accelerator configuration. Every model's config
/// implements this trait, which gives the engine and the serving front end
/// a uniform way to clone, compare, serialize, override, and content-hash
/// configurations without naming concrete types.
pub trait ModelConfig: std::fmt::Debug + Send + Sync + 'static {
    /// The catalog name of the model this configuration belongs to.
    fn model(&self) -> &'static str;

    /// Every field as `(name, value)`, in a fixed declaration order (the
    /// order is part of the content-hash layout — never reorder).
    fn fields(&self) -> Vec<(&'static str, ConfigValue)>;

    /// Overrides one field by name. Values are kind-checked but **not**
    /// cross-validated — callers applying untrusted overrides (the serve
    /// spec parser) must call [`ModelConfig::validate`] after the last
    /// `set`, because individually-plausible fields can combine into a
    /// configuration the simulator would hang or panic on.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownField`] for unrecognized names,
    /// [`CatalogError::FieldType`] for kind mismatches.
    fn set(&mut self, field: &str, value: ConfigValue) -> Result<(), CatalogError>;

    /// Checks the configuration's cross-field invariants (the same rules
    /// the builder's `build()` panics on), returning a human-readable
    /// description of the first violation.
    ///
    /// # Errors
    ///
    /// A message naming the degenerate field(s).
    fn validate(&self) -> Result<(), String>;

    /// Clones the configuration behind a fresh box.
    fn clone_box(&self) -> Box<dyn ModelConfig>;

    /// The concrete configuration, for factory downcasts.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl Clone for Box<dyn ModelConfig> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl PartialEq for dyn ModelConfig {
    /// Configurations are equal when they configure the same model with
    /// the same field values (floats by bit pattern).
    fn eq(&self, other: &dyn ModelConfig) -> bool {
        self.model() == other.model() && self.fields() == other.fields()
    }
}

/// Implements [`ModelConfig`] for a plain-struct configuration: list the
/// fields once (with their kind) and the trait's `fields`/`set` accessors
/// are generated consistently. The type must provide an inherent
/// `fn check(&self) -> Result<(), String>` holding its cross-field
/// invariants — the generated [`ModelConfig::validate`] delegates to it.
///
/// Field kinds: `usize`, `u64`, `f64`, `bool`.
#[macro_export]
macro_rules! impl_model_config {
    ($ty:ty, $model:literal, { $( $field:ident : $kind:tt ),* $(,)? }) => {
        impl $crate::ModelConfig for $ty {
            fn model(&self) -> &'static str {
                $model
            }

            fn fields(&self) -> Vec<(&'static str, $crate::ConfigValue)> {
                vec![$( (stringify!($field), $crate::impl_model_config!(@get self, $field, $kind)) ),*]
            }

            fn set(
                &mut self,
                field: &str,
                value: $crate::ConfigValue,
            ) -> Result<(), $crate::CatalogError> {
                match field {
                    $(
                        stringify!($field) => {
                            $crate::impl_model_config!(@set self, $field, $kind, value, $model);
                            Ok(())
                        }
                    )*
                    other => Err($crate::CatalogError::UnknownField {
                        model: $model.to_owned(),
                        field: other.to_owned(),
                    }),
                }
            }

            fn validate(&self) -> Result<(), String> {
                self.check()
            }

            fn clone_box(&self) -> Box<dyn $crate::ModelConfig> {
                Box::new(self.clone())
            }

            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
    };
    (@get $self:ident, $field:ident, usize) => {
        $crate::ConfigValue::UInt($self.$field as u64)
    };
    (@get $self:ident, $field:ident, u64) => {
        $crate::ConfigValue::UInt($self.$field)
    };
    (@get $self:ident, $field:ident, f64) => {
        $crate::ConfigValue::Float($self.$field)
    };
    (@get $self:ident, $field:ident, bool) => {
        $crate::ConfigValue::Bool($self.$field)
    };
    (@set $self:ident, $field:ident, usize, $value:ident, $model:literal) => {
        $self.$field = $value
            .as_usize()
            .ok_or($crate::CatalogError::FieldType {
                model: $model.to_owned(),
                field: stringify!($field).to_owned(),
                expected: "an integer",
            })?
    };
    (@set $self:ident, $field:ident, u64, $value:ident, $model:literal) => {
        $self.$field = $value.as_u64().ok_or($crate::CatalogError::FieldType {
            model: $model.to_owned(),
            field: stringify!($field).to_owned(),
            expected: "an integer",
        })?
    };
    (@set $self:ident, $field:ident, f64, $value:ident, $model:literal) => {
        $self.$field = $value.as_f64().ok_or($crate::CatalogError::FieldType {
            model: $model.to_owned(),
            field: stringify!($field).to_owned(),
            expected: "a number",
        })?
    };
    (@set $self:ident, $field:ident, bool, $value:ident, $model:literal) => {
        $self.$field = $value.as_bool().ok_or($crate::CatalogError::FieldType {
            model: $model.to_owned(),
            field: stringify!($field).to_owned(),
            expected: "a boolean",
        })?
    };
}

/// One registered accelerator model: the catalog's unit of dispatch.
#[derive(Clone, Copy)]
pub struct ModelEntry {
    name: &'static str,
    about: &'static str,
    discriminant: u64,
    hash_config_always: bool,
    default_config: fn() -> Box<dyn ModelConfig>,
    build: fn(&dyn ModelConfig) -> Box<dyn Accelerator + Send>,
    wants_fine_tuned: fn(&dyn ModelConfig) -> bool,
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("name", &self.name)
            .field("discriminant", &self.discriminant)
            .finish_non_exhaustive()
    }
}

impl ModelEntry {
    /// A new entry. `discriminant` is the stable content-hash tag this
    /// model has always used (legacy enum position for the original fleet;
    /// pick a fresh value ≥ 7 for new models and never reuse one).
    pub fn new(
        name: &'static str,
        about: &'static str,
        discriminant: u64,
        default_config: fn() -> Box<dyn ModelConfig>,
        build: fn(&dyn ModelConfig) -> Box<dyn Accelerator + Send>,
    ) -> Self {
        ModelEntry {
            name,
            about,
            discriminant,
            hash_config_always: false,
            default_config,
            build,
            wants_fine_tuned: |_| false,
        }
    }

    /// Opts into hashing the full configuration even at its default values
    /// (LoAS's pre-catalog layout; new models should keep the default
    /// non-default-only scheme).
    pub fn hash_config_always(mut self) -> Self {
        self.hash_config_always = true;
        self
    }

    /// Installs the predicate deciding whether a configuration consumes
    /// the fine-tuned (silent-neuron-masked) workload variant.
    pub fn wants_fine_tuned(mut self, predicate: fn(&dyn ModelConfig) -> bool) -> Self {
        self.wants_fine_tuned = predicate;
        self
    }

    /// The stable catalog (and spec-schema) name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description for CLI listings.
    pub fn about(&self) -> &'static str {
        self.about
    }

    /// A fresh default configuration.
    pub fn default_config(&self) -> Box<dyn ModelConfig> {
        (self.default_config)()
    }

    /// Builds a boxed model from a configuration of this entry's type.
    ///
    /// # Panics
    ///
    /// Factories panic when handed another model's configuration; the
    /// engine's spec layer guarantees the pairing.
    pub fn build(&self, config: &dyn ModelConfig) -> Box<dyn Accelerator + Send> {
        (self.build)(config)
    }

    /// Whether `config` asks for the fine-tuned workload variant.
    pub fn config_wants_fine_tuned(&self, config: &dyn ModelConfig) -> bool {
        (self.wants_fine_tuned)(config)
    }

    /// Absorbs a `(model, config)` identity into a memo-key hash. The
    /// legacy discriminant always leads; configuration fields follow —
    /// always for `hash_config_always` entries (LoAS's original layout,
    /// raw values in field order), otherwise only when the configuration
    /// differs from the default (tagged and key-delimited), so pre-catalog
    /// default-config keys are preserved byte for byte.
    pub fn write_content(&self, config: &dyn ModelConfig, hasher: &mut ContentHasher) {
        hasher.write_u64(self.discriminant);
        let fields = config.fields();
        if self.hash_config_always {
            for (_, value) in fields {
                value.write_content(hasher);
            }
        } else if fields != self.default_config().fields() {
            hasher.write_str("cfg/2");
            for (name, value) in fields {
                hasher.write_str(name);
                value.write_content(hasher);
            }
        }
    }
}

/// An ordered set of [`ModelEntry`]s. Most code uses the process-global
/// catalog through [`with`]/[`register`]; standalone instances exist for
/// tests.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: Vec<ModelEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers one entry.
    ///
    /// # Errors
    ///
    /// [`CatalogError::DuplicateModel`] when the name is taken.
    pub fn register(&mut self, entry: ModelEntry) -> Result<(), CatalogError> {
        if self.get(entry.name).is_some() {
            return Err(CatalogError::DuplicateModel(entry.name.to_owned()));
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Looks up an entry by stable name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|entry| entry.name == name)
    }

    /// Every entry, in registration order.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|entry| entry.name).collect()
    }
}

fn global() -> &'static RwLock<Catalog> {
    static GLOBAL: OnceLock<RwLock<Catalog>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let mut catalog = Catalog::new();
        catalog
            .register(loas_entry())
            .expect("fresh catalog accepts the builtin");
        RwLock::new(catalog)
    })
}

/// The LoAS entry `loas-core` seeds the global catalog with.
fn loas_entry() -> ModelEntry {
    ModelEntry::new(
        "loas",
        "LoAS: fully temporal-parallel dual-sparse SNN accelerator (Table III)",
        4,
        || Box::new(crate::LoasConfig::table3()),
        |config| {
            let config = config
                .as_any()
                .downcast_ref::<crate::LoasConfig>()
                .expect("loas entry built with a LoasConfig");
            Box::new(crate::Loas::new(config.clone()))
        },
    )
    .hash_config_always()
    .wants_fine_tuned(|config| {
        config
            .as_any()
            .downcast_ref::<crate::LoasConfig>()
            .is_some_and(|config| config.discard_low_activity_outputs)
    })
}

/// Registers `entry` into the process-global catalog.
///
/// # Errors
///
/// [`CatalogError::DuplicateModel`] when the name is taken.
///
/// # Panics
///
/// Panics if the catalog lock is poisoned (a registrant panicked).
pub fn register(entry: ModelEntry) -> Result<(), CatalogError> {
    global().write().expect("catalog lock").register(entry)
}

/// Runs `f` with shared access to the process-global catalog.
///
/// # Panics
///
/// Panics if the catalog lock is poisoned (a registrant panicked).
pub fn with<R>(f: impl FnOnce(&Catalog) -> R) -> R {
    f(&global().read().expect("catalog lock"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoasConfig;

    #[test]
    fn builtin_loas_entry_preserves_the_legacy_hash_layout() {
        // Discriminant 4 + raw config fields, exactly like the pre-catalog
        // `AcceleratorSpec::write_content` arm.
        let config = LoasConfig::table3();
        let mut legacy = ContentHasher::new();
        legacy.write_u64(4);
        config.write_content(&mut legacy);

        let mut via_entry = ContentHasher::new();
        with(|catalog| {
            let entry = catalog.get("loas").expect("builtin");
            entry.write_content(&config, &mut via_entry);
        });
        assert_eq!(via_entry.finish(), legacy.finish());
    }

    #[test]
    fn config_values_compare_and_coerce() {
        assert_eq!(ConfigValue::UInt(7).as_usize(), Some(7));
        assert_eq!(ConfigValue::UInt(7).as_f64(), None);
        assert_eq!(ConfigValue::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(ConfigValue::Bool(true).as_bool(), Some(true));
        assert_eq!(ConfigValue::Float(0.1 + 0.2), ConfigValue::Float(0.1 + 0.2));
        assert_ne!(ConfigValue::Float(0.0), ConfigValue::Float(-0.0));
        assert_ne!(ConfigValue::UInt(1), ConfigValue::Bool(true));
        assert_eq!(format!("{}", ConfigValue::Float(0.823)), "0.823");
        assert_eq!(format!("{}", ConfigValue::UInt(128)), "128");
    }

    #[test]
    fn loas_config_fields_round_trip_through_set() {
        let mut config = LoasConfig::table3();
        config.set("tppes", ConfigValue::UInt(32)).unwrap();
        config.set("hbm_gbps", ConfigValue::Float(64.0)).unwrap();
        config
            .set("temporal_parallel", ConfigValue::Bool(false))
            .unwrap();
        assert_eq!(config.tppes, 32);
        assert!((config.hbm_gbps - 64.0).abs() < 1e-12);
        assert!(!config.temporal_parallel);

        let error = config.set("warp_factor", ConfigValue::UInt(9)).unwrap_err();
        assert!(matches!(error, CatalogError::UnknownField { .. }));
        let error = config.set("tppes", ConfigValue::Bool(true)).unwrap_err();
        assert!(matches!(error, CatalogError::FieldType { .. }));
    }

    #[test]
    fn default_configs_hash_like_bare_discriminants_for_lazy_entries() {
        fn dummy_default() -> Box<dyn ModelConfig> {
            Box::new(LoasConfig::table3())
        }
        fn dummy_build(_: &dyn ModelConfig) -> Box<dyn Accelerator + Send> {
            unreachable!("hash-only entry")
        }
        let entry = ModelEntry::new("dummy", "", 9, dummy_default, dummy_build);
        let config = LoasConfig::table3();

        let mut hashed = ContentHasher::new();
        entry.write_content(&config, &mut hashed);
        let mut bare = ContentHasher::new();
        bare.write_u64(9);
        assert_eq!(hashed.finish(), bare.finish(), "defaults add nothing");

        let tweaked = LoasConfig::builder().tppes(32).build();
        let mut hashed_tweaked = ContentHasher::new();
        entry.write_content(&tweaked, &mut hashed_tweaked);
        assert_ne!(hashed_tweaked.finish(), bare.finish());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut catalog = Catalog::new();
        catalog.register(loas_entry()).unwrap();
        assert_eq!(
            catalog.register(loas_entry()),
            Err(CatalogError::DuplicateModel("loas".to_owned()))
        );
        assert_eq!(catalog.names(), vec!["loas"]);
    }
}
