//! Pre-compressed layer workloads shared by all accelerator models.
//!
//! Building fibers and bitmasks is workload preparation, not accelerator
//! work; every model (LoAS and baselines) consumes the same
//! [`PreparedLayer`] so that cross-accelerator comparisons see identical
//! inputs.

use crate::kernel::RowBlocks;
use loas_snn::LifParams;
use loas_sparse::{Bitmask, CsrMatrix, PackedSpikes, SpikeFiber, WeightFiber, POINTER_BITS};
use loas_workloads::{LayerShape, LayerWorkload};

/// A layer workload with every compressed view precomputed.
#[derive(Debug, Clone)]
pub struct PreparedLayer {
    /// Workload name.
    pub name: String,
    /// The `(T, M, N, K)` shape.
    pub shape: LayerShape,
    /// The original workload (spike planes + dense weights + LIF).
    pub workload: LayerWorkload,
    /// Per-row compressed spike fibers (LoAS format: non-silent bitmask +
    /// packed words).
    pub a_fibers: Vec<SpikeFiber>,
    /// Per-column compressed weight fibers.
    pub b_fibers: Vec<WeightFiber>,
    /// Per-timestep CSR views of the spike planes (GoSPA's format).
    pub a_csr_per_t: Vec<CsrMatrix<()>>,
    /// Per-row non-zero weight counts of `B` viewed row-wise (for OP/Gust
    /// models: `B`'s row `k`).
    pub b_row_nnz: Vec<usize>,
    /// Structure-of-arrays sweep layout of the `A` side: per row, the
    /// non-silent bitmask words followed by the `T` plane-row words,
    /// contiguous (consumed by [`crate::kernel::PairSweepKernel`]).
    pub row_blocks: RowBlocks,
    /// Per-column total spike counts (`Σ_{m,t} A[m, k, t]`), the `A` half
    /// of the `O(K)` fired-count aggregate
    /// ([`crate::kernel::fired_grand_total`]).
    pub col_spikes: Vec<u32>,
}

impl PreparedLayer {
    /// Prepares all compressed views of a workload.
    pub fn new(workload: &LayerWorkload) -> Self {
        let shape = workload.shape;
        let a_fibers = workload.spikes.to_row_fibers();
        let b_fibers: Vec<WeightFiber> = (0..shape.n)
            .map(|n| WeightFiber::from_weights(&workload.weights.column(n)))
            .collect();
        let a_csr_per_t = workload
            .spikes
            .planes()
            .iter()
            .map(CsrMatrix::from_bit_matrix)
            .collect();
        let mut b_row_nnz = vec![0usize; shape.k];
        for (ki, nnz) in b_row_nnz.iter_mut().enumerate() {
            *nnz = workload.weights.row(ki).iter().filter(|&&w| w != 0).count();
        }
        let row_blocks = RowBlocks::from_spike_fibers(&a_fibers, shape.t);
        let mut col_spikes = vec![0u32; shape.k];
        for fiber in &a_fibers {
            for (k, word) in fiber.iter() {
                col_spikes[k] += word.fire_count() as u32;
            }
        }
        PreparedLayer {
            name: workload.name.clone(),
            shape,
            workload: workload.clone(),
            a_fibers,
            b_fibers,
            a_csr_per_t,
            b_row_nnz,
            row_blocks,
            col_spikes,
        }
    }

    /// LIF parameters of the output stage.
    pub fn lif(&self) -> LifParams {
        self.workload.lif
    }

    /// Non-silent bitmask of row `m` (the `bm-A` a TPPE holds).
    pub fn a_mask(&self, m: usize) -> &Bitmask {
        self.a_fibers[m].bitmask()
    }

    /// Total non-silent neurons across all rows.
    pub fn a_nnz(&self) -> usize {
        self.a_fibers.iter().map(SpikeFiber::nnz).sum()
    }

    /// Total non-zero weights.
    pub fn b_nnz(&self) -> usize {
        self.b_fibers.iter().map(WeightFiber::nnz).sum()
    }

    /// Total spikes across all timesteps.
    pub fn spike_count(&self) -> usize {
        self.workload.spikes.spike_count()
    }

    /// Compressed size of `A` in LoAS format, split as
    /// `(payload_bits, format_bits)`: packed words vs bitmasks + pointers.
    pub fn a_compressed_bits(&self) -> (u64, u64) {
        let payload = (self.a_nnz() * self.shape.t) as u64;
        let format = self
            .a_fibers
            .iter()
            .map(|f| (f.bitmask().storage_bits() + POINTER_BITS) as u64)
            .sum();
        (payload, format)
    }

    /// Compressed size of `B` in fiber format, split as
    /// `(payload_bits, format_bits)`.
    pub fn b_compressed_bits(&self, weight_bits: usize) -> (u64, u64) {
        let payload = (self.b_nnz() * weight_bits) as u64;
        let format = self
            .b_fibers
            .iter()
            .map(|f| (f.bitmask().storage_bits() + POINTER_BITS) as u64)
            .sum();
        (payload, format)
    }

    /// Size of `A` fetched densely as raw spike trains (SparTen-SNN: every
    /// spike bit crosses the memory boundary, Section II-D).
    pub fn a_dense_bits(&self) -> u64 {
        (self.shape.m * self.shape.k * self.shape.t) as u64
    }

    /// Size of `A` in per-timestep CSR (GoSPA-SNN), split as
    /// `(payload_bits, format_bits)`; spike CSR stores only coordinates, so
    /// payload is zero and everything is format overhead.
    pub fn a_csr_bits(&self) -> (u64, u64) {
        let format = self
            .a_csr_per_t
            .iter()
            .map(|csr| csr.storage_bits(0) as u64)
            .sum();
        (0, format)
    }

    /// Per-timestep spike row of `A` (`A[m, ·, t]` as a bitmask).
    pub fn a_row_at(&self, m: usize, t: usize) -> &Bitmask {
        self.workload.spikes.plane(t).row(m)
    }

    /// The packed word of neuron `(m, k)`.
    pub fn a_word(&self, m: usize, k: usize) -> PackedSpikes {
        self.workload.spikes.packed_word(m, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_workloads::{SparsityProfile, WorkloadGenerator};

    fn prepared() -> PreparedLayer {
        let generator = WorkloadGenerator::default();
        let profile = SparsityProfile::from_percentages(75.0, 60.0, 70.0, 90.0).unwrap();
        let w = generator
            .generate("prep-test", LayerShape::new(4, 8, 6, 64), &profile)
            .unwrap();
        PreparedLayer::new(&w)
    }

    #[test]
    fn fiber_counts_match_shape() {
        let p = prepared();
        assert_eq!(p.a_fibers.len(), 8);
        assert_eq!(p.b_fibers.len(), 6);
        assert_eq!(p.a_csr_per_t.len(), 4);
        assert_eq!(p.b_row_nnz.len(), 64);
    }

    #[test]
    fn nnz_consistency() {
        let p = prepared();
        let total_row_nnz: usize = p.b_row_nnz.iter().sum();
        assert_eq!(
            total_row_nnz,
            p.b_nnz(),
            "row-wise and column-wise B nnz agree"
        );
        let csr_nnz: usize = p.a_csr_per_t.iter().map(|c| c.nnz()).sum();
        assert_eq!(csr_nnz, p.spike_count());
    }

    #[test]
    fn compressed_sizes_positive_and_ordered() {
        let p = prepared();
        let (a_payload, a_format) = p.a_compressed_bits();
        assert_eq!(a_payload, (p.a_nnz() * 4) as u64);
        assert!(a_format >= (p.shape.m * p.shape.k) as u64);
        // LoAS packed A must be far smaller than dense A at this sparsity.
        assert!(
            a_payload + a_format
                < p.a_dense_bits() + (p.shape.m as u64 * POINTER_BITS as u64) + p.a_dense_bits()
        );
        let (_, csr_format) = p.a_csr_bits();
        assert!(csr_format > 0);
    }

    #[test]
    fn row_blocks_and_col_spikes_mirror_the_tensor() {
        let p = prepared();
        assert_eq!(p.row_blocks.rows(), p.shape.m);
        assert_eq!(p.row_blocks.planes(), p.shape.t);
        for m in 0..p.shape.m {
            assert_eq!(p.row_blocks.mask(m), p.a_mask(m).words());
            for t in 0..p.shape.t {
                assert_eq!(
                    p.row_blocks.plane(m, t),
                    p.a_row_at(m, t).words(),
                    "plane ({m}, {t})"
                );
            }
        }
        let total: u32 = p.col_spikes.iter().sum();
        assert_eq!(total as usize, p.spike_count());
    }

    #[test]
    fn a_word_matches_fiber_payload() {
        let p = prepared();
        for m in 0..p.shape.m {
            for (k, word) in p.a_fibers[m].iter() {
                assert_eq!(p.a_word(m, k), *word);
                assert!(!word.is_silent());
            }
        }
    }
}
