//! Pre-compressed layer workloads shared by all accelerator models.
//!
//! Building fibers and bitmasks is workload preparation, not accelerator
//! work; every model (LoAS and baselines) consumes the same
//! [`PreparedLayer`] so that cross-accelerator comparisons see identical
//! inputs.

use crate::kernel::RowBlocks;
use loas_sim::LineSpan;
use loas_snn::LifParams;
use loas_sparse::{Bitmask, CsrMatrix, PackedSpikes, SpikeFiber, WeightFiber, POINTER_BITS};
use loas_workloads::{LayerShape, LayerWorkload};
use std::borrow::Cow;

/// The weight precision the prepare-time [`TrafficSpans`] are computed
/// for (the Table III configuration every model defaults to).
pub const DEFAULT_WEIGHT_BITS: usize = 8;

/// The cache-line size the prepare-time [`TrafficSpans`] are computed for
/// (the shared 64-byte FiberCache line of Table III).
pub const DEFAULT_LINE_BYTES: usize = 64;

/// Precomputed cache-line spans of every traffic object the LoAS replay
/// touches, for one `(weight_bits, line_bytes)` geometry.
///
/// The tag-accurate traffic phase used to re-derive line numbers from
/// abstract byte addresses on every probe. The address map is a pure
/// function of the prepared fibers, so the spans are computed once at
/// prepare time (for the default Table III geometry) and the replay does
/// zero address arithmetic per pair: row/column objects are fixed
/// [`LineSpan`]s, and the per-pair payload probe only varies in length
/// from a precomputed `(first_line, intra-line offset)` base
/// ([`TrafficSpans::a_payload_span`]).
///
/// The address map matches the original replay exactly: `A` fibers laid
/// out back to back (bitmask + pointer bytes, then packed payload), then
/// `B` fibers (bitmask + pointer bytes, then weight payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficSpans {
    /// Weight precision the `B` payload spans assume.
    pub weight_bits: usize,
    /// Cache-line size all spans assume.
    pub line_bytes: usize,
    /// Bitmask + pointer bytes of one `A` row (uniform across rows).
    pub a_bm_bytes: u64,
    /// Per-row span of the `bm-A` (+ pointer) load.
    pub a_bm_span: Vec<LineSpan>,
    /// Per-row first line of the packed payload region.
    pub a_payload_line: Vec<u64>,
    /// Per-row byte offset of the payload start within its first line.
    pub a_payload_intra: Vec<u64>,
    /// Bitmask + pointer bytes of one `B` fiber (uniform across columns).
    pub b_bm_bytes: u64,
    /// Per-column span of the `bm-B` (+ pointer) broadcast.
    pub b_bm_span: Vec<LineSpan>,
    /// Per-column span of the non-zero weight payload.
    pub b_payload_span: Vec<LineSpan>,
    /// Compressed output bytes written per output row.
    pub out_row_bytes: u64,
}

impl TrafficSpans {
    /// Builds the span table for a prepared layer under the given
    /// geometry, replicating the replay's original address map byte for
    /// byte (asserted against the address-arithmetic formulas by the
    /// equivalence property tests).
    pub fn build(layer: &PreparedLayer, weight_bits: usize, line_bytes: usize) -> Self {
        TrafficSpans::build_parts(
            layer.shape,
            &layer.a_fibers,
            &layer.b_fibers,
            weight_bits,
            line_bytes,
        )
    }

    fn build_parts(
        shape: LayerShape,
        a_fibers: &[SpikeFiber],
        b_fibers: &[WeightFiber],
        weight_bits: usize,
        line_bytes: usize,
    ) -> Self {
        let bm_bytes = (shape.k + POINTER_BITS).div_ceil(8) as u64;
        let line = line_bytes as u64;
        let mut a_bm_span = Vec::with_capacity(shape.m);
        let mut a_payload_line = Vec::with_capacity(shape.m);
        let mut a_payload_intra = Vec::with_capacity(shape.m);
        let mut addr = 0u64;
        for fiber in a_fibers {
            a_bm_span.push(LineSpan::of_range(addr, bm_bytes, line_bytes));
            let payload = addr + bm_bytes;
            a_payload_line.push(payload / line);
            a_payload_intra.push(payload % line);
            addr += fiber.storage_bits(shape.t).div_ceil(8) as u64;
        }
        let mut b_bm_span = Vec::with_capacity(shape.n);
        let mut b_payload_span = Vec::with_capacity(shape.n);
        for fiber in b_fibers {
            b_bm_span.push(LineSpan::of_range(addr, bm_bytes, line_bytes));
            let payload_bytes = (fiber.nnz() * weight_bits).div_ceil(8) as u64;
            b_payload_span.push(LineSpan::of_range(
                addr + bm_bytes,
                payload_bytes,
                line_bytes,
            ));
            addr += fiber.storage_bits(weight_bits).div_ceil(8) as u64;
        }
        let out_row_bits = (shape.n + POINTER_BITS) as u64 + (shape.n as u64 / 10) * shape.t as u64;
        TrafficSpans {
            weight_bits,
            line_bytes,
            a_bm_bytes: bm_bytes,
            a_bm_span,
            a_payload_line,
            a_payload_intra,
            b_bm_bytes: bm_bytes,
            b_bm_span,
            b_payload_span,
            out_row_bytes: out_row_bits.div_ceil(8),
        }
    }

    /// The span of the first `payload_bytes` bytes of row `m`'s packed
    /// payload — the only per-pair varying probe of the replay.
    #[inline]
    pub fn a_payload_span(&self, m: usize, payload_bytes: u64) -> LineSpan {
        LineSpan::tail(
            self.a_payload_line[m],
            self.a_payload_intra[m],
            payload_bytes,
            self.line_bytes,
        )
    }
}

/// A layer workload with every compressed view precomputed.
#[derive(Debug, Clone)]
pub struct PreparedLayer {
    /// Workload name.
    pub name: String,
    /// The `(T, M, N, K)` shape.
    pub shape: LayerShape,
    /// The original workload (spike planes + dense weights + LIF).
    pub workload: LayerWorkload,
    /// Per-row compressed spike fibers (LoAS format: non-silent bitmask +
    /// packed words).
    pub a_fibers: Vec<SpikeFiber>,
    /// Per-column compressed weight fibers.
    pub b_fibers: Vec<WeightFiber>,
    /// Per-timestep CSR views of the spike planes (GoSPA's format).
    pub a_csr_per_t: Vec<CsrMatrix<()>>,
    /// Per-row non-zero weight counts of `B` viewed row-wise (for OP/Gust
    /// models: `B`'s row `k`).
    pub b_row_nnz: Vec<usize>,
    /// Structure-of-arrays sweep layout of the `A` side: per row, the
    /// non-silent bitmask words followed by the `T` plane-row words,
    /// contiguous (consumed by [`crate::kernel::PairSweepKernel`]).
    pub row_blocks: RowBlocks,
    /// Per-column total spike counts (`Σ_{m,t} A[m, k, t]`), the `A` half
    /// of the `O(K)` fired-count aggregate
    /// ([`crate::kernel::fired_grand_total`]).
    pub col_spikes: Vec<u32>,
    /// Precomputed traffic-object line spans for the default Table III
    /// geometry ([`DEFAULT_WEIGHT_BITS`], [`DEFAULT_LINE_BYTES`]);
    /// [`PreparedLayer::traffic_spans`] rebuilds on the fly for others.
    pub traffic_spans: TrafficSpans,
}

impl PreparedLayer {
    /// Prepares all compressed views of a workload.
    pub fn new(workload: &LayerWorkload) -> Self {
        let shape = workload.shape;
        let a_fibers = workload.spikes.to_row_fibers();
        let b_fibers: Vec<WeightFiber> = (0..shape.n)
            .map(|n| WeightFiber::from_weights(&workload.weights.column(n)))
            .collect();
        let a_csr_per_t = workload
            .spikes
            .planes()
            .iter()
            .map(CsrMatrix::from_bit_matrix)
            .collect();
        let mut b_row_nnz = vec![0usize; shape.k];
        for (ki, nnz) in b_row_nnz.iter_mut().enumerate() {
            *nnz = workload.weights.row(ki).iter().filter(|&&w| w != 0).count();
        }
        let row_blocks = RowBlocks::from_spike_fibers(&a_fibers, shape.t);
        let mut col_spikes = vec![0u32; shape.k];
        for fiber in &a_fibers {
            for (k, word) in fiber.iter() {
                col_spikes[k] += word.fire_count() as u32;
            }
        }
        let traffic_spans = TrafficSpans::build_parts(
            shape,
            &a_fibers,
            &b_fibers,
            DEFAULT_WEIGHT_BITS,
            DEFAULT_LINE_BYTES,
        );
        PreparedLayer {
            name: workload.name.clone(),
            shape,
            workload: workload.clone(),
            a_fibers,
            b_fibers,
            a_csr_per_t,
            b_row_nnz,
            row_blocks,
            col_spikes,
            traffic_spans,
        }
    }

    /// The traffic-span table for a given accelerator geometry: the
    /// precomputed table when it matches (the default Table III
    /// configuration), a freshly built one otherwise.
    pub fn traffic_spans(&self, weight_bits: usize, line_bytes: usize) -> Cow<'_, TrafficSpans> {
        if self.traffic_spans.weight_bits == weight_bits
            && self.traffic_spans.line_bytes == line_bytes
        {
            Cow::Borrowed(&self.traffic_spans)
        } else {
            Cow::Owned(TrafficSpans::build(self, weight_bits, line_bytes))
        }
    }

    /// LIF parameters of the output stage.
    pub fn lif(&self) -> LifParams {
        self.workload.lif
    }

    /// Non-silent bitmask of row `m` (the `bm-A` a TPPE holds).
    pub fn a_mask(&self, m: usize) -> &Bitmask {
        self.a_fibers[m].bitmask()
    }

    /// Total non-silent neurons across all rows.
    pub fn a_nnz(&self) -> usize {
        self.a_fibers.iter().map(SpikeFiber::nnz).sum()
    }

    /// Total non-zero weights.
    pub fn b_nnz(&self) -> usize {
        self.b_fibers.iter().map(WeightFiber::nnz).sum()
    }

    /// Total spikes across all timesteps.
    pub fn spike_count(&self) -> usize {
        self.workload.spikes.spike_count()
    }

    /// Compressed size of `A` in LoAS format, split as
    /// `(payload_bits, format_bits)`: packed words vs bitmasks + pointers.
    pub fn a_compressed_bits(&self) -> (u64, u64) {
        let payload = (self.a_nnz() * self.shape.t) as u64;
        let format = self
            .a_fibers
            .iter()
            .map(|f| (f.bitmask().storage_bits() + POINTER_BITS) as u64)
            .sum();
        (payload, format)
    }

    /// Compressed size of `B` in fiber format, split as
    /// `(payload_bits, format_bits)`.
    pub fn b_compressed_bits(&self, weight_bits: usize) -> (u64, u64) {
        let payload = (self.b_nnz() * weight_bits) as u64;
        let format = self
            .b_fibers
            .iter()
            .map(|f| (f.bitmask().storage_bits() + POINTER_BITS) as u64)
            .sum();
        (payload, format)
    }

    /// Size of `A` fetched densely as raw spike trains (SparTen-SNN: every
    /// spike bit crosses the memory boundary, Section II-D).
    pub fn a_dense_bits(&self) -> u64 {
        (self.shape.m * self.shape.k * self.shape.t) as u64
    }

    /// Size of `A` in per-timestep CSR (GoSPA-SNN), split as
    /// `(payload_bits, format_bits)`; spike CSR stores only coordinates, so
    /// payload is zero and everything is format overhead.
    pub fn a_csr_bits(&self) -> (u64, u64) {
        let format = self
            .a_csr_per_t
            .iter()
            .map(|csr| csr.storage_bits(0) as u64)
            .sum();
        (0, format)
    }

    /// Per-timestep spike row of `A` (`A[m, ·, t]` as a bitmask).
    pub fn a_row_at(&self, m: usize, t: usize) -> &Bitmask {
        self.workload.spikes.plane(t).row(m)
    }

    /// The packed word of neuron `(m, k)`.
    pub fn a_word(&self, m: usize, k: usize) -> PackedSpikes {
        self.workload.spikes.packed_word(m, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_workloads::{SparsityProfile, WorkloadGenerator};

    fn prepared() -> PreparedLayer {
        let generator = WorkloadGenerator::default();
        let profile = SparsityProfile::from_percentages(75.0, 60.0, 70.0, 90.0).unwrap();
        let w = generator
            .generate("prep-test", LayerShape::new(4, 8, 6, 64), &profile)
            .unwrap();
        PreparedLayer::new(&w)
    }

    #[test]
    fn fiber_counts_match_shape() {
        let p = prepared();
        assert_eq!(p.a_fibers.len(), 8);
        assert_eq!(p.b_fibers.len(), 6);
        assert_eq!(p.a_csr_per_t.len(), 4);
        assert_eq!(p.b_row_nnz.len(), 64);
    }

    #[test]
    fn nnz_consistency() {
        let p = prepared();
        let total_row_nnz: usize = p.b_row_nnz.iter().sum();
        assert_eq!(
            total_row_nnz,
            p.b_nnz(),
            "row-wise and column-wise B nnz agree"
        );
        let csr_nnz: usize = p.a_csr_per_t.iter().map(|c| c.nnz()).sum();
        assert_eq!(csr_nnz, p.spike_count());
    }

    #[test]
    fn compressed_sizes_positive_and_ordered() {
        let p = prepared();
        let (a_payload, a_format) = p.a_compressed_bits();
        assert_eq!(a_payload, (p.a_nnz() * 4) as u64);
        assert!(a_format >= (p.shape.m * p.shape.k) as u64);
        // LoAS packed A must be far smaller than dense A at this sparsity.
        assert!(
            a_payload + a_format
                < p.a_dense_bits() + (p.shape.m as u64 * POINTER_BITS as u64) + p.a_dense_bits()
        );
        let (_, csr_format) = p.a_csr_bits();
        assert!(csr_format > 0);
    }

    #[test]
    fn row_blocks_and_col_spikes_mirror_the_tensor() {
        let p = prepared();
        assert_eq!(p.row_blocks.rows(), p.shape.m);
        assert_eq!(p.row_blocks.planes(), p.shape.t);
        for m in 0..p.shape.m {
            assert_eq!(p.row_blocks.mask(m), p.a_mask(m).words());
            for t in 0..p.shape.t {
                assert_eq!(
                    p.row_blocks.plane(m, t),
                    p.a_row_at(m, t).words(),
                    "plane ({m}, {t})"
                );
            }
        }
        let total: u32 = p.col_spikes.iter().sum();
        assert_eq!(total as usize, p.spike_count());
    }

    #[test]
    fn a_word_matches_fiber_payload() {
        let p = prepared();
        for m in 0..p.shape.m {
            for (k, word) in p.a_fibers[m].iter() {
                assert_eq!(p.a_word(m, k), *word);
                assert!(!word.is_silent());
            }
        }
    }
}
