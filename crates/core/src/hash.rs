//! A stable, platform-independent content hasher for memoization keys.
//!
//! `std::hash` makes no cross-process guarantees (`HashMap`'s default
//! hasher is randomly seeded per process), so durable stores keyed on
//! hashes need their own deterministic function. [`ContentHasher`] is
//! FNV-1a over an explicit byte encoding: every write is length- or
//! width-delimited, so distinct field sequences cannot collide by
//! concatenation, and the same content hashes identically in every
//! process, on every platform, across runs.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic 64-bit content hasher (FNV-1a).
///
/// # Examples
///
/// ```
/// use loas_core::ContentHasher;
///
/// let mut a = ContentHasher::new();
/// a.write_str("loas");
/// a.write_u64(4);
/// let mut b = ContentHasher::new();
/// b.write_str("loas");
/// b.write_u64(4);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        ContentHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes (no delimiter — prefer the typed writers).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64` (stable across word sizes).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern (exact-equality notion:
    /// memo keys must distinguish genuinely different configurations, and
    /// equal configurations are copies of the same bits).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Absorbs a `bool` as one byte.
    pub fn write_bool(&mut self, value: bool) {
        self.write_bytes(&[u8::from(value)]);
    }

    /// Absorbs a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, value: &str) {
        self.write_u64(value.len() as u64);
        self.write_bytes(value.as_bytes());
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(ContentHasher::new().finish(), FNV_OFFSET);
        let mut h = ContentHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = ContentHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = ContentHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn typed_writers_are_deterministic() {
        let digest = |f: &dyn Fn(&mut ContentHasher)| {
            let mut h = ContentHasher::new();
            f(&mut h);
            h.finish()
        };
        let one = digest(&|h| {
            h.write_u64(7);
            h.write_f64(1.5);
            h.write_bool(true);
        });
        let two = digest(&|h| {
            h.write_u64(7);
            h.write_f64(1.5);
            h.write_bool(true);
        });
        assert_eq!(one, two);
        let different = digest(&|h| {
            h.write_u64(7);
            h.write_f64(1.5);
            h.write_bool(false);
        });
        assert_ne!(one, different);
    }
}
