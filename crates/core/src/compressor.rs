//! The output-side compressor (Section IV-D).
//!
//! Output spikes from the P-LIF units are re-compressed into the same
//! packed-fiber format before being written back, so the next layer can be
//! consumed by the FTP dataflow directly. Following SparTen's observation
//! that output compression is off the critical path, LoAS uses an *inverted
//! laggy* prefix-sum for this step. When the fine-tuned-preprocessing
//! execution mode is on, the compressor also discards output neurons that
//! fired at most once (Section V: "the compressor will discard the output
//! neurons that have 0 or only 1 output spike").

use crate::config::LoasConfig;
use loas_sparse::{PackedSpikes, SpikeFiber, POINTER_BITS};

/// The result of compressing one output row.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedRow {
    /// The compressed fiber (bitmask over kept neurons + packed words).
    pub fiber: SpikeFiber,
    /// Cycles spent in the inverted laggy prefix-sum.
    pub cycles: u64,
    /// Bits written back (payload + bitmask + pointer).
    pub bits_written: u64,
    /// Output neurons discarded by the low-activity filter.
    pub discarded: u64,
}

/// The output compressor shared by all TPPEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compressor {
    group_bits: usize,
    laggy_latency: u64,
    timesteps: usize,
    discard_low_activity: bool,
}

impl Compressor {
    /// Builds the compressor from the LoAS configuration.
    pub fn new(config: &LoasConfig) -> Self {
        Compressor {
            group_bits: config.bitmask_bits,
            laggy_latency: config.laggy_latency_cycles(),
            timesteps: config.timesteps,
            discard_low_activity: config.discard_low_activity_outputs,
        }
    }

    /// Whether low-activity outputs are discarded.
    pub fn discards_low_activity(&self) -> bool {
        self.discard_low_activity
    }

    /// Compresses the output words of one row of `C` (one word per output
    /// neuron, in column order).
    pub fn compress_row(&self, words: &[PackedSpikes]) -> CompressedRow {
        let mut kept: Vec<PackedSpikes> = words.to_vec();
        let mut discarded = 0u64;
        if self.discard_low_activity {
            for w in &mut kept {
                if !w.is_silent() && w.fires_at_most_once() {
                    discarded += 1;
                    *w = PackedSpikes::silent(self.timesteps).expect("lanes in range");
                }
            }
        }
        let fiber = SpikeFiber::from_packed_row(&kept);
        // The inverted laggy prefix-sum sweeps the row in bitmask-width
        // groups, `laggy_latency` cycles each; it overlaps the next row's
        // compute, so these cycles are reported but rarely exposed.
        let groups = words.len().div_ceil(self.group_bits).max(1) as u64;
        let bits_written =
            (fiber.nnz() * self.timesteps + fiber.bitmask().storage_bits() + POINTER_BITS) as u64;
        CompressedRow {
            fiber,
            cycles: groups * self.laggy_latency,
            bits_written,
            discarded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words() -> Vec<PackedSpikes> {
        vec![
            PackedSpikes::from_bits(0b0101, 4).unwrap(), // 2 fires: kept
            PackedSpikes::silent(4).unwrap(),
            PackedSpikes::from_bits(0b0100, 4).unwrap(), // 1 fire
            PackedSpikes::from_bits(0b1111, 4).unwrap(), // 4 fires: kept
        ]
    }

    #[test]
    fn compress_without_discarding() {
        let c = Compressor::new(&LoasConfig::table3());
        let row = c.compress_row(&words());
        assert_eq!(row.fiber.nnz(), 3);
        assert_eq!(row.discarded, 0);
        // 3 words * 4 bits + 4-bit mask + 32-bit pointer.
        assert_eq!(row.bits_written, 12 + 4 + 32);
        assert_eq!(
            row.cycles, 8,
            "one group through the inverted laggy circuit"
        );
    }

    #[test]
    fn discarding_drops_single_fires() {
        let config = LoasConfig::builder()
            .discard_low_activity_outputs(true)
            .build();
        let c = Compressor::new(&config);
        let row = c.compress_row(&words());
        assert_eq!(row.discarded, 1);
        assert_eq!(row.fiber.nnz(), 2);
        assert_eq!(
            row.fiber.bitmask().iter_ones().collect::<Vec<_>>(),
            vec![0, 3]
        );
    }

    #[test]
    fn wide_rows_take_more_groups() {
        let c = Compressor::new(&LoasConfig::table3());
        let row = c.compress_row(&vec![PackedSpikes::silent(4).unwrap(); 300]);
        assert_eq!(row.cycles, 3 * 8); // ceil(300/128) groups
        assert_eq!(row.fiber.nnz(), 0);
    }
}
