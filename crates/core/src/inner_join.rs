//! The FTP-friendly inner-join unit (Section IV-C, Figs. 9-10).
//!
//! A conventional SparTen-style inner-join runs *two* fast (single-cycle,
//! tree) prefix-sum circuits so both operands' offsets are ready together.
//! The paper's observation: in an SNN the "activation" operand is a spike
//! word — the weight is either accumulated or discarded — so the unit can be
//! *imbalanced*. LoAS pairs one fast prefix-sum (for fiber-B offsets, so
//! weight consumption stays at one match per cycle) with one cheap *laggy*
//! prefix-sum (for fiber-A offsets, ready only after
//! `bitmask_bits / adders` cycles):
//!
//! 1. AND the two bitmask chunks; the priority encoder emits matched
//!    positions one per cycle.
//! 2. For each match, the fast prefix-sum yields fiber-B's offset; the
//!    weight is *optimistically* accumulated into the pseudo-accumulator
//!    (presuming the spike word is all ones) and buffered in FIFO-B together
//!    with the matched position in FIFO-mp.
//! 3. When the laggy prefix-sum is ready, each buffered match checks the
//!    actual packed word of fiber-A: all-ones words are discarded; anything
//!    else sends the weight to the correction accumulators of the timesteps
//!    that did **not** fire.
//! 4. Final per-timestep sums: pseudo − correction (Section IV-D).
//!
//! The model is functionally bit-exact (validated against dense dot
//! products) and returns a cycle count from the documented pipeline model:
//! chunk streaming overlaps match draining; the laggy latency is hidden
//! except at the tail; FIFO overflow beyond `fifo_depth` buffered matches
//! stalls the fast path.

use crate::accumulator::AccumulatorBank;
use crate::config::LoasConfig;
use loas_sparse::{SpikeFiber, WeightFiber};

/// The outcome of joining one spike fiber (row of `A`) with one weight fiber
/// (column of `B`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Exact per-timestep accumulation `O[m, n, ·]`.
    pub sums: Vec<i64>,
    /// Pipeline cycles for this pair.
    pub cycles: u64,
    /// Matched positions (pseudo-accumulator operations).
    pub matches: u64,
    /// Correction-accumulator add operations (one per missing timestep of a
    /// non-all-ones match).
    pub corrections: u64,
    /// Matches whose spike word was all ones (prediction correct, FIFO entry
    /// discarded — the `cycle 4` case of Fig. 10).
    pub predictions_correct: u64,
    /// Active cycles charged to the fast prefix-sum circuit.
    pub fast_prefix_cycles: u64,
    /// Active cycles charged to the laggy prefix-sum circuit.
    pub laggy_prefix_cycles: u64,
    /// Cycles lost to FIFO backpressure.
    pub stall_cycles: u64,
    /// Accumulator width overflows (zero on correctly-sized workloads).
    pub overflows: u64,
}

/// Reusable scratch state for [`InnerJoinUnit::join_with`]: the
/// accumulator bank and the per-chunk match buffer survive across pairs,
/// so the verified datapath allocates nothing per output neuron.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinScratch {
    bank: AccumulatorBank,
    per_chunk_matches: Vec<u64>,
    timesteps: usize,
}

impl JoinScratch {
    /// Scratch sized for `timesteps` accumulator lanes.
    pub fn new(timesteps: usize) -> Self {
        JoinScratch {
            bank: AccumulatorBank::loas_default(timesteps),
            per_chunk_matches: Vec::new(),
            timesteps,
        }
    }

    /// Prepares the scratch for the next pair: values cleared, the chunk
    /// buffer zero-filled to `chunks`, lanes resized if the timestep count
    /// changed. Returns the overflow baseline so the caller can report
    /// only this pair's overflows.
    fn begin(&mut self, timesteps: usize, chunks: usize) -> u64 {
        if self.timesteps != timesteps {
            self.bank = AccumulatorBank::loas_default(timesteps);
            self.timesteps = timesteps;
        } else {
            self.bank.reset();
        }
        self.per_chunk_matches.clear();
        self.per_chunk_matches.resize(chunks, 0);
        self.bank.overflows()
    }
}

/// The FTP-friendly inner-join unit of one TPPE.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerJoinUnit {
    chunk_bits: usize,
    laggy_latency: u64,
    fifo_depth: usize,
    timesteps: usize,
}

impl InnerJoinUnit {
    /// Builds the unit from a LoAS configuration.
    pub fn new(config: &LoasConfig) -> Self {
        InnerJoinUnit {
            chunk_bits: config.bitmask_bits,
            laggy_latency: config.laggy_latency_cycles(),
            fifo_depth: config.fifo_depth,
            timesteps: config.timesteps,
        }
    }

    /// Chunk width in bits.
    pub fn chunk_bits(&self) -> usize {
        self.chunk_bits
    }

    /// Joins one row fiber of `A` with one column fiber of `B`, producing
    /// the exact sums and the cycle cost. Allocates fresh scratch; hot
    /// callers should hold a [`JoinScratch`] and use
    /// [`InnerJoinUnit::join_with`].
    ///
    /// # Panics
    ///
    /// Panics when the fibers' uncompressed lengths (the `K` dimension)
    /// differ.
    pub fn join(&self, fiber_a: &SpikeFiber, fiber_b: &WeightFiber) -> JoinOutcome {
        self.join_with(fiber_a, fiber_b, &mut JoinScratch::new(self.timesteps))
    }

    /// [`InnerJoinUnit::join`] with caller-provided scratch state, reused
    /// across pairs so back-to-back joins allocate nothing but the outcome.
    ///
    /// # Panics
    ///
    /// Panics when the fibers' uncompressed lengths (the `K` dimension)
    /// differ.
    pub fn join_with(
        &self,
        fiber_a: &SpikeFiber,
        fiber_b: &WeightFiber,
        scratch: &mut JoinScratch,
    ) -> JoinOutcome {
        assert_eq!(
            fiber_a.len(),
            fiber_b.len(),
            "fiber K dimensions must match"
        );
        let mut matches = 0u64;
        let mut corrections = 0u64;
        let mut predictions_correct = 0u64;
        let mut stall_cycles = 0u64;
        let mut compute_cycles = 0u64;
        let mut fast_prefix_cycles = 0u64;
        let mut laggy_prefix_cycles = 0u64;
        let k = fiber_a.len();
        let chunks = k.div_ceil(self.chunk_bits).max(1);
        let mut chunk_had_matches = false;
        let overflow_baseline = scratch.begin(self.timesteps, chunks);
        let JoinScratch {
            bank,
            per_chunk_matches,
            ..
        } = scratch;
        // Matched positions: merge-iterate both fibers once (O(nnzA + nnzB)),
        // accumulating per-chunk match counts for the cycle model.
        let mut b_entries = fiber_b.iter().peekable();
        for (ka, word) in fiber_a.iter() {
            while b_entries.next_if(|&(kb, _)| kb < ka).is_some() {}
            let Some(&(kb, &weight)) = b_entries.peek() else {
                break;
            };
            if kb != ka {
                continue; // B is zero here: no AND match.
            }
            per_chunk_matches[ka / self.chunk_bits] += 1;
            matches += 1;
            // Optimistic pseudo accumulation (Fig. 10, cycles 1-2).
            bank.accumulate(weight as i64);
            // Laggy-ready correction check (Fig. 10, cycles 4-5).
            if word.is_all_ones() {
                predictions_correct += 1;
            } else {
                for t in 0..self.timesteps {
                    if !word.fires_at(t) {
                        bank.correct(weight as i64, [t]);
                        corrections += 1;
                    }
                }
            }
        }
        for &chunk_matches in per_chunk_matches.iter() {
            // Cycle model: the chunk needs 1 cycle of scan plus one cycle
            // per emitted match; corrections drain concurrently, but only
            // `fifo_depth` matches may be in flight before the laggy
            // prefix-sum publishes offsets.
            let drain = 1 + chunk_matches;
            let backpressure = chunk_matches.saturating_sub(self.fifo_depth as u64);
            stall_cycles += backpressure;
            compute_cycles += drain + backpressure;
            fast_prefix_cycles += drain;
            if chunk_matches > 0 {
                // The laggy circuit sweeps every chunk that produced work.
                laggy_prefix_cycles += self.laggy_latency;
                chunk_had_matches = true;
            }
        }
        // Tail: the final chunk's corrections cannot be hidden behind a next
        // chunk; expose one laggy latency (Fig. 10's "gated" tail).
        if chunk_had_matches {
            compute_cycles += self.laggy_latency;
        }
        JoinOutcome {
            sums: bank.finalize(),
            cycles: compute_cycles,
            matches,
            corrections,
            predictions_correct,
            fast_prefix_cycles,
            laggy_prefix_cycles,
            stall_cycles,
            overflows: bank.overflows() - overflow_baseline,
        }
    }
}

/// Reference join: dense per-timestep dot product (what the sums must equal).
pub fn reference_sums(fiber_a: &SpikeFiber, fiber_b: &WeightFiber, timesteps: usize) -> Vec<i64> {
    let mut sums = vec![0i64; timesteps];
    for (k, word) in fiber_a.iter() {
        if let Some(&w) = fiber_b.value_at(k) {
            for (t, sum) in sums.iter_mut().enumerate() {
                if word.fires_at(t) {
                    *sum += w as i64;
                }
            }
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_sparse::PackedSpikes;

    fn unit() -> InnerJoinUnit {
        InnerJoinUnit::new(&LoasConfig::table3())
    }

    fn spike_fiber(words: &[(usize, u16)], k: usize, t: usize) -> SpikeFiber {
        let mut row = vec![PackedSpikes::silent(t).unwrap(); k];
        for &(pos, bits) in words {
            row[pos] = PackedSpikes::from_bits(bits, t).unwrap();
        }
        SpikeFiber::from_packed_row(&row)
    }

    fn weight_fiber(weights: &[(usize, i8)], k: usize) -> WeightFiber {
        let mut dense = vec![0i8; k];
        for &(pos, w) in weights {
            dense[pos] = w;
        }
        WeightFiber::from_weights(&dense)
    }

    #[test]
    fn figure10_walkthrough() {
        // bm-A = 10101 (positions 0,2,4), bm-B = 00111 (positions 2,3,4)
        // rescaled to our k=5 example: matches at 2 and 4.
        // a2 = 1111 (all ones -> discard b2), a4 = 1010 -> correct t0, t2
        // (bits where it does NOT fire).
        let fa = spike_fiber(&[(0, 0b0110), (2, 0b1111), (4, 0b1010)], 5, 4);
        let fb = weight_fiber(&[(2, 3), (3, 9), (4, 5)], 5);
        let out = unit().join(&fa, &fb);
        assert_eq!(out.matches, 2);
        assert_eq!(out.predictions_correct, 1);
        // a4 misses t0 and t2 -> two corrections of weight 5.
        assert_eq!(out.corrections, 2);
        // sums: t0: 3, t1: 3+5, t2: 3, t3: 3+5
        assert_eq!(out.sums, vec![3, 8, 3, 8]);
        assert_eq!(out.sums, reference_sums(&fa, &fb, 4));
        assert_eq!(out.overflows, 0);
    }

    #[test]
    fn empty_intersection_costs_scan_only() {
        let fa = spike_fiber(&[(0, 0b0001)], 8, 4);
        let fb = weight_fiber(&[(5, 7)], 8);
        let out = unit().join(&fa, &fb);
        assert_eq!(out.matches, 0);
        assert_eq!(out.sums, vec![0, 0, 0, 0]);
        // One chunk, no matches: 1 scan cycle, no laggy tail.
        assert_eq!(out.cycles, 1);
    }

    #[test]
    fn multi_chunk_masks() {
        // K = 300 -> 3 chunks of 128.
        let fa = spike_fiber(&[(0, 0b1111), (130, 0b0011), (299, 0b1000)], 300, 4);
        let fb = weight_fiber(&[(0, 1), (130, 2), (299, 4)], 300);
        let out = unit().join(&fa, &fb);
        assert_eq!(out.matches, 3);
        assert_eq!(out.sums, reference_sums(&fa, &fb, 4));
        // 3 chunk scans + 3 matches + laggy tail (8).
        assert_eq!(out.cycles, 3 + 3 + 8);
    }

    #[test]
    fn negative_weights_and_corrections() {
        let fa = spike_fiber(&[(1, 0b0101), (2, 0b0010)], 4, 4);
        let fb = weight_fiber(&[(1, -7), (2, 3), (3, 100)], 4);
        let out = unit().join(&fa, &fb);
        assert_eq!(out.sums, reference_sums(&fa, &fb, 4));
        // t0: -7, t1: 3, t2: -7, t3: 0
        assert_eq!(out.sums, vec![-7, 3, -7, 0]);
    }

    #[test]
    fn fifo_backpressure_counted() {
        // 20 matches in one chunk exceed the depth-8 FIFO.
        let positions: Vec<(usize, u16)> = (0..20).map(|i| (i, 0b0101u16)).collect();
        let weights: Vec<(usize, i8)> = (0..20).map(|i| (i, 1i8)).collect();
        let fa = spike_fiber(&positions, 64, 4);
        let fb = weight_fiber(&weights, 64);
        let out = unit().join(&fa, &fb);
        assert_eq!(out.matches, 20);
        assert_eq!(out.stall_cycles, 12);
        assert_eq!(out.sums, reference_sums(&fa, &fb, 4));
    }

    #[test]
    fn all_ones_needs_no_corrections() {
        let fa = spike_fiber(&[(0, 0b1111), (1, 0b1111)], 2, 4);
        let fb = weight_fiber(&[(0, 10), (1, 20)], 2);
        let out = unit().join(&fa, &fb);
        assert_eq!(out.corrections, 0);
        assert_eq!(out.predictions_correct, 2);
        assert_eq!(out.sums, vec![30, 30, 30, 30]);
    }

    #[test]
    #[should_panic(expected = "fiber K dimensions")]
    fn mismatched_k_panics() {
        let fa = spike_fiber(&[], 4, 4);
        let fb = weight_fiber(&[], 5);
        unit().join(&fa, &fb);
    }

    #[test]
    fn reused_scratch_matches_fresh_joins() {
        // Back-to-back joins through one scratch must be indistinguishable
        // from fresh-allocation joins — including per-pair overflow counts.
        let unit = unit();
        let pairs = [
            (
                spike_fiber(&[(0, 0b0110), (2, 0b1111), (4, 0b1010)], 5, 4),
                weight_fiber(&[(2, 3), (3, 9), (4, 5)], 5),
            ),
            (
                spike_fiber(&[(1, 0b0101)], 130, 4),
                weight_fiber(&[(1, -7)], 130),
            ),
            (spike_fiber(&[], 8, 4), weight_fiber(&[(5, 7)], 8)),
        ];
        let mut scratch = JoinScratch::new(4);
        for (fa, fb) in &pairs {
            assert_eq!(unit.join_with(fa, fb, &mut scratch), unit.join(fa, fb));
        }
    }

    #[test]
    fn scratch_overflows_are_per_pair() {
        // Saturate the 12-bit pseudo-accumulator in pair 1; pair 2 through
        // the same scratch must report zero overflows of its own.
        let unit = unit();
        let positions: Vec<(usize, u16)> = (0..40).map(|i| (i, 0b1111u16)).collect();
        let weights: Vec<(usize, i8)> = (0..40).map(|i| (i, 127i8)).collect();
        let hot = (spike_fiber(&positions, 64, 4), weight_fiber(&weights, 64));
        let cold = (
            spike_fiber(&[(0, 0b0001)], 64, 4),
            weight_fiber(&[(0, 1)], 64),
        );
        let mut scratch = JoinScratch::new(4);
        let first = unit.join_with(&hot.0, &hot.1, &mut scratch);
        assert!(first.overflows > 0, "hot pair must overflow");
        let second = unit.join_with(&cold.0, &cold.1, &mut scratch);
        assert_eq!(second.overflows, 0, "overflows must not leak across pairs");
    }

    #[test]
    fn fast_prefix_dominates_activity() {
        let fa = spike_fiber(&[(0, 0b0101), (1, 0b1111)], 130, 4);
        let fb = weight_fiber(&[(0, 1), (1, 2)], 130);
        let out = unit().join(&fa, &fb);
        // 2 chunks scanned (2 cycles) + 2 match cycles.
        assert_eq!(out.fast_prefix_cycles, 2 + 2);
        // Laggy active only on the chunk with matches.
        assert_eq!(out.laggy_prefix_cycles, 8);
    }
}
