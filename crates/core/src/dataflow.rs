//! The FTP dataflow (Algorithm 1) and the Section III design-space analysis.
//!
//! Adding the SNN timestep loop to the three canonical spMspM dataflows
//! yields a design space of loop orders; Section III evaluates each
//! placement of the `t` loop against three goals: (1) no extra data refetch
//! across timesteps, (2) no extra partial sums on the temporal dimension,
//! and (3) no serialized timestep latency. [`analyze`] encodes those
//! observations analytically; [`ftp_execute`] is the functional executor of
//! Algorithm 1 (bit-exact with the golden layer).

use loas_snn::{LayerOutput, LifParams, SnnError, SnnLayer, SpikeTensor};
use loas_sparse::DenseMatrix;

/// The base spMspM loop order (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopOrder {
    /// Inner-product: `m → n → k`.
    InnerProduct,
    /// Outer-product: `k → m → n`.
    OuterProduct,
    /// Gustavson's: `m → k → n`.
    Gustavson,
}

impl LoopOrder {
    /// All three base orders.
    pub const ALL: [LoopOrder; 3] = [
        LoopOrder::InnerProduct,
        LoopOrder::OuterProduct,
        LoopOrder::Gustavson,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LoopOrder::InnerProduct => "IP",
            LoopOrder::OuterProduct => "OP",
            LoopOrder::Gustavson => "Gust",
        }
    }

    /// The spatial loops from outermost to innermost.
    fn loops(self) -> [SpatialLoop; 3] {
        match self {
            LoopOrder::InnerProduct => [SpatialLoop::M, SpatialLoop::N, SpatialLoop::K],
            LoopOrder::OuterProduct => [SpatialLoop::K, SpatialLoop::M, SpatialLoop::N],
            LoopOrder::Gustavson => [SpatialLoop::M, SpatialLoop::K, SpatialLoop::N],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SpatialLoop {
    M,
    N,
    K,
}

/// Where the timestep loop sits relative to the three spatial loops
/// (position 0 = outermost, 3 = innermost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TPlacement(pub usize);

impl TPlacement {
    /// All four placements.
    pub const ALL: [TPlacement; 4] = [TPlacement(0), TPlacement(1), TPlacement(2), TPlacement(3)];

    /// Whether `t` is the innermost loop (the FTP choice).
    pub fn is_innermost(self) -> bool {
        self.0 == 3
    }
}

/// One point in the SNN spMspM dataflow design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataflowVariant {
    /// Base spatial order.
    pub order: LoopOrder,
    /// Timestep loop position.
    pub t_placement: TPlacement,
    /// Whether the `t` loop is spatially unrolled (parallel-for) rather than
    /// sequential.
    pub temporal_parallel: bool,
}

impl DataflowVariant {
    /// The paper's FTP dataflow: IP order, `t` innermost, unrolled.
    pub fn ftp() -> Self {
        DataflowVariant {
            order: LoopOrder::InnerProduct,
            t_placement: TPlacement(3),
            temporal_parallel: true,
        }
    }

    /// Enumerates the sequential design space (3 orders x 4 placements)
    /// plus the three temporal-parallel innermost variants.
    pub fn design_space() -> Vec<DataflowVariant> {
        let mut space = Vec::new();
        for order in LoopOrder::ALL {
            for t_placement in TPlacement::ALL {
                space.push(DataflowVariant {
                    order,
                    t_placement,
                    temporal_parallel: false,
                });
            }
            space.push(DataflowVariant {
                order,
                t_placement: TPlacement(3),
                temporal_parallel: true,
            });
        }
        space
    }
}

/// Analytical cost factors of a dataflow variant relative to the same base
/// order at `T = 1` (Section III's three observations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataflowCosts {
    /// Multiplier on `A` accesses caused by the `t` placement.
    pub a_refetch_factor: f64,
    /// Multiplier on `B` accesses caused by the `t` placement.
    pub b_refetch_factor: f64,
    /// Multiplier on live partial sums on the temporal dimension.
    pub psum_factor: f64,
    /// Multiplier on latency from processing timesteps.
    pub latency_factor: f64,
}

impl DataflowCosts {
    /// Whether the variant meets all three SNN-friendly goals.
    pub fn meets_all_goals(&self) -> bool {
        self.a_refetch_factor <= 1.0
            && self.b_refetch_factor <= 1.0
            && self.psum_factor <= 1.0
            && self.latency_factor <= 1.0
    }
}

/// Analyzes one dataflow variant for `t_count` timesteps.
///
/// Observations encoded (Section III):
/// * `A` varies with `t`; `B` does not. Every spatial loop *below* the `t`
///   loop that indexes `B` is re-traversed `T` times → `T`× refetch on `B`;
///   `A` is inherently read once per `(m, k, t)`, but placing `t` above
///   spatial loops that tile `A` forces `T`× traversal of `A`'s index space
///   only when `t` sits above loops indexing `A` **and** below ones that
///   must repeat.
/// * OP and Gust materialise partial outputs along `k`; a `t` loop that is
///   not innermost multiplies live psums by `T`.
/// * A sequential `t` loop multiplies latency by `T` wherever it sits.
pub fn analyze(variant: DataflowVariant, t_count: usize) -> DataflowCosts {
    let t = t_count.max(1) as f64;
    let loops = variant.order.loops();
    let pos = variant.t_placement.0.min(3);
    // Spatial loops strictly below the t placement.
    let below = &loops[pos..];
    // B is indexed by (k, n): if any loop below t indexes B, those loops are
    // re-run per timestep -> T x B refetch.
    let b_below = below
        .iter()
        .any(|l| matches!(l, SpatialLoop::K | SpatialLoop::N));
    // A is indexed by (m, k) and t: refetching A beyond once happens when t
    // is above spatial loops that enumerate A's coordinates.
    let a_below = below
        .iter()
        .any(|l| matches!(l, SpatialLoop::M | SpatialLoop::K));
    let (a_refetch, b_refetch) = if variant.t_placement.is_innermost() {
        (1.0, 1.0)
    } else {
        (if a_below { t } else { 1.0 }, if b_below { t } else { 1.0 })
    };
    // Psums: IP reduces each output fully before moving on (output reuse),
    // so the t dimension adds no live psums when innermost. OP/Gust keep
    // partial outputs live across k; the t dimension multiplies them.
    let psum_factor = match variant.order {
        LoopOrder::InnerProduct => 1.0,
        LoopOrder::OuterProduct | LoopOrder::Gustavson => t,
    };
    let latency_factor = if variant.temporal_parallel { 1.0 } else { t };
    DataflowCosts {
        a_refetch_factor: a_refetch,
        b_refetch_factor: b_refetch,
        psum_factor,
        latency_factor,
    }
}

/// Functional executor of Algorithm 1 (FTP): `m → n → k` with the `t`
/// dimension spatially unrolled, followed by a one-shot P-LIF per output
/// neuron. Bit-exact with [`SnnLayer::forward`].
///
/// # Errors
///
/// Propagates shape mismatches.
pub fn ftp_execute(
    spikes: &SpikeTensor,
    weights: &DenseMatrix<i8>,
    lif: LifParams,
) -> Result<LayerOutput, SnnError> {
    // Algorithm 1 shares its loop structure with the golden inner-product
    // layer; the golden path is the reference implementation.
    SnnLayer::new(weights.clone(), lif)?.forward(spikes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ftp_meets_all_goals() {
        let costs = analyze(DataflowVariant::ftp(), 4);
        assert!(costs.meets_all_goals());
        assert_eq!(costs.latency_factor, 1.0);
    }

    #[test]
    fn ftp_is_unique_in_meeting_all_goals() {
        let winners: Vec<DataflowVariant> = DataflowVariant::design_space()
            .into_iter()
            .filter(|v| analyze(*v, 4).meets_all_goals())
            .collect();
        assert_eq!(winners, vec![DataflowVariant::ftp()]);
    }

    #[test]
    fn sequential_t_always_multiplies_latency() {
        for order in LoopOrder::ALL {
            for placement in TPlacement::ALL {
                let costs = analyze(
                    DataflowVariant {
                        order,
                        t_placement: placement,
                        temporal_parallel: false,
                    },
                    4,
                );
                assert_eq!(
                    costs.latency_factor,
                    4.0,
                    "{} t@{}",
                    order.name(),
                    placement.0
                );
            }
        }
    }

    #[test]
    fn op_with_t_between_m_and_n_refetches_b() {
        // Section III example: in OP, t between m and n -> T x more access
        // to B's rows.
        let costs = analyze(
            DataflowVariant {
                order: LoopOrder::OuterProduct,
                t_placement: TPlacement(2),
                temporal_parallel: false,
            },
            4,
        );
        assert_eq!(costs.b_refetch_factor, 4.0);
    }

    #[test]
    fn op_and_gust_multiply_psums() {
        for order in [LoopOrder::OuterProduct, LoopOrder::Gustavson] {
            let costs = analyze(
                DataflowVariant {
                    order,
                    t_placement: TPlacement(3),
                    temporal_parallel: false,
                },
                4,
            );
            assert_eq!(costs.psum_factor, 4.0, "{}", order.name());
        }
    }

    #[test]
    fn design_space_size() {
        // 3 orders x 4 sequential placements + 3 parallel variants.
        assert_eq!(DataflowVariant::design_space().len(), 15);
    }

    #[test]
    fn ftp_execute_matches_golden() {
        let weights = DenseMatrix::from_vec(3, 2, vec![2i8, 0, -3, 4, 0, 5]).unwrap();
        let mut spikes = SpikeTensor::zeros(2, 3, 4);
        spikes.set(0, 0, 0, true);
        spikes.set(0, 2, 1, true);
        spikes.set(1, 1, 3, true);
        let lif = LifParams::new(1, 1);
        let ftp = ftp_execute(&spikes, &weights, lif).unwrap();
        let golden = SnnLayer::new(weights, lif)
            .unwrap()
            .forward(&spikes)
            .unwrap();
        assert_eq!(ftp.spikes, golden.spikes);
        assert_eq!(ftp.membranes, golden.membranes);
    }
}
