//! The parallel LIF unit (P-LIF, Fig. 7).
//!
//! FTP produces the full sums `O[m, n, t]` for *all* timesteps of one output
//! neuron at once, so the LIF recurrence (Eqs. 2-3) collapses to a short,
//! spatially-unrolled chain over `T` lanes: lane `t` adds the carried
//! membrane potential from lane `t-1`, compares against `v_th`, and either
//! fires (hard reset) or leaks the potential (a shift) into the next lane.
//! All `T` output spikes emerge "in one shot" — one P-LIF pass per output
//! neuron — instead of `T` sequential LIF invocations.
//!
//! The unit is bit-exact with the sequential golden model
//! [`LifParams::run`]; a property test enforces this.

use loas_snn::LifParams;
use loas_sparse::PackedSpikes;

/// The result of one P-LIF pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlifOutcome {
    /// Output spikes for all timesteps, packed.
    pub spikes: PackedSpikes,
    /// Final membrane potential `U[T-1]`.
    pub membrane: i32,
}

/// A spatially-unrolled parallel LIF unit with `lanes` timestep lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelLif {
    params: LifParams,
    lanes: usize,
}

impl ParallelLif {
    /// Creates a P-LIF with the given neuron parameters and lane count.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero or exceeds the packed-word limit.
    pub fn new(params: LifParams, lanes: usize) -> Self {
        assert!(
            lanes > 0 && lanes <= loas_sparse::MAX_TIMESTEPS,
            "P-LIF lanes must be in 1..={}",
            loas_sparse::MAX_TIMESTEPS
        );
        ParallelLif { params, lanes }
    }

    /// Number of timestep lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The LIF parameters.
    pub fn params(&self) -> LifParams {
        self.params
    }

    /// Generates all output spikes for one neuron in one shot.
    ///
    /// # Panics
    ///
    /// Panics when `sums.len() != lanes`.
    pub fn fire(&self, sums: &[i64]) -> PlifOutcome {
        assert_eq!(sums.len(), self.lanes, "one sum per lane required");
        // The unrolled chain: lane t's adder combines O[t] with the carried
        // potential, the v-checker compares, the shifter leaks (Fig. 7).
        let mut membrane = 0i32;
        let mut spikes = PackedSpikes::silent(self.lanes).expect("lanes within packed range");
        for (t, &o) in sums.iter().enumerate() {
            let (fired, next) = self.params.step(o as i32, membrane);
            if fired {
                spikes.set(t, true);
            }
            membrane = next;
        }
        PlifOutcome { spikes, membrane }
    }

    /// Latency of one P-LIF pass: the chain is combinational across lanes
    /// and pipelined one pass deep — a single cycle per output neuron.
    pub fn cycles_per_neuron(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_lif() {
        let params = LifParams::new(4, 1);
        let plif = ParallelLif::new(params, 4);
        let sums = [5i64, 1, 3, 9];
        let out = plif.fire(&sums);
        let inputs: Vec<i32> = sums.iter().map(|&s| s as i32).collect();
        let (expected, u) = params.run(&inputs);
        assert_eq!(out.spikes.to_vec(), expected);
        assert_eq!(out.membrane, u);
    }

    #[test]
    fn one_shot_produces_all_timesteps() {
        let plif = ParallelLif::new(LifParams::new(0, 0), 8);
        let out = plif.fire(&[1; 8]);
        assert!(out.spikes.is_all_ones());
        assert_eq!(plif.cycles_per_neuron(), 1);
    }

    #[test]
    fn membrane_chains_through_lanes() {
        // Threshold 5, no leak: 3, 3 -> second lane fires from carried 3+3.
        let plif = ParallelLif::new(LifParams::new(5, 0), 2);
        let out = plif.fire(&[3, 3]);
        assert_eq!(out.spikes.to_vec(), vec![false, true]);
        assert_eq!(out.membrane, 0, "hard reset after firing");
    }

    #[test]
    #[should_panic(expected = "one sum per lane")]
    fn wrong_lane_count_panics() {
        ParallelLif::new(LifParams::default(), 4).fire(&[0; 3]);
    }

    #[test]
    #[should_panic(expected = "lanes must be in")]
    fn zero_lanes_rejected() {
        ParallelLif::new(LifParams::default(), 0);
    }
}
