//! Width-aware accumulators: the pseudo-accumulator and per-timestep
//! correction accumulators of a TPPE (Section IV-B/C).
//!
//! The synthesized design uses a 12-bit pseudo-accumulator and four 10-bit
//! correction accumulators (Section V). The model tracks values at full
//! precision and *counts* width overflows instead of wrapping, so functional
//! verification stays exact while the width choice remains observable (an
//! overflow count of zero on the evaluation workloads validates the paper's
//! sizing).

/// A signed accumulator with an optional bit-width annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accumulator {
    value: i64,
    bits: Option<u32>,
    overflows: u64,
}

impl Accumulator {
    /// A width-annotated accumulator (`bits` includes the sign bit).
    ///
    /// # Panics
    ///
    /// Panics when `bits < 2`.
    pub fn with_width(bits: u32) -> Self {
        assert!(bits >= 2, "need at least a sign and a value bit");
        Accumulator {
            value: 0,
            bits: Some(bits),
            overflows: 0,
        }
    }

    /// An unbounded accumulator (reference behaviour).
    pub fn unbounded() -> Self {
        Accumulator {
            value: 0,
            bits: None,
            overflows: 0,
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Number of updates that exceeded the annotated width.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Adds `delta`, counting a width overflow if the result no longer fits.
    pub fn add(&mut self, delta: i64) {
        self.value += delta;
        if let Some(bits) = self.bits {
            let limit = 1i64 << (bits - 1);
            if self.value >= limit || self.value < -limit {
                self.overflows += 1;
            }
        }
    }

    /// Subtracts `delta` (correction path).
    pub fn sub(&mut self, delta: i64) {
        self.add(-delta);
    }

    /// Resets the value (between output neurons); overflow count persists.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// The accumulator bank of one TPPE: one pseudo-accumulator plus `T`
/// correction accumulators (Fig. 7, Fig. 10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumulatorBank {
    pseudo: Accumulator,
    corrections: Vec<Accumulator>,
}

impl AccumulatorBank {
    /// The paper's widths: a 12-bit pseudo-accumulator and `timesteps`
    /// 10-bit correction accumulators.
    pub fn loas_default(timesteps: usize) -> Self {
        AccumulatorBank {
            pseudo: Accumulator::with_width(12),
            corrections: vec![Accumulator::with_width(10); timesteps],
        }
    }

    /// Number of timestep lanes.
    pub fn timesteps(&self) -> usize {
        self.corrections.len()
    }

    /// Optimistically accumulates a matched weight into the pseudo
    /// accumulator (presuming the spike word is all ones).
    pub fn accumulate(&mut self, weight: i64) {
        self.pseudo.add(weight);
    }

    /// Applies a correction: subtracts `weight` for every timestep where the
    /// actual spike word is 0 (`missing_timesteps`).
    pub fn correct(&mut self, weight: i64, missing_timesteps: impl IntoIterator<Item = usize>) {
        for t in missing_timesteps {
            self.corrections[t].add(weight);
        }
    }

    /// Final per-timestep sums: the pseudo result duplicated to every lane
    /// minus that lane's correction (Section IV-D).
    pub fn finalize(&self) -> Vec<i64> {
        self.corrections
            .iter()
            .map(|c| self.pseudo.value() - c.value())
            .collect()
    }

    /// Total width overflows across all accumulators.
    pub fn overflows(&self) -> u64 {
        self.pseudo.overflows()
            + self
                .corrections
                .iter()
                .map(Accumulator::overflows)
                .sum::<u64>()
    }

    /// Resets all values for the next output neuron.
    pub fn reset(&mut self) {
        self.pseudo.reset();
        for c in &mut self.corrections {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let mut acc = Accumulator::unbounded();
        acc.add(100);
        acc.sub(30);
        assert_eq!(acc.value(), 70);
        assert_eq!(acc.overflows(), 0);
    }

    #[test]
    fn width_overflow_detected() {
        let mut acc = Accumulator::with_width(4); // range [-8, 7]
        acc.add(7);
        assert_eq!(acc.overflows(), 0);
        acc.add(1); // 8: overflow
        assert_eq!(acc.overflows(), 1);
        acc.sub(20); // -12: overflow again
        assert_eq!(acc.overflows(), 2);
    }

    #[test]
    fn bank_pseudo_plus_correction_semantics() {
        // Matched weights 3 and 5; weight-3 neuron fires everywhere, the
        // weight-5 neuron only at t0 and t2 (missing t1, t3).
        let mut bank = AccumulatorBank::loas_default(4);
        bank.accumulate(3);
        bank.accumulate(5);
        bank.correct(5, [1, 3]);
        assert_eq!(bank.finalize(), vec![8, 3, 8, 3]);
        assert_eq!(bank.overflows(), 0);
    }

    #[test]
    fn bank_reset_clears_values() {
        let mut bank = AccumulatorBank::loas_default(2);
        bank.accumulate(9);
        bank.correct(9, [0]);
        bank.reset();
        assert_eq!(bank.finalize(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "sign")]
    fn degenerate_width_rejected() {
        Accumulator::with_width(1);
    }
}
