//! # loas-snn — the SNN algorithmic substrate of the LoAS reproduction
//!
//! Golden functional models of everything the accelerators compute:
//!
//! * [`LifParams`] / [`LifNeuron`] — Leaky-Integrate-and-Fire dynamics with
//!   hard reset and power-of-two leak (Eqs. 1-3 of the paper);
//! * [`SpikeTensor`] — the `M×K×T` binary spike tensor with both the
//!   per-timestep and the packed per-neuron views, plus Table II sparsity
//!   statistics;
//! * [`SnnLayer`] / [`SnnNetwork`] — dual-sparse layers (sparse weights +
//!   LIF) and layer-by-layer network inference, the correctness oracle for
//!   all accelerator simulators;
//! * [`DirectEncoder`] — seeded direct-coding front end;
//! * [`preprocess`] — the fine-tuned silent-neuron preprocessing and the
//!   Fig. 11 accuracy-recovery model;
//! * [`SparsityStats`] — Table II accounting.
//!
//! # Examples
//!
//! Run one dual-sparse layer end to end:
//!
//! ```
//! use loas_snn::{LifParams, SnnLayer, SpikeTensor};
//! use loas_sparse::DenseMatrix;
//!
//! let weights = DenseMatrix::from_vec(2, 2, vec![3i8, 0, 0, 2]).unwrap();
//! let layer = SnnLayer::new(weights, LifParams::new(1, 1))?;
//! let mut spikes = SpikeTensor::zeros(1, 2, 4);
//! spikes.set(0, 0, 0, true);
//! let out = layer.forward(&spikes)?;
//! assert!(out.spikes.get(0, 0, 0));
//! # Ok::<(), loas_snn::SnnError>(())
//! ```

#![warn(missing_docs)]

mod encoding;
mod error;
mod layer;
mod lif;
mod network;
pub mod preprocess;
mod stats;
mod tensor;

pub use encoding::DirectEncoder;
pub use error::SnnError;
pub use layer::{LayerOutput, SnnLayer};
pub use lif::{LifNeuron, LifParams, ResetScheme};
pub use network::SnnNetwork;
pub use preprocess::FineTuneAccuracyModel;
pub use stats::SparsityStats;
pub use tensor::SpikeTensor;
