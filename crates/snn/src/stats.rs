//! Sparsity accounting in the paper's Table II conventions.

use crate::preprocess;
use crate::tensor::SpikeTensor;
use loas_sparse::DenseMatrix;

/// The sparsity statistics of one dual-sparse workload, matching Table II's
/// columns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SparsityStats {
    /// `AvSpA-origin`: fraction of zero entries of `A` across `M·K·T` (%).
    pub spike_origin_pct: f64,
    /// `AvSpA-packed`: fraction of silent neurons across `M·K` (%).
    pub silent_pct: f64,
    /// `AvSpA-packed+FT`: silent fraction after fine-tuned preprocessing (%).
    pub silent_ft_pct: f64,
    /// `AvSpB`: fraction of zero weights (%).
    pub weight_pct: f64,
    /// Mean spikes per non-silent neuron (the sequential-timestep work
    /// amplification factor; not in Table II but central to the analysis).
    pub mean_fires_per_nonsilent: f64,
}

impl SparsityStats {
    /// Measures all statistics from a workload's tensors.
    pub fn measure(spikes: &SpikeTensor, weights: &DenseMatrix<i8>) -> Self {
        let ft = preprocess::mask_low_activity(spikes, 1);
        SparsityStats {
            spike_origin_pct: spikes.origin_sparsity() * 100.0,
            silent_pct: spikes.packed_sparsity() * 100.0,
            silent_ft_pct: ft.packed_sparsity() * 100.0,
            weight_pct: weights.sparsity() * 100.0,
            mean_fires_per_nonsilent: spikes.mean_fires_per_nonsilent(),
        }
    }

    /// Formats the row the way Table II prints it:
    /// `origin  packed(+FT)  weight`.
    pub fn table_row(&self) -> String {
        format!(
            "{:5.1}  {:5.1}({:5.1})  {:5.1}",
            self.spike_origin_pct, self.silent_pct, self.silent_ft_pct, self.weight_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_consistency() {
        let mut a = SpikeTensor::zeros(2, 2, 4);
        a.set(0, 0, 0, true);
        a.set(0, 0, 1, true); // neuron (0,0) fires twice -> survives FT
        a.set(1, 1, 2, true); // neuron (1,1) fires once -> masked by FT
        let w = DenseMatrix::from_vec(2, 2, vec![1i8, 0, 0, 0]).unwrap();
        let s = SparsityStats::measure(&a, &w);
        assert!((s.spike_origin_pct - (1.0 - 3.0 / 16.0) * 100.0).abs() < 1e-9);
        assert!((s.silent_pct - 50.0).abs() < 1e-9);
        assert!((s.silent_ft_pct - 75.0).abs() < 1e-9);
        assert!((s.weight_pct - 75.0).abs() < 1e-9);
        assert!((s.mean_fires_per_nonsilent - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ft_silent_never_below_origin_silent() {
        let mut a = SpikeTensor::zeros(4, 4, 4);
        for i in 0..4 {
            a.set(i, i, 0, true);
        }
        let w = DenseMatrix::zeros(4, 4);
        let s = SparsityStats::measure(&a, &w);
        assert!(s.silent_ft_pct >= s.silent_pct);
    }

    #[test]
    fn table_row_formats() {
        let s = SparsityStats {
            spike_origin_pct: 81.2,
            silent_pct: 71.3,
            silent_ft_pct: 76.7,
            weight_pct: 98.2,
            mean_fires_per_nonsilent: 2.5,
        };
        let row = s.table_row();
        assert!(row.contains("81.2"));
        assert!(row.contains("76.7"));
    }
}
