//! Direct spike encoding (Section II-A2).
//!
//! Recent SNNs use *direct encoding*: the source data first passes through
//! one ANN layer whose output is converted into spike trains over very few
//! timesteps (T ≤ 4). We model the conversion stage: a normalised analog
//! intensity in `[0, 1]` becomes a Bernoulli spike train whose rate equals
//! the intensity. Generation is seeded and fully reproducible.

use crate::tensor::SpikeTensor;

/// Converts normalised analog activations into direct-coded spike trains.
///
/// # Examples
///
/// ```
/// use loas_snn::DirectEncoder;
///
/// let enc = DirectEncoder::new(4, 7);
/// let spikes = enc.encode(2, 3, &[0.0, 1.0, 0.5, 0.2, 0.9, 0.0]);
/// assert_eq!(spikes.timesteps(), 4);
/// // intensity 0 never fires; intensity 1 always fires
/// assert_eq!(spikes.packed_word(0, 0).fire_count(), 0);
/// assert_eq!(spikes.packed_word(0, 1).fire_count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectEncoder {
    timesteps: usize,
    seed: u64,
}

impl DirectEncoder {
    /// Creates an encoder for `timesteps` timesteps with a generation seed.
    pub fn new(timesteps: usize, seed: u64) -> Self {
        DirectEncoder { timesteps, seed }
    }

    /// Number of timesteps produced per neuron.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Encodes an `m x k` intensity map (row-major, values clamped to
    /// `[0, 1]`) into a spike tensor.
    ///
    /// # Panics
    ///
    /// Panics when `intensities.len() != m * k`.
    pub fn encode(&self, m: usize, k: usize, intensities: &[f64]) -> SpikeTensor {
        assert_eq!(
            intensities.len(),
            m * k,
            "intensity map must have m*k entries"
        );
        let mut tensor = SpikeTensor::zeros(m, k, self.timesteps);
        for mi in 0..m {
            for ki in 0..k {
                let p = intensities[mi * k + ki].clamp(0.0, 1.0);
                for t in 0..self.timesteps {
                    // Deterministic per-coordinate hash stream: cheap,
                    // seedable, and independent across (m, k, t).
                    let u = hash_unit(self.seed, (mi as u64) << 40 | (ki as u64) << 8 | t as u64);
                    if u < p {
                        tensor.set(mi, ki, t, true);
                    }
                }
            }
        }
        tensor
    }
}

/// SplitMix64-style hash mapped to a unit float in `[0, 1)`.
fn hash_unit(seed: u64, x: u64) -> f64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let enc = DirectEncoder::new(4, 42);
        let a = enc.encode(3, 3, &[0.5; 9]);
        let b = enc.encode(3, 3, &[0.5; 9]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DirectEncoder::new(4, 1).encode(8, 8, &[0.5; 64]);
        let b = DirectEncoder::new(4, 2).encode(8, 8, &[0.5; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn extremes_are_deterministic() {
        let enc = DirectEncoder::new(8, 3);
        let t = enc.encode(1, 2, &[0.0, 1.0]);
        assert!(t.packed_word(0, 0).is_silent());
        assert!(t.packed_word(0, 1).is_all_ones());
    }

    #[test]
    fn rate_tracks_intensity() {
        let enc = DirectEncoder::new(4, 9);
        let t = enc.encode(64, 64, &[0.25; 64 * 64]);
        let rate = t.spike_count() as f64 / (64.0 * 64.0 * 4.0);
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn values_clamped() {
        let enc = DirectEncoder::new(2, 5);
        let t = enc.encode(1, 2, &[-3.0, 7.0]);
        assert!(t.packed_word(0, 0).is_silent());
        assert!(t.packed_word(0, 1).is_all_ones());
    }

    #[test]
    #[should_panic(expected = "m*k entries")]
    fn wrong_intensity_count_panics() {
        DirectEncoder::new(2, 5).encode(2, 2, &[0.5; 3]);
    }
}
