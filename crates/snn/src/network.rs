//! Multi-layer SNN networks (golden functional model).

use crate::error::SnnError;
use crate::layer::{LayerOutput, SnnLayer};
use crate::tensor::SpikeTensor;

/// A feed-forward dual-sparse SNN: a sequence of [`SnnLayer`]s where the
/// output spikes of layer `l` are the input spikes of layer `l + 1`
/// (SpinalFlow-style layer-by-layer processing order, Fig. 1).
///
/// # Examples
///
/// ```
/// use loas_snn::{LifParams, SnnLayer, SnnNetwork, SpikeTensor};
/// use loas_sparse::DenseMatrix;
///
/// let l1 = SnnLayer::new(DenseMatrix::from_vec(2, 2, vec![2i8, 0, 0, 2]).unwrap(),
///                        LifParams::new(1, 0)).unwrap();
/// let l2 = SnnLayer::new(DenseMatrix::from_vec(2, 1, vec![3i8, 3]).unwrap(),
///                        LifParams::new(1, 0)).unwrap();
/// let net = SnnNetwork::new(vec![l1, l2]).unwrap();
/// let input = SpikeTensor::zeros(1, 2, 2);
/// let outputs = net.forward(&input).unwrap();
/// assert_eq!(outputs.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SnnNetwork {
    layers: Vec<SnnLayer>,
}

impl SnnNetwork {
    /// Creates a network from layers, validating that adjacent dimensions
    /// chain (`N_l == K_{l+1}`).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::EmptyNetwork`] for zero layers, or
    /// [`SnnError::ShapeMismatch`] when adjacent layers do not chain.
    pub fn new(layers: Vec<SnnLayer>) -> Result<Self, SnnError> {
        if layers.is_empty() {
            return Err(SnnError::EmptyNetwork);
        }
        for pair in layers.windows(2) {
            if pair[0].n() != pair[1].k() {
                return Err(SnnError::ShapeMismatch {
                    expected: pair[0].n(),
                    actual: pair[1].k(),
                    dimension: "N->K",
                });
            }
        }
        Ok(SnnNetwork { layers })
    }

    /// The layers in order.
    pub fn layers(&self) -> &[SnnLayer] {
        &self.layers
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Runs the whole network, returning every layer's full output
    /// (processing all timesteps of one layer before moving to the next, as
    /// dataflow SNN accelerators do).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the first layer.
    pub fn forward(&self, input: &SpikeTensor) -> Result<Vec<LayerOutput>, SnnError> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut current = input.clone();
        for layer in &self.layers {
            let out = layer.forward(&current)?;
            current = out.spikes.clone();
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Per-layer output spike sparsity after a forward pass — useful to see
    /// the high output sparsity (~90%) the paper leverages.
    pub fn output_sparsities(&self, outputs: &[LayerOutput]) -> Vec<f64> {
        outputs.iter().map(|o| o.spikes.origin_sparsity()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lif::LifParams;
    use loas_sparse::DenseMatrix;

    fn two_layer() -> SnnNetwork {
        let l1 = SnnLayer::new(
            DenseMatrix::from_vec(2, 3, vec![2i8, 0, 1, 0, 3, 0]).unwrap(),
            LifParams::new(1, 0),
        )
        .unwrap();
        let l2 = SnnLayer::new(
            DenseMatrix::from_vec(3, 1, vec![5i8, 0, 2]).unwrap(),
            LifParams::new(1, 0),
        )
        .unwrap();
        SnnNetwork::new(vec![l1, l2]).unwrap()
    }

    #[test]
    fn forward_chains_layers() {
        let net = two_layer();
        let mut input = SpikeTensor::zeros(1, 2, 2);
        input.set(0, 0, 0, true); // t0 spike into k0
        let outputs = net.forward(&input).unwrap();
        assert_eq!(outputs.len(), 2);
        // Layer 1, t0: row [2,0,1] -> O = [2,0,1]; fires n0 (2>1), not n2 (1>1 false).
        assert!(outputs[0].spikes.get(0, 0, 0));
        assert!(!outputs[0].spikes.get(0, 2, 0));
        // Layer 2, t0: input spike at k0 -> O = 5 -> fires.
        assert!(outputs[1].spikes.get(0, 0, 0));
    }

    #[test]
    fn dimension_chaining_validated() {
        let l1 = SnnLayer::new(DenseMatrix::zeros(2, 3), LifParams::default()).unwrap();
        let l2 = SnnLayer::new(DenseMatrix::zeros(4, 1), LifParams::default()).unwrap();
        assert!(matches!(
            SnnNetwork::new(vec![l1, l2]),
            Err(SnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(
            SnnNetwork::new(vec![]),
            Err(SnnError::EmptyNetwork)
        ));
    }

    #[test]
    fn output_sparsities_reported() {
        let net = two_layer();
        let input = SpikeTensor::zeros(1, 2, 2);
        let outputs = net.forward(&input).unwrap();
        let sp = net.output_sparsities(&outputs);
        assert_eq!(sp.len(), 2);
        assert!((sp[0] - 1.0).abs() < 1e-12, "no input -> no output spikes");
    }
}
