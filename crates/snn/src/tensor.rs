//! The spike tensor `A ∈ {0,1}^{M×K×T}` and its sparsity statistics.
//!
//! The tensor is stored as one bit-plane per timestep (the "unpacked real
//! data" view of Fig. 8) and exposes the packed per-neuron view ("packed
//! real data") that LoAS's compression operates on.

use crate::error::SnnError;
use loas_sparse::{BitMatrix, Bitmask, PackedSpikes, SpikeFiber};

/// A binary spike tensor of shape `M × K × T`.
///
/// # Examples
///
/// ```
/// use loas_snn::SpikeTensor;
///
/// let mut a = SpikeTensor::zeros(2, 3, 4);
/// a.set(0, 1, 2, true);
/// assert!(a.get(0, 1, 2));
/// assert_eq!(a.packed_word(0, 1).fire_count(), 1);
/// assert_eq!(a.spike_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeTensor {
    m: usize,
    k: usize,
    timesteps: usize,
    planes: Vec<BitMatrix>,
}

impl SpikeTensor {
    /// Creates an all-zero spike tensor.
    pub fn zeros(m: usize, k: usize, timesteps: usize) -> Self {
        SpikeTensor {
            m,
            k,
            timesteps,
            planes: (0..timesteps).map(|_| BitMatrix::zeros(m, k)).collect(),
        }
    }

    /// Builds a tensor from per-timestep planes.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] when planes disagree in shape.
    pub fn from_planes(planes: Vec<BitMatrix>) -> Result<Self, SnnError> {
        let timesteps = planes.len();
        let (m, k) = planes
            .first()
            .map(|p| (p.rows(), p.cols()))
            .unwrap_or((0, 0));
        for p in &planes {
            if p.rows() != m {
                return Err(SnnError::ShapeMismatch {
                    expected: m,
                    actual: p.rows(),
                    dimension: "M",
                });
            }
            if p.cols() != k {
                return Err(SnnError::ShapeMismatch {
                    expected: k,
                    actual: p.cols(),
                    dimension: "K",
                });
            }
        }
        Ok(SpikeTensor {
            m,
            k,
            timesteps,
            planes,
        })
    }

    /// Builds a tensor from packed per-neuron words, row-major (`rows[m][k]`).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] when rows have unequal lengths.
    pub fn from_packed_rows(
        rows: &[Vec<PackedSpikes>],
        timesteps: usize,
    ) -> Result<Self, SnnError> {
        let m = rows.len();
        let k = rows.first().map(Vec::len).unwrap_or(0);
        let mut tensor = SpikeTensor::zeros(m, k, timesteps);
        for (mi, row) in rows.iter().enumerate() {
            if row.len() != k {
                return Err(SnnError::ShapeMismatch {
                    expected: k,
                    actual: row.len(),
                    dimension: "K",
                });
            }
            for (ki, word) in row.iter().enumerate() {
                for t in word.firing_timesteps() {
                    if t >= timesteps {
                        return Err(SnnError::ShapeMismatch {
                            expected: timesteps,
                            actual: t + 1,
                            dimension: "T",
                        });
                    }
                    tensor.set(mi, ki, t, true);
                }
            }
        }
        Ok(tensor)
    }

    /// Number of rows `M` (output pixels / batch positions).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of columns `K` (pre-synaptic neurons).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of timesteps `T`.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// The spike at `(m, k, t)`.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is out of range.
    pub fn get(&self, m: usize, k: usize, t: usize) -> bool {
        assert!(
            t < self.timesteps,
            "timestep {t} out of range {}",
            self.timesteps
        );
        self.planes[t].get(m, k)
    }

    /// Sets the spike at `(m, k, t)`.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is out of range.
    pub fn set(&mut self, m: usize, k: usize, t: usize, value: bool) {
        assert!(
            t < self.timesteps,
            "timestep {t} out of range {}",
            self.timesteps
        );
        self.planes[t].set(m, k, value);
    }

    /// The spike plane of timestep `t` (`A[·,·,t]`).
    ///
    /// # Panics
    ///
    /// Panics when `t >= T`.
    pub fn plane(&self, t: usize) -> &BitMatrix {
        assert!(
            t < self.timesteps,
            "timestep {t} out of range {}",
            self.timesteps
        );
        &self.planes[t]
    }

    /// All planes in timestep order.
    pub fn planes(&self) -> &[BitMatrix] {
        &self.planes
    }

    /// The packed word of pre-synaptic neuron `(m, k)` across all timesteps.
    ///
    /// # Panics
    ///
    /// Panics when out of range or when `T > 16`.
    pub fn packed_word(&self, m: usize, k: usize) -> PackedSpikes {
        let mut word = PackedSpikes::silent(self.timesteps).expect("T bounded by MAX_TIMESTEPS");
        for (t, plane) in self.planes.iter().enumerate() {
            if plane.get(m, k) {
                word.set(t, true);
            }
        }
        word
    }

    /// Row `m` in packed form: one word per pre-synaptic neuron.
    pub fn packed_row(&self, m: usize) -> Vec<PackedSpikes> {
        (0..self.k).map(|k| self.packed_word(m, k)).collect()
    }

    /// Row `m` compressed into a LoAS spike fiber (silent neurons dropped).
    pub fn row_fiber(&self, m: usize) -> SpikeFiber {
        SpikeFiber::from_packed_row(&self.packed_row(m))
    }

    /// All row fibers, in row order.
    pub fn to_row_fibers(&self) -> Vec<SpikeFiber> {
        (0..self.m).map(|m| self.row_fiber(m)).collect()
    }

    /// The bitmask over non-silent neurons of row `m` (the `bm-A` a TPPE
    /// holds).
    pub fn row_nonsilent_mask(&self, m: usize) -> Bitmask {
        Bitmask::from_bools((0..self.k).map(|k| !self.packed_word(m, k).is_silent()))
    }

    /// Total number of spikes across the whole tensor.
    pub fn spike_count(&self) -> usize {
        self.planes.iter().map(BitMatrix::popcount).sum()
    }

    /// The paper's `AvSpA-origin`: fraction of zero bits across all `M·K·T`
    /// positions.
    pub fn origin_sparsity(&self) -> f64 {
        let total = self.m * self.k * self.timesteps;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.spike_count() as f64 / total as f64
    }

    /// Number of silent neurons (packed word all zero).
    pub fn silent_count(&self) -> usize {
        (0..self.m)
            .map(|m| {
                (0..self.k)
                    .filter(|&k| self.packed_word(m, k).is_silent())
                    .count()
            })
            .sum()
    }

    /// The paper's `AvSpA-packed`: fraction of silent neurons among all
    /// `M·K` packed positions ("the density of silent neurons" in Table II's
    /// caption — the fraction of packed words that are zero).
    pub fn packed_sparsity(&self) -> f64 {
        let total = self.m * self.k;
        if total == 0 {
            return 0.0;
        }
        self.silent_count() as f64 / total as f64
    }

    /// Average number of spikes per *non-silent* neuron — the factor by
    /// which sequential-timestep inner-joins redo work relative to FTP.
    pub fn mean_fires_per_nonsilent(&self) -> f64 {
        let nonsilent = self.m * self.k - self.silent_count();
        if nonsilent == 0 {
            return 0.0;
        }
        self.spike_count() as f64 / nonsilent as f64
    }

    /// Fraction of neurons firing at most once (the candidates removed by
    /// fine-tuned preprocessing).
    pub fn at_most_once_fraction(&self) -> f64 {
        let total = self.m * self.k;
        if total == 0 {
            return 0.0;
        }
        let count: usize = (0..self.m)
            .map(|m| {
                (0..self.k)
                    .filter(|&k| self.packed_word(m, k).fires_at_most_once())
                    .count()
            })
            .sum();
        count as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpikeTensor {
        let mut a = SpikeTensor::zeros(2, 3, 4);
        // neuron (0,0): fires t0, t2
        a.set(0, 0, 0, true);
        a.set(0, 0, 2, true);
        // neuron (0,2): fires t1
        a.set(0, 2, 1, true);
        // neuron (1,1): fires all timesteps
        for t in 0..4 {
            a.set(1, 1, t, true);
        }
        a
    }

    #[test]
    fn get_set_roundtrip() {
        let a = sample();
        assert!(a.get(0, 0, 0));
        assert!(!a.get(0, 0, 1));
        assert!(a.get(1, 1, 3));
    }

    #[test]
    fn packed_word_matches_planes() {
        let a = sample();
        let w = a.packed_word(0, 0);
        assert_eq!(w.to_vec(), vec![true, false, true, false]);
        assert!(a.packed_word(0, 1).is_silent());
        assert!(a.packed_word(1, 1).is_all_ones());
    }

    #[test]
    fn sparsity_statistics() {
        let a = sample();
        // 7 spikes over 2*3*4 = 24 positions.
        assert_eq!(a.spike_count(), 7);
        assert!((a.origin_sparsity() - (1.0 - 7.0 / 24.0)).abs() < 1e-12);
        // silent neurons: (0,1), (1,0), (1,2) -> 3 of 6.
        assert_eq!(a.silent_count(), 3);
        assert!((a.packed_sparsity() - 0.5).abs() < 1e-12);
        // 7 spikes over 3 non-silent neurons.
        assert!((a.mean_fires_per_nonsilent() - 7.0 / 3.0).abs() < 1e-12);
        // at-most-once: 3 silent + (0,2) -> 4 of 6.
        assert!((a.at_most_once_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn row_fiber_drops_silent() {
        let a = sample();
        let fiber = a.row_fiber(0);
        assert_eq!(fiber.nnz(), 2);
        assert_eq!(fiber.bitmask().iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        let mask = a.row_nonsilent_mask(0);
        assert_eq!(mask, *fiber.bitmask());
    }

    #[test]
    fn packed_rows_roundtrip() {
        let a = sample();
        let rows: Vec<Vec<PackedSpikes>> = (0..a.m()).map(|m| a.packed_row(m)).collect();
        let rebuilt = SpikeTensor::from_packed_rows(&rows, 4).unwrap();
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn from_planes_validates_shapes() {
        let planes = vec![BitMatrix::zeros(2, 3), BitMatrix::zeros(2, 4)];
        assert!(SpikeTensor::from_planes(planes).is_err());
        let ok = SpikeTensor::from_planes(vec![BitMatrix::zeros(2, 3); 4]).unwrap();
        assert_eq!(ok.timesteps(), 4);
        assert_eq!(ok.m(), 2);
        assert_eq!(ok.k(), 3);
    }

    #[test]
    fn empty_tensor_statistics_are_zero() {
        let a = SpikeTensor::zeros(0, 0, 0);
        assert_eq!(a.origin_sparsity(), 0.0);
        assert_eq!(a.packed_sparsity(), 0.0);
        assert_eq!(a.mean_fires_per_nonsilent(), 0.0);
    }
}
