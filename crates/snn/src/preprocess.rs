//! The fine-tuned silent-neuron preprocessing (Section V, Fig. 11).
//!
//! The paper's preprocessing masks every pre-synaptic neuron that fires at
//! most once across the timestep window, turning it silent; a short
//! fine-tuning run (< 5 epochs) recovers the original accuracy. The effect
//! the hardware sees is purely a higher silent-neuron density (Table II's
//! `AvSpA packed(+FT)` column), which LoAS exploits by skipping those
//! neurons entirely.
//!
//! The accuracy trend of Fig. 11 is reproduced with a documented synthetic
//! recovery model (see `DESIGN.md`, substitutions): masking costs a small
//! accuracy drop which fine-tuning recovers exponentially. The hardware
//! evaluation never consumes these accuracy numbers — only the resulting
//! sparsity — so the substitution does not affect any performance result.

use crate::tensor::SpikeTensor;

/// Masks all pre-synaptic neurons that fire at most `max_fires` times across
/// the window (the paper uses `max_fires = 1`), returning the preprocessed
/// tensor.
///
/// # Examples
///
/// ```
/// use loas_snn::{preprocess, SpikeTensor};
///
/// let mut a = SpikeTensor::zeros(1, 2, 4);
/// a.set(0, 0, 1, true);                  // fires once -> masked
/// a.set(0, 1, 0, true);
/// a.set(0, 1, 2, true);                  // fires twice -> kept
/// let ft = preprocess::mask_low_activity(&a, 1);
/// assert!(ft.packed_word(0, 0).is_silent());
/// assert_eq!(ft.packed_word(0, 1).fire_count(), 2);
/// ```
pub fn mask_low_activity(tensor: &SpikeTensor, max_fires: usize) -> SpikeTensor {
    let mut out = tensor.clone();
    for m in 0..tensor.m() {
        for k in 0..tensor.k() {
            if tensor.packed_word(m, k).fire_count() <= max_fires {
                for t in 0..tensor.timesteps() {
                    out.set(m, k, t, false);
                }
            }
        }
    }
    out
}

/// Synthetic accuracy-recovery model for the Fig. 11 trend.
///
/// `accuracy_after(e) = baseline − drop · exp(−e / recovery_epochs)`, with
/// `accuracy_after(0)` being the accuracy right after masking ("Mask" in
/// Fig. 11) and the curve approaching the original accuracy as fine-tuning
/// progresses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineTuneAccuracyModel {
    /// Accuracy of the original (unmasked) dual-sparse SNN, in percent.
    pub baseline: f64,
    /// Accuracy drop right after masking, in percentage points.
    pub mask_drop: f64,
    /// Recovery time constant, in epochs.
    pub recovery_epochs: f64,
}

impl FineTuneAccuracyModel {
    /// The VGG16 preset (CIFAR-10 ballpark from the paper's Fig. 11: ~91.5%
    /// baseline, ~1.5 point mask drop, full recovery within 5 epochs).
    pub fn vgg16() -> Self {
        FineTuneAccuracyModel {
            baseline: 91.5,
            mask_drop: 1.6,
            recovery_epochs: 1.4,
        }
    }

    /// The ResNet19 preset (~92.5% baseline, ~2 point mask drop).
    pub fn resnet19() -> Self {
        FineTuneAccuracyModel {
            baseline: 92.5,
            mask_drop: 2.1,
            recovery_epochs: 1.6,
        }
    }

    /// Accuracy in percent after `epochs` epochs of fine-tuning (0 = the
    /// "Mask" point; the original accuracy is [`Self::baseline`]).
    pub fn accuracy_after(&self, epochs: f64) -> f64 {
        self.baseline - self.mask_drop * (-epochs / self.recovery_epochs).exp()
    }

    /// The five points plotted in Fig. 11: Origin, Mask, FT-e1, FT-e5,
    /// FT-e10.
    pub fn figure11_points(&self) -> Vec<(String, f64)> {
        vec![
            ("Origin".to_owned(), self.baseline),
            ("Mask".to_owned(), self.accuracy_after(0.0)),
            ("FT-e1".to_owned(), self.accuracy_after(1.0)),
            ("FT-e5".to_owned(), self.accuracy_after(5.0)),
            ("FT-e10".to_owned(), self.accuracy_after(10.0)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_increases_silent_fraction() {
        let mut a = SpikeTensor::zeros(2, 4, 4);
        a.set(0, 0, 0, true); // fires once
        a.set(0, 1, 0, true);
        a.set(0, 1, 1, true); // fires twice
        a.set(1, 3, 2, true); // fires once
        let before = a.packed_sparsity();
        let ft = mask_low_activity(&a, 1);
        assert!(ft.packed_sparsity() > before);
        assert_eq!(ft.spike_count(), 2);
        // Kept neuron untouched.
        assert_eq!(ft.packed_word(0, 1).fire_count(), 2);
    }

    #[test]
    fn masking_zero_threshold_only_removes_silent() {
        let mut a = SpikeTensor::zeros(1, 2, 4);
        a.set(0, 0, 0, true);
        let same = mask_low_activity(&a, 0);
        assert_eq!(same, a, "threshold 0 keeps single-fire neurons");
    }

    #[test]
    fn masked_tensor_never_gains_spikes() {
        let mut a = SpikeTensor::zeros(3, 3, 4);
        for i in 0..3 {
            a.set(i, i, 0, true);
            a.set(i, i, 3, true);
        }
        let ft = mask_low_activity(&a, 1);
        assert!(ft.spike_count() <= a.spike_count());
    }

    #[test]
    fn accuracy_recovers_monotonically() {
        let model = FineTuneAccuracyModel::vgg16();
        let masked = model.accuracy_after(0.0);
        assert!(masked < model.baseline);
        let e1 = model.accuracy_after(1.0);
        let e5 = model.accuracy_after(5.0);
        let e10 = model.accuracy_after(10.0);
        assert!(masked < e1 && e1 < e5 && e5 < e10);
        // Paper: "with a very small number of fine-tuning (<5 epochs), the
        // accuracy can be fully recovered" — within half a point by e5.
        assert!(model.baseline - e5 < 0.5);
    }

    #[test]
    fn figure11_points_has_expected_labels() {
        let pts = FineTuneAccuracyModel::resnet19().figure11_points();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].0, "Origin");
        assert_eq!(pts[2].0, "FT-e1");
    }
}
