//! The Leaky-Integrate-and-Fire (LIF) neuron model (Section II-A).
//!
//! The paper's layer semantics are (Eqs. 1-3):
//!
//! ```text
//! O[m,n,t]  = Σ_k A[m,k,t] · B[k,n]                   (spMspM, step 1)
//! X[m,n,t]  = O[m,n,t] + U[m,n,t-1]
//! C[m,n,t]  = 1 if X[m,n,t] > v_th else 0             (firing, step 2)
//! U[m,n,t]  = τ · X[m,n,t] · (1 − C[m,n,t])           (hard reset, step 3)
//! ```
//!
//! We follow the paper's hard-reset convention and implement the leak
//! `τ ∈ (0, 1)` as a power-of-two arithmetic right shift
//! (`τ = 2^-leak_shift`), which is both what fixed-point accelerators (and
//! the P-LIF unit of Fig. 7, whose datapath contains shifters) implement and
//! bit-exactly reproducible.

use loas_sparse::PackedSpikes;

/// The membrane reset scheme after a spike (paper footnote 2: the paper
/// uses hard reset; other schemes exist and "sticking with one of them will
/// not lose generality in the hardware design").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResetScheme {
    /// The membrane potential is zeroed after a spike (the paper's choice).
    #[default]
    Hard,
    /// The threshold is subtracted from the potential after a spike,
    /// preserving the residual above-threshold charge.
    Soft,
}

/// Parameters of a LIF neuron.
///
/// # Examples
///
/// ```
/// use loas_snn::LifParams;
///
/// let lif = LifParams::new(4, 1); // v_th = 4, τ = 1/2
/// let (spikes, _) = lif.run(&[5, 1, 2, 9]);
/// assert_eq!(spikes, vec![true, false, false, true]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LifParams {
    /// Firing threshold `v_th` (a pre-defined scalar, Section II-A).
    pub v_threshold: i32,
    /// Leak expressed as a right shift: `τ = 2^-leak_shift`. A shift of 0
    /// means no leak (integrate-and-fire).
    pub leak_shift: u32,
    /// Post-spike reset behaviour.
    pub reset: ResetScheme,
}

impl LifParams {
    /// Creates hard-reset LIF parameters with the given threshold and leak
    /// shift (the paper's configuration).
    pub fn new(v_threshold: i32, leak_shift: u32) -> Self {
        LifParams {
            v_threshold,
            leak_shift,
            reset: ResetScheme::Hard,
        }
    }

    /// Creates soft-reset LIF parameters (threshold subtraction).
    pub fn with_soft_reset(v_threshold: i32, leak_shift: u32) -> Self {
        LifParams {
            v_threshold,
            leak_shift,
            reset: ResetScheme::Soft,
        }
    }

    /// One timestep of LIF dynamics: returns `(spike, new_membrane)` from
    /// the incoming accumulated current `input` (the spMspM full-sum
    /// `O[m,n,t]`) and the carried membrane potential `u_prev`.
    pub fn step(&self, input: i32, u_prev: i32) -> (bool, i32) {
        let x = input.saturating_add(u_prev);
        if x > self.v_threshold {
            let residual = match self.reset {
                ResetScheme::Hard => 0,
                ResetScheme::Soft => (x - self.v_threshold) >> self.leak_shift,
            };
            (true, residual)
        } else {
            (false, x >> self.leak_shift)
        }
    }

    /// Runs the neuron over a full timestep window, returning the output
    /// spike train and the final membrane potential. This is the sequential
    /// golden model the spatially-unrolled P-LIF unit must match bit-exactly.
    pub fn run(&self, inputs: &[i32]) -> (Vec<bool>, i32) {
        let mut u = 0i32;
        let mut spikes = Vec::with_capacity(inputs.len());
        for &o in inputs {
            let (c, u_next) = self.step(o, u);
            spikes.push(c);
            u = u_next;
        }
        (spikes, u)
    }

    /// Like [`LifParams::run`] but packs the output spike train into a
    /// [`PackedSpikes`] word — the form the LoAS compressor stores.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` exceeds [`loas_sparse::MAX_TIMESTEPS`].
    pub fn run_packed(&self, inputs: &[i32]) -> (PackedSpikes, i32) {
        let (spikes, u) = self.run(inputs);
        (
            PackedSpikes::from_slice(&spikes).expect("timestep window within packed range"),
            u,
        )
    }
}

impl Default for LifParams {
    /// The defaults used across the evaluation workloads: threshold 1 in
    /// accumulator units and `τ = 1/2` (the common direct-coded SNN choice).
    fn default() -> Self {
        LifParams::new(1, 1)
    }
}

/// A stateful LIF neuron for streaming use (carries its membrane potential
/// across calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifNeuron {
    params: LifParams,
    membrane: i32,
}

impl LifNeuron {
    /// Creates a neuron at rest (zero membrane potential).
    pub fn new(params: LifParams) -> Self {
        LifNeuron {
            params,
            membrane: 0,
        }
    }

    /// The neuron's parameters.
    pub fn params(&self) -> LifParams {
        self.params
    }

    /// Current membrane potential `U`.
    pub fn membrane(&self) -> i32 {
        self.membrane
    }

    /// Advances one timestep with accumulated input `input`; returns whether
    /// the neuron fired.
    pub fn tick(&mut self, input: i32) -> bool {
        let (spike, u) = self.params.step(input, self.membrane);
        self.membrane = u;
        spike
    }

    /// Resets the membrane potential to zero (between inference windows).
    pub fn reset(&mut self) {
        self.membrane = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_above_threshold_and_hard_resets() {
        let lif = LifParams::new(3, 0);
        let (spike, u) = lif.step(5, 0);
        assert!(spike);
        assert_eq!(u, 0, "hard reset zeroes the membrane");
    }

    #[test]
    fn subthreshold_integrates_with_leak() {
        let lif = LifParams::new(10, 1); // τ = 1/2
        let (s1, u1) = lif.step(4, 0);
        assert!(!s1);
        assert_eq!(u1, 2); // 4 >> 1
        let (s2, u2) = lif.step(4, u1);
        assert!(!s2);
        assert_eq!(u2, 3); // (4 + 2) >> 1
    }

    #[test]
    fn threshold_is_strict() {
        // Eq. 2 fires only when X > v_th, not >=.
        let lif = LifParams::new(4, 0);
        let (spike, u) = lif.step(4, 0);
        assert!(!spike);
        assert_eq!(u, 4);
    }

    #[test]
    fn membrane_carries_across_timesteps() {
        let lif = LifParams::new(5, 0); // no leak
        let (spikes, u) = lif.run(&[3, 3, 3]);
        // u: 3, 6 -> fire+reset, 3
        assert_eq!(spikes, vec![false, true, false]);
        assert_eq!(u, 3);
    }

    #[test]
    fn run_packed_matches_run() {
        let lif = LifParams::new(2, 1);
        let inputs = [5, 0, 1, 4];
        let (spikes, u_seq) = lif.run(&inputs);
        let (packed, u_packed) = lif.run_packed(&inputs);
        assert_eq!(packed.to_vec(), spikes);
        assert_eq!(u_seq, u_packed);
    }

    #[test]
    fn negative_inputs_leak_toward_negative() {
        let lif = LifParams::new(3, 1);
        let (spike, u) = lif.step(-5, 0);
        assert!(!spike);
        // Arithmetic shift: -5 >> 1 == -3 (rounds toward -inf); documented
        // fixed-point behaviour.
        assert_eq!(u, -3);
    }

    #[test]
    fn stateful_neuron_matches_stateless_run() {
        let params = LifParams::new(4, 1);
        let inputs = [1, 6, 2, 8, 0];
        let mut neuron = LifNeuron::new(params);
        let streaming: Vec<bool> = inputs.iter().map(|&o| neuron.tick(o)).collect();
        let (batch, u) = params.run(&inputs);
        assert_eq!(streaming, batch);
        assert_eq!(neuron.membrane(), u);
        neuron.reset();
        assert_eq!(neuron.membrane(), 0);
    }

    #[test]
    fn saturating_add_prevents_overflow_panic() {
        let lif = LifParams::new(0, 0);
        let (spike, _) = lif.step(i32::MAX, 5);
        assert!(spike);
    }

    #[test]
    fn soft_reset_keeps_residual_charge() {
        let hard = LifParams::new(4, 0);
        let soft = LifParams::with_soft_reset(4, 0);
        let (s_hard, u_hard) = hard.step(10, 0);
        let (s_soft, u_soft) = soft.step(10, 0);
        assert!(s_hard && s_soft);
        assert_eq!(u_hard, 0);
        assert_eq!(u_soft, 6, "soft reset subtracts the threshold");
    }

    #[test]
    fn soft_reset_fires_more_on_strong_input() {
        // A steady super-threshold drive keeps a soft-reset neuron firing
        // every step, while the hard reset drops the surplus.
        let inputs = [9i32; 6];
        let (hard, _) = LifParams::new(4, 0).run(&inputs);
        let (soft, _) = LifParams::with_soft_reset(4, 0).run(&inputs);
        let hard_count = hard.iter().filter(|&&s| s).count();
        let soft_count = soft.iter().filter(|&&s| s).count();
        assert!(soft_count >= hard_count);
        assert_eq!(soft_count, 6);
    }

    #[test]
    fn soft_reset_leaks_residual() {
        let soft = LifParams::with_soft_reset(4, 1);
        let (fired, u) = soft.step(10, 0);
        assert!(fired);
        assert_eq!(u, 3, "(10 - 4) >> 1");
    }
}
