//! A dual-sparse SNN layer: sparse weights + LIF neurons (golden model).

use crate::error::SnnError;
use crate::lif::LifParams;
use crate::tensor::SpikeTensor;
use loas_sparse::spmspm::{self, PsumPlanes};
use loas_sparse::{DenseMatrix, WeightFiber};

/// One SNN layer with weight matrix `B ∈ Z^{K×N}` and LIF firing.
///
/// The `forward` method is the *golden functional model*: every accelerator
/// simulator in the workspace must produce bit-identical output spikes.
///
/// # Examples
///
/// ```
/// use loas_snn::{LifParams, SnnLayer, SpikeTensor};
/// use loas_sparse::DenseMatrix;
///
/// let weights = DenseMatrix::from_vec(2, 1, vec![3i8, 0]).unwrap();
/// let layer = SnnLayer::new(weights, LifParams::new(1, 1)).unwrap();
/// let mut input = SpikeTensor::zeros(1, 2, 2);
/// input.set(0, 0, 0, true);
/// let out = layer.forward(&input).unwrap();
/// assert!(out.spikes.get(0, 0, 0)); // 3 > v_th = 1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SnnLayer {
    weights: DenseMatrix<i8>,
    lif: LifParams,
}

/// The full result of a layer forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerOutput {
    /// Pre-LIF accumulation planes `O[m,n,t]` (Eq. 1).
    pub psums: PsumPlanes,
    /// Output spike tensor `C ∈ {0,1}^{M×N×T}` (Eq. 2).
    pub spikes: SpikeTensor,
    /// Final membrane potentials `U[m,n,T-1]` (Eq. 3).
    pub membranes: DenseMatrix<i32>,
}

impl SnnLayer {
    /// Creates a layer from a dense weight matrix and LIF parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] for an empty weight matrix.
    pub fn new(weights: DenseMatrix<i8>, lif: LifParams) -> Result<Self, SnnError> {
        if weights.rows() == 0 || weights.cols() == 0 {
            return Err(SnnError::ShapeMismatch {
                expected: 1,
                actual: 0,
                dimension: "weights",
            });
        }
        Ok(SnnLayer { weights, lif })
    }

    /// The weight matrix `B`.
    pub fn weights(&self) -> &DenseMatrix<i8> {
        &self.weights
    }

    /// The LIF parameters.
    pub fn lif(&self) -> LifParams {
        self.lif
    }

    /// Input dimension `K`.
    pub fn k(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension `N`.
    pub fn n(&self) -> usize {
        self.weights.cols()
    }

    /// Weight sparsity (`AvSpB`).
    pub fn weight_sparsity(&self) -> f64 {
        self.weights.sparsity()
    }

    /// Column `n` of `B` compressed into a weight fiber (the `fiber-B`
    /// broadcast to TPPEs).
    ///
    /// # Panics
    ///
    /// Panics when `n` is out of range.
    pub fn weight_fiber(&self, n: usize) -> WeightFiber {
        WeightFiber::from_weights(&self.weights.column(n))
    }

    /// All weight fibers in column order.
    pub fn weight_fibers(&self) -> Vec<WeightFiber> {
        (0..self.n()).map(|n| self.weight_fiber(n)).collect()
    }

    /// Golden forward pass: spMspM (Eq. 1) then LIF scan (Eqs. 2-3).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] when `input.k() != self.k()`.
    pub fn forward(&self, input: &SpikeTensor) -> Result<LayerOutput, SnnError> {
        if input.k() != self.k() {
            return Err(SnnError::ShapeMismatch {
                expected: self.k(),
                actual: input.k(),
                dimension: "K",
            });
        }
        let psums = spmspm::inner_product(input.planes(), &self.weights)?;
        let t = input.timesteps();
        let (m, n) = (input.m(), self.n());
        let mut spikes = SpikeTensor::zeros(m, n, t);
        let mut membranes = DenseMatrix::zeros(m, n);
        for mi in 0..m {
            for ni in 0..n {
                let inputs: Vec<i32> = (0..t).map(|ti| *psums[ti].get(mi, ni)).collect();
                let (train, u) = self.lif.run(&inputs);
                for (ti, fired) in train.into_iter().enumerate() {
                    if fired {
                        spikes.set(mi, ni, ti, true);
                    }
                }
                membranes.set(mi, ni, u);
            }
        }
        Ok(LayerOutput {
            psums,
            spikes,
            membranes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> SnnLayer {
        // K=3, N=2
        let weights = DenseMatrix::from_vec(3, 2, vec![2i8, 0, -3, 4, 0, 5]).unwrap();
        SnnLayer::new(weights, LifParams::new(1, 0)).unwrap()
    }

    #[test]
    fn forward_shapes() {
        let l = layer();
        let input = SpikeTensor::zeros(4, 3, 2);
        let out = l.forward(&input).unwrap();
        assert_eq!(out.spikes.m(), 4);
        assert_eq!(out.spikes.k(), 2); // output tensor K = layer N
        assert_eq!(out.spikes.timesteps(), 2);
        assert_eq!(out.psums.len(), 2);
    }

    #[test]
    fn forward_matches_manual_lif() {
        let l = layer();
        let mut input = SpikeTensor::zeros(1, 3, 2);
        input.set(0, 0, 0, true); // t0: k0 -> O[0,0,0]=2, O[0,1,0]=0
        input.set(0, 1, 1, true); // t1: k1 -> O[0,0,1]=-3, O[0,1,1]=4
        let out = l.forward(&input).unwrap();
        // (0,0): t0 X=2 > 1 -> fire, reset. t1 X=-3 -> no fire.
        assert!(out.spikes.get(0, 0, 0));
        assert!(!out.spikes.get(0, 0, 1));
        assert_eq!(*out.membranes.get(0, 0), -3);
        // (0,1): t0 X=0 no fire (U=0), t1 X=4 fire.
        assert!(!out.spikes.get(0, 1, 0));
        assert!(out.spikes.get(0, 1, 1));
        assert_eq!(*out.membranes.get(0, 1), 0);
    }

    #[test]
    fn k_mismatch_rejected() {
        let l = layer();
        let input = SpikeTensor::zeros(1, 4, 2);
        assert!(matches!(
            l.forward(&input),
            Err(SnnError::ShapeMismatch { dimension: "K", .. })
        ));
    }

    #[test]
    fn weight_fibers_compress_columns() {
        let l = layer();
        let f0 = l.weight_fiber(0);
        assert_eq!(f0.nnz(), 2); // column 0 = [2, -3, 0]
        assert_eq!(f0.value_at(1), Some(&-3));
        assert_eq!(l.weight_fibers().len(), 2);
        assert!((l.weight_sparsity() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_weights_rejected() {
        assert!(SnnLayer::new(DenseMatrix::zeros(0, 4), LifParams::default()).is_err());
    }

    #[test]
    fn membrane_dependency_across_timesteps() {
        // Accumulation below threshold at t0 must carry into t1 (the
        // temporal dependency that forbids naive timestep parallelism).
        let weights = DenseMatrix::from_vec(1, 1, vec![3i8]).unwrap();
        let l = SnnLayer::new(weights, LifParams::new(4, 0)).unwrap();
        let mut input = SpikeTensor::zeros(1, 1, 2);
        input.set(0, 0, 0, true);
        input.set(0, 0, 1, true);
        let out = l.forward(&input).unwrap();
        // t0: X=3 no fire; t1: X=3+3=6 > 4 fire.
        assert!(!out.spikes.get(0, 0, 0));
        assert!(out.spikes.get(0, 0, 1));
    }
}
