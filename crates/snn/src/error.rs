//! Error types for the SNN substrate.

use loas_sparse::SparseError;
use std::error::Error;
use std::fmt;

/// Errors produced by SNN tensors, layers, and networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnnError {
    /// A sparse-format error bubbled up from `loas-sparse`.
    Sparse(SparseError),
    /// A layer received an input whose shape does not match its weights.
    ShapeMismatch {
        /// What the layer expected (e.g. its `K`).
        expected: usize,
        /// What it received.
        actual: usize,
        /// Which dimension disagreed.
        dimension: &'static str,
    },
    /// A network was built with no layers.
    EmptyNetwork,
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::Sparse(e) => write!(f, "sparse format error: {e}"),
            SnnError::ShapeMismatch {
                expected,
                actual,
                dimension,
            } => write!(
                f,
                "shape mismatch on `{dimension}`: expected {expected}, got {actual}"
            ),
            SnnError::EmptyNetwork => write!(f, "network has no layers"),
        }
    }
}

impl Error for SnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnnError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for SnnError {
    fn from(e: SparseError) -> Self {
        SnnError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_from_sparse() {
        let e: SnnError = SparseError::IndexOutOfBounds { index: 1, len: 0 }.into();
        assert!(matches!(e, SnnError::Sparse(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn display() {
        let e = SnnError::ShapeMismatch {
            expected: 3,
            actual: 4,
            dimension: "K",
        };
        assert!(e.to_string().contains('K'));
        assert!(SnnError::EmptyNetwork.to_string().contains("no layers"));
    }
}
