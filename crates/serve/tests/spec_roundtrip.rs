//! Property test of the v2 spec schema: any campaign assembled from
//! random workloads and random catalog configurations must survive
//! `campaign_to_json` → `campaign_from_json` with identical content
//! hashes (memo keys), identical accelerators, and a fixed-point
//! serialization.

use loas_baselines::{GammaConfig, GospaConfig, PtbConfig, SparTenConfig, StellarConfig};
use loas_core::LoasConfig;
use loas_engine::{AcceleratorSpec, Campaign, WorkloadSpec};
use loas_serve::spec_io::{campaign_from_json, campaign_to_json};
use loas_workloads::{LayerShape, SparsityProfile};
use proptest::prelude::*;

/// One random accelerator spec: a catalog model with (for even draws)
/// non-default configuration overrides picked from each model's sweepable
/// knobs.
fn accelerator(model: u64, knob: u64, tweak: bool) -> AcceleratorSpec {
    let pow2 = |lo: u32, span: u64| 1usize << (lo as u64 + knob % span) as u32;
    match model % 6 {
        0 => {
            let mut config = SparTenConfig::default();
            if tweak {
                config = SparTenConfig::builder()
                    .pes(pow2(2, 4))
                    .cache_bytes(pow2(16, 4))
                    .build();
            }
            AcceleratorSpec::from_config(config)
        }
        1 => {
            let mut config = GospaConfig::default();
            if tweak {
                config = GospaConfig::builder()
                    .lanes(pow2(2, 4))
                    .psum_buffer_bytes(pow2(12, 6))
                    .build();
            }
            AcceleratorSpec::from_config(config)
        }
        2 => {
            let mut config = GammaConfig::default();
            if tweak {
                config = GammaConfig::builder()
                    .cache_bytes(pow2(14, 6))
                    .merge_radix(pow2(2, 6))
                    .build();
            }
            AcceleratorSpec::from_config(config)
        }
        3 => {
            let mut config = PtbConfig::default();
            if tweak {
                config = PtbConfig::builder()
                    .array_rows(pow2(2, 4))
                    .utilization(0.1 + (knob % 9) as f64 / 10.0)
                    .build();
            }
            AcceleratorSpec::from_config(config)
        }
        4 => {
            let mut config = StellarConfig::default();
            if tweak {
                config = StellarConfig::builder().array_rows(pow2(2, 4)).build();
            }
            AcceleratorSpec::from_config(config)
        }
        _ => {
            let mut config = LoasConfig::table3();
            if tweak {
                config = LoasConfig::builder()
                    .tppes(pow2(2, 4))
                    .timesteps(1 + (knob % 16) as usize)
                    .hbm_gbps(2.0f64.powi((knob % 9) as i32 + 3))
                    .discard_low_activity_outputs(knob.is_multiple_of(2))
                    .build();
            }
            AcceleratorSpec::from_config(config)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn v2_specs_round_trip_with_identical_content_hashes(
        shape in (1usize..=8, 1usize..=32, 1usize..=32, 1usize..=512),
        fractions in (0.3f64..0.95, 0.2f64..0.8, 0.0f64..0.15, 0.5f64..0.999),
        seed in any::<u64>(),
        choice in (any::<u64>(), any::<u64>(), any::<bool>()),
    ) {
        let (t, m, n, k) = shape;
        let (origin, silent, ft_extra, weight) = fractions;
        let (model, knob, tweak) = choice;
        let profile = SparsityProfile {
            spike_origin: origin,
            silent,
            silent_ft: (silent + ft_extra).min(1.0),
            weight,
        };
        let workload =
            WorkloadSpec::new("prop-w", LayerShape::new(t, m, n, k), profile).with_seed(seed);
        let accelerator = accelerator(model, knob, tweak);
        let mut campaign = Campaign::new("prop-campaign");
        campaign.push_layer(workload, accelerator);

        let text = campaign_to_json(&campaign);
        let parsed = campaign_from_json(&text).expect("serialized specs parse");
        prop_assert_eq!(parsed.len(), campaign.len());
        let (a, b) = (&campaign.jobs()[0], &parsed.jobs()[0]);
        // Identical workload content keys (bit-exact fractions + seed)...
        prop_assert_eq!(a.workload.key(), b.workload.key());
        // ...identical typed accelerator (model + every config field)...
        prop_assert_eq!(&a.accelerator, &b.accelerator);
        prop_assert_eq!(
            a.accelerator.config().fields(),
            b.accelerator.config().fields()
        );
        // ...and therefore the identical content hash / memo key.
        prop_assert_eq!(a.memo_key(), b.memo_key());
        // Serialization is a fixed point.
        prop_assert_eq!(campaign_to_json(&parsed), text);
    }
}
