//! Serving acceptance tests: shard/merge determinism across shard counts,
//! warm-store replay fidelity, and queue lifecycle end to end.

use loas_engine::{AcceleratorSpec, Campaign, Engine, WorkloadSpec};
use loas_serve::spec_io::campaign_to_json;
use loas_serve::{drain, merge, CampaignState, Queue, RunOptions, ShardSpec};
use loas_workloads::{LayerShape, SparsityProfile};
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "loas-serve-acceptance-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A mixed-fleet campaign: 3 distinct small workloads (two seeds) x the
/// full 7-model fleet, 21 jobs.
fn mixed_fleet_campaign() -> Campaign {
    let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap();
    let mut campaign = Campaign::new("mixed-fleet");
    let layers = [
        WorkloadSpec::new("serve-a", LayerShape::new(4, 6, 8, 96), profile).with_seed(1),
        WorkloadSpec::new("serve-b", LayerShape::new(4, 8, 8, 64), profile).with_seed(2),
        WorkloadSpec::new("serve-c", LayerShape::new(4, 4, 8, 96), profile).with_seed(1),
    ];
    campaign.push_product(&layers, &AcceleratorSpec::headline_fleet());
    campaign
}

fn options(shard: ShardSpec, use_store: bool) -> RunOptions {
    RunOptions {
        shard,
        workers: 2,
        use_store,
        cache_capacity: None,
    }
}

#[test]
fn any_sharding_merges_byte_identical_to_unsharded_run() {
    let campaign = mixed_fleet_campaign();
    let spec = campaign_to_json(&campaign);
    // The memoless engine reference: what one process computes directly.
    let reference = Engine::new(2).run(&campaign).unwrap().jsonl();

    for shards in [1usize, 2, 3, 5] {
        let root = temp_root(&format!("shards-{shards}"));
        let queue = Queue::init(&root).unwrap();
        let id = queue.enqueue(&spec).unwrap().id;
        // Each rank drains with its own engine and memo store view — the
        // in-process analogue of N separate runner processes (the ci.sh
        // smoke test covers genuinely separate processes).
        for rank in 0..shards {
            let summary = drain(
                &queue,
                &options(
                    ShardSpec {
                        rank,
                        count: shards,
                    },
                    true,
                ),
                |_| {},
            )
            .unwrap();
            assert_eq!(summary.campaigns, 1, "{shards}-way rank {rank}");
        }
        if shards == 1 {
            assert_eq!(queue.state(id).unwrap(), CampaignState::Done);
        } else {
            assert_eq!(
                queue.state(id).unwrap(),
                CampaignState::Queued,
                "sharded campaigns stay queued until merged"
            );
            let merged_jobs = merge(&queue, id, shards).unwrap();
            assert_eq!(merged_jobs, campaign.len());
        }
        let report = std::fs::read_to_string(queue.report_dir(id).join("report.jsonl")).unwrap();
        assert_eq!(report, reference, "{shards}-way merge diverged");
        assert_eq!(queue.state(id).unwrap(), CampaignState::Done);
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn warm_memo_store_yields_full_hits_and_identical_report() {
    let root = temp_root("warm-memo");
    let queue = Queue::init(&root).unwrap();
    let spec = campaign_to_json(&mixed_fleet_campaign());

    let cold_id = queue.enqueue(&spec).unwrap().id;
    let cold = drain(&queue, &options(ShardSpec::default(), true), |_| {}).unwrap();
    assert_eq!(cold.memo_hits, 0);
    assert_eq!(cold.simulated, 21);

    // Resubmission against the warm store: 100% hits, zero simulations,
    // zero workload generations, byte-identical report.
    let warm_id = queue.enqueue(&spec).unwrap().id;
    let warm = drain(&queue, &options(ShardSpec::default(), true), |_| {}).unwrap();
    assert_eq!(warm.memo_hits, 21, "every job replayed from the store");
    assert_eq!(warm.simulated, 0);
    assert_eq!(warm.generated, 0);
    let read =
        |id: u64| std::fs::read_to_string(queue.report_dir(id).join("report.jsonl")).unwrap();
    assert_eq!(read(cold_id), read(warm_id));

    // An overlapping campaign (one novel job appended) only simulates the
    // novelty.
    let mut extended = mixed_fleet_campaign();
    let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap();
    extended.push_layer(
        WorkloadSpec::new("serve-novel", LayerShape::new(4, 4, 8, 64), profile).with_seed(3),
        AcceleratorSpec::loas(),
    );
    queue.enqueue(&campaign_to_json(&extended)).unwrap();
    let overlap = drain(&queue, &options(ShardSpec::default(), true), |_| {}).unwrap();
    assert_eq!(overlap.memo_hits, 21);
    assert_eq!(overlap.simulated, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sharded_runs_share_the_memo_store_with_unsharded_runs() {
    let root = temp_root("shared-store");
    let queue = Queue::init(&root).unwrap();
    let spec = campaign_to_json(&mixed_fleet_campaign());

    // Warm the store with a 2-way sharded run...
    let first = queue.enqueue(&spec).unwrap().id;
    for rank in 0..2 {
        drain(&queue, &options(ShardSpec { rank, count: 2 }, true), |_| {}).unwrap();
    }
    merge(&queue, first, 2).unwrap();

    // ...then a single-process resubmission replays everything.
    let second = queue.enqueue(&spec).unwrap().id;
    let warm = drain(&queue, &options(ShardSpec::default(), true), |_| {}).unwrap();
    assert_eq!(warm.memo_hits, 21);
    assert_eq!(warm.simulated, 0);
    let read =
        |id: u64| std::fs::read_to_string(queue.report_dir(id).join("report.jsonl")).unwrap();
    assert_eq!(read(first), read(second));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn campaigns_enqueued_mid_pass_are_picked_up_by_the_same_drain() {
    let root = temp_root("mid-pass");
    let queue = Queue::init(&root).unwrap();
    let spec = campaign_to_json(&mixed_fleet_campaign());
    queue.enqueue(&spec).unwrap();
    // Enqueue a second campaign from inside the progress callback of the
    // first — i.e. while the runner is mid-pass.
    let queue_again = queue.clone();
    let spec_again = spec.clone();
    let mut enqueued = false;
    let summary = drain(&queue, &options(ShardSpec::default(), true), |_| {
        if !enqueued {
            queue_again.enqueue(&spec_again).unwrap();
            enqueued = true;
        }
    })
    .unwrap();
    assert_eq!(
        summary.campaigns, 2,
        "the drain pass picked up the mid-pass submission"
    );
    assert_eq!(queue.state(2).unwrap(), CampaignState::Done);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn merge_refuses_incomplete_shard_sets() {
    let root = temp_root("incomplete");
    let queue = Queue::init(&root).unwrap();
    let id = queue
        .enqueue(&campaign_to_json(&mixed_fleet_campaign()))
        .unwrap()
        .id;
    drain(
        &queue,
        &options(ShardSpec { rank: 0, count: 2 }, true),
        |_| {},
    )
    .unwrap();
    let error = merge(&queue, id, 2).unwrap_err().to_string();
    assert!(error.contains("shard 1/2"), "{error}");
    assert_eq!(queue.state(id).unwrap(), CampaignState::Queued);
    let _ = std::fs::remove_dir_all(&root);
}
