//! Golden v1 compatibility gate: the committed pre-redesign spec must
//! keep parsing under the catalog-based API with byte-identical memo
//! keys and a byte-identical campaign report.
//!
//! The three fixtures under `tests/golden/` were captured from the
//! pre-catalog build (PR 3): the spec is the exact output of
//! `loas-serve spec --headline --quick`, the memo keys are each job's
//! `JobSpec::memo_key()` hex digest, and the report is the
//! `report.jsonl` a single-process `loas-serve run` produced. None of
//! the three may ever change — a diff here means warm memo stores and
//! archived reports break.

use loas_serve::spec_io::{campaign_from_json, campaign_to_json};

const GOLDEN_SPEC: &str = include_str!("golden/headline-v1.spec.json");
const GOLDEN_MEMO_KEYS: &str = include_str!("golden/headline-v1.memo-keys.txt");
const GOLDEN_REPORT: &str = include_str!("golden/headline-v1.report.jsonl");

#[test]
fn golden_v1_spec_parses_with_pre_redesign_memo_keys() {
    let campaign = campaign_from_json(GOLDEN_SPEC).expect("v1 schema parses forever");
    assert_eq!(campaign.len(), 28, "7-model fleet x 4 selected layers");
    let keys: Vec<String> = campaign
        .jobs()
        .iter()
        .map(|job| job.memo_key().to_string())
        .collect();
    let golden: Vec<&str> = GOLDEN_MEMO_KEYS.lines().collect();
    assert_eq!(golden.len(), campaign.len());
    for (index, (key, golden)) in keys.iter().zip(&golden).enumerate() {
        assert_eq!(
            key,
            golden,
            "job {index} (`{}`) no longer hashes to its pre-redesign memo key",
            campaign.jobs()[index].label
        );
    }
}

#[test]
fn golden_v1_spec_migrates_to_v2_preserving_identity() {
    // Re-serializing a v1 campaign writes the v2 schema; the migration
    // must preserve every job identity bit for bit.
    let v1 = campaign_from_json(GOLDEN_SPEC).unwrap();
    let v2_text = campaign_to_json(&v1);
    assert!(v2_text.contains("\"version\": 2"));
    let v2 = campaign_from_json(&v2_text).unwrap();
    assert_eq!(v1.name, v2.name);
    assert_eq!(v1.len(), v2.len());
    for (a, b) in v1.jobs().iter().zip(v2.jobs()) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.workload.key(), b.workload.key());
        assert_eq!(a.accelerator, b.accelerator);
        assert_eq!(a.memo_key(), b.memo_key());
    }
    // And v2 serialization is already a fixed point.
    assert_eq!(campaign_to_json(&v2), v2_text);
}

#[test]
fn golden_v1_campaign_replays_byte_identically() {
    // The catalog-dispatched models must reproduce the pre-redesign
    // report stream exactly — same cycles, traffic, energy, labels.
    let campaign = campaign_from_json(GOLDEN_SPEC).unwrap();
    let outcome = loas_engine::Engine::new(2)
        .run(&campaign)
        .expect("golden campaign is feasible");
    assert_eq!(
        outcome.jsonl(),
        GOLDEN_REPORT,
        "catalog dispatch diverged from the pre-redesign report"
    );
}
