//! The `loas-serve` CLI: durable campaign queue, sharded runners, and
//! report merging over one queue directory.
//!
//! ```text
//! loas-serve init <dir>
//! loas-serve spec --headline [--quick] [--seed S]
//! loas-serve enqueue <dir> (<spec.json> | --headline [--quick] [--seed S])
//! loas-serve run <dir> [--shard K/N] [--workers W] [--no-store]
//!                      [--cache-capacity N] [--watch [--poll-ms P] [--idle-ms I]]
//! loas-serve merge <dir> <campaign-id> --shards N
//! loas-serve status <dir>
//! ```

use loas_serve::spec_io::{campaign_to_json, headline_campaign};
use loas_serve::{drain, merge, watch, Queue, RunOptions, ServeError, ShardSpec};
use std::time::Duration;

const USAGE: &str = "usage: loas-serve <init|spec|enqueue|run|merge|status> ...
  init <dir>                                   create a queue directory
  spec --headline [--quick] [--seed S]         print a campaign spec to stdout
  enqueue <dir> <spec.json>                    submit a campaign spec file
  enqueue <dir> --headline [--quick] [--seed S]  submit the built-in headline campaign
  run <dir> [--shard K/N] [--workers W] [--no-store] [--cache-capacity N]
            [--watch [--poll-ms P] [--idle-ms I]]  drain the queue (one shard per process)
  merge <dir> <campaign-id> --shards N         merge shard reports into report.jsonl
  status <dir>                                 list submissions and their states";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("init") => cmd_init(&args[1..]),
        Some("spec") => cmd_spec(&args[1..]),
        Some("enqueue") => cmd_enqueue(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return;
        }
        Some(other) => Err(usage(format!("unknown command `{other}`"))),
    };
    if let Err(error) = result {
        eprintln!("loas-serve: {error}");
        std::process::exit(1);
    }
}

fn usage(message: impl std::fmt::Display) -> ServeError {
    ServeError::Queue(format!("{message}\n{USAGE}"))
}

fn cmd_init(args: &[String]) -> Result<(), ServeError> {
    let [dir] = args else {
        return Err(usage("init takes exactly one directory"));
    };
    let queue = Queue::init(dir)?;
    println!("initialized queue at {}", queue.root().display());
    Ok(())
}

/// Parses the `--headline [--quick] [--seed S]` spec-source flags.
fn headline_flags(args: &[String]) -> Result<Option<String>, ServeError> {
    if !args.iter().any(|a| a == "--headline") {
        return Ok(None);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let seed = match args.iter().position(|a| a == "--seed") {
        None => loas_engine::DEFAULT_SEED,
        Some(index) => args
            .get(index + 1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| usage("--seed needs an integer value"))?,
    };
    Ok(Some(campaign_to_json(&headline_campaign(quick, seed))))
}

fn cmd_spec(args: &[String]) -> Result<(), ServeError> {
    let Some(spec) = headline_flags(args)? else {
        return Err(usage("spec requires --headline"));
    };
    print!("{spec}");
    Ok(())
}

fn cmd_enqueue(args: &[String]) -> Result<(), ServeError> {
    let Some(dir) = args.first() else {
        return Err(usage("enqueue needs a queue directory"));
    };
    let queue = Queue::open(dir)?;
    let spec = match headline_flags(&args[1..])? {
        Some(spec) => spec,
        None => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return Err(usage("enqueue needs a spec file or --headline"));
            };
            std::fs::read_to_string(path).map_err(|source| ServeError::Io {
                path: path.into(),
                source,
            })?
        }
    };
    let submission = queue.enqueue(&spec)?;
    println!(
        "enqueued campaign {:05} `{}` ({} jobs)",
        submission.id, submission.name, submission.jobs
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), ServeError> {
    let Some(dir) = args.first() else {
        return Err(usage("run needs a queue directory"));
    };
    let queue = Queue::open(dir)?;
    let mut options = RunOptions::default();
    let mut watch_mode = false;
    let mut poll = Duration::from_millis(500);
    let mut max_idle: Option<Duration> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--shard" => {
                let value = rest.next().ok_or_else(|| usage("--shard needs K/N"))?;
                options.shard = ShardSpec::parse(value)?;
            }
            "--workers" => {
                let value = rest.next().and_then(|v| v.parse().ok());
                options.workers = value.ok_or_else(|| usage("--workers needs an integer"))?;
            }
            "--cache-capacity" => {
                let value = rest.next().and_then(|v| v.parse().ok());
                options.cache_capacity =
                    Some(value.ok_or_else(|| usage("--cache-capacity needs an integer"))?);
            }
            "--no-store" => options.use_store = false,
            "--watch" => watch_mode = true,
            "--poll-ms" => {
                let value = rest.next().and_then(|v| v.parse().ok());
                poll = Duration::from_millis(
                    value.ok_or_else(|| usage("--poll-ms needs an integer"))?,
                );
            }
            "--idle-ms" => {
                let value = rest.next().and_then(|v| v.parse().ok());
                max_idle = Some(Duration::from_millis(
                    value.ok_or_else(|| usage("--idle-ms needs an integer"))?,
                ));
            }
            other => return Err(usage(format!("unknown run flag `{other}`"))),
        }
    }

    let shard = options.shard;
    let progress = |p: &loas_serve::CampaignProgress| {
        println!(
            "campaign {:05} `{}` shard {shard}: {} jobs ({} memo hits, {} simulated, {} workloads generated) in {:.3}s",
            p.id, p.name, p.jobs, p.memo_hits, p.simulated, p.generated, p.wall_seconds
        );
    };
    let summary = if watch_mode {
        watch(&queue, &options, poll, max_idle, progress)?
    } else {
        drain(&queue, &options, progress)?
    };
    println!(
        "pass complete: {} campaign shard(s), {} failed, {} jobs ({} memo hits, {} simulated)",
        summary.campaigns, summary.failed, summary.jobs, summary.memo_hits, summary.simulated
    );
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), ServeError> {
    let (Some(dir), Some(id)) = (args.first(), args.get(1)) else {
        return Err(usage("merge needs a queue directory and a campaign id"));
    };
    let id: u64 = id
        .parse()
        .map_err(|_| usage(format!("bad campaign id `{id}`")))?;
    let shards = match args.iter().position(|a| a == "--shards") {
        Some(index) => args
            .get(index + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| usage("--shards needs a positive integer"))?,
        None => return Err(usage("merge requires --shards N")),
    };
    let queue = Queue::open(dir)?;
    let jobs = merge(&queue, id, shards)?;
    println!(
        "merged {shards} shard(s) of campaign {id:05} into {} ({jobs} jobs)",
        queue.report_dir(id).join("report.jsonl").display()
    );
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), ServeError> {
    let [dir] = args else {
        return Err(usage("status takes exactly one queue directory"));
    };
    let queue = Queue::open(dir)?;
    let submissions = queue.submissions()?;
    if submissions.is_empty() {
        println!("queue {} is empty", queue.root().display());
        return Ok(());
    }
    println!("{:>5}  {:>6}  {:<10}  name", "id", "jobs", "state");
    for submission in submissions {
        let state = queue
            .state(submission.id)
            .map_or_else(|_| "unknown".to_owned(), |s| s.to_string());
        println!(
            "{:>5}  {:>6}  {:<10}  {}",
            format!("{:05}", submission.id),
            submission.jobs,
            state,
            submission.name
        );
    }
    Ok(())
}
