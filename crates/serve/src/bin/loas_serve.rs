//! The `loas-serve` CLI: durable campaign queue, sharded runners, and
//! report merging over one queue directory.
//!
//! ```text
//! loas-serve init <dir>
//! loas-serve spec (--headline | --gamma-cache) [--quick] [--seed S]
//! loas-serve enqueue <dir> (<spec.json> | <spec-dir> | <manifest> |
//!                           --headline | --gamma-cache) [--quick] [--seed S]
//! loas-serve run <dir> [--shard K/N] [--workers W] [--no-store]
//!                      [--cache-capacity N] [--watch [--poll-ms P] [--idle-ms I]]
//! loas-serve merge <dir> <campaign-id> --shards N
//! loas-serve requeue <dir> <campaign-id>
//! loas-serve fsck <dir> [--prune]
//! loas-serve status <dir>
//! loas-serve models
//! ```

use loas_serve::spec_io::{campaign_to_json, gamma_cache_campaign, headline_campaign};
use loas_serve::{
    collect_spec_paths, drain, enqueue_batch, fsck, merge, requeue, watch, Queue, RunOptions,
    ServeError, ShardSpec,
};
use std::time::Duration;

const USAGE: &str = "usage: loas-serve <init|spec|enqueue|run|merge|requeue|fsck|status|models> ...
  init <dir>                                   create a queue directory
  spec (--headline | --gamma-cache) [--quick] [--seed S]
                                               print a built-in campaign spec to stdout
  enqueue <dir> <spec.json>                    submit one campaign spec file
  enqueue <dir> <spec-dir | manifest>          submit a batch: every *.json in a
                                               directory, or the spec paths listed in a
                                               manifest file (one per line, # comments)
  enqueue <dir> (--headline | --gamma-cache) [--quick] [--seed S]
                                               submit a built-in campaign
  run <dir> [--shard K/N] [--workers W] [--no-store] [--cache-capacity N]
            [--watch [--poll-ms P] [--idle-ms I]]  drain the queue (one shard per process)
  merge <dir> <campaign-id> --shards N         merge shard reports into report.jsonl
  requeue <dir> <campaign-id>                  reset a failed campaign to queued
  fsck <dir> [--prune]                         integrity-check the memo store and
                                               reports tree (prune corruption/orphans)
  status <dir>                                 list submissions and their states
  models                                       print the accelerator catalog: every
                                               registered model with its config fields,
                                               kinds, and paper defaults";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("init") => cmd_init(&args[1..]),
        Some("spec") => cmd_spec(&args[1..]),
        Some("enqueue") => cmd_enqueue(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("requeue") => cmd_requeue(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("models") => cmd_models(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return;
        }
        Some(other) => Err(usage(format!("unknown command `{other}`"))),
    };
    if let Err(error) = result {
        eprintln!("loas-serve: {error}");
        std::process::exit(1);
    }
}

fn usage(message: impl std::fmt::Display) -> ServeError {
    ServeError::Queue(format!("{message}\n{USAGE}"))
}

fn cmd_init(args: &[String]) -> Result<(), ServeError> {
    let [dir] = args else {
        return Err(usage("init takes exactly one directory"));
    };
    let queue = Queue::init(dir)?;
    println!("initialized queue at {}", queue.root().display());
    Ok(())
}

/// Parses the built-in spec-source flags (`--headline` or `--gamma-cache`,
/// with `[--quick] [--seed S]`).
fn builtin_spec_flags(args: &[String]) -> Result<Option<String>, ServeError> {
    let headline = args.iter().any(|a| a == "--headline");
    let gamma_cache = args.iter().any(|a| a == "--gamma-cache");
    if !headline && !gamma_cache {
        return Ok(None);
    }
    if headline && gamma_cache {
        return Err(usage("pick one of --headline / --gamma-cache"));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let seed = match args.iter().position(|a| a == "--seed") {
        None => loas_engine::DEFAULT_SEED,
        Some(index) => args
            .get(index + 1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| usage("--seed needs an integer value"))?,
    };
    let campaign = if headline {
        headline_campaign(quick, seed)
    } else {
        gamma_cache_campaign(quick, seed)
    };
    Ok(Some(campaign_to_json(&campaign)))
}

fn cmd_spec(args: &[String]) -> Result<(), ServeError> {
    let Some(spec) = builtin_spec_flags(args)? else {
        return Err(usage("spec requires --headline or --gamma-cache"));
    };
    print!("{spec}");
    Ok(())
}

fn cmd_enqueue(args: &[String]) -> Result<(), ServeError> {
    let Some(dir) = args.first() else {
        return Err(usage("enqueue needs a queue directory"));
    };
    let queue = Queue::open(dir)?;
    let submissions = match builtin_spec_flags(&args[1..])? {
        Some(spec) => vec![queue.enqueue(&spec)?],
        None => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return Err(usage(
                    "enqueue needs a spec file/directory/manifest or --headline/--gamma-cache",
                ));
            };
            // A directory or manifest expands to a validated batch; a
            // plain .json file is a batch of one.
            enqueue_batch(&queue, &collect_spec_paths(path)?)?
        }
    };
    for submission in &submissions {
        println!(
            "enqueued campaign {:05} `{}` ({} jobs)",
            submission.id, submission.name, submission.jobs
        );
    }
    if submissions.len() > 1 {
        println!("batch: {} campaigns submitted", submissions.len());
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), ServeError> {
    let Some(dir) = args.first() else {
        return Err(usage("run needs a queue directory"));
    };
    let queue = Queue::open(dir)?;
    let mut options = RunOptions::default();
    let mut watch_mode = false;
    let mut poll = Duration::from_millis(500);
    let mut max_idle: Option<Duration> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--shard" => {
                let value = rest.next().ok_or_else(|| usage("--shard needs K/N"))?;
                options.shard = ShardSpec::parse(value)?;
            }
            "--workers" => {
                let value = rest.next().and_then(|v| v.parse().ok());
                options.workers = value.ok_or_else(|| usage("--workers needs an integer"))?;
            }
            "--cache-capacity" => {
                let value = rest.next().and_then(|v| v.parse().ok());
                options.cache_capacity =
                    Some(value.ok_or_else(|| usage("--cache-capacity needs an integer"))?);
            }
            "--no-store" => options.use_store = false,
            "--watch" => watch_mode = true,
            "--poll-ms" => {
                let value = rest.next().and_then(|v| v.parse().ok());
                poll = Duration::from_millis(
                    value.ok_or_else(|| usage("--poll-ms needs an integer"))?,
                );
            }
            "--idle-ms" => {
                let value = rest.next().and_then(|v| v.parse().ok());
                max_idle = Some(Duration::from_millis(
                    value.ok_or_else(|| usage("--idle-ms needs an integer"))?,
                ));
            }
            other => return Err(usage(format!("unknown run flag `{other}`"))),
        }
    }

    let shard = options.shard;
    let progress = |p: &loas_serve::CampaignProgress| {
        println!(
            "campaign {:05} `{}` shard {shard}: {} jobs ({} memo hits, {} simulated, {} workloads generated) in {:.3}s",
            p.id, p.name, p.jobs, p.memo_hits, p.simulated, p.generated, p.wall_seconds
        );
    };
    let summary = if watch_mode {
        watch(&queue, &options, poll, max_idle, progress)?
    } else {
        drain(&queue, &options, progress)?
    };
    println!(
        "pass complete: {} campaign shard(s), {} failed, {} jobs ({} memo hits, {} simulated)",
        summary.campaigns, summary.failed, summary.jobs, summary.memo_hits, summary.simulated
    );
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), ServeError> {
    let (Some(dir), Some(id)) = (args.first(), args.get(1)) else {
        return Err(usage("merge needs a queue directory and a campaign id"));
    };
    let id: u64 = id
        .parse()
        .map_err(|_| usage(format!("bad campaign id `{id}`")))?;
    let shards = match args.iter().position(|a| a == "--shards") {
        Some(index) => args
            .get(index + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| usage("--shards needs a positive integer"))?,
        None => return Err(usage("merge requires --shards N")),
    };
    let queue = Queue::open(dir)?;
    let jobs = merge(&queue, id, shards)?;
    println!(
        "merged {shards} shard(s) of campaign {id:05} into {} ({jobs} jobs)",
        queue.report_dir(id).join("report.jsonl").display()
    );
    Ok(())
}

fn cmd_requeue(args: &[String]) -> Result<(), ServeError> {
    let (Some(dir), Some(id)) = (args.first(), args.get(1)) else {
        return Err(usage("requeue needs a queue directory and a campaign id"));
    };
    let id: u64 = id
        .parse()
        .map_err(|_| usage(format!("bad campaign id `{id}`")))?;
    let queue = Queue::open(dir)?;
    requeue(&queue, id)?;
    println!("campaign {id:05} requeued");
    Ok(())
}

fn cmd_fsck(args: &[String]) -> Result<(), ServeError> {
    let Some(dir) = args.first() else {
        return Err(usage("fsck needs a queue directory"));
    };
    let prune = args.iter().any(|a| a == "--prune");
    let queue = Queue::open(dir)?;
    let report = fsck(&queue, prune)?;
    println!(
        "fsck {}: {} valid memo entries, {} corrupt, {} orphan files, {} orphan report dirs{}",
        queue.root().display(),
        report.valid_entries,
        report.corrupt_entries.len(),
        report.orphan_files.len(),
        report.orphan_report_dirs.len(),
        if prune {
            format!(", {} pruned", report.pruned)
        } else {
            String::new()
        }
    );
    for path in report
        .corrupt_entries
        .iter()
        .chain(&report.orphan_files)
        .chain(&report.orphan_report_dirs)
    {
        println!("  problem: {}", path.display());
    }
    if !report.is_clean() {
        return Err(ServeError::Queue(format!(
            "fsck found {} problem(s); run `loas-serve fsck {} --prune` to remove them",
            report.problems(),
            dir
        )));
    }
    Ok(())
}

fn cmd_models(args: &[String]) -> Result<(), ServeError> {
    if !args.is_empty() {
        return Err(usage("models takes no arguments"));
    }
    print!("{}", loas_serve::catalog_listing());
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), ServeError> {
    let [dir] = args else {
        return Err(usage("status takes exactly one queue directory"));
    };
    let queue = Queue::open(dir)?;
    let submissions = queue.submissions()?;
    if submissions.is_empty() {
        println!("queue {} is empty", queue.root().display());
        return Ok(());
    }
    println!("{:>5}  {:>6}  {:<10}  name", "id", "jobs", "state");
    for submission in submissions {
        let state = queue
            .state(submission.id)
            .map_or_else(|_| "unknown".to_owned(), |s| s.to_string());
        println!(
            "{:>5}  {:>6}  {:<10}  {}",
            format!("{:05}", submission.id),
            submission.jobs,
            state,
            submission.name
        );
    }
    Ok(())
}
