//! The serving subsystem's error type.

use loas_engine::EngineError;
use std::path::PathBuf;

/// Everything that can go wrong between a submitted spec and a merged
/// report.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure, annotated with the path being touched.
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A campaign spec (or other JSON document) failed to parse.
    Spec(String),
    /// The queue directory is malformed or an id is unknown.
    Queue(String),
    /// The engine rejected a campaign (infeasible workload profile).
    Engine(EngineError),
    /// Shard reports could not be merged (missing shard, duplicate or
    /// missing job ids).
    Merge(String),
}

impl ServeError {
    pub(crate) fn io(path: impl Into<PathBuf>) -> impl FnOnce(std::io::Error) -> ServeError {
        let path = path.into();
        move |source| ServeError::Io { path, source }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            ServeError::Spec(message) => write!(f, "bad campaign spec: {message}"),
            ServeError::Queue(message) => write!(f, "queue error: {message}"),
            ServeError::Engine(source) => write!(f, "engine error: {source}"),
            ServeError::Merge(message) => write!(f, "merge error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Engine(source) => Some(source),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(source: EngineError) -> Self {
        ServeError::Engine(source)
    }
}
