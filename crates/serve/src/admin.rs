//! Queue administration: batched spec submission, failed-campaign
//! requeue, and memo-store/report integrity checking (`fsck`).

use crate::error::ServeError;
use crate::queue::{CampaignState, Queue, Submission};
use loas_core::LayerReport;
use std::path::{Path, PathBuf};

/// Expands one `enqueue` source argument into the spec files it names:
///
/// * a **directory** — every `*.json` inside, in name order;
/// * a **manifest** (any non-`.json` file) — one spec path per line,
///   resolved relative to the manifest's directory; blank lines and
///   `#`-comments are skipped;
/// * a plain **`.json` file** — itself.
///
/// # Errors
///
/// Returns [`ServeError::Spec`] for an empty directory or manifest and
/// propagates I/O failures.
pub fn collect_spec_paths(source: impl AsRef<Path>) -> Result<Vec<PathBuf>, ServeError> {
    let source = source.as_ref();
    if source.is_dir() {
        let mut specs: Vec<PathBuf> = std::fs::read_dir(source)
            .map_err(ServeError::io(source))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
            .collect();
        specs.sort();
        if specs.is_empty() {
            return Err(ServeError::Spec(format!(
                "directory {} holds no *.json specs",
                source.display()
            )));
        }
        return Ok(specs);
    }
    if source.extension().is_some_and(|ext| ext == "json") {
        return Ok(vec![source.to_path_buf()]);
    }
    // A manifest: one spec path per line, relative to the manifest.
    let text = std::fs::read_to_string(source).map_err(ServeError::io(source))?;
    let base = source.parent().unwrap_or_else(|| Path::new("."));
    let specs: Vec<PathBuf> = text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| {
            let path = Path::new(line);
            if path.is_absolute() {
                path.to_path_buf()
            } else {
                base.join(path)
            }
        })
        .collect();
    if specs.is_empty() {
        return Err(ServeError::Spec(format!(
            "manifest {} lists no specs",
            source.display()
        )));
    }
    Ok(specs)
}

/// Submits a batch of spec files in one call (ROADMAP item d: LOKI-style
/// design-space sweeps arrive as a directory of specs). All specs are
/// read **and validated** before the first submission, so a broken spec
/// anywhere in the batch means nothing is enqueued.
///
/// # Errors
///
/// Returns the first read or validation failure, naming the file.
pub fn enqueue_batch(queue: &Queue, specs: &[PathBuf]) -> Result<Vec<Submission>, ServeError> {
    let mut texts = Vec::with_capacity(specs.len());
    for path in specs {
        let text = std::fs::read_to_string(path).map_err(ServeError::io(path))?;
        crate::spec_io::campaign_from_json(&text)
            .map_err(|error| ServeError::Spec(format!("{}: {error}", path.display())))?;
        texts.push(text);
    }
    texts.iter().map(|text| queue.enqueue(text)).collect()
}

/// Resets a `failed` campaign to `queued` and clears its stale partial
/// outputs (shard reports, shard markers, summaries), so the next `run`
/// pass re-claims it from a clean slate — completed jobs replay from the
/// memo store, so a requeue after a transient failure only re-simulates
/// what never finished.
///
/// # Errors
///
/// Returns [`ServeError::Queue`] when the campaign is not in the `failed`
/// state (requeueing running or completed work would corrupt reports).
pub fn requeue(queue: &Queue, id: u64) -> Result<(), ServeError> {
    match queue.state(id)? {
        CampaignState::Failed(_) => {}
        other => {
            return Err(ServeError::Queue(format!(
                "campaign {id:05} is `{other}`; only failed campaigns can be requeued"
            )))
        }
    }
    let report_dir = queue.report_dir(id);
    if report_dir.is_dir() {
        let entries = std::fs::read_dir(&report_dir).map_err(ServeError::io(&report_dir))?;
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale = name == "report.jsonl"
                || name.starts_with("report.shard-")
                || name.starts_with("shard-")
                || name.starts_with("summary.");
            if stale {
                std::fs::remove_file(&path).map_err(ServeError::io(&path))?;
            }
        }
    }
    queue.set_state(id, &CampaignState::Queued)
}

/// What an [`fsck`] pass found (and possibly pruned).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Valid memo entries (well-named and parseable).
    pub valid_entries: usize,
    /// Memo entries whose contents fail to parse as a portable
    /// [`LayerReport`] — replayed loads would read these as misses, so
    /// they only waste space.
    pub corrupt_entries: Vec<PathBuf>,
    /// Files in the memo directory that are not `<16-hex>.report` entries
    /// (leftover temporaries from crashed writers, stray files). Files
    /// younger than [`ORPHAN_GRACE`] are ignored entirely — they may be a
    /// live writer's in-flight temporary about to be renamed into place.
    pub orphan_files: Vec<PathBuf>,
    /// Report directories with no matching submission-log entry.
    pub orphan_report_dirs: Vec<PathBuf>,
    /// Paths removed (only non-zero when pruning).
    pub pruned: usize,
}

impl FsckReport {
    /// Total problems found.
    pub fn problems(&self) -> usize {
        self.corrupt_entries.len() + self.orphan_files.len() + self.orphan_report_dirs.len()
    }

    /// Whether the store is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.problems() == 0
    }
}

/// How old a non-entry file in the memo directory must be before fsck
/// treats it as an orphan. `MemoStore::store` writes a `.tmp` file and
/// atomically renames it within milliseconds, so anything younger than
/// this is presumed to be a **live** writer's in-flight temporary —
/// pruning it would race the rename and silently drop a fresh result.
pub const ORPHAN_GRACE: std::time::Duration = std::time::Duration::from_secs(60);

/// Whether the file at `path` is older than [`ORPHAN_GRACE`] (unreadable
/// metadata counts as stale: the file is likely already gone).
fn outlived_grace(path: &std::path::Path) -> bool {
    std::fs::metadata(path)
        .and_then(|meta| meta.modified())
        .map(|modified| modified.elapsed().unwrap_or_default() >= ORPHAN_GRACE)
        .unwrap_or(true)
}

/// Whether `name` is a well-formed memo entry file name
/// (`<16 lowercase hex>.report` — the [`MemoKey`] display format).
///
/// [`MemoKey`]: loas_engine::MemoKey
fn is_memo_entry_name(name: &str) -> bool {
    name.strip_suffix(".report").is_some_and(|stem| {
        stem.len() == 16
            && stem
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    })
}

/// Integrity-checks the queue's memo store and report tree (ROADMAP item
/// c): every memo entry must be named `<16-hex>.report` and parse as a
/// portable [`LayerReport`]; every report directory must belong to a
/// logged submission. With `prune`, corrupt entries and orphans are
/// deleted (safe even against concurrent runners: corrupt entries already
/// read as misses, and non-entry files are only considered orphans once
/// they outlive [`ORPHAN_GRACE`] — a live writer's in-flight temporary is
/// never touched).
///
/// # Errors
///
/// Propagates I/O failures (a missing memo directory is an empty store,
/// not an error).
pub fn fsck(queue: &Queue, prune: bool) -> Result<FsckReport, ServeError> {
    let mut report = FsckReport::default();
    let memo_dir = queue.memo_dir();
    if memo_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&memo_dir)
            .map_err(ServeError::io(&memo_dir))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .collect();
        entries.sort();
        for path in entries {
            let well_named = path
                .file_name()
                .and_then(|name| name.to_str())
                .is_some_and(is_memo_entry_name);
            if !well_named {
                if outlived_grace(&path) {
                    report.orphan_files.push(path);
                }
                continue;
            }
            let parses = std::fs::read_to_string(&path)
                .ok()
                .is_some_and(|text| LayerReport::from_portable(&text).is_ok());
            if parses {
                report.valid_entries += 1;
            } else {
                report.corrupt_entries.push(path);
            }
        }
    }

    // Report directories must trace back to a logged submission.
    let known: std::collections::HashSet<u64> = queue
        .submissions()?
        .into_iter()
        .map(|submission| submission.id)
        .collect();
    let reports_dir = queue.root().join("reports");
    if reports_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&reports_dir)
            .map_err(ServeError::io(&reports_dir))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .collect();
        dirs.sort();
        for path in dirs {
            let owned = path
                .file_name()
                .and_then(|name| name.to_str())
                .and_then(|name| name.parse::<u64>().ok())
                .is_some_and(|id| known.contains(&id));
            if !owned {
                report.orphan_report_dirs.push(path);
            }
        }
    }

    if prune {
        for path in report
            .corrupt_entries
            .drain(..)
            .chain(report.orphan_files.drain(..))
        {
            std::fs::remove_file(&path).map_err(ServeError::io(&path))?;
            report.pruned += 1;
        }
        for path in report.orphan_report_dirs.drain(..) {
            std::fs::remove_dir_all(&path).map_err(ServeError::io(&path))?;
            report.pruned += 1;
        }
    }
    Ok(report)
}

/// Renders the accelerator catalog as the `loas-serve models` listing:
/// every registered model with its about-line and configuration fields
/// (name, value kind, paper default) — the design-space discovery surface
/// for writing v2 spec `config` overrides.
pub fn catalog_listing() -> String {
    loas_baselines::register_catalog();
    loas_core::catalog::with(|catalog| {
        let mut out = String::new();
        for entry in catalog.entries() {
            out.push_str(&format!("{}\n    {}\n", entry.name(), entry.about()));
            let config = entry.default_config();
            if config.fields().is_empty() {
                out.push_str("    (no configuration fields)\n");
            }
            for (field, value) in config.fields() {
                out.push_str(&format!(
                    "    {field:<28} {:<8} default {value}\n",
                    value.kind()
                ));
            }
            out.push('\n');
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_io::{campaign_to_json, gamma_cache_campaign, headline_campaign};
    use crate::{drain, RunOptions};

    fn temp_queue(tag: &str) -> Queue {
        let root = std::env::temp_dir().join(format!(
            "loas-serve-admin-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Queue::init(root).unwrap()
    }

    fn small_options() -> RunOptions {
        RunOptions {
            workers: 2,
            ..RunOptions::default()
        }
    }

    #[test]
    fn directory_and_manifest_sources_batch_enqueue() {
        let queue = temp_queue("batch");
        let specs_dir = queue.root().join("incoming");
        std::fs::create_dir_all(&specs_dir).unwrap();
        std::fs::write(
            specs_dir.join("a-headline.json"),
            campaign_to_json(&headline_campaign(true, 7)),
        )
        .unwrap();
        std::fs::write(
            specs_dir.join("b-gamma.json"),
            campaign_to_json(&gamma_cache_campaign(true, 7)),
        )
        .unwrap();
        std::fs::write(specs_dir.join("notes.txt"), "not a spec").unwrap();

        // Directory source: both json specs, name order.
        let paths = collect_spec_paths(&specs_dir).unwrap();
        assert_eq!(paths.len(), 2);
        let submitted = enqueue_batch(&queue, &paths).unwrap();
        assert_eq!(submitted.len(), 2);
        assert_eq!(submitted[0].jobs, 28);
        assert_eq!(submitted[1].jobs, 4);

        // Manifest source: relative paths, comments skipped.
        let manifest = queue.root().join("sweep.manifest");
        std::fs::write(
            &manifest,
            "# sweep batch\nincoming/b-gamma.json\n\nincoming/a-headline.json\n",
        )
        .unwrap();
        let paths = collect_spec_paths(&manifest).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with("incoming/b-gamma.json"));
        let submitted = enqueue_batch(&queue, &paths).unwrap();
        assert_eq!(submitted.len(), 2);
        assert_eq!(queue.submissions().unwrap().len(), 4);
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn a_broken_spec_anywhere_blocks_the_whole_batch() {
        let queue = temp_queue("batch-atomic");
        let specs_dir = queue.root().join("incoming");
        std::fs::create_dir_all(&specs_dir).unwrap();
        std::fs::write(
            specs_dir.join("a-good.json"),
            campaign_to_json(&headline_campaign(true, 7)),
        )
        .unwrap();
        std::fs::write(specs_dir.join("b-bad.json"), "{not json").unwrap();
        let paths = collect_spec_paths(&specs_dir).unwrap();
        let error = enqueue_batch(&queue, &paths).unwrap_err().to_string();
        assert!(error.contains("b-bad.json"), "{error}");
        assert!(queue.submissions().unwrap().is_empty(), "nothing enqueued");
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn requeue_resets_failed_campaigns_only() {
        let queue = temp_queue("requeue");
        let id = queue
            .enqueue(&campaign_to_json(&headline_campaign(true, 11)))
            .unwrap()
            .id;
        // Queued and done campaigns refuse.
        assert!(requeue(&queue, id).is_err());
        drain(&queue, &small_options(), |_| {}).unwrap();
        assert_eq!(queue.state(id).unwrap(), CampaignState::Done);
        assert!(requeue(&queue, id).is_err());

        // A failed campaign requeues, stale shard outputs are cleared, and
        // the next pass (replaying from the memo store it shares) finishes.
        queue
            .set_state(id, &CampaignState::Failed("runner died".to_owned()))
            .unwrap();
        let stale = queue.report_dir(id).join("shard-0.done");
        assert!(stale.is_file(), "drain left its shard marker");
        requeue(&queue, id).unwrap();
        assert_eq!(queue.state(id).unwrap(), CampaignState::Queued);
        assert!(!stale.exists(), "stale marker cleared");
        let summary = drain(&queue, &small_options(), |_| {}).unwrap();
        assert_eq!(summary.campaigns, 1);
        assert_eq!(summary.memo_hits, 28, "requeue re-used memoized results");
        assert_eq!(queue.state(id).unwrap(), CampaignState::Done);
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn fsck_finds_and_prunes_corruption_and_orphans() {
        let queue = temp_queue("fsck");
        queue
            .enqueue(&campaign_to_json(&gamma_cache_campaign(true, 11)))
            .unwrap();
        drain(&queue, &small_options(), |_| {}).unwrap();
        let clean = fsck(&queue, false).unwrap();
        assert!(clean.is_clean(), "{clean:?}");
        assert_eq!(clean.valid_entries, 4);

        // Inject: a corrupt entry, a stray temp file, an orphan report dir.
        let memo = queue.memo_dir();
        std::fs::write(memo.join("00000000deadbeef.report"), "not a report").unwrap();
        let temp = memo.join(".0123.tmp");
        std::fs::write(&temp, "dead writer").unwrap();
        std::fs::create_dir_all(queue.root().join("reports/99999")).unwrap();

        // The temp file is fresh: it could be a live writer mid-rename, so
        // fsck must leave it alone (corrupt entry + orphan dir still flag).
        let racing = fsck(&queue, false).unwrap();
        assert_eq!(racing.orphan_files.len(), 0, "fresh temp presumed live");
        assert_eq!(racing.problems(), 2);

        // Backdate it past the grace period: now it is a dead writer's
        // leftover and a genuine orphan.
        let stale = std::time::SystemTime::now() - (ORPHAN_GRACE + ORPHAN_GRACE);
        std::fs::File::options()
            .write(true)
            .open(&temp)
            .unwrap()
            .set_times(std::fs::FileTimes::new().set_modified(stale))
            .unwrap();

        let dirty = fsck(&queue, false).unwrap();
        assert_eq!(dirty.valid_entries, 4);
        assert_eq!(dirty.corrupt_entries.len(), 1);
        assert_eq!(dirty.orphan_files.len(), 1);
        assert_eq!(dirty.orphan_report_dirs.len(), 1);
        assert_eq!(dirty.problems(), 3);

        let pruned = fsck(&queue, true).unwrap();
        assert_eq!(pruned.pruned, 3);
        let after = fsck(&queue, false).unwrap();
        assert!(after.is_clean(), "{after:?}");
        assert_eq!(after.valid_entries, 4, "valid entries survive pruning");
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn memo_entry_names_are_validated_strictly() {
        assert!(is_memo_entry_name("0123456789abcdef.report"));
        assert!(!is_memo_entry_name("0123456789ABCDEF.report"), "uppercase");
        assert!(!is_memo_entry_name("0123456789abcde.report"), "short");
        assert!(!is_memo_entry_name("0123456789abcdef.tmp"), "extension");
        assert!(!is_memo_entry_name("xyzw456789abcdef.report"), "non-hex");
    }

    #[test]
    fn catalog_listing_names_every_model_and_its_fields() {
        let listing = catalog_listing();
        // Every registered model appears with its about-line and every
        // configuration field with its kind and default — the sweepable
        // design space a spec author needs.
        for model in ["loas", "sparten", "gospa", "gamma", "ptb", "stellar"] {
            assert!(
                listing.contains(&format!("{model}\n")),
                "missing model `{model}` in:\n{listing}"
            );
        }
        loas_core::catalog::with(|catalog| {
            for entry in catalog.entries() {
                assert!(
                    listing.contains(entry.about()),
                    "about for {}",
                    entry.name()
                );
                for (field, value) in entry.default_config().fields() {
                    assert!(listing.contains(field), "field {field}");
                    let _ = value;
                }
            }
        });
        assert!(listing.contains("cache_ways"), "gamma geometry knob listed");
        assert!(listing.contains("integer"), "kinds printed");
        assert!(listing.contains("boolean"), "loas mode flags printed");
    }
}
