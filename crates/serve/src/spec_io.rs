//! Campaign specs as JSON documents: the wire format of the durable queue.
//!
//! A spec is a complete, self-contained description of a campaign — name
//! plus a flat job list, each job pairing a workload (shape, sparsity
//! fractions, seed, fine-tuning flag) with an accelerator. Serialization
//! is exact: seeds are integers, sparsity fractions and float config
//! fields are shortest-round-trip `f64` tokens, so
//! `campaign_from_json(campaign_to_json(c))` rebuilds a campaign whose
//! jobs carry identical [`memo keys`](loas_engine::JobSpec::memo_key) and
//! produce byte-identical reports.
//!
//! # Schema versions
//!
//! The document's top-level `"version"` field selects the schema:
//!
//! * **v1** (no `version` field — the pre-catalog format): accelerators
//!   are closed-world tags (`"sparten"`, `"gospa"`, `"gamma"`, `"loas"`,
//!   `"loas-ft"`, `"ptb"`, `"stellar"`) or a `{"loas": {..overrides..}}`
//!   object. Still parsed forever: a committed golden v1 spec is asserted
//!   in CI to produce byte-identical memo keys and reports.
//! * **v2** (`"version": 2` — what [`campaign_to_json`] emits): an
//!   accelerator is any **catalog** model by stable name, with an optional
//!   typed config-override object —
//!   `{"name": "gamma", "config": {"cache_bytes": 131072}}` — validated
//!   field by field against the model's registered [`ModelConfig`]. A
//!   bare string (`"gamma"`, plus the `"loas-ft"` convenience alias)
//!   means the default configuration. Models registered by downstream
//!   crates are expressible with no change to this crate.
//!
//! [`ModelConfig`]: loas_core::ModelConfig

use crate::error::ServeError;
use crate::json::{escape, Json};
use loas_core::{ConfigValue, LoasConfig};
use loas_engine::{AcceleratorSpec, Campaign, JobSpec, WorkloadSpec};
use loas_workloads::networks;
use loas_workloads::{LayerShape, SparsityProfile};
use std::fmt::Write as _;

/// The schema version [`campaign_to_json`] writes.
pub const SPEC_VERSION: u64 = 2;

/// Serializes a campaign into the queue's versioned JSON spec format
/// (pretty, one job per line block).
pub fn campaign_to_json(campaign: &Campaign) -> String {
    let mut out = String::with_capacity(256 * campaign.len().max(1));
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"version\": {SPEC_VERSION},");
    let _ = writeln!(out, "  \"name\": \"{}\",", escape(&campaign.name));
    let _ = writeln!(out, "  \"jobs\": [");
    for (index, job) in campaign.jobs().iter().enumerate() {
        let _ = write!(out, "    {}", job_to_json(job));
        let _ = writeln!(out, "{}", if index + 1 < campaign.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn job_to_json(job: &JobSpec) -> String {
    let workload = &job.workload;
    let profile = &workload.profile;
    let mut out = String::with_capacity(256);
    let _ = write!(out, "{{\"label\": \"{}\", ", escape(&job.label));
    match &job.network {
        Some(network) => {
            let _ = write!(
                out,
                "\"network\": \"{}\", \"layer_index\": {}, ",
                escape(network),
                job.layer_index
            );
        }
        None => out.push_str("\"network\": null, \"layer_index\": 0, "),
    }
    let _ = write!(
        out,
        "\"workload\": {{\"name\": \"{}\", \"shape\": {{\"t\": {}, \"m\": {}, \"n\": {}, \"k\": {}}}, \
         \"profile\": {{\"spike_origin\": {}, \"silent\": {}, \"silent_ft\": {}, \"weight\": {}}}, \
         \"seed\": {}, \"fine_tuned\": {}}}, ",
        escape(&workload.name),
        workload.shape.t,
        workload.shape.m,
        workload.shape.n,
        workload.shape.k,
        profile.spike_origin,
        profile.silent,
        profile.silent_ft,
        profile.weight,
        workload.seed,
        workload.fine_tuned
    );
    let _ = write!(
        out,
        "\"accelerator\": {}}}",
        accelerator_to_json(&job.accelerator)
    );
    out
}

/// Serializes an accelerator as its v2 catalog form: stable model name +
/// the full typed configuration (self-describing, so specs survive future
/// default changes bit-exactly).
fn accelerator_to_json(spec: &AcceleratorSpec) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{{\"name\": \"{}\", \"config\": {{",
        escape(spec.model())
    );
    for (index, (field, value)) in spec.config().fields().into_iter().enumerate() {
        let _ = write!(
            out,
            "{}\"{field}\": {value}",
            if index > 0 { ", " } else { "" }
        );
    }
    out.push_str("}}");
    out
}

fn spec_err(message: impl Into<String>) -> ServeError {
    ServeError::Spec(message.into())
}

fn required<'a>(value: &'a Json, key: &str, context: &str) -> Result<&'a Json, ServeError> {
    value
        .get(key)
        .ok_or_else(|| spec_err(format!("missing `{key}` in {context}")))
}

fn required_usize(value: &Json, key: &str, context: &str) -> Result<usize, ServeError> {
    required(value, key, context)?.as_usize().ok_or_else(|| {
        spec_err(format!(
            "`{key}` in {context} must be a non-negative integer"
        ))
    })
}

fn required_f64(value: &Json, key: &str, context: &str) -> Result<f64, ServeError> {
    required(value, key, context)?
        .as_f64()
        .ok_or_else(|| spec_err(format!("`{key}` in {context} must be a number")))
}

/// The schema versions [`campaign_from_json`] accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecVersion {
    /// The pre-catalog closed-enum format (no `version` field).
    V1,
    /// The catalog format (`"version": 2`).
    V2,
}

/// Parses a campaign spec JSON document back into an engine [`Campaign`],
/// accepting both schema versions (see the module docs).
///
/// # Errors
///
/// Returns [`ServeError::Spec`] describing the first syntax or schema
/// problem, including unsupported `version` values.
pub fn campaign_from_json(text: &str) -> Result<Campaign, ServeError> {
    let doc = Json::parse(text).map_err(spec_err)?;
    let version = match doc.get("version") {
        None => SpecVersion::V1,
        Some(value) => match value.as_u64() {
            Some(2) => SpecVersion::V2,
            Some(other) => {
                return Err(spec_err(format!(
                    "unsupported spec `version` {other} (this build reads v1 and v2)"
                )))
            }
            None => return Err(spec_err("`version` must be an integer")),
        },
    };
    let name = required(&doc, "name", "campaign")?
        .as_str()
        .ok_or_else(|| spec_err("`name` must be a string"))?;
    let jobs = required(&doc, "jobs", "campaign")?
        .as_arr()
        .ok_or_else(|| spec_err("`jobs` must be an array"))?;
    let mut campaign = Campaign::new(name);
    for (index, job) in jobs.iter().enumerate() {
        campaign.push(job_from_json(job, index, version)?);
    }
    Ok(campaign)
}

fn job_from_json(job: &Json, index: usize, version: SpecVersion) -> Result<JobSpec, ServeError> {
    let context = format!("job {index}");
    let workload = workload_from_json(required(job, "workload", &context)?, &context)?;
    let accelerator = required(job, "accelerator", &context)?;
    let accelerator = match version {
        SpecVersion::V1 => accelerator_from_json_v1(accelerator, &context)?,
        SpecVersion::V2 => accelerator_from_json_v2(accelerator, &context)?,
    };
    let label = match job.get("label").and_then(Json::as_str) {
        Some(label) => label.to_owned(),
        None => format!("{} @ {}", workload.name, accelerator.display_name()),
    };
    let network = match job.get("network") {
        None | Some(Json::Null) => None,
        Some(value) => Some(
            value
                .as_str()
                .ok_or_else(|| spec_err(format!("`network` in {context} must be a string")))?
                .to_owned(),
        ),
    };
    let layer_index = match job.get("layer_index") {
        None => 0,
        Some(value) => value
            .as_usize()
            .ok_or_else(|| spec_err(format!("`layer_index` in {context} must be an integer")))?,
    };
    Ok(JobSpec {
        label,
        network,
        layer_index,
        workload,
        accelerator,
    })
}

fn workload_from_json(workload: &Json, context: &str) -> Result<WorkloadSpec, ServeError> {
    let name = required(workload, "name", context)?
        .as_str()
        .ok_or_else(|| spec_err(format!("workload `name` in {context} must be a string")))?;
    let shape = required(workload, "shape", context)?;
    let shape = LayerShape::new(
        required_usize(shape, "t", context)?,
        required_usize(shape, "m", context)?,
        required_usize(shape, "n", context)?,
        required_usize(shape, "k", context)?,
    );
    let profile = required(workload, "profile", context)?;
    // Fractions in [0, 1], copied bit-exactly (not percentages): the memo
    // key hashes these bits, so a spec round trip must not perturb them.
    let profile = SparsityProfile {
        spike_origin: required_f64(profile, "spike_origin", context)?,
        silent: required_f64(profile, "silent", context)?,
        silent_ft: required_f64(profile, "silent_ft", context)?,
        weight: required_f64(profile, "weight", context)?,
    };
    for (field, value) in [
        ("spike_origin", profile.spike_origin),
        ("silent", profile.silent),
        ("silent_ft", profile.silent_ft),
        ("weight", profile.weight),
    ] {
        if !(0.0..=1.0).contains(&value) {
            return Err(spec_err(format!(
                "profile `{field}` in {context} must be a fraction in [0, 1], got {value}"
            )));
        }
    }
    let seed = required(workload, "seed", context)?
        .as_u64()
        .ok_or_else(|| spec_err(format!("`seed` in {context} must be an integer")))?;
    let fine_tuned = match workload.get("fine_tuned") {
        None => false,
        Some(value) => value
            .as_bool()
            .ok_or_else(|| spec_err(format!("`fine_tuned` in {context} must be a boolean")))?,
    };
    let mut spec = WorkloadSpec::new(name, shape, profile).with_seed(seed);
    if fine_tuned {
        spec = spec.fine_tuned();
    }
    Ok(spec)
}

/// Resolves a bare accelerator name (catalog lookup plus the `"loas-ft"`
/// convenience alias shared by both schema versions).
fn named_accelerator(tag: &str, context: &str) -> Result<AcceleratorSpec, ServeError> {
    if tag == "loas-ft" {
        return Ok(AcceleratorSpec::loas_ft());
    }
    AcceleratorSpec::by_name(tag).map_err(|_| {
        spec_err(format!(
            "unknown accelerator `{tag}` in {context} (registered models: {}, or loas-ft)",
            AcceleratorSpec::known_models().join("|")
        ))
    })
}

/// The v1 (pre-catalog) accelerator form: a closed tag set or a
/// `{"loas": {..overrides..}}` object over the Table III defaults.
fn accelerator_from_json_v1(spec: &Json, context: &str) -> Result<AcceleratorSpec, ServeError> {
    if let Some(tag) = spec.as_str() {
        return match tag {
            "sparten" | "gospa" | "gamma" | "ptb" | "stellar" | "loas" | "loas-ft" => {
                named_accelerator(tag, context)
            }
            other => Err(spec_err(format!(
                "unknown accelerator `{other}` in {context} (want sparten|gospa|gamma|loas|loas-ft|ptb|stellar or {{\"loas\": {{...}}}})"
            ))),
        };
    }
    let overrides = spec.get("loas").ok_or_else(|| {
        spec_err(format!(
            "accelerator in {context} must be a tag string or a {{\"loas\": {{...}}}} object"
        ))
    })?;
    let mut config = LoasConfig::table3();
    let set_usize = |field: &mut usize, key: &str| -> Result<(), ServeError> {
        if let Some(value) = overrides.get(key) {
            *field = value
                .as_usize()
                .ok_or_else(|| spec_err(format!("loas `{key}` must be an integer")))?;
        }
        Ok(())
    };
    set_usize(&mut config.tppes, "tppes")?;
    set_usize(&mut config.timesteps, "timesteps")?;
    set_usize(&mut config.weight_bits, "weight_bits")?;
    set_usize(&mut config.bitmask_bits, "bitmask_bits")?;
    set_usize(&mut config.laggy_adders, "laggy_adders")?;
    set_usize(&mut config.fifo_depth, "fifo_depth")?;
    set_usize(&mut config.weight_buffer_bytes, "weight_buffer_bytes")?;
    set_usize(&mut config.cache_bytes, "cache_bytes")?;
    set_usize(&mut config.cache_banks, "cache_banks")?;
    set_usize(&mut config.cache_ways, "cache_ways")?;
    set_usize(&mut config.cache_line_bytes, "cache_line_bytes")?;
    set_usize(&mut config.hbm_channels, "hbm_channels")?;
    set_usize(&mut config.crossbar_bus_bytes, "crossbar_bus_bytes")?;
    if let Some(value) = overrides.get("hbm_gbps") {
        config.hbm_gbps = value
            .as_f64()
            .ok_or_else(|| spec_err("loas `hbm_gbps` must be a number"))?;
    }
    let set_bool = |field: &mut bool, key: &str| -> Result<(), ServeError> {
        if let Some(value) = overrides.get(key) {
            *field = value
                .as_bool()
                .ok_or_else(|| spec_err(format!("loas `{key}` must be a boolean")))?;
        }
        Ok(())
    };
    set_bool(
        &mut config.discard_low_activity_outputs,
        "discard_low_activity_outputs",
    )?;
    set_bool(&mut config.temporal_parallel, "temporal_parallel")?;
    set_bool(&mut config.two_fast_prefix, "two_fast_prefix")?;
    config
        .check()
        .map_err(|message| spec_err(format!("invalid loas config in {context}: {message}")))?;
    Ok(AcceleratorSpec::loas_with(config))
}

/// The v2 accelerator form: a bare catalog name, or
/// `{"name": <model>, "config": {..field overrides..}}` validated against
/// the model's registered typed configuration.
fn accelerator_from_json_v2(spec: &Json, context: &str) -> Result<AcceleratorSpec, ServeError> {
    if let Some(tag) = spec.as_str() {
        return named_accelerator(tag, context);
    }
    if spec.as_obj().is_none() {
        return Err(spec_err(format!(
            "accelerator in {context} must be a model-name string or a {{\"name\": ..., \"config\": {{...}}}} object"
        )));
    }
    let name = required(spec, "name", context)?
        .as_str()
        .ok_or_else(|| spec_err(format!("accelerator `name` in {context} must be a string")))?;
    let mut accelerator = named_accelerator(name, context)?;
    let Some(config) = spec.get("config") else {
        return Ok(accelerator);
    };
    let overrides = config.as_obj().ok_or_else(|| {
        spec_err(format!(
            "accelerator `config` in {context} must be an object"
        ))
    })?;
    // Coerce each override by the declared kind of the registered config
    // field, so integer tokens land in integer fields and float fields
    // accept both `128` and `128.0` spellings.
    let declared = accelerator.config().fields();
    for (field, value) in overrides {
        let Some((_, kind)) = declared.iter().find(|(name, _)| name == field) else {
            return Err(spec_err(format!(
                "model `{name}` has no config field `{field}` (in {context}; fields: {})",
                declared
                    .iter()
                    .map(|(name, _)| *name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        };
        let coerced = match kind {
            ConfigValue::UInt(_) => value.as_u64().map(ConfigValue::UInt),
            ConfigValue::Float(_) => value.as_f64().map(ConfigValue::Float),
            ConfigValue::Bool(_) => value.as_bool().map(ConfigValue::Bool),
        }
        .ok_or_else(|| {
            spec_err(format!(
                "config field `{name}.{field}` in {context} must be {}",
                match kind {
                    ConfigValue::UInt(_) => "a non-negative integer",
                    ConfigValue::Float(_) => "a number",
                    ConfigValue::Bool(_) => "a boolean",
                }
            ))
        })?;
        accelerator
            .config_mut()
            .set(field, coerced)
            .map_err(|error| spec_err(format!("{error} (in {context})")))?;
    }
    // Individually-plausible fields can combine into a configuration the
    // simulator would hang or panic on (a radix-1 merger, a zero-way
    // cache): reject those at the schema boundary, before enqueueing.
    accelerator
        .config()
        .validate()
        .map_err(|message| spec_err(format!("invalid `{name}` config in {context}: {message}")))?;
    Ok(accelerator)
}

/// Builds the paper's headline campaign (the full 7-accelerator fleet over
/// the four selected layers) as a submittable spec — the serving analogue
/// of the `campaign` binary's built-in experiment.
pub fn headline_campaign(quick: bool, seed: u64) -> Campaign {
    let mut campaign = Campaign::new(if quick {
        "headline (quick)"
    } else {
        "headline"
    });
    let layers: Vec<WorkloadSpec> = networks::selected_layers()
        .iter()
        .map(|layer| {
            let layer = if quick {
                layer.shrunk_for_quick()
            } else {
                layer.clone()
            };
            WorkloadSpec::from_layer(&layer).with_seed(seed)
        })
        .collect();
    campaign.push_product(&layers, &AcceleratorSpec::headline_fleet());
    campaign
}

/// The FiberCache capacities the built-in Gamma sweep visits (the single
/// source of truth lives on [`GammaConfig`], shared with the bench
/// harness's sweep table).
pub const GAMMA_CACHE_POINTS: [usize; 4] = loas_baselines::GammaConfig::CACHE_SWEEP_POINTS;

/// Builds a baseline-config sweep campaign: Gamma-SNN's FiberCache
/// capacity over the V-L8 layer ([`GAMMA_CACHE_POINTS`]), the served
/// counterpart of the bench harness's Gamma cache sweep — and a worked
/// example of sweeping a non-LoAS catalog config through the queue.
pub fn gamma_cache_campaign(quick: bool, seed: u64) -> Campaign {
    let mut campaign = Campaign::new(if quick {
        "gamma-cache-sweep (quick)"
    } else {
        "gamma-cache-sweep"
    });
    let layer = &networks::selected_layers()[1];
    let layer = if quick {
        layer.shrunk_for_quick()
    } else {
        layer.clone()
    };
    let workload = WorkloadSpec::from_layer(&layer).with_seed(seed);
    for bytes in GAMMA_CACHE_POINTS {
        let config = loas_baselines::GammaConfig::builder()
            .cache_bytes(bytes)
            .build();
        let accelerator = AcceleratorSpec::from_config(config);
        let label = format!("{} @ Gamma-SNN[{}KB]", workload.name, bytes / 1024);
        campaign.push(JobSpec {
            label,
            network: None,
            layer_index: 0,
            workload: workload.clone(),
            accelerator,
        });
    }
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_baselines::GammaConfig;
    use loas_engine::DEFAULT_SEED;

    #[test]
    fn headline_round_trips_with_identical_memo_keys() {
        let original = headline_campaign(true, DEFAULT_SEED);
        let text = campaign_to_json(&original);
        assert!(text.contains("\"version\": 2"));
        let parsed = campaign_from_json(&text).unwrap();
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.network, b.network);
            assert_eq!(a.layer_index, b.layer_index);
            assert_eq!(a.workload.key(), b.workload.key());
            assert_eq!(a.accelerator, b.accelerator);
            assert_eq!(a.memo_key(), b.memo_key());
        }
        // Serialization is a fixed point after one round trip.
        assert_eq!(campaign_to_json(&parsed), text);
    }

    #[test]
    fn v1_loas_config_overrides_apply_over_table3() {
        let text = r#"{"name": "t", "jobs": [{
            "workload": {"name": "w", "shape": {"t": 4, "m": 4, "n": 8, "k": 64},
                         "profile": {"spike_origin": 0.823, "silent": 0.741,
                                     "silent_ft": 0.796, "weight": 0.982},
                         "seed": 7},
            "accelerator": {"loas": {"timesteps": 8, "discard_low_activity_outputs": true}}}]}"#;
        let campaign = campaign_from_json(text).unwrap();
        let config: &LoasConfig = campaign.jobs()[0]
            .accelerator
            .typed_config()
            .expect("a LoAS accelerator");
        assert_eq!(config.timesteps, 8);
        assert!(config.discard_low_activity_outputs);
        assert_eq!(config.tppes, LoasConfig::table3().tppes);
        // Auto-generated label (the model reports its FT mode) and
        // defaulted fields.
        assert_eq!(
            campaign.jobs()[0].label,
            format!("w @ {}", campaign.jobs()[0].accelerator.display_name())
        );
        assert!(!campaign.jobs()[0].workload.fine_tuned);
    }

    #[test]
    fn v2_catalog_configs_parse_for_every_model() {
        let job = |accelerator: &str| {
            format!(
                r#"{{"version": 2, "name": "t", "jobs": [{{
                    "workload": {{"name": "w", "shape": {{"t": 4, "m": 4, "n": 8, "k": 64}},
                                 "profile": {{"spike_origin": 0.823, "silent": 0.741,
                                             "silent_ft": 0.796, "weight": 0.982}},
                                 "seed": 7}},
                    "accelerator": {accelerator}}}]}}"#
            )
        };
        // Bare names resolve to catalog defaults.
        for name in AcceleratorSpec::known_models() {
            let campaign = campaign_from_json(&job(&format!("\"{name}\""))).unwrap();
            assert_eq!(campaign.jobs()[0].accelerator.model(), name);
            assert_eq!(
                campaign.jobs()[0].accelerator,
                AcceleratorSpec::by_name(name).unwrap()
            );
        }
        // Typed overrides apply through the registered config.
        let campaign = campaign_from_json(&job(
            r#"{"name": "gamma", "config": {"cache_bytes": 131072, "merge_radix": 32}}"#,
        ))
        .unwrap();
        let config: &GammaConfig = campaign.jobs()[0].accelerator.typed_config().unwrap();
        assert_eq!(config.cache_bytes, 128 * 1024);
        assert_eq!(config.merge_radix, 32);
        assert_eq!(config.pes, GammaConfig::default().pes);
        // The override changes the memo key; defaults do not.
        let default_key = campaign_from_json(&job("\"gamma\"")).unwrap().jobs()[0].memo_key();
        assert_ne!(campaign.jobs()[0].memo_key(), default_key);
    }

    #[test]
    fn schema_problems_are_described() {
        let wrap = |accelerator: &str, version: &str| {
            format!(
                r#"{{{version}"name": "x", "jobs": [{{
                    "workload": {{"name": "w", "shape": {{"t": 4, "m": 4, "n": 8, "k": 64}},
                                 "profile": {{"spike_origin": 0.8, "silent": 0.7,
                                             "silent_ft": 0.8, "weight": 0.9}},
                                 "seed": 7}},
                    "accelerator": {accelerator}}}]}}"#
            )
        };
        for (bad, needle) in [
            ("{\"jobs\": []}".to_owned(), "missing `name`"),
            (
                "{\"name\": \"x\", \"jobs\": [{}]}".to_owned(),
                "missing `workload`",
            ),
            (
                "{\"version\": 3, \"name\": \"x\", \"jobs\": []}".to_owned(),
                "unsupported spec `version` 3",
            ),
            (wrap("\"warp-drive\"", ""), "unknown accelerator"),
            (
                wrap("\"warp-drive\"", "\"version\": 2, "),
                "registered models",
            ),
            (
                wrap(
                    r#"{"name": "gamma", "config": {"warp_factor": 9}}"#,
                    "\"version\": 2, ",
                ),
                "no config field `warp_factor`",
            ),
            (
                wrap(
                    r#"{"name": "gamma", "config": {"cache_bytes": true}}"#,
                    "\"version\": 2, ",
                ),
                "must be a non-negative integer",
            ),
            (
                wrap(r#"{"name": "sparten", "config": []}"#, "\"version\": 2, "),
                "must be an object",
            ),
            (
                // Kind-valid but degenerate: a radix-1 merger would hang
                // the simulator, so the schema boundary rejects it.
                wrap(
                    r#"{"name": "gamma", "config": {"merge_radix": 1}}"#,
                    "\"version\": 2, ",
                ),
                "invalid `gamma` config",
            ),
            (
                wrap(r#"{"loas": {"timesteps": 99}}"#, ""),
                "invalid loas config",
            ),
        ] {
            let error = campaign_from_json(&bad).unwrap_err().to_string();
            assert!(error.contains(needle), "`{error}` lacks `{needle}`");
        }
        // A fraction out of range fails in both versions.
        let bad_profile = r#"{"name": "x", "jobs": [{
            "workload": {"name": "w", "shape": {"t": 4, "m": 4, "n": 8, "k": 64},
                         "profile": {"spike_origin": 82.3, "silent": 0.7,
                                     "silent_ft": 0.8, "weight": 0.9},
                         "seed": 7},
            "accelerator": "loas"}]}"#;
        let error = campaign_from_json(bad_profile).unwrap_err().to_string();
        assert!(error.contains("fraction in [0, 1]"), "{error}");
    }

    #[test]
    fn gamma_cache_campaign_sweeps_the_fibercache() {
        let campaign = gamma_cache_campaign(true, DEFAULT_SEED);
        assert_eq!(campaign.len(), GAMMA_CACHE_POINTS.len());
        for (job, bytes) in campaign.jobs().iter().zip(GAMMA_CACHE_POINTS) {
            assert_eq!(job.accelerator.model(), "gamma");
            let config: &GammaConfig = job.accelerator.typed_config().unwrap();
            assert_eq!(config.cache_bytes, bytes);
        }
        // The sweep survives a serialization round trip with stable keys.
        let parsed = campaign_from_json(&campaign_to_json(&campaign)).unwrap();
        for (a, b) in campaign.jobs().iter().zip(parsed.jobs()) {
            assert_eq!(a.memo_key(), b.memo_key());
        }
        // Distinct cache sizes are distinct memoization keys.
        let keys: std::collections::HashSet<_> =
            parsed.jobs().iter().map(|job| job.memo_key()).collect();
        assert_eq!(keys.len(), campaign.len());
    }
}
