//! Campaign specs as JSON documents: the wire format of the durable queue.
//!
//! A spec is a complete, self-contained description of a campaign — name
//! plus a flat job list, each job pairing a workload (shape, sparsity
//! fractions, seed, fine-tuning flag) with an accelerator. Serialization
//! is exact: seeds are integers, sparsity fractions are shortest-round-trip
//! `f64` tokens, so `campaign_from_json(campaign_to_json(c))` rebuilds a
//! campaign whose jobs carry identical [`memo keys`](loas_engine::JobSpec::memo_key)
//! and produce byte-identical reports.

use crate::error::ServeError;
use crate::json::{escape, Json};
use loas_core::LoasConfig;
use loas_engine::{AcceleratorSpec, Campaign, JobSpec, WorkloadSpec};
use loas_workloads::networks;
use loas_workloads::{LayerShape, SparsityProfile};
use std::fmt::Write as _;

/// Serializes a campaign into the queue's JSON spec format (pretty,
/// one job per line block).
pub fn campaign_to_json(campaign: &Campaign) -> String {
    let mut out = String::with_capacity(256 * campaign.len().max(1));
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"name\": \"{}\",", escape(&campaign.name));
    let _ = writeln!(out, "  \"jobs\": [");
    for (index, job) in campaign.jobs().iter().enumerate() {
        let _ = write!(out, "    {}", job_to_json(job));
        let _ = writeln!(out, "{}", if index + 1 < campaign.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn job_to_json(job: &JobSpec) -> String {
    let workload = &job.workload;
    let profile = &workload.profile;
    let mut out = String::with_capacity(256);
    let _ = write!(out, "{{\"label\": \"{}\", ", escape(&job.label));
    match &job.network {
        Some(network) => {
            let _ = write!(
                out,
                "\"network\": \"{}\", \"layer_index\": {}, ",
                escape(network),
                job.layer_index
            );
        }
        None => out.push_str("\"network\": null, \"layer_index\": 0, "),
    }
    let _ = write!(
        out,
        "\"workload\": {{\"name\": \"{}\", \"shape\": {{\"t\": {}, \"m\": {}, \"n\": {}, \"k\": {}}}, \
         \"profile\": {{\"spike_origin\": {}, \"silent\": {}, \"silent_ft\": {}, \"weight\": {}}}, \
         \"seed\": {}, \"fine_tuned\": {}}}, ",
        escape(&workload.name),
        workload.shape.t,
        workload.shape.m,
        workload.shape.n,
        workload.shape.k,
        profile.spike_origin,
        profile.silent,
        profile.silent_ft,
        profile.weight,
        workload.seed,
        workload.fine_tuned
    );
    let _ = write!(
        out,
        "\"accelerator\": {}}}",
        accelerator_to_json(&job.accelerator)
    );
    out
}

fn accelerator_to_json(spec: &AcceleratorSpec) -> String {
    match spec {
        AcceleratorSpec::SparTen => "\"sparten\"".to_owned(),
        AcceleratorSpec::Gospa => "\"gospa\"".to_owned(),
        AcceleratorSpec::Gamma => "\"gamma\"".to_owned(),
        AcceleratorSpec::Ptb => "\"ptb\"".to_owned(),
        AcceleratorSpec::Stellar => "\"stellar\"".to_owned(),
        AcceleratorSpec::Loas(config) => format!(
            "{{\"loas\": {{\"tppes\": {}, \"timesteps\": {}, \"weight_bits\": {}, \
             \"bitmask_bits\": {}, \"laggy_adders\": {}, \"fifo_depth\": {}, \
             \"weight_buffer_bytes\": {}, \"cache_bytes\": {}, \"cache_banks\": {}, \
             \"cache_ways\": {}, \"cache_line_bytes\": {}, \"hbm_gbps\": {}, \
             \"hbm_channels\": {}, \"crossbar_bus_bytes\": {}, \
             \"discard_low_activity_outputs\": {}, \"temporal_parallel\": {}, \
             \"two_fast_prefix\": {}}}}}",
            config.tppes,
            config.timesteps,
            config.weight_bits,
            config.bitmask_bits,
            config.laggy_adders,
            config.fifo_depth,
            config.weight_buffer_bytes,
            config.cache_bytes,
            config.cache_banks,
            config.cache_ways,
            config.cache_line_bytes,
            config.hbm_gbps,
            config.hbm_channels,
            config.crossbar_bus_bytes,
            config.discard_low_activity_outputs,
            config.temporal_parallel,
            config.two_fast_prefix
        ),
    }
}

fn spec_err(message: impl Into<String>) -> ServeError {
    ServeError::Spec(message.into())
}

fn required<'a>(value: &'a Json, key: &str, context: &str) -> Result<&'a Json, ServeError> {
    value
        .get(key)
        .ok_or_else(|| spec_err(format!("missing `{key}` in {context}")))
}

fn required_usize(value: &Json, key: &str, context: &str) -> Result<usize, ServeError> {
    required(value, key, context)?.as_usize().ok_or_else(|| {
        spec_err(format!(
            "`{key}` in {context} must be a non-negative integer"
        ))
    })
}

fn required_f64(value: &Json, key: &str, context: &str) -> Result<f64, ServeError> {
    required(value, key, context)?
        .as_f64()
        .ok_or_else(|| spec_err(format!("`{key}` in {context} must be a number")))
}

/// Parses a campaign spec JSON document back into an engine [`Campaign`].
///
/// # Errors
///
/// Returns [`ServeError::Spec`] describing the first syntax or schema
/// problem.
pub fn campaign_from_json(text: &str) -> Result<Campaign, ServeError> {
    let doc = Json::parse(text).map_err(spec_err)?;
    let name = required(&doc, "name", "campaign")?
        .as_str()
        .ok_or_else(|| spec_err("`name` must be a string"))?;
    let jobs = required(&doc, "jobs", "campaign")?
        .as_arr()
        .ok_or_else(|| spec_err("`jobs` must be an array"))?;
    let mut campaign = Campaign::new(name);
    for (index, job) in jobs.iter().enumerate() {
        campaign.push(job_from_json(job, index)?);
    }
    Ok(campaign)
}

fn job_from_json(job: &Json, index: usize) -> Result<JobSpec, ServeError> {
    let context = format!("job {index}");
    let workload = workload_from_json(required(job, "workload", &context)?, &context)?;
    let accelerator = accelerator_from_json(required(job, "accelerator", &context)?, &context)?;
    let label = match job.get("label").and_then(Json::as_str) {
        Some(label) => label.to_owned(),
        None => format!("{} @ {}", workload.name, accelerator.name()),
    };
    let network = match job.get("network") {
        None | Some(Json::Null) => None,
        Some(value) => Some(
            value
                .as_str()
                .ok_or_else(|| spec_err(format!("`network` in {context} must be a string")))?
                .to_owned(),
        ),
    };
    let layer_index = match job.get("layer_index") {
        None => 0,
        Some(value) => value
            .as_usize()
            .ok_or_else(|| spec_err(format!("`layer_index` in {context} must be an integer")))?,
    };
    Ok(JobSpec {
        label,
        network,
        layer_index,
        workload,
        accelerator,
    })
}

fn workload_from_json(workload: &Json, context: &str) -> Result<WorkloadSpec, ServeError> {
    let name = required(workload, "name", context)?
        .as_str()
        .ok_or_else(|| spec_err(format!("workload `name` in {context} must be a string")))?;
    let shape = required(workload, "shape", context)?;
    let shape = LayerShape::new(
        required_usize(shape, "t", context)?,
        required_usize(shape, "m", context)?,
        required_usize(shape, "n", context)?,
        required_usize(shape, "k", context)?,
    );
    let profile = required(workload, "profile", context)?;
    // Fractions in [0, 1], copied bit-exactly (not percentages): the memo
    // key hashes these bits, so a spec round trip must not perturb them.
    let profile = SparsityProfile {
        spike_origin: required_f64(profile, "spike_origin", context)?,
        silent: required_f64(profile, "silent", context)?,
        silent_ft: required_f64(profile, "silent_ft", context)?,
        weight: required_f64(profile, "weight", context)?,
    };
    for (field, value) in [
        ("spike_origin", profile.spike_origin),
        ("silent", profile.silent),
        ("silent_ft", profile.silent_ft),
        ("weight", profile.weight),
    ] {
        if !(0.0..=1.0).contains(&value) {
            return Err(spec_err(format!(
                "profile `{field}` in {context} must be a fraction in [0, 1], got {value}"
            )));
        }
    }
    let seed = required(workload, "seed", context)?
        .as_u64()
        .ok_or_else(|| spec_err(format!("`seed` in {context} must be an integer")))?;
    let fine_tuned = match workload.get("fine_tuned") {
        None => false,
        Some(value) => value
            .as_bool()
            .ok_or_else(|| spec_err(format!("`fine_tuned` in {context} must be a boolean")))?,
    };
    let mut spec = WorkloadSpec::new(name, shape, profile).with_seed(seed);
    if fine_tuned {
        spec = spec.fine_tuned();
    }
    Ok(spec)
}

fn accelerator_from_json(spec: &Json, context: &str) -> Result<AcceleratorSpec, ServeError> {
    if let Some(tag) = spec.as_str() {
        return match tag {
            "sparten" => Ok(AcceleratorSpec::SparTen),
            "gospa" => Ok(AcceleratorSpec::Gospa),
            "gamma" => Ok(AcceleratorSpec::Gamma),
            "ptb" => Ok(AcceleratorSpec::Ptb),
            "stellar" => Ok(AcceleratorSpec::Stellar),
            "loas" => Ok(AcceleratorSpec::loas()),
            "loas-ft" => Ok(AcceleratorSpec::loas_ft()),
            other => Err(spec_err(format!(
                "unknown accelerator `{other}` in {context} (want sparten|gospa|gamma|loas|loas-ft|ptb|stellar or {{\"loas\": {{...}}}})"
            ))),
        };
    }
    let overrides = spec.get("loas").ok_or_else(|| {
        spec_err(format!(
            "accelerator in {context} must be a tag string or a {{\"loas\": {{...}}}} object"
        ))
    })?;
    let mut config = LoasConfig::table3();
    let set_usize = |field: &mut usize, key: &str| -> Result<(), ServeError> {
        if let Some(value) = overrides.get(key) {
            *field = value
                .as_usize()
                .ok_or_else(|| spec_err(format!("loas `{key}` must be an integer")))?;
        }
        Ok(())
    };
    set_usize(&mut config.tppes, "tppes")?;
    set_usize(&mut config.timesteps, "timesteps")?;
    set_usize(&mut config.weight_bits, "weight_bits")?;
    set_usize(&mut config.bitmask_bits, "bitmask_bits")?;
    set_usize(&mut config.laggy_adders, "laggy_adders")?;
    set_usize(&mut config.fifo_depth, "fifo_depth")?;
    set_usize(&mut config.weight_buffer_bytes, "weight_buffer_bytes")?;
    set_usize(&mut config.cache_bytes, "cache_bytes")?;
    set_usize(&mut config.cache_banks, "cache_banks")?;
    set_usize(&mut config.cache_ways, "cache_ways")?;
    set_usize(&mut config.cache_line_bytes, "cache_line_bytes")?;
    set_usize(&mut config.hbm_channels, "hbm_channels")?;
    set_usize(&mut config.crossbar_bus_bytes, "crossbar_bus_bytes")?;
    if let Some(value) = overrides.get("hbm_gbps") {
        config.hbm_gbps = value
            .as_f64()
            .ok_or_else(|| spec_err("loas `hbm_gbps` must be a number"))?;
    }
    let set_bool = |field: &mut bool, key: &str| -> Result<(), ServeError> {
        if let Some(value) = overrides.get(key) {
            *field = value
                .as_bool()
                .ok_or_else(|| spec_err(format!("loas `{key}` must be a boolean")))?;
        }
        Ok(())
    };
    set_bool(
        &mut config.discard_low_activity_outputs,
        "discard_low_activity_outputs",
    )?;
    set_bool(&mut config.temporal_parallel, "temporal_parallel")?;
    set_bool(&mut config.two_fast_prefix, "two_fast_prefix")?;
    Ok(AcceleratorSpec::Loas(config))
}

/// Builds the paper's headline campaign (the full 7-accelerator fleet over
/// the four selected layers) as a submittable spec — the serving analogue
/// of the `campaign` binary's built-in experiment.
pub fn headline_campaign(quick: bool, seed: u64) -> Campaign {
    let mut campaign = Campaign::new(if quick {
        "headline (quick)"
    } else {
        "headline"
    });
    let layers: Vec<WorkloadSpec> = networks::selected_layers()
        .iter()
        .map(|layer| {
            let layer = if quick {
                layer.shrunk_for_quick()
            } else {
                layer.clone()
            };
            WorkloadSpec::from_layer(&layer).with_seed(seed)
        })
        .collect();
    campaign.push_product(&layers, &AcceleratorSpec::headline_fleet());
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_engine::DEFAULT_SEED;

    #[test]
    fn headline_round_trips_with_identical_memo_keys() {
        let original = headline_campaign(true, DEFAULT_SEED);
        let text = campaign_to_json(&original);
        let parsed = campaign_from_json(&text).unwrap();
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.network, b.network);
            assert_eq!(a.layer_index, b.layer_index);
            assert_eq!(a.workload.key(), b.workload.key());
            assert_eq!(a.accelerator, b.accelerator);
            assert_eq!(a.memo_key(), b.memo_key());
        }
        // Serialization is a fixed point after one round trip.
        assert_eq!(campaign_to_json(&parsed), text);
    }

    #[test]
    fn loas_config_overrides_apply_over_table3() {
        let text = r#"{"name": "t", "jobs": [{
            "workload": {"name": "w", "shape": {"t": 4, "m": 4, "n": 8, "k": 64},
                         "profile": {"spike_origin": 0.823, "silent": 0.741,
                                     "silent_ft": 0.796, "weight": 0.982},
                         "seed": 7},
            "accelerator": {"loas": {"timesteps": 8, "discard_low_activity_outputs": true}}}]}"#;
        let campaign = campaign_from_json(text).unwrap();
        let AcceleratorSpec::Loas(config) = &campaign.jobs()[0].accelerator else {
            panic!("expected a LoAS accelerator");
        };
        assert_eq!(config.timesteps, 8);
        assert!(config.discard_low_activity_outputs);
        assert_eq!(config.tppes, LoasConfig::table3().tppes);
        // Auto-generated label (the model reports its FT mode) and
        // defaulted fields.
        assert_eq!(
            campaign.jobs()[0].label,
            format!("w @ {}", campaign.jobs()[0].accelerator.name())
        );
        assert!(!campaign.jobs()[0].workload.fine_tuned);
    }

    #[test]
    fn schema_problems_are_described() {
        for (bad, needle) in [
            ("{\"jobs\": []}", "missing `name`"),
            ("{\"name\": \"x\", \"jobs\": [{}]}", "missing `workload`"),
            (
                r#"{"name": "x", "jobs": [{
                    "workload": {"name": "w", "shape": {"t": 4, "m": 4, "n": 8, "k": 64},
                                 "profile": {"spike_origin": 82.3, "silent": 0.7,
                                             "silent_ft": 0.8, "weight": 0.9},
                                 "seed": 7},
                    "accelerator": "loas"}]}"#,
                "fraction in [0, 1]",
            ),
            (
                r#"{"name": "x", "jobs": [{
                    "workload": {"name": "w", "shape": {"t": 4, "m": 4, "n": 8, "k": 64},
                                 "profile": {"spike_origin": 0.8, "silent": 0.7,
                                             "silent_ft": 0.8, "weight": 0.9},
                                 "seed": 7},
                    "accelerator": "warp-drive"}]}"#,
                "unknown accelerator",
            ),
        ] {
            let error = campaign_from_json(bad).unwrap_err().to_string();
            assert!(error.contains(needle), "`{error}` lacks `{needle}`");
        }
    }
}
