//! Cross-process sharding: deterministic job partitioning and byte-exact
//! shard-report merging.
//!
//! Shard `K/N` owns every job whose campaign id satisfies
//! `id % N == K` — a pure function of the submitted spec, so any number of
//! processes (on any machines sharing the queue directory) agree on the
//! partition without coordination. Each shard writes
//! `report.shard-K.jsonl` with records keeping their **original** job
//! ids; [`merge_shards`] interleaves the lines by id into a report that is
//! byte-identical to a single-process run of the whole campaign.

use crate::error::ServeError;
use std::path::Path;

/// One shard of an `N`-way partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's rank in `0..count`.
    pub rank: usize,
    /// Total shards.
    pub count: usize,
}

impl Default for ShardSpec {
    /// The single-process "partition".
    fn default() -> Self {
        ShardSpec { rank: 0, count: 1 }
    }
}

impl ShardSpec {
    /// Parses the CLI form `K/N`.
    ///
    /// # Errors
    ///
    /// Describes the malformed value.
    pub fn parse(text: &str) -> Result<ShardSpec, ServeError> {
        let parsed = text.split_once('/').and_then(|(rank, count)| {
            Some(ShardSpec {
                rank: rank.parse().ok()?,
                count: count.parse().ok()?,
            })
        });
        match parsed {
            Some(shard) if shard.count >= 1 && shard.rank < shard.count => Ok(shard),
            _ => Err(ServeError::Queue(format!(
                "bad shard `{text}` (want K/N with 0 <= K < N)"
            ))),
        }
    }

    /// Whether this is the whole campaign (no sharding).
    pub fn is_whole(&self) -> bool {
        self.count == 1
    }

    /// The job ids this shard owns out of a `total`-job campaign.
    pub fn job_ids(&self, total: usize) -> Vec<usize> {
        (0..total)
            .filter(|id| id % self.count == self.rank)
            .collect()
    }

    /// This shard's report file name.
    pub fn report_filename(&self) -> String {
        format!("report.shard-{}.jsonl", self.rank)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.rank, self.count)
    }
}

/// Extracts the job id from one serialized record line (`{"job":N,...`)
/// without re-parsing the whole object — merging must preserve the line
/// bytes exactly, so lines are never deserialized and re-serialized.
fn line_job_id(line: &str) -> Option<usize> {
    let rest = line.strip_prefix("{\"job\":")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Merges the `shards`-way shard reports in `report_dir` into the bytes of
/// the full campaign report (trailing newline included), verifying that
/// the shards cover `expected_jobs` exactly once each.
///
/// # Errors
///
/// Returns [`ServeError::Merge`] on a missing shard file, an unparsable
/// line, a duplicate job id, or incomplete coverage — merging never
/// fabricates a report.
pub fn merge_shards(
    report_dir: &Path,
    shards: usize,
    expected_jobs: usize,
) -> Result<String, ServeError> {
    let mut lines: Vec<Option<String>> = vec![None; expected_jobs];
    for rank in 0..shards {
        let shard = ShardSpec {
            rank,
            count: shards,
        };
        let path = report_dir.join(shard.report_filename());
        let text = std::fs::read_to_string(&path).map_err(|error| {
            ServeError::Merge(format!(
                "cannot read shard {rank} ({}): {error}",
                path.display()
            ))
        })?;
        for line in text.lines() {
            let Some(id) = line_job_id(line) else {
                return Err(ServeError::Merge(format!(
                    "shard {rank} has a record without a job id: `{line}`"
                )));
            };
            if id >= expected_jobs {
                return Err(ServeError::Merge(format!(
                    "shard {rank} reports job {id}, campaign has {expected_jobs}"
                )));
            }
            if lines[id].replace(line.to_owned()).is_some() {
                return Err(ServeError::Merge(format!("job {id} reported twice")));
            }
        }
    }
    let missing = lines.iter().filter(|line| line.is_none()).count();
    if missing > 0 {
        return Err(ServeError::Merge(format!(
            "{missing} of {expected_jobs} jobs missing from the {shards} shard report(s)"
        )));
    }
    Ok(lines
        .into_iter()
        .map(|line| line.expect("verified above") + "\n")
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_rejects_invalid() {
        assert_eq!(ShardSpec::parse("0/1").unwrap(), ShardSpec::default());
        assert_eq!(
            ShardSpec::parse("2/5").unwrap(),
            ShardSpec { rank: 2, count: 5 }
        );
        for bad in ["", "1", "2/2", "3/2", "a/b", "-1/2", "0/0"] {
            assert!(ShardSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn partitions_cover_jobs_exactly_once() {
        for count in 1..=6 {
            let mut seen = vec![0usize; 29];
            for rank in 0..count {
                for id in (ShardSpec { rank, count }).job_ids(29) {
                    seen[id] += 1;
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "{count}-way partition");
        }
    }

    #[test]
    fn merge_detects_duplicates_and_gaps() {
        let dir = std::env::temp_dir().join(format!("loas-serve-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let line = |id: usize| format!("{{\"job\":{id},\"label\":\"x\"}}");
        std::fs::write(
            dir.join("report.shard-0.jsonl"),
            format!("{}\n{}\n", line(0), line(2)),
        )
        .unwrap();
        // Missing shard 1 file.
        assert!(merge_shards(&dir, 2, 4).is_err());
        std::fs::write(dir.join("report.shard-1.jsonl"), format!("{}\n", line(1))).unwrap();
        // Job 3 missing.
        let error = merge_shards(&dir, 2, 4).unwrap_err().to_string();
        assert!(error.contains("1 of 4 jobs missing"), "{error}");
        // Complete coverage merges in id order.
        std::fs::write(
            dir.join("report.shard-1.jsonl"),
            format!("{}\n{}\n", line(1), line(3)),
        )
        .unwrap();
        let merged = merge_shards(&dir, 2, 4).unwrap();
        assert_eq!(
            merged,
            format!("{}\n{}\n{}\n{}\n", line(0), line(1), line(2), line(3))
        );
        // A duplicate across shards is rejected.
        std::fs::write(
            dir.join("report.shard-1.jsonl"),
            format!("{}\n{}\n{}\n", line(1), line(3), line(0)),
        )
        .unwrap();
        assert!(merge_shards(&dir, 2, 4).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
