//! The durable on-disk job queue.
//!
//! A queue is a plain directory — no daemons or sockets required to
//! submit — with an append-only submission log and one state file per
//! campaign:
//!
//! ```text
//! <root>/
//!   submissions.log        append-only: "<id>\t<name>\t<job-count>" per enqueue
//!   specs/<id>.json        the campaign spec exactly as submitted
//!   state/<id>             "queued" | "done" | "failed <message>"
//!   reports/<id>/          report.jsonl, report.shard-K.jsonl, shard-K.done, summaries
//!   memo/                  the shared result-memoization store
//! ```
//!
//! Submission is atomic-enough for the serving model: the spec file is
//! written (via temp + rename) before the log line, and runners treat the
//! log as the source of truth for ordering — so a campaign enqueued while
//! a runner is draining is either fully visible or not yet visible, never
//! half-visible. One writer per queue directory is assumed for id
//! assignment (ids come from the log length); concurrent **runners** (the
//! shard processes) only ever write their own `reports/<id>/shard-K.*`
//! files.

use crate::error::ServeError;
use crate::spec_io;
use loas_engine::Campaign;
use std::path::{Path, PathBuf};

/// One submission-log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// Monotonic campaign id (1-based submission order).
    pub id: u64,
    /// Campaign display name (sanitized; the spec file is authoritative).
    pub name: String,
    /// Number of jobs at submission time.
    pub jobs: usize,
}

/// A campaign's lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignState {
    /// Waiting for (more) runners; sharded campaigns stay queued until
    /// merged.
    Queued,
    /// Report complete (`reports/<id>/report.jsonl` exists).
    Done,
    /// A runner gave up on this campaign.
    Failed(String),
}

impl std::fmt::Display for CampaignState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignState::Queued => f.write_str("queued"),
            CampaignState::Done => f.write_str("done"),
            CampaignState::Failed(message) => write!(f, "failed {message}"),
        }
    }
}

/// Handle to a queue directory.
#[derive(Debug, Clone)]
pub struct Queue {
    root: PathBuf,
}

impl Queue {
    /// Creates the queue layout at `root` (idempotent) and returns the
    /// handle.
    ///
    /// # Errors
    ///
    /// Propagates directory/file-creation failures.
    pub fn init(root: impl Into<PathBuf>) -> Result<Queue, ServeError> {
        let root = root.into();
        for sub in ["specs", "state", "reports", "memo"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(ServeError::io(&dir))?;
        }
        let log = root.join("submissions.log");
        if !log.exists() {
            std::fs::write(&log, "").map_err(ServeError::io(&log))?;
        }
        Ok(Queue { root })
    }

    /// Opens an existing queue directory.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Queue`] when `root` lacks the queue layout.
    pub fn open(root: impl Into<PathBuf>) -> Result<Queue, ServeError> {
        let root = root.into();
        if !root.join("submissions.log").is_file() {
            return Err(ServeError::Queue(format!(
                "{} is not a queue directory (run `loas-serve init` first)",
                root.display()
            )));
        }
        Ok(Queue { root })
    }

    /// The queue's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The shared memo-store directory.
    pub fn memo_dir(&self) -> PathBuf {
        self.root.join("memo")
    }

    /// The report directory of campaign `id`.
    pub fn report_dir(&self, id: u64) -> PathBuf {
        self.root.join("reports").join(format!("{id:05}"))
    }

    fn spec_path(&self, id: u64) -> PathBuf {
        self.root.join("specs").join(format!("{id:05}.json"))
    }

    fn state_path(&self, id: u64) -> PathBuf {
        self.root.join("state").join(format!("{id:05}"))
    }

    fn log_path(&self) -> PathBuf {
        self.root.join("submissions.log")
    }

    /// Validates and enqueues a campaign spec, returning its submission
    /// record. The spec text is stored byte-for-byte as submitted.
    ///
    /// # Errors
    ///
    /// Rejects specs that fail to parse ([`ServeError::Spec`]) — a broken
    /// submission never enters the queue — and propagates I/O failures.
    pub fn enqueue(&self, spec_text: &str) -> Result<Submission, ServeError> {
        let campaign = spec_io::campaign_from_json(spec_text)?;
        if campaign.is_empty() {
            return Err(ServeError::Spec("campaign has no jobs".to_owned()));
        }
        let id = self.submissions()?.last().map_or(1, |s| s.id + 1);

        let spec_path = self.spec_path(id);
        let temp = spec_path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&temp, spec_text).map_err(ServeError::io(&temp))?;
        std::fs::rename(&temp, &spec_path).map_err(ServeError::io(&spec_path))?;
        self.set_state(id, &CampaignState::Queued)?;

        // The log line commits the submission; sanitize the display name so
        // one submission is always one line.
        let name: String = campaign
            .name
            .chars()
            .map(|c| {
                if c == '\t' || c == '\n' || c == '\r' {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        let line = format!("{id}\t{name}\t{}\n", campaign.len());
        let log = self.log_path();
        // A genuine O_APPEND single write: concurrent watch-mode readers
        // see the log grow by whole lines, never truncated mid-rewrite.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&log)
            .map_err(ServeError::io(&log))?;
        std::io::Write::write_all(&mut file, line.as_bytes()).map_err(ServeError::io(&log))?;
        Ok(Submission {
            id,
            name,
            jobs: campaign.len(),
        })
    }

    /// All submissions, in log (= id) order.
    ///
    /// # Errors
    ///
    /// Propagates log read failures and malformed-log lines.
    pub fn submissions(&self) -> Result<Vec<Submission>, ServeError> {
        let log = self.log_path();
        let text = std::fs::read_to_string(&log).map_err(ServeError::io(&log))?;
        let mut submissions = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (id, name, jobs) = (parts.next(), parts.next(), parts.next());
            let parsed = id
                .and_then(|v| v.parse::<u64>().ok())
                .zip(jobs.and_then(|v| v.parse::<usize>().ok()))
                .zip(name);
            let Some(((id, jobs), name)) = parsed else {
                return Err(ServeError::Queue(format!("malformed log line `{line}`")));
            };
            submissions.push(Submission {
                id,
                name: name.to_owned(),
                jobs,
            });
        }
        Ok(submissions)
    }

    /// The stored spec text of campaign `id`.
    ///
    /// # Errors
    ///
    /// Propagates the read failure (unknown ids read as missing files).
    pub fn spec_text(&self, id: u64) -> Result<String, ServeError> {
        let path = self.spec_path(id);
        std::fs::read_to_string(&path).map_err(ServeError::io(&path))
    }

    /// Parses the stored spec of campaign `id` back into a [`Campaign`].
    ///
    /// # Errors
    ///
    /// Propagates read and parse failures.
    pub fn campaign(&self, id: u64) -> Result<Campaign, ServeError> {
        spec_io::campaign_from_json(&self.spec_text(id)?)
    }

    /// The lifecycle state of campaign `id`.
    ///
    /// # Errors
    ///
    /// Propagates read failures; a malformed state file is a queue error.
    pub fn state(&self, id: u64) -> Result<CampaignState, ServeError> {
        let path = self.state_path(id);
        let text = std::fs::read_to_string(&path).map_err(ServeError::io(&path))?;
        let text = text.trim_end();
        match text {
            "queued" => Ok(CampaignState::Queued),
            "done" => Ok(CampaignState::Done),
            _ => match text.strip_prefix("failed ") {
                Some(message) => Ok(CampaignState::Failed(message.to_owned())),
                None => Err(ServeError::Queue(format!(
                    "malformed state `{text}` for campaign {id}"
                ))),
            },
        }
    }

    /// Writes the lifecycle state of campaign `id` (temp + rename, so
    /// concurrent readers never see a torn state).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn set_state(&self, id: u64, state: &CampaignState) -> Result<(), ServeError> {
        let path = self.state_path(id);
        let temp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&temp, format!("{state}\n")).map_err(ServeError::io(&temp))?;
        std::fs::rename(&temp, &path).map_err(ServeError::io(&path))
    }

    /// Whether shard `rank` of campaign `id` has completed (marker file
    /// present).
    pub fn shard_done(&self, id: u64, rank: usize) -> bool {
        self.report_dir(id)
            .join(format!("shard-{rank}.done"))
            .is_file()
    }

    /// Marks shard `rank` of campaign `id` complete.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn mark_shard_done(&self, id: u64, rank: usize, note: &str) -> Result<(), ServeError> {
        let path = self.report_dir(id).join(format!("shard-{rank}.done"));
        std::fs::write(&path, format!("{note}\n")).map_err(ServeError::io(&path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_io::{campaign_to_json, headline_campaign};

    fn temp_queue(tag: &str) -> Queue {
        let root = std::env::temp_dir().join(format!(
            "loas-serve-queue-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Queue::init(root).unwrap()
    }

    #[test]
    fn enqueue_assigns_monotonic_ids_and_round_trips_specs() {
        let queue = temp_queue("ids");
        let spec = campaign_to_json(&headline_campaign(true, 7));
        let first = queue.enqueue(&spec).unwrap();
        let second = queue.enqueue(&spec).unwrap();
        assert_eq!((first.id, second.id), (1, 2));
        assert_eq!(first.jobs, 28);
        assert_eq!(queue.submissions().unwrap().len(), 2);
        assert_eq!(queue.spec_text(1).unwrap(), spec);
        assert_eq!(queue.campaign(2).unwrap().len(), 28);
        assert_eq!(queue.state(1).unwrap(), CampaignState::Queued);
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn broken_specs_never_enter_the_queue() {
        let queue = temp_queue("broken");
        assert!(queue.enqueue("{not json").is_err());
        assert!(queue
            .enqueue("{\"name\": \"empty\", \"jobs\": []}")
            .is_err());
        assert!(queue.submissions().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn state_transitions_round_trip() {
        let queue = temp_queue("state");
        let spec = campaign_to_json(&headline_campaign(true, 7));
        let id = queue.enqueue(&spec).unwrap().id;
        queue
            .set_state(id, &CampaignState::Failed("engine exploded".to_owned()))
            .unwrap();
        assert_eq!(
            queue.state(id).unwrap(),
            CampaignState::Failed("engine exploded".to_owned())
        );
        queue.set_state(id, &CampaignState::Done).unwrap();
        assert_eq!(queue.state(id).unwrap(), CampaignState::Done);
        assert!(!queue.shard_done(id, 0));
        std::fs::create_dir_all(queue.report_dir(id)).unwrap();
        queue.mark_shard_done(id, 0, "14 jobs").unwrap();
        assert!(queue.shard_done(id, 0));
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn open_rejects_non_queue_directories() {
        let dir = std::env::temp_dir().join(format!("loas-serve-notaq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Queue::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
