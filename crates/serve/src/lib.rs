//! # loas-serve — the persistent simulation-serving front end
//!
//! `loas-engine` runs one campaign in one process and forgets everything
//! on exit. This crate makes campaigns **durable, memoized, and
//! distributable** across processes sharing a queue directory:
//!
//! * **Durable job queue** ([`Queue`]) — campaigns are submitted as JSON
//!   specs into an on-disk queue (append-only submission log + per-campaign
//!   spec/state files). A `loas-serve run` process drains it with the
//!   engine, streaming JSON-lines reports; new campaigns can be enqueued
//!   while others run and are picked up in the same pass.
//! * **Result memoization** — every completed job's [`LayerReport`]
//!   persists to the queue's content-addressed
//!   [`MemoStore`](loas_engine::MemoStore), keyed on the
//!   `(workload, accelerator)` content hash. A resubmitted or overlapping
//!   campaign replays cached results **byte-identically** and only
//!   simulates novel jobs; per-campaign `hits/simulated` counts are
//!   reported.
//! * **Cross-process sharding** ([`ShardSpec`], [`merge`]) —
//!   `loas-serve run --shard K/N` deterministically owns the jobs with
//!   `id % N == K`, writes `report.shard-K.jsonl`, and `loas-serve merge`
//!   recombines shards by job id into a report byte-identical to a
//!   single-process run.
//! * **Versioned spec schema** ([`spec_io`]) — specs serialize under
//!   `"version": 2`, where an accelerator is any model registered in the
//!   [`loas_core::catalog`] (stable name + typed config overrides); the
//!   pre-catalog v1 schema parses forever with byte-identical memo keys
//!   (golden-asserted in `tests/golden_v1.rs`).
//! * **Queue administration** ([`enqueue_batch`], [`requeue`], [`fsck`]) —
//!   batched submission from a directory or manifest of specs,
//!   failed-campaign requeue (memo-backed, so only unfinished work
//!   re-simulates), and memo-store/report-tree integrity checking with
//!   optional pruning.
//!
//! [`LayerReport`]: loas_core::LayerReport
//!
//! # Examples
//!
//! Enqueue a campaign, run it as two in-process "shards", and merge:
//!
//! ```
//! use loas_serve::{drain, merge, Queue, RunOptions, ShardSpec};
//! use loas_serve::spec_io::{campaign_to_json, headline_campaign};
//!
//! let root = std::env::temp_dir().join(format!("loas-serve-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&root);
//! let queue = Queue::init(&root)?;
//! let id = queue.enqueue(&campaign_to_json(&headline_campaign(true, 7)))?.id;
//! for rank in 0..2 {
//!     let options = RunOptions {
//!         shard: ShardSpec { rank, count: 2 },
//!         workers: 2,
//!         ..RunOptions::default()
//!     };
//!     drain(&queue, &options, |_| {})?;
//! }
//! let jobs = merge(&queue, id, 2)?;
//! assert_eq!(jobs, 28);
//! # let _ = std::fs::remove_dir_all(&root);
//! # Ok::<(), loas_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

mod admin;
mod error;
pub mod json;
mod queue;
mod runner;
mod shard;
pub mod spec_io;

pub use admin::{
    catalog_listing, collect_spec_paths, enqueue_batch, fsck, requeue, FsckReport, ORPHAN_GRACE,
};
pub use error::ServeError;
pub use queue::{CampaignState, Queue, Submission};
pub use runner::{drain, merge, watch, CampaignProgress, RunOptions, RunSummary};
pub use shard::{merge_shards, ShardSpec};
