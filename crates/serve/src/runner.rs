//! The serving loop: drains the durable queue through a [`loas_engine::Engine`],
//! streaming shard reports and memoizing results.
//!
//! A runner process claims campaigns in submission order. For each
//! campaign it owns shard `K/N` of (marker file absent), it runs the
//! shard's job subset against the queue's shared [`MemoStore`], streams
//! the records into `report.shard-K.jsonl` as their prefix completes, and
//! drops a `shard-K.done` marker. Single-shard runs additionally finalize
//! `report.jsonl` and flip the campaign state to `done`; sharded runs
//! leave finalization to `loas-serve merge`. In watch mode the runner
//! polls for new submissions — campaigns enqueued while others run are
//! picked up on the next pass.

use crate::error::ServeError;
use crate::queue::{CampaignState, Queue};
use crate::shard::ShardSpec;
use loas_engine::{Engine, MemoStore, ResultStore};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The shard of each campaign this process owns.
    pub shard: ShardSpec,
    /// Engine worker threads.
    pub workers: usize,
    /// Whether to consult/populate the queue's memo store.
    pub use_store: bool,
    /// Prepared-layer cache cap for the embedded engine (`None` keeps the
    /// engine default).
    pub cache_capacity: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            shard: ShardSpec::default(),
            workers: loas_engine::default_workers(),
            use_store: true,
            cache_capacity: None,
        }
    }
}

/// What one drain pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Campaigns (shards) this pass ran.
    pub campaigns: usize,
    /// Campaigns that failed (state flipped to `failed`).
    pub failed: usize,
    /// Job records emitted.
    pub jobs: usize,
    /// Jobs replayed from the memo store.
    pub memo_hits: usize,
    /// Jobs actually simulated.
    pub simulated: usize,
    /// Workloads generated (prepared-cache misses).
    pub generated: usize,
}

/// One campaign-shard completion, reported to the progress callback.
#[derive(Debug, Clone)]
pub struct CampaignProgress {
    /// The campaign id.
    pub id: u64,
    /// Campaign display name.
    pub name: String,
    /// Records this shard emitted.
    pub jobs: usize,
    /// Memo replays among them.
    pub memo_hits: usize,
    /// Simulated jobs among them.
    pub simulated: usize,
    /// Workloads generated for them.
    pub generated: usize,
    /// Shard wall-clock seconds.
    pub wall_seconds: f64,
}

/// Drains every runnable campaign once, in submission order, reusing one
/// engine (and its prepared-layer cache) across campaigns. Returns the
/// pass summary; `progress` observes each completed campaign shard.
///
/// # Errors
///
/// Propagates queue I/O errors. Engine failures (infeasible workloads) do
/// **not** abort the pass: the campaign is marked `failed` and draining
/// continues with the next submission.
pub fn drain(
    queue: &Queue,
    options: &RunOptions,
    progress: impl FnMut(&CampaignProgress),
) -> Result<RunSummary, ServeError> {
    let (engine, store) = build_context(queue, options)?;
    drain_with(queue, options, &engine, store.as_ref(), progress)
}

/// Builds the engine (+ optional memo store) a runner reuses across drain
/// passes, so the prepared-layer cache spans campaigns and — in watch
/// mode — poll passes.
fn build_context(
    queue: &Queue,
    options: &RunOptions,
) -> Result<(Engine, Option<MemoStore>), ServeError> {
    let engine = Engine::new(options.workers);
    if let Some(capacity) = options.cache_capacity {
        engine.set_cache_capacity(capacity);
    }
    let store = if options.use_store {
        Some(MemoStore::open(queue.memo_dir()).map_err(ServeError::io(queue.memo_dir()))?)
    } else {
        None
    };
    Ok((engine, store))
}

fn drain_with(
    queue: &Queue,
    options: &RunOptions,
    engine: &Engine,
    store: Option<&MemoStore>,
    mut progress: impl FnMut(&CampaignProgress),
) -> Result<RunSummary, ServeError> {
    let mut summary = RunSummary::default();
    // Re-read the log after every campaign: submissions that arrived while
    // simulating are serviced within the same pass.
    while let Some(submission) = queue.submissions()?.into_iter().find(|submission| {
        matches!(queue.state(submission.id), Ok(CampaignState::Queued))
            && !queue.shard_done(submission.id, options.shard.rank)
    }) {
        let id = submission.id;
        match run_one(queue, engine, store, options, id) {
            Ok(outcome) => {
                summary.campaigns += 1;
                summary.jobs += outcome.jobs;
                summary.memo_hits += outcome.memo_hits;
                summary.simulated += outcome.simulated;
                summary.generated += outcome.generated;
                progress(&outcome);
            }
            Err(ServeError::Engine(source)) => {
                summary.campaigns += 1;
                summary.failed += 1;
                queue.set_state(id, &CampaignState::Failed(source.to_string()))?;
            }
            Err(other) => return Err(other),
        }
    }
    Ok(summary)
}

fn run_one(
    queue: &Queue,
    engine: &Engine,
    store: Option<&MemoStore>,
    options: &RunOptions,
    id: u64,
) -> Result<CampaignProgress, ServeError> {
    let campaign = queue.campaign(id)?;
    let report_dir = queue.report_dir(id);
    std::fs::create_dir_all(&report_dir).map_err(ServeError::io(&report_dir))?;

    let job_ids = options.shard.job_ids(campaign.len());
    let shard_path = report_dir.join(options.shard.report_filename());
    let temp_path = shard_path.with_extension(format!("tmp.{}", std::process::id()));
    let file = std::fs::File::create(&temp_path).map_err(ServeError::io(&temp_path))?;
    let mut writer = std::io::BufWriter::new(file);

    // Stream records into the shard file as their prefix completes; I/O
    // failures inside the sink surface after the run.
    let mut sink_error: Option<std::io::Error> = None;
    let generated_before = engine.cache_stats().generated;
    let run = engine.run_where(
        &campaign,
        Some(&job_ids),
        store.map(|s| s as &dyn ResultStore),
        |record| {
            if sink_error.is_none() {
                if let Err(error) = writeln!(writer, "{}", record.to_json()) {
                    sink_error = Some(error);
                }
            }
        },
    );
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(error) => {
            // Never leave a half-written temporary behind a failed run.
            drop(writer);
            let _ = std::fs::remove_file(&temp_path);
            return Err(error.into());
        }
    };
    let flushed = writer.into_inner().map_err(|error| ServeError::Io {
        path: temp_path.clone(),
        source: error.into_error(),
    });
    match sink_error {
        Some(source) => {
            let _ = std::fs::remove_file(&temp_path);
            return Err(ServeError::Io {
                path: temp_path,
                source,
            });
        }
        None => {
            if let Err(error) = flushed {
                let _ = std::fs::remove_file(&temp_path);
                return Err(error);
            }
        }
    };
    std::fs::rename(&temp_path, &shard_path).map_err(ServeError::io(&shard_path))?;

    let note = format!(
        "{} jobs, {} memo hits, {} simulated, {:.3}s wall",
        outcome.records.len(),
        outcome.memo_hits,
        outcome.simulated,
        outcome.wall_seconds
    );
    let summary_path = report_dir.join(format!("summary.shard-{}.txt", options.shard.rank));
    std::fs::write(&summary_path, outcome.summary_table())
        .map_err(ServeError::io(&summary_path))?;
    queue.mark_shard_done(id, options.shard.rank, &note)?;

    if options.shard.is_whole() {
        // Single-process runs finalize directly; the shard file doubles as
        // the full report.
        let report_path = report_dir.join("report.jsonl");
        std::fs::copy(&shard_path, &report_path).map_err(ServeError::io(&report_path))?;
        queue.set_state(id, &CampaignState::Done)?;
    }

    Ok(CampaignProgress {
        id,
        name: campaign.name.clone(),
        jobs: outcome.records.len(),
        memo_hits: outcome.memo_hits,
        simulated: outcome.simulated,
        generated: engine.cache_stats().generated - generated_before,
        wall_seconds: outcome.wall_seconds,
    })
}

/// Merges the shard reports of campaign `id`, writes `report.jsonl`, and
/// flips the state to `done`. Requires all `shards` markers to be present.
///
/// # Errors
///
/// Returns [`ServeError::Merge`] when a shard has not finished or its
/// report is incomplete; the campaign state is left untouched on failure.
pub fn merge(queue: &Queue, id: u64, shards: usize) -> Result<usize, ServeError> {
    let campaign = queue.campaign(id)?;
    for rank in 0..shards {
        if !queue.shard_done(id, rank) {
            return Err(ServeError::Merge(format!(
                "shard {rank}/{shards} of campaign {id} has not finished"
            )));
        }
    }
    let report_dir = queue.report_dir(id);
    let merged = crate::shard::merge_shards(&report_dir, shards, campaign.len())?;
    let report_path = report_dir.join("report.jsonl");
    let temp = report_path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&temp, &merged).map_err(ServeError::io(&temp))?;
    std::fs::rename(&temp, &report_path).map_err(ServeError::io(&report_path))?;
    queue.set_state(id, &CampaignState::Done)?;
    Ok(campaign.len())
}

/// Watch mode: repeatedly drain, sleeping `poll` between passes, until
/// `max_idle` elapses with no work done (`None` = run until the process
/// is killed).
///
/// # Errors
///
/// Propagates the first queue I/O error.
pub fn watch(
    queue: &Queue,
    options: &RunOptions,
    poll: Duration,
    max_idle: Option<Duration>,
    mut progress: impl FnMut(&CampaignProgress),
) -> Result<RunSummary, ServeError> {
    // One engine for the daemon's whole life: the prepared-layer cache
    // (LRU-bounded) spans poll passes, so campaigns submitted minutes
    // apart still share workload preparations.
    let (engine, store) = build_context(queue, options)?;
    let mut total = RunSummary::default();
    let mut last_work = Instant::now();
    loop {
        let pass = drain_with(queue, options, &engine, store.as_ref(), &mut progress)?;
        if pass.campaigns > 0 {
            last_work = Instant::now();
            total.campaigns += pass.campaigns;
            total.failed += pass.failed;
            total.jobs += pass.jobs;
            total.memo_hits += pass.memo_hits;
            total.simulated += pass.simulated;
            total.generated += pass.generated;
        } else if let Some(max_idle) = max_idle {
            if last_work.elapsed() >= max_idle {
                return Ok(total);
            }
        }
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_io::{campaign_to_json, headline_campaign};

    fn temp_queue(tag: &str) -> Queue {
        let root = std::env::temp_dir().join(format!(
            "loas-serve-runner-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Queue::init(root).unwrap()
    }

    fn small_options() -> RunOptions {
        RunOptions {
            workers: 2,
            ..RunOptions::default()
        }
    }

    #[test]
    fn drain_runs_queued_campaigns_and_finalizes_single_shard() {
        let queue = temp_queue("drain");
        let spec = campaign_to_json(&headline_campaign(true, 11));
        let id = queue.enqueue(&spec).unwrap().id;
        let mut seen = Vec::new();
        let summary = drain(&queue, &small_options(), |p| seen.push(p.id)).unwrap();
        assert_eq!(summary.campaigns, 1);
        assert_eq!(summary.jobs, 28);
        assert_eq!(summary.simulated, 28);
        assert_eq!(summary.memo_hits, 0);
        assert_eq!(seen, vec![id]);
        assert_eq!(queue.state(id).unwrap(), CampaignState::Done);
        let report = std::fs::read_to_string(queue.report_dir(id).join("report.jsonl")).unwrap();
        assert_eq!(report.lines().count(), 28);
        // Nothing left to do.
        let idle = drain(&queue, &small_options(), |_| {}).unwrap();
        assert_eq!(idle.campaigns, 0);
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn warm_store_replays_resubmitted_campaigns_without_simulating() {
        let queue = temp_queue("warm");
        let spec = campaign_to_json(&headline_campaign(true, 11));
        let first = queue.enqueue(&spec).unwrap().id;
        drain(&queue, &small_options(), |_| {}).unwrap();
        let second = queue.enqueue(&spec).unwrap().id;
        let summary = drain(&queue, &small_options(), |_| {}).unwrap();
        assert_eq!(summary.memo_hits, 28);
        assert_eq!(summary.simulated, 0);
        assert_eq!(summary.generated, 0, "no workload regenerated when warm");
        let read =
            |id: u64| std::fs::read_to_string(queue.report_dir(id).join("report.jsonl")).unwrap();
        assert_eq!(read(first), read(second), "replayed report diverged");
        let _ = std::fs::remove_dir_all(queue.root());
    }

    #[test]
    fn infeasible_campaigns_fail_without_blocking_the_queue() {
        let queue = temp_queue("failing");
        // Dense spikes (origin sparsity 1%) with mostly-silent packed
        // neurons cannot be realised at T=2: the few active neurons would
        // need ~4.3 mean fires in a 2-step window.
        let bad = r#"{"name": "bad", "jobs": [{
            "workload": {"name": "w", "shape": {"t": 2, "m": 4, "n": 4, "k": 16},
                         "profile": {"spike_origin": 0.01, "silent": 0.5,
                                     "silent_ft": 0.55, "weight": 0.98},
                         "seed": 7},
            "accelerator": "loas"}]}"#;
        let bad_id = queue.enqueue(bad).unwrap().id;
        let good_id = queue
            .enqueue(&campaign_to_json(&headline_campaign(true, 11)))
            .unwrap()
            .id;
        let summary = drain(&queue, &small_options(), |_| {}).unwrap();
        assert_eq!(summary.campaigns, 2);
        assert_eq!(summary.failed, 1);
        assert!(matches!(
            queue.state(bad_id).unwrap(),
            CampaignState::Failed(_)
        ));
        assert_eq!(queue.state(good_id).unwrap(), CampaignState::Done);
        let _ = std::fs::remove_dir_all(queue.root());
    }
}
