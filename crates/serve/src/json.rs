//! A minimal JSON reader for campaign specs.
//!
//! The workspace is built offline (no `serde`), so the serving front end
//! carries its own small recursive-descent parser. Numbers keep their raw
//! token text: specs round-trip seeds as exact `u64`s and sparsity
//! fractions as exact `f64` bit patterns (Rust's shortest-round-trip
//! float formatting), which the content-hashed memo keys depend on.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text for lossless reads.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64` (exact for tokens written by shortest-round-trip
    /// formatting).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as exact `u64` (integer tokens only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as exact `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields in source order, if this is an object (the v2
    /// spec schema iterates config-override objects).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_owned())?;
    if token.is_empty() || token.parse::<f64>().is_err() {
        return Err(format!("bad number `{token}` at byte {start}"));
    }
    Ok(Json::Num(token.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err("lone high surrogate".to_owned());
                            }
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| "bad unicode escape".to_owned())?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x20 => {
                return Err(format!("raw control byte in string at {}", *pos))
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through verbatim).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "bad utf8 in string".to_owned())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
    if start + 4 > bytes.len() {
        return Err("truncated unicode escape".to_owned());
    }
    let text = std::str::from_utf8(&bytes[start..start + 4])
        .map_err(|_| "bad unicode escape".to_owned())?;
    u32::from_str_radix(text, 16).map_err(|_| "bad unicode escape".to_owned())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in generated JSON — the engine's report
/// escaping, shared so spec and report serialization cannot drift apart.
pub fn escape(value: &str) -> String {
    loas_engine::json_escape(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#" {"name": "demo", "jobs": [{"seed": 18446744073709551615, "x": -1.5e3,
            "flag": true, "none": null, "text": "a\"b\\c\ndA😀"}]} "#;
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("demo"));
        let job = &parsed.get("jobs").unwrap().as_arr().unwrap()[0];
        // u64::MAX survives exactly (f64 would round it).
        assert_eq!(job.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(job.get("x").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(job.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(job.get("none"), Some(&Json::Null));
        assert_eq!(
            job.get("text").unwrap().as_str(),
            Some("a\"b\\c\ndA\u{1F600}")
        );
    }

    #[test]
    fn float_tokens_round_trip_bit_exactly() {
        for value in [0.823_f64, 0.1 + 0.2, 128.0, f64::MIN_POSITIVE] {
            let doc = format!("{{\"v\": {value}}}");
            let parsed = Json::parse(&doc).unwrap();
            assert_eq!(
                parsed.get("v").unwrap().as_f64().unwrap().to_bits(),
                value.to_bits()
            );
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\" 1}",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t control\u{1}";
        let doc = format!("{{\"v\": \"{}\"}}", escape(nasty));
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("v").unwrap().as_str(), Some(nasty));
    }
}
