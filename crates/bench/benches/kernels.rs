//! Criterion micro-benchmarks of the core kernels: bitmask intersection,
//! prefix-sum models, FTP-friendly compression, and the inner-join unit.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use loas_core::{InnerJoinUnit, LoasConfig, ParallelLif};
use loas_snn::LifParams;
use loas_sparse::prefix_sum::exclusive_prefix_sum;
use loas_sparse::{Bitmask, PackedSpikes, SpikeFiber, WeightFiber};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_mask(rng: &mut StdRng, len: usize, density: f64) -> Bitmask {
    Bitmask::from_bools((0..len).map(|_| rng.gen::<f64>() < density))
}

fn random_fibers(rng: &mut StdRng, k: usize) -> (SpikeFiber, WeightFiber) {
    let row: Vec<PackedSpikes> = (0..k)
        .map(|_| {
            let bits = if rng.gen::<f64>() < 0.26 {
                rng.gen_range(1u16..16)
            } else {
                0
            };
            PackedSpikes::from_bits(bits, 4).expect("t=4")
        })
        .collect();
    let weights: Vec<i8> = (0..k)
        .map(|_| {
            if rng.gen::<f64>() < 0.02 {
                rng.gen_range(1i8..=127)
            } else {
                0
            }
        })
        .collect();
    (
        SpikeFiber::from_packed_row(&row),
        WeightFiber::from_weights(&weights),
    )
}

fn bench_bitmask(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_mask(&mut rng, 2304, 0.26);
    let b = random_mask(&mut rng, 2304, 0.02);
    c.bench_function("bitmask_and_count_2304", |bench| {
        bench.iter(|| black_box(a.and_count(&b).unwrap()))
    });
    c.bench_function("bitmask_rank_2304", |bench| {
        bench.iter(|| black_box(a.rank(2000)))
    });
}

fn bench_prefix_sum(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mask = random_mask(&mut rng, 128, 0.3);
    c.bench_function("exclusive_prefix_sum_128", |bench| {
        bench.iter(|| black_box(exclusive_prefix_sum(&mask)))
    });
}

fn bench_compression(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let row: Vec<PackedSpikes> = (0..2304)
        .map(|_| PackedSpikes::from_bits(rng.gen_range(0u16..16), 4).unwrap())
        .collect();
    c.bench_function("spike_fiber_compress_2304", |bench| {
        bench.iter_batched(
            || row.clone(),
            |r| black_box(SpikeFiber::from_packed_row(&r)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_inner_join(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let (fiber_a, fiber_b) = random_fibers(&mut rng, 2304);
    let unit = InnerJoinUnit::new(&LoasConfig::table3());
    c.bench_function("inner_join_v_l8_fiber", |bench| {
        bench.iter(|| black_box(unit.join(&fiber_a, &fiber_b)))
    });
}

fn bench_plif(c: &mut Criterion) {
    let plif = ParallelLif::new(LifParams::new(64, 1), 4);
    let sums = [120i64, 30, -5, 200];
    c.bench_function("plif_one_shot", |bench| {
        bench.iter(|| black_box(plif.fire(&sums)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bitmask, bench_prefix_sum, bench_compression, bench_inner_join, bench_plif
}
criterion_main!(kernels);
