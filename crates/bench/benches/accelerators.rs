//! Criterion benchmarks of the accelerator simulators themselves: one
//! representative dual-sparse layer per design (simulation throughput, not
//! modeled hardware performance — that is what `repro` reports).

use criterion::{criterion_group, criterion_main, Criterion};
use loas_baselines::{GammaSnn, GospaSnn, Ptb, SparTenSnn, Stellar};
use loas_core::{Accelerator, Loas, PreparedLayer};
use loas_workloads::networks::profiles;
use loas_workloads::{LayerShape, WorkloadGenerator};
use std::hint::black_box;

fn bench_layer() -> PreparedLayer {
    let workload = WorkloadGenerator::default()
        .generate(
            "bench-layer",
            LayerShape::new(4, 32, 64, 1152),
            &profiles::vgg16(),
        )
        .expect("profile feasible");
    PreparedLayer::new(&workload)
}

fn bench_designs(c: &mut Criterion) {
    let layer = bench_layer();
    let mut group = c.benchmark_group("simulate_layer");
    group.bench_function("loas", |b| {
        b.iter(|| black_box(Loas::default().run_layer(&layer)))
    });
    group.bench_function("loas_verified", |b| {
        b.iter(|| black_box(Loas::default().with_verification(true).run_layer(&layer)))
    });
    group.bench_function("sparten_snn", |b| {
        b.iter(|| black_box(SparTenSnn::default().run_layer(&layer)))
    });
    group.bench_function("gospa_snn", |b| {
        b.iter(|| black_box(GospaSnn::default().run_layer(&layer)))
    });
    group.bench_function("gamma_snn", |b| {
        b.iter(|| black_box(GammaSnn::default().run_layer(&layer)))
    });
    group.bench_function("ptb", |b| {
        b.iter(|| black_box(Ptb::default().run_layer(&layer)))
    });
    group.bench_function("stellar", |b| {
        b.iter(|| black_box(Stellar::default().run_layer(&layer)))
    });
    group.finish();
}

fn bench_preparation(c: &mut Criterion) {
    let workload = WorkloadGenerator::default()
        .generate(
            "bench-prep",
            LayerShape::new(4, 32, 64, 1152),
            &profiles::vgg16(),
        )
        .expect("profile feasible");
    c.bench_function("prepare_layer", |b| {
        b.iter(|| black_box(PreparedLayer::new(&workload)))
    });
    c.bench_function("generate_layer", |b| {
        b.iter(|| {
            black_box(
                WorkloadGenerator::default()
                    .generate(
                        "bench-gen",
                        LayerShape::new(4, 16, 32, 512),
                        &profiles::vgg16(),
                    )
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = accelerators;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_designs, bench_preparation
}
criterion_main!(accelerators);
