//! Criterion benchmarks over the figure-regeneration harness (quick-mode
//! workloads): one target per paper table/figure family, so `cargo bench`
//! exercises every experiment path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use loas_bench::{experiments, Context};
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_quick");
    for (name, runner) in experiments::ALL_EXPERIMENTS {
        if *name == "fig15" {
            continue; // alias of table4
        }
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut ctx = Context::quick();
                let tables = runner(&mut ctx);
                assert!(tables.iter().all(|t| t.is_consistent()));
                black_box(tables.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_experiments
}
criterion_main!(figures);
