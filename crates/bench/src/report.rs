//! Plain-text table rendering for the experiment harness.

use std::fmt;

/// One regenerated table or figure, as rows of formatted cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment title (e.g. `"Fig. 12 — speedup over SparTen-SNN"`).
    pub title: String,
    /// Column headers; the first column is the row label.
    pub headers: Vec<String>,
    /// Rows: label + one cell per header after the first.
    pub rows: Vec<(String, Vec<String>)>,
    /// Free-form notes printed under the table (assumptions, paper refs).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Validates internal consistency (every row matches the header count).
    pub fn is_consistent(&self) -> bool {
        self.rows
            .iter()
            .all(|(_, cells)| cells.len() + 1 == self.headers.len())
    }

    /// Renders the table as CSV (RFC-4180 quoting for cells containing
    /// commas or quotes); notes become trailing `# ...` comment lines.
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for (label, cells) in &self.rows {
            let mut line = vec![quote(label)];
            line.extend(cells.iter().map(|c| quote(c)));
            out.push_str(&line.join(","));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("# ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// A filesystem-safe slug of the title, for CSV file names.
    pub fn slug(&self) -> String {
        let mut slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        while slug.contains("__") {
            slug = slug.replace("__", "_");
        }
        slug.trim_matches('_').chars().take(60).collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n=== {} ===", self.title)?;
        // Column widths.
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.len());
            for (i, c) in cells.iter().enumerate() {
                if i + 1 < cols {
                    widths[i + 1] = widths[i + 1].max(c.len());
                }
            }
        }
        let print_line = |f: &mut fmt::Formatter<'_>, cells: Vec<&str>| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<width$}", c, width = widths[0] + 2)?;
                } else {
                    write!(f, "{:>width$}", c, width = widths[i.min(cols - 1)] + 2)?;
                }
            }
            writeln!(f)
        };
        print_line(f, self.headers.iter().map(String::as_str).collect())?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * cols))?;
        for (label, cells) in &self.rows {
            let mut line = vec![label.as_str()];
            line.extend(cells.iter().map(String::as_str));
            print_line(f, line)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a ratio as `3.42x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats a float with two decimals.
pub fn num(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_cells() {
        let mut t = Table::new("demo", vec!["workload", "speedup"]);
        t.push_row("VGG16", vec![ratio(4.08)]);
        t.push_note("normalized to SparTen-SNN");
        let text = t.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("VGG16"));
        assert!(text.contains("4.08x"));
        assert!(text.contains("note:"));
        assert!(t.is_consistent());
    }

    #[test]
    fn inconsistent_rows_detected() {
        let mut t = Table::new("demo", vec!["a", "b", "c"]);
        t.push_row("x", vec!["1".into()]);
        assert!(!t.is_consistent());
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(2.0), "2.00x");
        assert_eq!(pct(61.74), "61.7%");
        assert_eq!(num(1.234), "1.23");
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new("Fig. X — demo, with comma", vec!["a", "b"]);
        t.push_row("row \"1\"", vec!["1,5".into()]);
        t.push_note("a note");
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"row \"\"1\"\"\",\"1,5\""));
        assert!(csv.ends_with("# a note\n"));
    }

    #[test]
    fn slug_is_filesystem_safe() {
        let t = Table::new("Fig. 12 (top) — speedup, normalized", vec!["a"]);
        let slug = t.slug();
        assert!(slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        assert!(slug.starts_with("fig_12"));
    }
}
