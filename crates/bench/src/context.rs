//! Shared experiment context: an embedded [`loas_engine::Engine`] whose
//! prepared-layer cache and worker pool are shared by every experiment, so
//! the repro harness generates each workload exactly once and shards
//! simulation jobs across threads.

use loas_core::{NetworkReport, PreparedLayer};
use loas_engine::{AcceleratorSpec, Campaign, CampaignOutcome, Engine, ResultStore, WorkloadSpec};
use loas_workloads::networks::{LayerSpec, NetworkSpec};
use loas_workloads::{LayerWorkload, WorkloadGenerator};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The accelerators compared in Figs. 12-14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// SparTen-SNN (IP baseline).
    SparTen,
    /// GoSPA-SNN (OP baseline).
    Gospa,
    /// Gamma-SNN (Gustavson baseline).
    Gamma,
    /// LoAS without preprocessing.
    Loas,
    /// LoAS with fine-tuned preprocessing (masked workload + discard mode).
    LoasFt,
    /// PTB (dense, partially temporal parallel).
    Ptb,
    /// Stellar (dense, FS neurons).
    Stellar,
}

impl Design {
    /// The Fig. 12/13 comparison set.
    pub const SPMSPM_SET: [Design; 5] = [
        Design::SparTen,
        Design::Gospa,
        Design::Gamma,
        Design::Loas,
        Design::LoasFt,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Design::SparTen => "SparTen-SNN",
            Design::Gospa => "GoSPA-SNN",
            Design::Gamma => "Gamma-SNN",
            Design::Loas => "LoAS",
            Design::LoasFt => "LoAS(FT)",
            Design::Ptb => "PTB",
            Design::Stellar => "Stellar",
        }
    }

    /// Whether this design consumes the fine-tuned (masked) workload.
    pub fn uses_ft_workload(self) -> bool {
        matches!(self, Design::LoasFt)
    }

    /// The engine-level accelerator spec this design runs as.
    pub fn accelerator_spec(self) -> AcceleratorSpec {
        match self {
            Design::SparTen => AcceleratorSpec::sparten(),
            Design::Gospa => AcceleratorSpec::gospa(),
            Design::Gamma => AcceleratorSpec::gamma(),
            Design::Loas => AcceleratorSpec::loas(),
            Design::LoasFt => AcceleratorSpec::loas_ft(),
            Design::Ptb => AcceleratorSpec::ptb(),
            Design::Stellar => AcceleratorSpec::stellar(),
        }
    }
}

/// Campaign-backed experiment context. Workload generation, preparation,
/// and network simulation all run through one [`Engine`], whose cache spans
/// every experiment of a repro session.
pub struct Context {
    generator: WorkloadGenerator,
    engine: Engine,
    reports: HashMap<(String, Design), NetworkReport>,
    /// Scale factor applied to layer `M`/`N` for quick (CI) runs.
    quick: bool,
    /// Optional durable result store: campaign jobs whose
    /// `(workload, accelerator)` content hash is already memoized replay
    /// without simulating.
    store: Option<Arc<dyn ResultStore + Send + Sync>>,
    memo_hits: AtomicUsize,
    simulated: AtomicUsize,
}

impl Context {
    /// A full-fidelity context (used by the repro binary).
    pub fn full() -> Self {
        Context::with_workers(false, loas_engine::default_workers())
    }

    /// A reduced context for tests/benches: layer `M` and `N` are shrunk
    /// (sparsity statistics and model behaviour are scale-free).
    pub fn quick() -> Self {
        Context::with_workers(true, loas_engine::default_workers())
    }

    /// A context with an explicit worker count.
    pub fn with_workers(quick: bool, workers: usize) -> Self {
        Context {
            generator: WorkloadGenerator::default(),
            engine: Engine::new(workers),
            reports: HashMap::new(),
            quick,
            store: None,
            memo_hits: AtomicUsize::new(0),
            simulated: AtomicUsize::new(0),
        }
    }

    /// Attaches a durable result store: every subsequent campaign consults
    /// it before simulating and persists fresh results through it, so a
    /// repeated figure reproduction against a warm store skips simulation
    /// entirely.
    pub fn set_result_store(&mut self, store: Arc<dyn ResultStore + Send + Sync>) {
        self.store = Some(store);
    }

    /// `(memo hits, simulated)` job totals across every campaign this
    /// context has run.
    pub fn memo_totals(&self) -> (usize, usize) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.simulated.load(Ordering::Relaxed),
        )
    }

    /// Whether this context shrinks workloads.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The seeded generator.
    pub fn generator(&self) -> &WorkloadGenerator {
        &self.generator
    }

    /// The embedded campaign engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Shrinks a layer spec in quick mode (identity at full fidelity).
    pub fn shrink_layer(&self, spec: &LayerSpec) -> LayerSpec {
        if self.quick {
            spec.shrunk_for_quick()
        } else {
            spec.clone()
        }
    }

    fn shrink(&self, spec: &NetworkSpec) -> NetworkSpec {
        let mut shrunk = spec.clone();
        shrunk.layers = spec.layers.iter().map(|l| self.shrink_layer(l)).collect();
        shrunk
    }

    /// The engine workload spec of a layer (quick shrink + session seed
    /// applied).
    pub fn workload_spec(&self, spec: &LayerSpec) -> WorkloadSpec {
        WorkloadSpec::from_layer(&self.shrink_layer(spec)).with_seed(self.generator.seed())
    }

    /// Runs a campaign on the shared engine (through the result store when
    /// one is attached), panicking on generation failures (experiment
    /// profiles are known-feasible).
    pub fn run_campaign(&self, campaign: &Campaign) -> CampaignOutcome {
        let outcome = self
            .engine
            .run_where(
                campaign,
                None,
                self.store.as_deref().map(|s| s as &dyn ResultStore),
                |_| {},
            )
            .expect("experiment workload profiles are feasible");
        self.memo_hits
            .fetch_add(outcome.memo_hits, Ordering::Relaxed);
        self.simulated
            .fetch_add(outcome.simulated, Ordering::Relaxed);
        outcome
    }

    /// Prepares (once) one layer workload through the engine cache.
    pub fn prepared_layer(&self, spec: &LayerSpec) -> Arc<PreparedLayer> {
        let workload = self.workload_spec(spec);
        self.engine
            .prepare(std::slice::from_ref(&workload))
            .expect("experiment workload profiles are feasible")
            .remove(0)
    }

    /// Generates (once) and returns the prepared layers of a network —
    /// base workloads, not FT-masked.
    pub fn prepared_network(&mut self, spec: &NetworkSpec) -> Vec<Arc<PreparedLayer>> {
        let workloads: Vec<WorkloadSpec> = self
            .shrink(spec)
            .layers
            .iter()
            .map(|l| WorkloadSpec::from_layer(l).with_seed(self.generator.seed()))
            .collect();
        self.engine
            .prepare(&workloads)
            .expect("table-2 profiles are feasible")
    }

    /// Prepares one standalone layer workload.
    pub fn prepare_layer(&self, workload: &LayerWorkload) -> PreparedLayer {
        PreparedLayer::new(workload)
    }

    /// Ensures network reports exist for every `(spec, design)` pair,
    /// running all missing pairs as **one sharded campaign** on the engine.
    pub fn prefetch_network_reports(&mut self, specs: &[NetworkSpec], designs: &[Design]) {
        let mut campaign = Campaign::new("network-reports");
        let mut wanted: Vec<((String, Design), std::ops::Range<usize>)> = Vec::new();
        for spec in specs {
            let shrunk = self.shrink(spec);
            for &design in designs {
                let key = (spec.name.clone(), design);
                if self.reports.contains_key(&key) {
                    continue;
                }
                let jobs = campaign.push_network(
                    &shrunk,
                    design.accelerator_spec(),
                    self.generator.seed(),
                );
                wanted.push((key, jobs));
            }
        }
        if campaign.is_empty() {
            return;
        }
        let outcome = self.run_campaign(&campaign);
        for (key, jobs) in wanted {
            let layers = outcome.records[jobs]
                .iter()
                .map(|record| record.report.clone())
                .collect();
            let report = NetworkReport::new(&key.0, key.1.name(), layers);
            self.reports.insert(key, report);
        }
    }

    /// Runs (once) a network on a design and returns the cached report.
    pub fn network_report(&mut self, spec: &NetworkSpec, design: Design) -> NetworkReport {
        self.prefetch_network_reports(std::slice::from_ref(spec), &[design]);
        self.reports[&(spec.name.clone(), design)].clone()
    }
}

/// Runs a layer sequence on a design (fresh model, no caching) — the
/// direct path kept for one-off comparisons; campaign execution goes
/// through [`Context::run_campaign`].
pub fn run_design(design: Design, network: &str, layers: &[PreparedLayer]) -> NetworkReport {
    use loas_core::Accelerator;
    let mut model = design.accelerator_spec().build();
    let layers: Vec<PreparedLayer> = if design.uses_ft_workload() {
        layers
            .iter()
            .map(|p| PreparedLayer::new(&p.workload.with_preprocessing()))
            .collect()
    } else {
        layers.to_vec()
    };
    let reports = layers.iter().map(|l| model.run_layer(l)).collect();
    NetworkReport::new(network, design.name(), reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_workloads::networks;

    #[test]
    fn quick_context_shrinks_and_caches() {
        let mut ctx = Context::quick();
        let spec = networks::alexnet();
        let first = ctx.prepared_network(&spec);
        assert_eq!(first.len(), 7);
        assert!(first.iter().all(|l| l.shape.m <= 16 && l.shape.n <= 32));
        let generated = ctx.engine().cache_stats().generated;
        let again = ctx.prepared_network(&spec);
        assert_eq!(first.len(), again.len());
        assert_eq!(
            ctx.engine().cache_stats().generated,
            generated,
            "second preparation is served from the engine cache"
        );
    }

    #[test]
    fn reports_cached_per_design() {
        let mut ctx = Context::quick();
        let spec = networks::alexnet();
        let a = ctx.network_report(&spec, Design::Loas);
        let b = ctx.network_report(&spec, Design::Loas);
        assert_eq!(a.total_cycles(), b.total_cycles());
    }

    #[test]
    fn design_names() {
        assert_eq!(Design::SparTen.name(), "SparTen-SNN");
        assert!(Design::LoasFt.uses_ft_workload());
        assert!(!Design::Loas.uses_ft_workload());
    }

    #[test]
    fn prefetch_runs_missing_pairs_as_one_campaign() {
        let mut ctx = Context::quick();
        let specs = [networks::alexnet()];
        ctx.prefetch_network_reports(&specs, &Design::SPMSPM_SET);
        for design in Design::SPMSPM_SET {
            let report = ctx.network_report(&specs[0], design);
            assert_eq!(report.accelerator, design.name());
            assert_eq!(report.layers.len(), 7);
        }
    }

    #[test]
    fn store_backed_context_replays_repeated_reproductions() {
        let dir = std::env::temp_dir().join(format!("loas-bench-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(loas_engine::MemoStore::open(&dir).unwrap());

        let mut cold = Context::quick();
        cold.set_result_store(store.clone());
        let first = cold.network_report(&networks::alexnet(), Design::Loas);
        let (hits, simulated) = cold.memo_totals();
        assert_eq!(hits, 0);
        assert_eq!(simulated, 7);

        // A fresh context (a new repro session) against the warm store
        // replays every job.
        let mut warm = Context::quick();
        warm.set_result_store(store);
        let second = warm.network_report(&networks::alexnet(), Design::Loas);
        let (hits, simulated) = warm.memo_totals();
        assert_eq!(hits, 7, "warm store replays the whole network");
        assert_eq!(simulated, 0);
        assert_eq!(warm.engine().cache_stats().generated, 0);
        assert_eq!(first.total_cycles(), second.total_cycles());
        assert_eq!(
            first.total_energy().total_pj(),
            second.total_energy().total_pj()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_and_direct_paths_agree() {
        let mut ctx = Context::quick();
        let spec = networks::alexnet();
        let via_engine = ctx.network_report(&spec, Design::Gamma);
        let prepared: Vec<PreparedLayer> = ctx
            .prepared_network(&spec)
            .iter()
            .map(|arc| (**arc).clone())
            .collect();
        let direct = run_design(Design::Gamma, &spec.name, &prepared);
        assert_eq!(via_engine.total_cycles(), direct.total_cycles());
    }
}
