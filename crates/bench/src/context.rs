//! Shared experiment context: workload generation and simulation caching.

use loas_baselines::{GammaSnn, GospaSnn, Ptb, SparTenSnn, Stellar};
use loas_core::{Accelerator, Loas, LoasConfig, NetworkReport, PreparedLayer};
use loas_workloads::networks::NetworkSpec;
use loas_workloads::{LayerWorkload, WorkloadGenerator};
use std::collections::HashMap;

/// The accelerators compared in Figs. 12-14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// SparTen-SNN (IP baseline).
    SparTen,
    /// GoSPA-SNN (OP baseline).
    Gospa,
    /// Gamma-SNN (Gustavson baseline).
    Gamma,
    /// LoAS without preprocessing.
    Loas,
    /// LoAS with fine-tuned preprocessing (masked workload + discard mode).
    LoasFt,
    /// PTB (dense, partially temporal parallel).
    Ptb,
    /// Stellar (dense, FS neurons).
    Stellar,
}

impl Design {
    /// The Fig. 12/13 comparison set.
    pub const SPMSPM_SET: [Design; 5] = [
        Design::SparTen,
        Design::Gospa,
        Design::Gamma,
        Design::Loas,
        Design::LoasFt,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Design::SparTen => "SparTen-SNN",
            Design::Gospa => "GoSPA-SNN",
            Design::Gamma => "Gamma-SNN",
            Design::Loas => "LoAS",
            Design::LoasFt => "LoAS(FT)",
            Design::Ptb => "PTB",
            Design::Stellar => "Stellar",
        }
    }

    /// Whether this design consumes the fine-tuned (masked) workload.
    pub fn uses_ft_workload(self) -> bool {
        matches!(self, Design::LoasFt)
    }
}

/// Caches generated workloads and simulation results across experiments so
/// the repro harness generates each network exactly once.
pub struct Context {
    generator: WorkloadGenerator,
    prepared: HashMap<String, Vec<PreparedLayer>>,
    reports: HashMap<(String, Design), NetworkReport>,
    /// Scale factor applied to layer `M`/`N` for quick (CI) runs.
    quick: bool,
}

impl Context {
    /// A full-fidelity context (used by the repro binary).
    pub fn full() -> Self {
        Context {
            generator: WorkloadGenerator::default(),
            prepared: HashMap::new(),
            reports: HashMap::new(),
            quick: false,
        }
    }

    /// A reduced context for tests/benches: layer `M` and `N` are shrunk
    /// (sparsity statistics and model behaviour are scale-free).
    pub fn quick() -> Self {
        Context {
            generator: WorkloadGenerator::default(),
            prepared: HashMap::new(),
            reports: HashMap::new(),
            quick: true,
        }
    }

    /// Whether this context shrinks workloads.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The seeded generator.
    pub fn generator(&self) -> &WorkloadGenerator {
        &self.generator
    }

    fn shrink(&self, spec: &NetworkSpec) -> NetworkSpec {
        if !self.quick {
            return spec.clone();
        }
        let mut shrunk = spec.clone();
        for layer in &mut shrunk.layers {
            layer.shape.m = layer.shape.m.clamp(1, 16);
            layer.shape.n = layer.shape.n.min(32);
            layer.shape.k = layer.shape.k.min(512);
        }
        shrunk
    }

    /// Generates (once) and returns the prepared layers of a network —
    /// base workloads, not FT-masked.
    pub fn prepared_network(&mut self, spec: &NetworkSpec) -> Vec<PreparedLayer> {
        let key = format!("{}::{}", spec.name, self.quick);
        if !self.prepared.contains_key(&key) {
            let shrunk = self.shrink(spec);
            let layers = shrunk
                .generate(&self.generator)
                .expect("table-2 profiles are feasible");
            let prepared = layers.iter().map(PreparedLayer::new).collect();
            self.prepared.insert(key.clone(), prepared);
        }
        self.prepared[&key].clone()
    }

    /// Prepares one standalone layer workload.
    pub fn prepare_layer(&self, workload: &LayerWorkload) -> PreparedLayer {
        PreparedLayer::new(workload)
    }

    /// Runs (once) a network on a design and returns the cached report.
    pub fn network_report(&mut self, spec: &NetworkSpec, design: Design) -> NetworkReport {
        let key = (format!("{}::{}", spec.name, self.quick), design);
        if let Some(r) = self.reports.get(&key) {
            return r.clone();
        }
        let layers = self.prepared_network(spec);
        let layers: Vec<PreparedLayer> = if design.uses_ft_workload() {
            layers
                .iter()
                .map(|p| PreparedLayer::new(&p.workload.with_preprocessing()))
                .collect()
        } else {
            layers
        };
        let report = run_design(design, &spec.name, &layers);
        self.reports.insert(key, report.clone());
        report
    }
}

/// Runs a layer sequence on a design.
pub fn run_design(design: Design, network: &str, layers: &[PreparedLayer]) -> NetworkReport {
    match design {
        Design::SparTen => SparTenSnn::default().run_network(network, layers),
        Design::Gospa => GospaSnn::default().run_network(network, layers),
        Design::Gamma => GammaSnn::default().run_network(network, layers),
        Design::Loas => Loas::default().run_network(network, layers),
        Design::LoasFt => Loas::new(
            LoasConfig::builder().discard_low_activity_outputs(true).build(),
        )
        .run_network(network, layers),
        Design::Ptb => Ptb::default().run_network(network, layers),
        Design::Stellar => Stellar::default().run_network(network, layers),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_workloads::networks;

    #[test]
    fn quick_context_shrinks_and_caches() {
        let mut ctx = Context::quick();
        let spec = networks::alexnet();
        let first = ctx.prepared_network(&spec);
        assert_eq!(first.len(), 7);
        assert!(first.iter().all(|l| l.shape.m <= 16 && l.shape.n <= 32));
        let again = ctx.prepared_network(&spec);
        assert_eq!(first.len(), again.len());
    }

    #[test]
    fn reports_cached_per_design() {
        let mut ctx = Context::quick();
        let spec = networks::alexnet();
        let a = ctx.network_report(&spec, Design::Loas);
        let b = ctx.network_report(&spec, Design::Loas);
        assert_eq!(a.total_cycles(), b.total_cycles());
    }

    #[test]
    fn design_names() {
        assert_eq!(Design::SparTen.name(), "SparTen-SNN");
        assert!(Design::LoasFt.uses_ft_workload());
        assert!(!Design::Loas.uses_ft_workload());
    }
}
