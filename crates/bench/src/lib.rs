//! # loas-bench — the experiment harness regenerating every table and
//! figure of the paper's evaluation
//!
//! Each module under [`experiments`] regenerates one table or figure
//! (workload generation, parameter sweep, baselines, and row formatting);
//! [`experiments::reference`] keeps the paper's published values alongside
//! for `paper vs measured` comparison. The sweep-style experiments build
//! [`loas_engine::Campaign`]s and execute them on the [`Context`]'s shared
//! engine, so workload preparation is cached across experiments and
//! simulation jobs shard across worker threads. The `repro` binary drives
//! them:
//!
//! ```text
//! cargo run --release -p loas-bench --bin repro -- all
//! cargo run --release -p loas-bench --bin repro -- fig12 fig13
//! cargo run --release -p loas-bench --bin repro -- --quick --workers 8 all
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod report;

pub use context::{run_design, Context, Design};
pub use report::Table;
