//! Table II — workload sparsity statistics, measured on the generated
//! tensors against the paper's published values.

use crate::context::Context;
use crate::report::{num, Table};
use loas_workloads::networks;

/// Regenerates Table II: for every network and selected layer, the realised
/// `AvSpA-origin / AvSpA-packed (+FT) / AvSpB` next to the paper values.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let mut t = Table::new(
        "Table II — workload statistics (measured | paper)",
        vec![
            "workload",
            "NL",
            "T",
            "origin%",
            "packed%",
            "packed+FT%",
            "weight%",
        ],
    );
    let paper = super::reference::table2::ROWS;
    // Networks: aggregate over layers (weighted by neuron positions).
    for (spec, paper_row) in [
        (networks::alexnet(), paper[0]),
        (networks::vgg16(), paper[1]),
        (networks::resnet19(), paper[2]),
    ] {
        let layers = ctx.prepared_network(&spec);
        let mut origin = 0.0;
        let mut packed = 0.0;
        let mut packed_ft = 0.0;
        let mut weight = 0.0;
        let mut spike_positions = 0.0;
        let mut weight_positions = 0.0;
        for l in &layers {
            let stats = l.workload.stats();
            let sp = (l.shape.m * l.shape.k) as f64;
            let wp = (l.shape.k * l.shape.n) as f64;
            origin += stats.spike_origin_pct * sp;
            packed += stats.silent_pct * sp;
            packed_ft += stats.silent_ft_pct * sp;
            weight += stats.weight_pct * wp;
            spike_positions += sp;
            weight_positions += wp;
        }
        t.push_row(
            spec.name.clone(),
            vec![
                format!("{}", spec.layers.len()),
                "4".to_owned(),
                format!("{} | {}", num(origin / spike_positions), paper_row.3),
                format!("{} | {}", num(packed / spike_positions), paper_row.4),
                format!("{} | {}", num(packed_ft / spike_positions), paper_row.5),
                format!("{} | {}", num(weight / weight_positions), paper_row.6),
            ],
        );
    }
    // Selected layers.
    for (layer, paper_row) in networks::selected_layers()
        .iter()
        .take(3)
        .zip(paper[3..].iter())
    {
        let workload = layer
            .generate(ctx.generator())
            .expect("table-2 profiles are feasible");
        let stats = workload.stats();
        t.push_row(
            format!("{} ({})", layer.name, layer.shape),
            vec![
                "1".to_owned(),
                "4".to_owned(),
                format!("{} | {}", num(stats.spike_origin_pct), paper_row.3),
                format!("{} | {}", num(stats.silent_pct), paper_row.4),
                format!("{} | {}", num(stats.silent_ft_pct), paper_row.5),
                format!("{} | {}", num(stats.weight_pct), paper_row.6),
            ],
        );
    }
    t.push_note("network rows weight per-layer statistics by M*K (spikes) / K*N (weights)");
    t.push_note("measured values realise the calibrated three-category firing model (DESIGN.md)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_rows_present() {
        let mut ctx = Context::quick();
        let t = &run(&mut ctx)[0];
        assert_eq!(t.rows.len(), 6);
        assert!(t.is_consistent());
    }

    #[test]
    fn selected_layer_statistics_match_paper_closely() {
        // Full-size selected layers are cheap enough to check exactly even
        // in tests: V-L8's realised sparsity must sit near the target.
        let ctx = Context::full();
        let v_l8 = networks::selected_layers()[1]
            .generate(ctx.generator())
            .unwrap();
        let stats = v_l8.stats();
        assert!(
            (stats.spike_origin_pct - 88.1).abs() < 1.0,
            "{}",
            stats.spike_origin_pct
        );
        assert!(
            (stats.weight_pct - 96.8).abs() < 0.5,
            "{}",
            stats.weight_pct
        );
    }
}
