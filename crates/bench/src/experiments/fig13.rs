//! Fig. 13 — off-chip (KB) and on-chip (MB) memory traffic across the three
//! networks and five designs.
//!
//! Like Fig. 12, the full `networks x designs` grid executes as **one
//! sharded campaign** on the context's engine (prefetched below); the
//! cross-experiment report cache means a session that already ran Fig. 12
//! reuses every report here without re-simulating.

use crate::context::{Context, Design};
use crate::report::{ratio, Table};
use loas_workloads::networks;

/// Regenerates both Fig. 13 panels plus the Section VI-A traffic-ratio
/// analysis table.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let specs = [networks::alexnet(), networks::vgg16(), networks::resnet19()];
    // One engine campaign for every missing (network, design) pair — not
    // a mini-campaign per table cell.
    ctx.prefetch_network_reports(&specs, &Design::SPMSPM_SET);
    let headers = vec![
        "network",
        "SparTen-SNN",
        "GoSPA-SNN",
        "Gamma-SNN",
        "LoAS",
        "LoAS(FT)",
    ];
    let mut offchip = Table::new("Fig. 13 (top) — off-chip traffic (KB)", headers.clone());
    let mut onchip = Table::new("Fig. 13 (bottom) — on-chip SRAM traffic (MB)", headers);
    let mut ratios = Table::new(
        "Section VI-A — traffic relative to LoAS (SRAM x, DRAM x)",
        vec!["network", "SparTen-SNN", "GoSPA-SNN", "Gamma-SNN"],
    );
    for spec in &specs {
        let loas = ctx.network_report(spec, Design::Loas).total_stats();
        let mut off_cells = Vec::new();
        let mut on_cells = Vec::new();
        let mut ratio_cells = Vec::new();
        for design in Design::SPMSPM_SET {
            let stats = ctx.network_report(spec, design).total_stats();
            off_cells.push(format!("{:.0}", stats.dram.total_kb()));
            on_cells.push(format!("{:.2}", stats.sram.total_mb()));
            if !matches!(design, Design::Loas | Design::LoasFt) {
                ratio_cells.push(format!(
                    "{} / {}",
                    ratio(stats.sram.total() as f64 / loas.sram.total().max(1) as f64),
                    ratio(stats.dram.total() as f64 / loas.dram.total().max(1) as f64),
                ));
            }
        }
        offchip.push_row(spec.name.clone(), off_cells);
        onchip.push_row(spec.name.clone(), on_cells);
        ratios.push_row(spec.name.clone(), ratio_cells);
    }
    ratios.push_note("paper (SRAM/DRAM vs LoAS): SparTen 3.93/3.70, 3.57/2.22, 4.07/2.24; GoSPA 2.87/4.49, 2.19/2.78, 2.98/3.03; Gamma mean SRAM 13.4x, DRAM 2.16/1.76/1.91");
    vec![offchip, onchip, ratios]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loas_has_least_traffic_of_all_designs() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(t.is_consistent());
        }
        // Every baseline-vs-LoAS ratio in the third table must be >= 1 for
        // SRAM (the first number of each cell).
        for (_, cells) in &tables[2].rows {
            for cell in cells {
                let sram: f64 = cell
                    .split('/')
                    .next()
                    .unwrap()
                    .trim()
                    .trim_end_matches('x')
                    .parse()
                    .unwrap();
                assert!(sram >= 1.0, "baseline SRAM below LoAS: {cell}");
            }
        }
    }
}
