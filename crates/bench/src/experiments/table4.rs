//! Table IV / Fig. 15 — area and power breakdown of LoAS and one TPPE.

use crate::context::Context;
use crate::report::{pct, Table};
use loas_core::AreaPowerModel;

/// Regenerates both halves of Table IV plus the Fig. 15 share breakdown.
pub fn run(_ctx: &mut Context) -> Vec<Table> {
    let model = AreaPowerModel::loas_default();
    let system = model.system_table(4);
    let mut sys = Table::new(
        "Table IV (left) — area and power of LoAS",
        vec!["component", "area mm2", "power mW"],
    );
    for c in system.components() {
        sys.push_row(
            c.name.clone(),
            vec![format!("{:.2}", c.area_mm2), format!("{:.1}", c.power_mw)],
        );
    }
    sys.push_row(
        "Total",
        vec![
            format!("{:.2}", system.total_area_mm2()),
            format!("{:.1}", system.total_power_mw()),
        ],
    );
    sys.push_note(format!(
        "paper totals: {:.2} mm2, {:.1} mW",
        super::reference::table4::TOTAL_AREA_MM2,
        super::reference::table4::TOTAL_POWER_MW
    ));

    let tppe = model.tppe_table();
    let mut pe = Table::new(
        "Table IV (right) — one TPPE",
        vec!["unit", "area mm2", "power mW"],
    );
    for c in tppe.components() {
        pe.push_row(
            c.name.clone(),
            vec![format!("{:.3}", c.area_mm2), format!("{:.2}", c.power_mw)],
        );
    }
    pe.push_row(
        "TPPE total",
        vec![
            format!("{:.3}", tppe.total_area_mm2()),
            format!("{:.2}", tppe.total_power_mw()),
        ],
    );

    let mut fig15 = Table::new(
        "Fig. 15 — on-chip power breakup",
        vec!["component", "share"],
    );
    fig15.push_row(
        "Global cache (system)",
        vec![pct(system.power_share("Global cache").unwrap() * 100.0)],
    );
    fig15.push_row(
        "TPPEs (system)",
        vec![pct(system.power_share("16 TPPEs").unwrap() * 100.0)],
    );
    fig15.push_row(
        "Fast prefix-sum (TPPE)",
        vec![pct(tppe.power_share("Fast Prefix").unwrap() * 100.0)],
    );
    fig15.push_row(
        "Laggy prefix-sum (TPPE)",
        vec![pct(tppe.power_share("Laggy Prefix").unwrap() * 100.0)],
    );
    fig15.push_note("paper: cache 65.9%, TPPEs 23.9%; fast prefix 51.8%, laggy 11.4%");
    vec![sys, pe, fig15]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let tables = run(&mut Context::quick());
        assert_eq!(tables.len(), 3);
        let text = tables[0].to_string();
        assert!(text.contains("2.0"), "system area near 2.08 mm2: {text}");
        for t in &tables {
            assert!(t.is_consistent());
        }
    }
}
