//! Fig. 12 — overall performance and energy efficiency of LoAS vs the three
//! spMspM baselines on AlexNet / VGG16 / ResNet19 (normalized to
//! SparTen-SNN).

use crate::context::{Context, Design};
use crate::report::{ratio, Table};
use loas_workloads::networks;

/// Regenerates both Fig. 12 panels: speedup and energy efficiency,
/// normalized to SparTen-SNN. The full `networks x designs` grid is
/// executed as one sharded campaign on the context's engine.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let specs = [networks::alexnet(), networks::vgg16(), networks::resnet19()];
    ctx.prefetch_network_reports(&specs, &Design::SPMSPM_SET);
    let mut speedup = Table::new(
        "Fig. 12 (top) — speedup, normalized to SparTen-SNN",
        vec![
            "network",
            "SparTen-SNN",
            "GoSPA-SNN",
            "Gamma-SNN",
            "LoAS",
            "LoAS(FT)",
        ],
    );
    let mut energy = Table::new(
        "Fig. 12 (bottom) — energy efficiency, normalized to SparTen-SNN",
        vec![
            "network",
            "SparTen-SNN",
            "GoSPA-SNN",
            "Gamma-SNN",
            "LoAS",
            "LoAS(FT)",
        ],
    );
    for spec in &specs {
        let baseline = ctx.network_report(spec, Design::SparTen);
        let mut speed_cells = Vec::new();
        let mut energy_cells = Vec::new();
        for design in Design::SPMSPM_SET {
            let report = ctx.network_report(spec, design);
            speed_cells.push(ratio(report.speedup_over(&baseline)));
            energy_cells.push(ratio(report.energy_gain_over(&baseline)));
        }
        speedup.push_row(spec.name.clone(), speed_cells);
        energy.push_row(spec.name.clone(), energy_cells);
    }
    speedup.push_note(format!(
        "paper: LoAS(FT) mean speedups {:.2}x / {:.2}x / {:.2}x vs SparTen/GoSPA/Gamma; range {:.2}x (VGG16) to {:.2}x (ResNet19) vs SparTen",
        super::reference::fig12::MEAN_SPEEDUP_VS_SPARTEN,
        super::reference::fig12::MEAN_SPEEDUP_VS_GOSPA,
        super::reference::fig12::MEAN_SPEEDUP_VS_GAMMA,
        super::reference::fig12::VGG16_VS_SPARTEN,
        super::reference::fig12::RESNET19_VS_SPARTEN,
    ));
    energy.push_note(
        "paper: energy gains up to 3.68x (AlexNet vs SparTen-SNN); see reference::fig12::ENERGY_GAINS",
    );
    vec![speedup, energy]
}

/// Summary ratios used by integration tests: LoAS(FT) speedup over each
/// baseline, averaged over the three networks.
pub fn mean_speedups(ctx: &mut Context) -> (f64, f64, f64) {
    let specs = [networks::alexnet(), networks::vgg16(), networks::resnet19()];
    ctx.prefetch_network_reports(
        &specs,
        &[
            Design::LoasFt,
            Design::SparTen,
            Design::Gospa,
            Design::Gamma,
        ],
    );
    let mut vs = [0.0f64; 3];
    for spec in &specs {
        let ft = ctx.network_report(spec, Design::LoasFt);
        for (i, design) in [Design::SparTen, Design::Gospa, Design::Gamma]
            .into_iter()
            .enumerate()
        {
            vs[i] += ft.speedup_over(&ctx.network_report(spec, design));
        }
    }
    (vs[0] / 3.0, vs[1] / 3.0, vs[2] / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_consistently() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert!(t.is_consistent(), "{}", t.title);
            assert_eq!(t.rows.len(), 3);
        }
    }

    #[test]
    fn loas_wins_on_every_network_even_quick() {
        let mut ctx = Context::quick();
        let (s, g, gm) = mean_speedups(&mut ctx);
        assert!(s > 1.0, "vs SparTen {s}");
        assert!(g > 1.0, "vs GoSPA {g}");
        assert!(gm > 1.0, "vs Gamma {gm}");
    }
}
