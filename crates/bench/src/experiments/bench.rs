//! `bench` — the tracked simulator-performance record (`BENCH_PR*.json`).
//!
//! Not a paper figure: this experiment measures the *simulator itself* on
//! the Fig. 13 grid (AlexNet + VGG16 + ResNet19 across the five spMspM
//! designs) and persists the numbers that future perf PRs are judged
//! against. One record is committed per perf PR (`BENCH_PR3.json`,
//! `BENCH_PR5.json`, ...), forming the bench trajectory ci.sh enforces —
//! the current PR's record must not regress kernel pairs/s or end-to-end
//! wall time by more than 20% against its predecessor:
//!
//! * **A/B wall clock** — every design simulated single-threaded with the
//!   pre-kernel scalar sweep ([`SweepStrategy::Reference`]) and with the
//!   two-phase [`PairSweepKernel`] path, same prepared layers, per-design
//!   and total speedup;
//! * **kernel throughput** — pairs/second of the pure intersection phase,
//!   measured through the criterion shim's `measure_median`;
//! * **campaign wall time** — the whole grid as one cold-store engine
//!   campaign (fresh engine, one worker): generation + preparation +
//!   simulation end to end.
//!
//! The JSON lands at `BENCH_PR5.json` (override with `LOAS_BENCH_OUT`).
//! `repro all` skips this experiment — run it explicitly with
//! `repro bench` (CI runs `repro --quick bench` as a perf smoke).
//!
//! [`PairSweepKernel`]: loas_core::kernel::PairSweepKernel
//! [`SweepStrategy`]: loas_core::SweepStrategy

use crate::context::{Context, Design};
use crate::report::Table;
use loas_core::kernel::SweepMode;
use loas_core::{Accelerator, PreparedLayer, SweepStrategy};
use loas_engine::Campaign;
use loas_workloads::networks::{self, NetworkSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The perf PR this benchmark record belongs to (the trajectory key).
const BENCH_PR: u32 = 5;

/// Where the benchmark record is written.
fn output_path() -> String {
    std::env::var("LOAS_BENCH_OUT").unwrap_or_else(|_| format!("BENCH_PR{BENCH_PR}.json"))
}

fn grid() -> [NetworkSpec; 3] {
    [networks::alexnet(), networks::vgg16(), networks::resnet19()]
}

/// The prepared layers one design consumes (FT designs take the masked
/// workload variant), generated once through the context's engine cache.
fn design_layers(ctx: &Context, design: Design) -> Vec<Arc<PreparedLayer>> {
    let specs: Vec<_> = grid()
        .iter()
        .flat_map(|net| net.layers.clone())
        .map(|layer| {
            let spec = ctx.workload_spec(&layer);
            if design.uses_ft_workload() {
                spec.fine_tuned()
            } else {
                spec
            }
        })
        .collect();
    ctx.engine()
        .prepare(&specs)
        .expect("fig13 grid profiles are feasible")
}

/// One single-threaded simulation pass of `design` over its grid layers.
fn timed_pass(design: Design, layers: &[Arc<PreparedLayer>], sweep: SweepStrategy) -> f64 {
    let mut model = model_for(design, sweep);
    let start = Instant::now();
    let mut checksum = 0u64;
    for layer in layers {
        checksum = checksum.wrapping_add(model.run_layer(layer).stats.cycles.get());
    }
    std::hint::black_box(checksum);
    start.elapsed().as_secs_f64()
}

/// Builds the design's model pinned to the given sweep strategy (since
/// PR 5 every spMspM design has a Reference/Kernel toggle — Gamma and
/// GoSPA gained one with the span-based traffic path).
fn model_for(design: Design, sweep: SweepStrategy) -> Box<dyn Accelerator + Send> {
    match design {
        Design::SparTen => Box::new(loas_baselines::SparTenSnn::default().with_sweep(sweep)),
        Design::Gamma => Box::new(loas_baselines::GammaSnn::default().with_sweep(sweep)),
        Design::Gospa => Box::new(loas_baselines::GospaSnn::default().with_sweep(sweep)),
        Design::Loas | Design::LoasFt => {
            let spec = design.accelerator_spec();
            let config: &loas_core::LoasConfig =
                spec.typed_config().expect("LoAS designs map to LoAS specs");
            Box::new(loas_core::Loas::new(config.clone()).with_sweep(sweep))
        }
        _ => design.accelerator_spec().build(),
    }
}

/// Runs the benchmark, writes the JSON record, and returns the summary
/// table.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    run_to(ctx, &output_path())
}

/// [`run`] with an explicit record path (tests inject a temp path here
/// instead of mutating the process environment, which would race the
/// parallel test harness's `env::var` readers).
fn run_to(ctx: &mut Context, path: &str) -> Vec<Table> {
    let designs = Design::SPMSPM_SET;

    // ---- A/B: pre-kernel scalar sweep vs two-phase kernel, one thread.
    let mut rows: Vec<(Design, f64, f64)> = Vec::new();
    let mut scalar_total = 0.0f64;
    let mut kernel_total = 0.0f64;
    for design in designs {
        let layers = design_layers(ctx, design);
        let scalar = timed_pass(design, &layers, SweepStrategy::Reference);
        let kernel = timed_pass(design, &layers, SweepStrategy::Kernel);
        scalar_total += scalar;
        kernel_total += kernel;
        rows.push((design, scalar, kernel));
    }
    let speedup = scalar_total / kernel_total.max(1e-12);

    // ---- Kernel throughput: the pure intersection phase alone, via the
    // criterion shim (median of repeated full-grid sweeps).
    let layers = design_layers(ctx, Design::Loas);
    let pairs: u64 = layers
        .iter()
        .map(|layer| (layer.shape.m * layer.shape.n) as u64)
        .sum();
    let window = if ctx.is_quick() { 200 } else { 2000 };
    // Fiber-B word refs hoisted out of the timed closure: the persisted
    // pairs/s baseline must measure only the intersection sweep.
    let grid_b_words: Vec<Vec<&[u64]>> = layers
        .iter()
        .map(|layer| {
            layer
                .b_fibers
                .iter()
                .map(|fiber| fiber.bitmask().words())
                .collect()
        })
        .collect();
    let mut criterion =
        criterion::Criterion::default().measurement_time(Duration::from_millis(window));
    let median = criterion
        .measure_median("pair_sweep_fig13_grid", |bencher| {
            bencher.iter(|| {
                let kernel = loas_core::kernel::PairSweepKernel::new(128, Some(8));
                let mut total = 0u64;
                for (layer, b_words) in layers.iter().zip(&grid_b_words) {
                    let sweeps = kernel.sweep_layer(
                        &layer.row_blocks,
                        b_words,
                        16,
                        SweepMode::TemporalParallel,
                        1,
                    );
                    total += sweeps.iter().map(|s| s.matches_total).sum::<u64>();
                }
                total
            })
        })
        .expect("the sweep closure iterates");
    let pairs_per_sec = pairs as f64 / median.as_secs_f64().max(1e-12);

    // ---- End-to-end: the grid as one cold engine campaign (fresh engine,
    // fresh generation, one worker — nothing shared with the runs above).
    let mut campaign = Campaign::new("fig13-grid-bench");
    for net in grid() {
        let shrunk = NetworkSpec {
            name: net.name.clone(),
            layers: net.layers.iter().map(|l| ctx.shrink_layer(l)).collect(),
        };
        for design in designs {
            campaign.push_network(&shrunk, design.accelerator_spec(), ctx.generator().seed());
        }
    }
    let cold_engine = loas_engine::Engine::new(1);
    let outcome = cold_engine.run(&campaign).expect("grid profiles feasible");

    // ---- Persist the record.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"format\": \"loas-bench/1\",\n");
    json.push_str(&format!("  \"pr\": {BENCH_PR},\n"));
    json.push_str(&format!("  \"quick\": {},\n", ctx.is_quick()));
    json.push_str(
        "  \"grid\": \"fig13 (AlexNet+VGG16+ResNet19 x SparTen-SNN/GoSPA-SNN/Gamma-SNN/LoAS/LoAS-FT)\",\n",
    );
    json.push_str(&format!("  \"layers\": {},\n", layers.len()));
    json.push_str(&format!("  \"jobs\": {},\n", campaign.len()));
    json.push_str(&format!("  \"pairs\": {pairs},\n"));
    json.push_str("  \"workers\": 1,\n");
    json.push_str(&format!(
        "  \"kernel_pairs_per_sec\": {pairs_per_sec:.0},\n"
    ));
    for &(design, scalar, kernel) in &rows {
        json.push_str(&format!(
            "  \"{}\": {{\"scalar_seconds\": {scalar:.4}, \"kernel_seconds\": {kernel:.4}, \"speedup\": {:.3}}},\n",
            design.name().replace(['(', ')'], ""),
            scalar / kernel.max(1e-12)
        ));
    }
    json.push_str(&format!("  \"scalar_seconds\": {scalar_total:.4},\n"));
    json.push_str(&format!("  \"kernel_seconds\": {kernel_total:.4},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!(
        "  \"campaign_wall_seconds\": {:.4}\n",
        outcome.wall_seconds
    ));
    json.push_str("}\n");
    std::fs::write(path, json).unwrap_or_else(|error| panic!("cannot write {path}: {error}"));

    // ---- Summary table.
    let mut table = Table::new(
        "bench — simulator wall clock, fig13 grid, 1 thread (scalar = pre-kernel path)",
        vec!["design", "scalar (s)", "kernel (s)", "speedup"],
    );
    for &(design, scalar, kernel) in &rows {
        table.push_row(
            design.name().to_owned(),
            vec![
                format!("{scalar:.3}"),
                format!("{kernel:.3}"),
                format!("{:.2}x", scalar / kernel.max(1e-12)),
            ],
        );
    }
    table.push_row(
        "total".to_owned(),
        vec![
            format!("{scalar_total:.3}"),
            format!("{kernel_total:.3}"),
            format!("{speedup:.2}x"),
        ],
    );
    table.push_note(format!(
        "kernel sweep: {:.1}M pairs/s over {pairs} pairs; cold 1-worker campaign ({} jobs): {:.2}s; record: {path}",
        pairs_per_sec / 1e6,
        campaign.len(),
        outcome.wall_seconds
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_writes_record_and_reports_consistent_speedups() {
        let dir = std::env::temp_dir().join(format!("loas-bench-pr5-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_PR5.json");
        let mut ctx = Context::quick();
        let tables = run_to(&mut ctx, path.to_str().expect("utf-8 temp path"));
        assert_eq!(tables.len(), 1);
        assert!(tables[0].is_consistent());
        let written = std::fs::read_to_string(&path).expect("record written");
        assert!(written.contains("\"format\": \"loas-bench/1\""));
        assert!(written.contains(&format!("\"pr\": {BENCH_PR}")));
        assert!(written.contains("\"speedup\""));
        assert!(written.contains("\"campaign_wall_seconds\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
