//! Architectural scaling sweeps beyond the paper's figures: TPPE count,
//! off-chip bandwidth, and timestep count. These probe the design points the
//! paper's discussion section gestures at (scaling LoAS up, and how far the
//! FTP advantage carries as `T` grows toward the silent-neuron erosion of
//! Fig. 16(b)).

use crate::context::Context;
use crate::report::{num, ratio, Table};
use loas_core::{Accelerator, Loas, LoasConfig, PreparedLayer};
use loas_workloads::networks::{self, profiles};
use loas_workloads::TemporalScalingModel;

fn v_l8(ctx: &Context) -> PreparedLayer {
    let mut spec = networks::selected_layers()[1].clone();
    if ctx.is_quick() {
        spec.shape.m = spec.shape.m.min(16);
        spec.shape.n = spec.shape.n.min(32);
        spec.shape.k = spec.shape.k.min(512);
    }
    let workload = spec.generate(ctx.generator()).expect("V-L8 feasible");
    PreparedLayer::new(&workload)
}

/// Runs the three sweeps.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let layer = v_l8(ctx);

    // ---- Sweep 1: TPPE count (spatial scaling). V-L8 has M = 16 rows, so
    // scaling past the row count exposes the row-tile mapping limit the
    // paper notes for small-M layers.
    let mut pes = Table::new(
        "Sweep — TPPE count (V-L8)",
        vec!["TPPEs", "cycles", "speedup vs 16", "note"],
    );
    let base_cycles = Loas::default().run_layer(&layer).stats.cycles.get() as f64;
    for tppes in [4usize, 8, 16, 32] {
        let report = Loas::new(LoasConfig::builder().tppes(tppes).build()).run_layer(&layer);
        let cycles = report.stats.cycles.get() as f64;
        let note = if tppes > layer.shape.m {
            "rows < TPPEs: extra PEs idle"
        } else {
            ""
        };
        pes.push_row(
            format!("{tppes}"),
            vec![
                format!("{cycles:.0}"),
                ratio(base_cycles / cycles),
                note.to_owned(),
            ],
        );
    }
    pes.push_note("the row-per-TPPE mapping caps useful spatial scaling at M rows");

    // ---- Sweep 2: off-chip bandwidth.
    let mut bw = Table::new(
        "Sweep — HBM bandwidth (V-L8)",
        vec!["GB/s", "cycles", "stall cycles", "bound"],
    );
    for gbps in [16.0f64, 32.0, 64.0, 128.0, 256.0] {
        let report = Loas::new(LoasConfig::builder().hbm_gbps(gbps).build()).run_layer(&layer);
        let stalls = report.stats.stall_cycles.get();
        bw.push_row(
            format!("{gbps:.0}"),
            vec![
                format!("{}", report.stats.cycles.get()),
                format!("{stalls}"),
                if stalls > 0 { "memory" } else { "compute" }.to_owned(),
            ],
        );
    }
    bw.push_note("Table III's 128 GB/s keeps V-L8 compute-bound; the knee shows where FTP would starve");

    // ---- Sweep 3: timesteps 2..16 with sparsity extrapolated by the
    // temporal mixture (Fig. 16(b) model), reporting cycles per timestep —
    // the FTP scaling story end to end.
    let mut tsweep = Table::new(
        "Sweep — timesteps (V-L8 profile extrapolated)",
        vec!["T", "cycles", "cycles per timestep", "silent %"],
    );
    let temporal = TemporalScalingModel::fit(
        &profiles::v_l8(),
        4,
        TemporalScalingModel::DEFAULT_ALPHA,
    )
    .expect("V-L8 fits the temporal mixture");
    for t in [2usize, 4, 8, 16] {
        let Ok(profile) = temporal.profile_at(t) else {
            continue;
        };
        let mut shape = layer.shape;
        shape.t = t;
        let Ok(workload) = ctx
            .generator()
            .generate(&format!("tsweep-{t}"), shape, &profile)
        else {
            continue;
        };
        let report = Loas::new(LoasConfig::builder().timesteps(t).build())
            .run_layer(&PreparedLayer::new(&workload));
        let cycles = report.stats.cycles.get();
        tsweep.push_row(
            format!("T={t}"),
            vec![
                format!("{cycles}"),
                num(cycles as f64 / t as f64),
                num(temporal.silent_at(t) * 100.0),
            ],
        );
    }
    tsweep.push_note("FTP amortizes timesteps: cycles grow sublinearly in T until silence erodes (Fig. 16(b))");
    vec![pes, bw, tsweep]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_render_consistently() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(t.is_consistent(), "{}", t.title);
        }
    }

    #[test]
    fn more_tppes_never_slow_the_layer() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let cycles: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|(_, c)| c[0].parse().unwrap())
            .collect();
        assert!(
            cycles.windows(2).all(|w| w[1] <= w[0] * 1.001),
            "cycles must be non-increasing in TPPEs: {cycles:?}"
        );
    }

    #[test]
    fn ftp_cycles_grow_sublinearly_in_t() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let per_t: Vec<f64> = tables[2]
            .rows
            .iter()
            .map(|(_, c)| c[1].parse().unwrap())
            .collect();
        assert!(per_t.len() >= 3);
        // Cycles per timestep shrink as T grows (amortization).
        assert!(
            per_t.last().unwrap() < per_t.first().unwrap(),
            "per-timestep cost must fall: {per_t:?}"
        );
    }

    #[test]
    fn low_bandwidth_becomes_memory_bound() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let bounds: Vec<&str> = tables[1]
            .rows
            .iter()
            .map(|(_, c)| c[2].as_str())
            .collect();
        // The highest bandwidth point must be compute-bound.
        assert_eq!(*bounds.last().unwrap(), "compute");
    }
}
