//! Architectural scaling sweeps beyond the paper's figures: TPPE count,
//! off-chip bandwidth, timestep count, and — through the open accelerator
//! catalog — a **baseline**-config sweep (Gamma-SNN's FiberCache
//! capacity, the ablation knob the Gamma paper itself sweeps). These
//! probe the design points the paper's discussion section gestures at
//! (scaling LoAS up, and how far the FTP advantage carries as `T` grows
//! toward the silent-neuron erosion of Fig. 16(b)).
//!
//! All four sweeps run as **one campaign**: the V-L8 workload is prepared
//! once and shared by the configuration-variant jobs, and the
//! timestep-sweep workloads ride in the same sharded batch.

use crate::context::Context;
use crate::report::{num, ratio, Table};
use loas_baselines::GammaConfig;
use loas_core::LoasConfig;
use loas_engine::{AcceleratorSpec, Campaign, WorkloadSpec};
use loas_workloads::networks::{self, profiles};
use loas_workloads::TemporalScalingModel;

const TPPE_POINTS: [usize; 4] = [4, 8, 16, 32];
const BW_POINTS: [f64; 5] = [16.0, 32.0, 64.0, 128.0, 256.0];
const T_POINTS: [usize; 4] = [2, 4, 8, 16];
/// Shared with `loas-serve spec --gamma-cache`, so the served sweep and
/// this table can never drift apart.
const GAMMA_CACHE_POINTS: [usize; 4] = GammaConfig::CACHE_SWEEP_POINTS;

/// Runs the four sweeps.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let v_l8_spec = ctx.shrink_layer(&networks::selected_layers()[1]);
    let v_l8 = ctx.workload_spec(&v_l8_spec);

    // ---- Build the whole sweep grid as one campaign.
    let mut campaign = Campaign::new("sweeps");
    let pe_jobs: Vec<usize> = TPPE_POINTS
        .iter()
        .map(|&tppes| {
            campaign.push_layer(
                v_l8.clone(),
                AcceleratorSpec::loas_with(LoasConfig::builder().tppes(tppes).build()),
            )
        })
        .collect();
    let bw_jobs: Vec<usize> = BW_POINTS
        .iter()
        .map(|&gbps| {
            campaign.push_layer(
                v_l8.clone(),
                AcceleratorSpec::loas_with(LoasConfig::builder().hbm_gbps(gbps).build()),
            )
        })
        .collect();
    // Timestep sweep: sparsity extrapolated by the temporal mixture
    // (Fig. 16(b) model), fresh workload per T.
    let temporal =
        TemporalScalingModel::fit(&profiles::v_l8(), 4, TemporalScalingModel::DEFAULT_ALPHA)
            .expect("V-L8 fits the temporal mixture");
    let mut t_jobs: Vec<(usize, usize)> = Vec::new(); // (T, job id)
    for t in T_POINTS {
        let Ok(profile) = temporal.profile_at(t) else {
            continue;
        };
        // Skip T points whose extrapolated profile the firing-model solve
        // cannot realise (generation's only failure mode), as the
        // pre-campaign loop did — a panic would abort the whole repro run.
        if profile.firing_model(t).is_err() {
            continue;
        }
        let mut shape = v_l8_spec.shape;
        shape.t = t;
        let workload = WorkloadSpec::new(format!("tsweep-{t}"), shape, profile)
            .with_seed(ctx.generator().seed());
        let job = campaign.push_layer(
            workload,
            AcceleratorSpec::loas_with(LoasConfig::builder().timesteps(t).build()),
        );
        t_jobs.push((t, job));
    }
    // Baseline-config sweep via the catalog: Gamma-SNN's FiberCache
    // capacity, a typed non-LoAS config riding in the same campaign.
    let gamma_jobs: Vec<usize> = GAMMA_CACHE_POINTS
        .iter()
        .map(|&bytes| {
            campaign.push_layer(
                v_l8.clone(),
                AcceleratorSpec::from_config(GammaConfig::builder().cache_bytes(bytes).build()),
            )
        })
        .collect();
    let outcome = ctx.run_campaign(&campaign);

    // ---- Sweep 1: TPPE count (spatial scaling). V-L8 has M = 16 rows, so
    // scaling past the row count exposes the row-tile mapping limit the
    // paper notes for small-M layers.
    let mut pes = Table::new(
        "Sweep — TPPE count (V-L8)",
        vec!["TPPEs", "cycles", "speedup vs 16", "note"],
    );
    // Table III's 16-TPPE point is the normalization base.
    let base_cycles = outcome.layer_report(pe_jobs[2]).stats.cycles.get() as f64;
    for (&tppes, &job) in TPPE_POINTS.iter().zip(&pe_jobs) {
        let cycles = outcome.layer_report(job).stats.cycles.get() as f64;
        let note = if tppes > v_l8_spec.shape.m {
            "rows < TPPEs: extra PEs idle"
        } else {
            ""
        };
        pes.push_row(
            format!("{tppes}"),
            vec![
                format!("{cycles:.0}"),
                ratio(base_cycles / cycles),
                note.to_owned(),
            ],
        );
    }
    pes.push_note("the row-per-TPPE mapping caps useful spatial scaling at M rows");

    // ---- Sweep 2: off-chip bandwidth.
    let mut bw = Table::new(
        "Sweep — HBM bandwidth (V-L8)",
        vec!["GB/s", "cycles", "stall cycles", "bound"],
    );
    for (&gbps, &job) in BW_POINTS.iter().zip(&bw_jobs) {
        let report = outcome.layer_report(job);
        let stalls = report.stats.stall_cycles.get();
        bw.push_row(
            format!("{gbps:.0}"),
            vec![
                format!("{}", report.stats.cycles.get()),
                format!("{stalls}"),
                if stalls > 0 { "memory" } else { "compute" }.to_owned(),
            ],
        );
    }
    bw.push_note(
        "Table III's 128 GB/s keeps V-L8 compute-bound; the knee shows where FTP would starve",
    );

    // ---- Sweep 3: timesteps 2..16, reporting cycles per timestep — the
    // FTP scaling story end to end.
    let mut tsweep = Table::new(
        "Sweep — timesteps (V-L8 profile extrapolated)",
        vec!["T", "cycles", "cycles per timestep", "silent %"],
    );
    for (t, job) in t_jobs {
        let cycles = outcome.layer_report(job).stats.cycles.get();
        tsweep.push_row(
            format!("T={t}"),
            vec![
                format!("{cycles}"),
                num(cycles as f64 / t as f64),
                num(temporal.silent_at(t) * 100.0),
            ],
        );
    }
    tsweep.push_note(
        "FTP amortizes timesteps: cycles grow sublinearly in T until silence erodes (Fig. 16(b))",
    );

    // ---- Sweep 4: Gamma-SNN FiberCache capacity — the baseline-config
    // sweep the closed-enum spec layer could not express.
    let mut gamma = Table::new(
        "Sweep — Gamma-SNN FiberCache capacity (V-L8)",
        vec!["cache", "cycles", "DRAM bytes", "miss rate"],
    );
    for (&bytes, &job) in GAMMA_CACHE_POINTS.iter().zip(&gamma_jobs) {
        let report = outcome.layer_report(job);
        gamma.push_row(
            format!("{}KB", bytes / 1024),
            vec![
                format!("{}", report.stats.cycles.get()),
                format!("{}", report.stats.dram.total()),
                num(report.stats.cache.miss_rate()),
            ],
        );
    }
    gamma.push_note(
        "typed GammaConfig jobs through the accelerator catalog: capacity relieves the t-repeated fiber refetches",
    );
    vec![pes, bw, tsweep, gamma]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_render_consistently() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(t.is_consistent(), "{}", t.title);
        }
    }

    #[test]
    fn gamma_cache_capacity_relieves_dram_traffic() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let dram: Vec<u64> = tables[3]
            .rows
            .iter()
            .map(|(_, c)| c[1].parse().unwrap())
            .collect();
        assert_eq!(dram.len(), GAMMA_CACHE_POINTS.len());
        assert!(
            dram.windows(2).all(|w| w[1] <= w[0]),
            "a larger FiberCache must never add DRAM traffic: {dram:?}"
        );
    }

    #[test]
    fn more_tppes_never_slow_the_layer() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let cycles: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|(_, c)| c[0].parse().unwrap())
            .collect();
        assert!(
            cycles.windows(2).all(|w| w[1] <= w[0] * 1.001),
            "cycles must be non-increasing in TPPEs: {cycles:?}"
        );
    }

    #[test]
    fn ftp_cycles_grow_sublinearly_in_t() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let per_t: Vec<f64> = tables[2]
            .rows
            .iter()
            .map(|(_, c)| c[1].parse().unwrap())
            .collect();
        assert!(per_t.len() >= 3);
        // Cycles per timestep shrink as T grows (amortization).
        assert!(
            per_t.last().unwrap() < per_t.first().unwrap(),
            "per-timestep cost must fall: {per_t:?}"
        );
    }

    #[test]
    fn low_bandwidth_becomes_memory_bound() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let bounds: Vec<&str> = tables[1].rows.iter().map(|(_, c)| c[2].as_str()).collect();
        // The highest bandwidth point must be compute-bound.
        assert_eq!(*bounds.last().unwrap(), "compute");
    }

    #[test]
    fn v_l8_is_prepared_once_for_all_config_variants() {
        let mut ctx = Context::quick();
        run(&mut ctx);
        let stats = ctx.engine().cache_stats();
        // 1x V-L8 + one workload per feasible timestep point.
        assert!(
            stats.generated <= 1 + T_POINTS.len(),
            "generated {}",
            stats.generated
        );
        assert!(
            stats.hits >= TPPE_POINTS.len() + BW_POINTS.len(),
            "config-variant jobs share the cached layer (hits {})",
            stats.hits
        );
    }
}
