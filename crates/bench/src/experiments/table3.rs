//! Table III — the LoAS system configuration.

use crate::context::Context;
use crate::report::Table;
use loas_core::LoasConfig;

/// Prints the configuration the simulator instantiates (and asserts it is
/// the Table III design point).
pub fn run(_ctx: &mut Context) -> Vec<Table> {
    let c = LoasConfig::table3();
    let mut t = Table::new(
        "Table III — configuration of the LoAS system",
        vec!["component", "configuration"],
    );
    t.push_row(
        "TPPEs",
        vec![format!("{} TPPEs, {}-bit weight", c.tppes, c.weight_bits)],
    );
    t.push_row(
        "Inner-join unit",
        vec![format!(
            "{} units; fast prefix-sum 1 cycle, laggy {} adders / {} cycles over {}-bit masks",
            c.tppes,
            c.laggy_adders,
            c.laggy_latency_cycles(),
            c.bitmask_bits
        )],
    );
    t.push_row(
        "Global cache",
        vec![format!(
            "{} KB, {} banks, {}-way associative",
            c.cache_bytes / 1024,
            c.cache_banks,
            c.cache_ways
        )],
    );
    t.push_row(
        "Crossbars",
        vec![format!(
            "{0}x{0} and {0}x{0}, swizzle-switch based",
            c.tppes
        )],
    );
    t.push_row(
        "Main memory",
        vec![format!(
            "{} GB/s over {} 64-bit HBM channels",
            c.hbm_gbps, c.hbm_channels
        )],
    );
    t.push_row(
        "FIFOs / buffers",
        vec![format!(
            "2 depth-{} FIFOs, 2 {}-bit bitmask buffers, {} B weight buffer",
            c.fifo_depth, c.bitmask_bits, c.weight_buffer_bytes
        )],
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_table3_values() {
        let t = &run(&mut Context::quick())[0];
        assert!(t.is_consistent());
        let text = t.to_string();
        assert!(text.contains("256 KB"));
        assert!(text.contains("128 GB/s"));
        assert!(text.contains("16 TPPEs"));
    }
}
