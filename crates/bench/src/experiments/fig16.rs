//! Fig. 16 — (a) TPPE area/power scaling with timesteps; (b) silent-neuron
//! ratio vs timesteps for VGG16 (origin and fine-tuned).
//!
//! Panels (a) and (b) are analytic (area/power model + temporal mixture).
//! They are complemented by a **measured** panel executed as an engine
//! campaign: LoAS configured for `T ∈ {4, 8, 16}` simulating a
//! VGG16-representative layer whose sparsity profile is extrapolated by
//! the same temporal mixture — the cycle-level counterpart of the paper's
//! claim that FTP scales gracefully with `T`.

use crate::context::Context;
use crate::report::{num, pct, ratio, Table};
use loas_core::{AreaPowerModel, LoasConfig};
use loas_engine::{AcceleratorSpec, Campaign, WorkloadSpec};
use loas_workloads::networks::{self, profiles};
use loas_workloads::TemporalScalingModel;

/// Regenerates both Fig. 16 panels plus the measured timestep-scaling
/// campaign.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let model = AreaPowerModel::loas_default();
    let mut a = Table::new(
        "Fig. 16(a) — TPPE scaling with timesteps",
        vec![
            "T",
            "area mm2",
            "t-dep area share",
            "power mW",
            "t-dep power share",
            "area vs T=4",
            "power vs T=4",
        ],
    );
    for t in [4usize, 8, 16] {
        a.push_row(
            format!("T={t}"),
            vec![
                format!("{:.4}", model.tppe_area_mm2(t)),
                pct(model.tppe_area_t_share(t) * 100.0),
                format!("{:.3}", model.tppe_power_mw(t)),
                pct(model.tppe_power_t_share(t) * 100.0),
                ratio(model.tppe_area_mm2(t) / model.tppe_area_mm2(4)),
                ratio(model.tppe_power_mw(t) / model.tppe_power_mw(4)),
            ],
        );
    }
    a.push_note("paper shares: area 12.5/22.2/36.3 %, power 8.4/15.5/26.8 %; growth T=16 vs T=4: 1.37x area, 1.25x power");

    let temporal =
        TemporalScalingModel::fit(&profiles::vgg16(), 4, TemporalScalingModel::DEFAULT_ALPHA)
            .expect("VGG16 profile fits the temporal mixture");
    let mut b = Table::new(
        "Fig. 16(b) — VGG16 silent-neuron ratio vs T (normalized to T=4)",
        vec!["T", "origin", "origin (norm)", "FT", "FT (norm)"],
    );
    let s4 = temporal.silent_at(4);
    let ft4 = temporal.silent_ft_at(4);
    for t in [4usize, 8, 16] {
        b.push_row(
            format!("T={t}"),
            vec![
                pct(temporal.silent_at(t) * 100.0),
                ratio(temporal.silent_at(t) / s4),
                pct(temporal.silent_ft_at(t) * 100.0),
                ratio(temporal.silent_ft_at(t) / ft4),
            ],
        );
    }
    b.push_note("paper: with preprocessing, T=8 keeps a silent ratio similar to T=4; beyond T=8 silence erodes");

    // ---- Measured panel: one campaign, one LoAS job per timestep count,
    // on the V-L8-representative shape at the extrapolated profile.
    let base_shape = ctx.shrink_layer(&networks::selected_layers()[1]).shape;
    let mut campaign = Campaign::new("fig16-measured");
    let points: Vec<(usize, usize)> = [4usize, 8, 16]
        .into_iter()
        .filter_map(|t| {
            let profile = temporal.profile_at(t).ok()?;
            let mut shape = base_shape;
            shape.t = t;
            let workload = WorkloadSpec::new(format!("fig16-T{t}"), shape, profile)
                .with_seed(ctx.generator().seed());
            let accelerator =
                AcceleratorSpec::loas_with(LoasConfig::builder().timesteps(t).build());
            Some((t, campaign.push_layer(workload, accelerator)))
        })
        .collect();
    if points.is_empty() {
        return vec![a, b];
    }
    let outcome = ctx.run_campaign(&campaign);
    let mut measured = Table::new(
        "Fig. 16 (measured) — LoAS cycles vs T (V-L8 shape, temporal-mixture profiles)",
        vec!["T", "cycles", "cycles/T", "cycles vs T=4"],
    );
    // T=4 is the mixture's calibration point, so it is always first; fall
    // back to the smallest feasible T if that ever changes.
    let baseline_job = points
        .iter()
        .find(|&&(t, _)| t == 4)
        .unwrap_or(&points[0])
        .1;
    let t4_cycles = outcome.layer_report(baseline_job).stats.cycles.get() as f64;
    for &(t, job) in &points {
        let cycles = outcome.layer_report(job).stats.cycles.get() as f64;
        measured.push_row(
            format!("T={t}"),
            vec![
                format!("{cycles:.0}"),
                format!("{:.0}", cycles / t as f64),
                num(cycles / t4_cycles),
            ],
        );
    }
    measured.push_note(
        "FTP keeps latency growth far below the TxN recompute of serialized timesteps; compare the analytic area/power growth in panel (a)",
    );
    vec![a, b, measured]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_matches_paper_points() {
        let tables = run(&mut Context::quick());
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(t.is_consistent());
        }
        let text = tables[0].to_string();
        assert!(text.contains("22.2%"), "T=8 area share: {text}");
        assert!(
            text.contains("36.3%") || text.contains("36.4%"),
            "T=16 area share (paper prints 36.3%): {text}"
        );
    }

    #[test]
    fn measured_campaign_scales_sublinearly_with_t() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let measured = &tables[2];
        assert!(measured.rows.len() >= 2, "at least T=4 and T=8 simulate");
        let cycles = |row: usize| -> f64 { measured.rows[row].1[0].parse().unwrap() };
        // Doubling the temporal window must cost far less than doubling
        // latency — the fully temporal-parallel claim, now measured.
        assert!(
            cycles(1) < 2.0 * cycles(0),
            "T=8 vs T=4: {} vs {}",
            cycles(1),
            cycles(0)
        );
        // The campaign ran through the shared engine (prepared cache).
        assert!(ctx.engine().cache_stats().generated >= measured.rows.len());
    }

    #[test]
    fn ft_keeps_silence_at_t8() {
        let tables = run(&mut Context::quick());
        // FT normalized value at T=8 (row 1, col 3) stays above 0.9.
        let ft8: f64 = tables[1].rows[1].1[3]
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(ft8 > 0.9, "FT at T=8 near T=4 ratio: {ft8}");
    }
}
