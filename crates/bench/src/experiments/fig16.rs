//! Fig. 16 — (a) TPPE area/power scaling with timesteps; (b) silent-neuron
//! ratio vs timesteps for VGG16 (origin and fine-tuned).

use crate::context::Context;
use crate::report::{pct, ratio, Table};
use loas_core::AreaPowerModel;
use loas_workloads::networks::profiles;
use loas_workloads::TemporalScalingModel;

/// Regenerates both Fig. 16 panels.
pub fn run(_ctx: &mut Context) -> Vec<Table> {
    let model = AreaPowerModel::loas_default();
    let mut a = Table::new(
        "Fig. 16(a) — TPPE scaling with timesteps",
        vec![
            "T",
            "area mm2",
            "t-dep area share",
            "power mW",
            "t-dep power share",
            "area vs T=4",
            "power vs T=4",
        ],
    );
    for t in [4usize, 8, 16] {
        a.push_row(
            format!("T={t}"),
            vec![
                format!("{:.4}", model.tppe_area_mm2(t)),
                pct(model.tppe_area_t_share(t) * 100.0),
                format!("{:.3}", model.tppe_power_mw(t)),
                pct(model.tppe_power_t_share(t) * 100.0),
                ratio(model.tppe_area_mm2(t) / model.tppe_area_mm2(4)),
                ratio(model.tppe_power_mw(t) / model.tppe_power_mw(4)),
            ],
        );
    }
    a.push_note("paper shares: area 12.5/22.2/36.3 %, power 8.4/15.5/26.8 %; growth T=16 vs T=4: 1.37x area, 1.25x power");

    let temporal =
        TemporalScalingModel::fit(&profiles::vgg16(), 4, TemporalScalingModel::DEFAULT_ALPHA)
            .expect("VGG16 profile fits the temporal mixture");
    let mut b = Table::new(
        "Fig. 16(b) — VGG16 silent-neuron ratio vs T (normalized to T=4)",
        vec!["T", "origin", "origin (norm)", "FT", "FT (norm)"],
    );
    let s4 = temporal.silent_at(4);
    let ft4 = temporal.silent_ft_at(4);
    for t in [4usize, 8, 16] {
        b.push_row(
            format!("T={t}"),
            vec![
                pct(temporal.silent_at(t) * 100.0),
                ratio(temporal.silent_at(t) / s4),
                pct(temporal.silent_ft_at(t) * 100.0),
                ratio(temporal.silent_ft_at(t) / ft4),
            ],
        );
    }
    b.push_note("paper: with preprocessing, T=8 keeps a silent ratio similar to T=4; beyond T=8 silence erodes");
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_matches_paper_points() {
        let tables = run(&mut Context::quick());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert!(t.is_consistent());
        }
        let text = tables[0].to_string();
        assert!(text.contains("22.2%"), "T=8 area share: {text}");
        assert!(
            text.contains("36.3%") || text.contains("36.4%"),
            "T=16 area share (paper prints 36.3%): {text}"
        );
    }

    #[test]
    fn ft_keeps_silence_at_t8() {
        let tables = run(&mut Context::quick());
        // FT normalized value at T=8 (row 1, col 3) stays above 0.9.
        let ft8: f64 = tables[1].rows[1].1[3]
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(ft8 > 0.9, "FT at T=8 near T=4 ratio: {ft8}");
    }
}
