//! Fig. 5 — off-chip partial-sum traffic of an OP-dataflow accelerator
//! (GoSPA) on SNN layers at T = 1 vs T = 4.

use crate::context::Context;
use crate::report::{ratio, Table};
use loas_baselines::GospaSnn;
use loas_core::{Accelerator, PreparedLayer};
use loas_sim::TrafficClass;
use loas_workloads::networks::{self, profiles};
use loas_workloads::LayerShape;

/// The three layers of Fig. 5 with their network-average profiles.
fn fig5_layers() -> Vec<(&'static str, LayerShape, loas_workloads::SparsityProfile)> {
    let alexnet = networks::alexnet();
    let vgg = networks::vgg16();
    let resnet = networks::resnet19();
    vec![
        ("AlexNet-L1", alexnet.layers[0].shape, profiles::alexnet()),
        ("VGG16-L8", vgg.layers[7].shape, profiles::vgg16()),
        ("ResNet19-L8", resnet.layers[7].shape, profiles::resnet19()),
    ]
}

/// Regenerates Fig. 5: psum off-chip traffic at T = 1 and T = 4.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 5 — off-chip psum traffic on GoSPA-SNN (KB)",
        vec!["layer", "T=1", "T=4", "ratio"],
    );
    let mut ratios = Vec::new();
    for (name, shape, profile) in fig5_layers() {
        let mut row = Vec::new();
        let mut traffic = Vec::new();
        for timesteps in [1usize, 4] {
            let shape_t = LayerShape {
                t: timesteps,
                ..shape
            };
            let workload = ctx
                .generator()
                .generate(&format!("{name}-T{timesteps}"), shape_t, &profile)
                .expect("profiles feasible at T=1 and T=4");
            let report = GospaSnn::default().run_layer(&PreparedLayer::new(&workload));
            let kb = report.stats.dram.get(TrafficClass::Psum) as f64 / 1024.0;
            traffic.push(kb);
            row.push(format!("{kb:.1}"));
        }
        let r = if traffic[0] > 0.0 {
            traffic[1] / traffic[0]
        } else if traffic[1] > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        ratios.push(r);
        row.push(if r.is_finite() {
            ratio(r)
        } else {
            "inf".to_owned()
        });
        t.push_row(name, row);
    }
    t.push_note("paper: ~4x more psum traffic at T=4 than T=1 on average");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_never_below_t1() {
        let mut ctx = Context::quick();
        let t = &run(&mut ctx)[0];
        assert_eq!(t.rows.len(), 3);
        assert!(t.is_consistent());
    }
}
