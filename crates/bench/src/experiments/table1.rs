//! Table I — qualitative comparison of LoAS with prior SNN accelerators.

use crate::context::Context;
use crate::report::Table;

/// Regenerates the feature matrix (static by nature; included so `repro all`
/// covers every table).
pub fn run(_ctx: &mut Context) -> Vec<Table> {
    let mut t = Table::new(
        "Table I — comparison with prior SNN accelerators",
        vec![
            "accelerator",
            "spike sparsity",
            "weight sparsity",
            "parallelism",
            "neuron",
        ],
    );
    for (name, spike, weight, par, neuron) in [
        ("SpinalFlow", "yes", "no", "S", "LIF"),
        ("PTB", "yes", "no", "S + partial-T", "LIF"),
        ("Stellar", "yes", "no", "S + fully-T", "FS"),
        ("LoAS (ours)", "yes", "yes", "S + fully-T", "LIF"),
    ] {
        t.push_row(
            name,
            vec![spike.into(), weight.into(), par.into(), neuron.into()],
        );
    }
    t.push_note("S = spatial (PE-level) parallelism, T = temporal parallelism");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_designs_listed() {
        let t = &run(&mut Context::quick())[0];
        assert_eq!(t.rows.len(), 4);
        assert!(t.is_consistent());
        assert!(t.rows[3].0.contains("LoAS"));
    }
}
