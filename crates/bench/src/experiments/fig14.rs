//! Fig. 14 — off-chip traffic breakup (weight / input / psum / format /
//! output) for the three selected layers, normalized to LoAS, plus the
//! SRAM miss-rate comparison on the ResNet19 layer.
//!
//! The `3 layers x 4 designs` grid runs as one campaign on the context's
//! engine: each layer is generated and prepared once and shared by all
//! four design jobs.

use crate::context::{Context, Design};
use crate::report::{num, Table};
use loas_engine::Campaign;
use loas_sim::TrafficClass;
use loas_workloads::networks;

const DESIGNS: [Design; 4] = [Design::SparTen, Design::Gospa, Design::Gamma, Design::Loas];

/// Regenerates Fig. 14 on A-L4 / V-L8 / R-L19.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let layer_specs: Vec<_> = networks::selected_layers()
        .iter()
        .take(3)
        .map(|spec| ctx.shrink_layer(spec))
        .collect();

    // One campaign: every (layer, design) pair as a job. LoAS(FT) is not
    // part of this figure, so no fine-tuned workload variants appear and
    // each layer maps to exactly one cached preparation.
    let mut campaign = Campaign::new("fig14");
    let mut job_ids = Vec::new();
    for layer_spec in &layer_specs {
        let workload = ctx.workload_spec(layer_spec);
        let per_design: Vec<usize> = DESIGNS
            .iter()
            .map(|design| campaign.push_layer(workload.clone(), design.accelerator_spec()))
            .collect();
        job_ids.push(per_design);
    }
    let outcome = ctx.run_campaign(&campaign);

    let mut tables = Vec::new();
    let mut miss = Table::new(
        "Fig. 14 (inset) — SRAM miss rate on R-L19 (normalized to LoAS)",
        vec!["design", "miss rate %", "vs LoAS"],
    );
    for (layer_spec, per_design) in layer_specs.iter().zip(&job_ids) {
        let mut t = Table::new(
            format!(
                "Fig. 14 — off-chip traffic breakup on {} (normalized to LoAS total)",
                layer_spec.name
            ),
            vec![
                "design", "weight", "input", "psum", "output", "format", "total",
            ],
        );
        let loas_total = outcome
            .layer_report(per_design[3])
            .stats
            .dram
            .total()
            .max(1) as f64;
        let mut loas_miss = 0.0;
        for (design, &job) in DESIGNS.iter().zip(per_design) {
            let stats = &outcome.layer_report(job).stats;
            let cells: Vec<String> = [
                TrafficClass::Weight,
                TrafficClass::Input,
                TrafficClass::Psum,
                TrafficClass::Output,
                TrafficClass::Format,
            ]
            .iter()
            .map(|&c| num(stats.dram.get(c) as f64 / loas_total))
            .chain([num(stats.dram.total() as f64 / loas_total)])
            .collect();
            t.push_row(design.name(), cells);
            if layer_spec.name == "R-L19" {
                let rate = stats.cache.miss_rate() * 100.0;
                if matches!(design, Design::Loas) {
                    loas_miss = rate;
                }
                miss.push_row(design.name(), vec![format!("{rate:.3}"), String::new()]);
            }
        }
        if layer_spec.name == "R-L19" {
            for (_, cells) in &mut miss.rows {
                let rate: f64 = cells[0].parse().unwrap();
                cells[1] = num(rate / loas_miss.max(1e-9));
            }
        }
        t.push_note("paper: SparTen-SNN largest input traffic (dense spikes); GoSPA-SNN largest psum and format traffic; LoAS format ~2.1x SparTen's (extra non-silent bitmasks)");
        tables.push(t);
    }
    miss.push_note("paper: SparTen-SNN 16x the LoAS miss rate (1.47%); GoSPA lowest (output-stationary). Absolute rates depend on access-granularity conventions; see EXPERIMENTS.md");
    tables.push(miss);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualitative_breakup_claims_hold() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(t.is_consistent(), "{}", t.title);
        }
        // In every layer table: SparTen has the largest input row, GoSPA
        // the largest psum.
        for t in &tables[..3] {
            let get = |row: usize, col: usize| -> f64 { t.rows[row].1[col].parse().unwrap() };
            let input_col = 1;
            let psum_col = 2;
            let sparten_input = get(0, input_col);
            let gospa_psum = get(1, psum_col);
            for row in 0..4 {
                // 15% slack: Gamma's per-row pointers sit on top of the
                // same dense spike-train footprint SparTen fetches, and the
                // cells round to two decimals.
                assert!(
                    get(row, input_col) <= sparten_input * 1.15 + 0.01,
                    "{} row {row}",
                    t.title
                );
                assert!(get(row, psum_col) <= gospa_psum, "{}", t.title);
            }
        }
    }

    #[test]
    fn layers_are_prepared_once_for_all_designs() {
        let mut ctx = Context::quick();
        run(&mut ctx);
        let stats = ctx.engine().cache_stats();
        assert_eq!(stats.generated, 3, "one preparation per selected layer");
        assert!(stats.hits >= 12, "all 12 jobs resolve through the cache");
    }
}
