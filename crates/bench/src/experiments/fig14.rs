//! Fig. 14 — off-chip traffic breakup (weight / input / psum / format /
//! output) for the three selected layers, normalized to LoAS, plus the
//! SRAM miss-rate comparison on the ResNet19 layer.

use crate::context::{run_design, Context, Design};
use crate::report::{num, Table};
use loas_core::PreparedLayer;
use loas_sim::TrafficClass;
use loas_workloads::networks;

/// Regenerates Fig. 14 on A-L4 / V-L8 / R-L19.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut miss = Table::new(
        "Fig. 14 (inset) — SRAM miss rate on R-L19 (normalized to LoAS)",
        vec!["design", "miss rate %", "vs LoAS"],
    );
    for layer_spec in networks::selected_layers().iter().take(3) {
        let mut layer_spec = layer_spec.clone();
        if ctx.is_quick() {
            layer_spec.shape.m = layer_spec.shape.m.clamp(1, 16);
            layer_spec.shape.n = layer_spec.shape.n.min(32);
            layer_spec.shape.k = layer_spec.shape.k.min(512);
        }
        let workload = layer_spec
            .generate(ctx.generator())
            .expect("selected-layer profiles feasible");
        let prepared = PreparedLayer::new(&workload);
        let mut t = Table::new(
            format!(
                "Fig. 14 — off-chip traffic breakup on {} (normalized to LoAS total)",
                layer_spec.name
            ),
            vec!["design", "weight", "input", "psum", "output", "format", "total"],
        );
        let loas_total = run_design(Design::Loas, &layer_spec.name, std::slice::from_ref(&prepared))
            .total_stats()
            .dram
            .total()
            .max(1) as f64;
        let mut loas_miss = 0.0;
        for design in [Design::SparTen, Design::Gospa, Design::Gamma, Design::Loas] {
            let report = run_design(design, &layer_spec.name, std::slice::from_ref(&prepared));
            let stats = report.total_stats();
            let cells: Vec<String> = [
                TrafficClass::Weight,
                TrafficClass::Input,
                TrafficClass::Psum,
                TrafficClass::Output,
                TrafficClass::Format,
            ]
            .iter()
            .map(|&c| num(stats.dram.get(c) as f64 / loas_total))
            .chain([num(stats.dram.total() as f64 / loas_total)])
            .collect();
            t.push_row(design.name(), cells);
            if layer_spec.name == "R-L19" {
                let rate = stats.cache.miss_rate() * 100.0;
                if matches!(design, Design::Loas) {
                    loas_miss = rate;
                }
                miss.push_row(
                    design.name(),
                    vec![format!("{rate:.3}"), String::new()],
                );
            }
        }
        if layer_spec.name == "R-L19" {
            for (_, cells) in &mut miss.rows {
                let rate: f64 = cells[0].parse().unwrap();
                cells[1] = num(rate / loas_miss.max(1e-9));
            }
        }
        t.push_note("paper: SparTen-SNN largest input traffic (dense spikes); GoSPA-SNN largest psum and format traffic; LoAS format ~2.1x SparTen's (extra non-silent bitmasks)");
        tables.push(t);
    }
    miss.push_note("paper: SparTen-SNN 16x the LoAS miss rate (1.47%); GoSPA lowest (output-stationary). Absolute rates depend on access-granularity conventions; see EXPERIMENTS.md");
    tables.push(miss);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualitative_breakup_claims_hold() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(t.is_consistent(), "{}", t.title);
        }
        // In every layer table: SparTen has the largest input row, GoSPA
        // the largest psum.
        for t in &tables[..3] {
            let get = |row: usize, col: usize| -> f64 { t.rows[row].1[col].parse().unwrap() };
            let input_col = 1;
            let psum_col = 2;
            let sparten_input = get(0, input_col);
            let gospa_psum = get(1, psum_col);
            for row in 0..4 {
                // 15% slack: Gamma's per-row pointers sit on top of the
                // same dense spike-train footprint SparTen fetches, and the
                // cells round to two decimals.
                assert!(
                    get(row, input_col) <= sparten_input * 1.15 + 0.01,
                    "{} row {row}",
                    t.title
                );
                assert!(get(row, psum_col) <= gospa_psum, "{}", t.title);
            }
        }
    }
}
