//! The paper's published values, kept next to the measured results so every
//! table the harness prints can show `paper vs measured` side by side (and
//! so EXPERIMENTS.md has one source of truth).

/// Fig. 12 — network-level speedup of LoAS(FT) over the three spMspM
/// baselines, as stated in Section VI-A: averages 6.79x / 5.99x / 3.25x
/// (SparTen / GoSPA / Gamma), range 4.08x (VGG16) to 8.51x (ResNet19) vs
/// SparTen-SNN.
pub mod fig12 {
    /// Mean speedup over SparTen-SNN.
    pub const MEAN_SPEEDUP_VS_SPARTEN: f64 = 6.79;
    /// Mean speedup over GoSPA-SNN.
    pub const MEAN_SPEEDUP_VS_GOSPA: f64 = 5.99;
    /// Mean speedup over Gamma-SNN.
    pub const MEAN_SPEEDUP_VS_GAMMA: f64 = 3.25;
    /// Speedup vs SparTen-SNN on VGG16 (the minimum).
    pub const VGG16_VS_SPARTEN: f64 = 4.08;
    /// Speedup vs SparTen-SNN on ResNet19 (the maximum).
    pub const RESNET19_VS_SPARTEN: f64 = 8.51;
    /// Average extra speedup from fine-tuned preprocessing.
    pub const FT_EXTRA_SPEEDUP: f64 = 1.20;
    /// Energy-efficiency gains (AlexNet, VGG16, ResNet19) over
    /// (SparTen-SNN, GoSPA-SNN, Gamma-SNN).
    pub const ENERGY_GAINS: [[f64; 3]; 3] =
        [[3.68, 3.09, 2.40], [3.17, 1.50, 2.33], [3.54, 1.34, 2.47]];
}

/// Fig. 13 — traffic ratios relative to LoAS (Section VI-A "Detailed
/// Analysis"): `(on_chip_sram, off_chip_dram)` per network.
pub mod fig13 {
    /// SparTen-SNN / LoAS traffic on (AlexNet, VGG16, ResNet19).
    pub const SPARTEN_OVER_LOAS: [(f64, f64); 3] = [(3.93, 3.70), (3.57, 2.22), (4.07, 2.24)];
    /// GoSPA-SNN / LoAS traffic.
    pub const GOSPA_OVER_LOAS: [(f64, f64); 3] = [(2.87, 4.49), (2.19, 2.78), (2.98, 3.03)];
    /// Gamma-SNN / LoAS DRAM traffic (SRAM is reported as the 13.4x mean).
    pub const GAMMA_DRAM_OVER_LOAS: [f64; 3] = [2.16, 1.76, 1.91];
    /// Gamma-SNN mean SRAM amplification over LoAS.
    pub const GAMMA_MEAN_SRAM_OVER_LOAS: f64 = 13.4;
}

/// Fig. 14 — SRAM miss-rate ratio (SparTen-SNN vs LoAS on the ResNet19
/// layer) and format-traffic ratio (LoAS vs SparTen-SNN).
pub mod fig14 {
    /// SparTen-SNN's normalized miss rate vs LoAS (16x, at 1.47%).
    pub const SPARTEN_MISS_RATE_RATIO: f64 = 16.0;
    /// LoAS's compressed-format off-chip traffic vs SparTen-SNN.
    pub const LOAS_FORMAT_OVER_SPARTEN: f64 = 2.1;
}

/// Table IV / Fig. 15 — area (mm²) and power (mW) of LoAS.
pub mod table4 {
    /// Total area.
    pub const TOTAL_AREA_MM2: f64 = 2.08;
    /// Total power.
    pub const TOTAL_POWER_MW: f64 = 188.9;
    /// Global-cache share of system power.
    pub const CACHE_POWER_SHARE: f64 = 0.659;
    /// Fast prefix-sum share of TPPE power.
    pub const FAST_PREFIX_POWER_SHARE: f64 = 0.518;
}

/// Fig. 16(a) — TPPE scaling with timesteps.
pub mod fig16 {
    /// T-dependent area shares at T = 4, 8, 16.
    pub const AREA_SHARES: [f64; 3] = [0.125, 0.222, 0.363];
    /// T-dependent power shares at T = 4, 8, 16.
    pub const POWER_SHARES: [f64; 3] = [0.084, 0.155, 0.268];
    /// Area growth T=16 over T=4.
    pub const AREA_GROWTH_16_OVER_4: f64 = 1.37;
    /// Power growth T=16 over T=4.
    pub const POWER_GROWTH_16_OVER_4: f64 = 1.25;
}

/// Fig. 17 — scalability statements.
pub mod fig17 {
    /// Performance drop scaling B sparsity from 98.2% to 25%.
    pub const LOW_SPARSITY_PERF_DROP: f64 = 0.88;
    /// Performance loss doubling timesteps (4 -> 8).
    pub const DOUBLE_T_PERF_LOSS: f64 = 0.14;
}

/// Fig. 18 — dual-sparse SNN (LoAS) vs dual-sparse ANN.
pub mod fig18 {
    /// Energy-efficiency gain over SparTen-ANN.
    pub const ENERGY_VS_SPARTEN_ANN: f64 = 2.5;
    /// Energy-efficiency gain over Gamma-ANN.
    pub const ENERGY_VS_GAMMA_ANN: f64 = 1.2;
    /// SNN memory-traffic reduction vs SparTen-ANN.
    pub const TRAFFIC_REDUCTION_VS_SPARTEN: f64 = 0.60;
    /// Gamma-ANN SRAM amplification vs LoAS.
    pub const GAMMA_ANN_SRAM_OVER_LOAS: f64 = 3.5;
    /// Data-movement share of energy for both networks.
    pub const DATA_MOVEMENT_SHARE: f64 = 0.60;
}

/// Fig. 19 — dual-sparse LoAS vs dense SNN accelerators on VGG16.
pub mod fig19 {
    /// Speedup over PTB.
    pub const SPEEDUP_VS_PTB: f64 = 46.9;
    /// Speedup over Stellar.
    pub const SPEEDUP_VS_STELLAR: f64 = 7.1;
    /// Energy gain over PTB.
    pub const ENERGY_VS_PTB: f64 = 6.0;
    /// Energy gain over Stellar.
    pub const ENERGY_VS_STELLAR: f64 = 2.5;
    /// (DRAM, SRAM) reduction vs PTB.
    pub const TRAFFIC_VS_PTB: (f64, f64) = (3.0, 12.5);
    /// (DRAM, SRAM) reduction vs Stellar.
    pub const TRAFFIC_VS_STELLAR: (f64, f64) = (2.7, 6.6);
}

/// Table II — the published workload statistics (percent).
pub mod table2 {
    /// Rows: (name, layers, T, origin, packed, packed+FT, weight).
    pub const ROWS: [(&str, usize, usize, f64, f64, f64, f64); 6] = [
        ("AlexNet", 7, 4, 81.2, 71.3, 76.7, 98.2),
        ("VGG16", 14, 4, 82.3, 74.1, 79.6, 98.2),
        ("ResNet19", 19, 4, 68.6, 59.6, 66.1, 96.8),
        ("A-L4", 1, 4, 75.8, 63.2, 69.7, 98.9),
        ("V-L8", 1, 4, 88.1, 76.5, 86.8, 96.8),
        ("R-L19", 1, 4, 57.9, 51.4, 55.7, 99.1),
    ];
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig12_range_brackets_mean() {
        assert!(super::fig12::VGG16_VS_SPARTEN < super::fig12::MEAN_SPEEDUP_VS_SPARTEN);
        assert!(super::fig12::RESNET19_VS_SPARTEN > super::fig12::MEAN_SPEEDUP_VS_SPARTEN);
    }

    #[test]
    fn table2_rows_complete() {
        assert_eq!(super::table2::ROWS.len(), 6);
    }
}
