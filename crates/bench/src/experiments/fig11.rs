//! Fig. 11 — accuracy trends of the fine-tuned preprocessing (documented
//! synthetic recovery model; see DESIGN.md substitutions).

use crate::context::Context;
use crate::report::Table;
use loas_snn::FineTuneAccuracyModel;

/// Regenerates Fig. 11: Origin / Mask / FT-e1 / FT-e5 / FT-e10 accuracy for
/// VGG16 and ResNet19.
pub fn run(_ctx: &mut Context) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 11 — accuracy of fine-tuned preprocessing (%)",
        vec!["network", "Origin", "Mask", "FT-e1", "FT-e5", "FT-e10"],
    );
    for (name, model) in [
        ("VGG16", FineTuneAccuracyModel::vgg16()),
        ("ResNet19", FineTuneAccuracyModel::resnet19()),
    ] {
        let points = model.figure11_points();
        t.push_row(
            name,
            points.iter().map(|(_, acc)| format!("{acc:.2}")).collect(),
        );
    }
    t.push_note("synthetic recovery model (no trained checkpoints offline): masking costs 1.5-2 points, fine-tuning recovers within ~5 epochs, as the paper reports");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_within_five_epochs() {
        let t = &run(&mut Context::quick())[0];
        assert_eq!(t.rows.len(), 2);
        assert!(t.is_consistent());
        for (_, cells) in &t.rows {
            let origin: f64 = cells[0].parse().unwrap();
            let mask: f64 = cells[1].parse().unwrap();
            let e5: f64 = cells[3].parse().unwrap();
            assert!(mask < origin);
            assert!(origin - e5 < 0.5, "recovered by epoch 5");
        }
    }
}
