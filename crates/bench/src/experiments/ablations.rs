//! Ablation studies of LoAS's three design choices (DESIGN.md §3): the FTP
//! dataflow, the FTP-friendly inner-join, and the packed spike compression —
//! plus a global-cache capacity sweep. These isolate each contribution on
//! the paper's V-L8 layer.

use crate::context::Context;
use crate::report::{num, ratio, Table};
use loas_core::{compress, Accelerator, AreaPowerModel, Loas, LoasConfig, PreparedLayer};
use loas_workloads::networks;

fn v_l8(ctx: &Context) -> PreparedLayer {
    let mut spec = networks::selected_layers()[1].clone();
    if ctx.is_quick() {
        spec.shape.m = spec.shape.m.min(16);
        spec.shape.n = spec.shape.n.min(32);
        spec.shape.k = spec.shape.k.min(512);
    }
    let workload = spec.generate(ctx.generator()).expect("V-L8 feasible");
    PreparedLayer::new(&workload)
}

/// Runs all four ablations.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let layer = v_l8(ctx);

    // ---- Ablation 1: FTP vs sequential timesteps on identical hardware.
    let ftp = Loas::default().run_layer(&layer);
    let seq = Loas::new(LoasConfig::builder().temporal_parallel(false).build())
        .run_layer(&layer);
    let mut dataflow = Table::new(
        "Ablation — FTP dataflow vs sequential timesteps (V-L8, same hardware & compression)",
        vec!["variant", "cycles", "speedup", "accumulates", "laggy cycles"],
    );
    for r in [&seq, &ftp] {
        dataflow.push_row(
            r.accelerator.clone(),
            vec![
                format!("{}", r.stats.cycles.get()),
                ratio(seq.stats.cycles.get() as f64 / r.stats.cycles.get().max(1) as f64),
                format!("{}", r.stats.ops.accumulates),
                format!("{}", r.stats.ops.laggy_prefix_cycles),
            ],
        );
    }
    dataflow.push_note("isolates goal (3) of Section III: parallelizing t removes the T x latency; the pseudo/correction accumulates are the price (extra accumulate ops, cheap adders)");

    // ---- Ablation 2: fast+laggy inner-join vs two fast prefix-sums.
    let two_fast = Loas::new(LoasConfig::builder().two_fast_prefix(true).build())
        .run_layer(&layer);
    let model = AreaPowerModel::loas_default();
    let laggy_table = model.tppe_table();
    let two_table = model.tppe_two_fast_table();
    let mut join = Table::new(
        "Ablation — FTP-friendly inner-join (fast+laggy) vs two fast prefix-sums (V-L8)",
        vec!["variant", "cycles", "throughput penalty", "TPPE mW", "TPPE mm2"],
    );
    join.push_row(
        "fast + laggy (LoAS)",
        vec![
            format!("{}", ftp.stats.cycles.get()),
            ratio(ftp.stats.cycles.get() as f64 / two_fast.stats.cycles.get().max(1) as f64),
            format!("{:.2}", laggy_table.total_power_mw()),
            format!("{:.3}", laggy_table.total_area_mm2()),
        ],
    );
    join.push_row(
        "two fast (SparTen-style)",
        vec![
            format!("{}", two_fast.stats.cycles.get()),
            ratio(1.0),
            format!("{:.2}", two_table.total_power_mw()),
            format!("{:.3}", two_table.total_area_mm2()),
        ],
    );
    join.push_note(format!(
        "paper claim: the laggy circuit nearly halves prefix-sum cost with almost no throughput penalty — measured penalty {} at {:.0}% of the two-fast power",
        ratio(ftp.stats.cycles.get() as f64 / two_fast.stats.cycles.get().max(1) as f64),
        laggy_table.total_power_mw() / two_table.total_power_mw() * 100.0
    ));

    // ---- Ablation 3: compression formats for the input spikes.
    let (_, comp) = compress::compress_tensor(&layer.workload.spikes);
    let mut formats = Table::new(
        "Ablation — input spike storage formats (V-L8)",
        vec!["format", "bits", "vs packed"],
    );
    let packed_bits = comp.total_bits();
    formats.push_row(
        "packed + bitmask (LoAS)",
        vec![format!("{packed_bits}"), ratio(1.0)],
    );
    formats.push_row(
        "dense spike trains",
        vec![
            format!("{}", comp.dense_bits),
            ratio(comp.dense_bits as f64 / packed_bits.max(1) as f64),
        ],
    );
    formats.push_row(
        "per-timestep CSR",
        vec![
            format!("{}", comp.csr_bits),
            ratio(comp.csr_bits as f64 / packed_bits.max(1) as f64),
        ],
    );
    formats.push_note(format!(
        "compression efficiency (spikes per payload bit): {:.2}",
        comp.efficiency()
    ));

    // ---- Ablation 4: global cache capacity sweep.
    let mut cache = Table::new(
        "Ablation — global cache capacity (V-L8)",
        vec!["capacity", "cycles", "off-chip KB", "miss rate %"],
    );
    for kb in [64usize, 128, 256, 512] {
        let report = Loas::new(LoasConfig::builder().cache_bytes(kb * 1024).build())
            .run_layer(&layer);
        cache.push_row(
            format!("{kb} KB"),
            vec![
                format!("{}", report.stats.cycles.get()),
                format!("{:.1}", report.stats.dram.total_kb()),
                num(report.stats.cache.miss_rate() * 100.0),
            ],
        );
    }
    cache.push_note("Table III picks 256 KB: 'enough to capture good on-chip data reuse'");
    vec![dataflow, join, formats, cache]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_ablations_render() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(t.is_consistent(), "{}", t.title);
        }
    }

    #[test]
    fn ftp_beats_sequential_and_laggy_halves_power() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        // Dataflow ablation: FTP speedup (row 1, col 1) > 1.
        let ftp_speedup: f64 = tables[0].rows[1].1[1]
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(ftp_speedup > 1.5, "FTP speedup {ftp_speedup}");
        // Join ablation: laggy power below two-fast power.
        let laggy_mw: f64 = tables[1].rows[0].1[2].parse().unwrap();
        let two_mw: f64 = tables[1].rows[1].1[2].parse().unwrap();
        assert!(laggy_mw < two_mw);
        // Format ablation: packed beats dense and CSR.
        for row in 1..3 {
            let vs: f64 = tables[2].rows[row].1[1]
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(vs > 1.0, "packed must be smallest ({vs})");
        }
        // Cache sweep: larger cache never increases off-chip traffic.
        let kb: Vec<f64> = tables[3]
            .rows
            .iter()
            .map(|(_, c)| c[1].parse().unwrap())
            .collect();
        assert!(kb.windows(2).all(|w| w[1] <= w[0] * 1.001), "{kb:?}");
    }
}
