//! Ablation studies of LoAS's three design choices (DESIGN.md §3): the FTP
//! dataflow, the FTP-friendly inner-join, and the packed spike compression —
//! plus a global-cache capacity sweep. These isolate each contribution on
//! the paper's V-L8 layer.
//!
//! The configuration variants run as **one campaign** sharing a single
//! cached preparation of V-L8; the compression ablation reads the same
//! prepared layer straight from the engine cache.

use crate::context::Context;
use crate::report::{num, ratio, Table};
use loas_core::{compress, AreaPowerModel, LoasConfig};
use loas_engine::{AcceleratorSpec, Campaign};
use loas_workloads::networks;

const CACHE_POINTS_KB: [usize; 4] = [64, 128, 256, 512];

/// Runs all four ablations.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let v_l8_spec = ctx.shrink_layer(&networks::selected_layers()[1]);
    let workload = ctx.workload_spec(&v_l8_spec);

    let mut campaign = Campaign::new("ablations");
    let ftp_job = campaign.push_layer(workload.clone(), AcceleratorSpec::loas());
    let seq_job = campaign.push_layer(
        workload.clone(),
        AcceleratorSpec::loas_with(LoasConfig::builder().temporal_parallel(false).build()),
    );
    let two_fast_job = campaign.push_layer(
        workload.clone(),
        AcceleratorSpec::loas_with(LoasConfig::builder().two_fast_prefix(true).build()),
    );
    let cache_jobs: Vec<usize> = CACHE_POINTS_KB
        .iter()
        .map(|&kb| {
            campaign.push_layer(
                workload.clone(),
                AcceleratorSpec::loas_with(LoasConfig::builder().cache_bytes(kb * 1024).build()),
            )
        })
        .collect();
    let outcome = ctx.run_campaign(&campaign);
    let ftp = outcome.layer_report(ftp_job);
    let seq = outcome.layer_report(seq_job);
    let two_fast = outcome.layer_report(two_fast_job);

    // ---- Ablation 1: FTP vs sequential timesteps on identical hardware.
    let mut dataflow = Table::new(
        "Ablation — FTP dataflow vs sequential timesteps (V-L8, same hardware & compression)",
        vec![
            "variant",
            "cycles",
            "speedup",
            "accumulates",
            "laggy cycles",
        ],
    );
    for r in [seq, ftp] {
        dataflow.push_row(
            r.accelerator.clone(),
            vec![
                format!("{}", r.stats.cycles.get()),
                ratio(seq.stats.cycles.get() as f64 / r.stats.cycles.get().max(1) as f64),
                format!("{}", r.stats.ops.accumulates),
                format!("{}", r.stats.ops.laggy_prefix_cycles),
            ],
        );
    }
    dataflow.push_note("isolates goal (3) of Section III: parallelizing t removes the T x latency; the pseudo/correction accumulates are the price (extra accumulate ops, cheap adders)");

    // ---- Ablation 2: fast+laggy inner-join vs two fast prefix-sums.
    let model = AreaPowerModel::loas_default();
    let laggy_table = model.tppe_table();
    let two_table = model.tppe_two_fast_table();
    let mut join = Table::new(
        "Ablation — FTP-friendly inner-join (fast+laggy) vs two fast prefix-sums (V-L8)",
        vec![
            "variant",
            "cycles",
            "throughput penalty",
            "TPPE mW",
            "TPPE mm2",
        ],
    );
    join.push_row(
        "fast + laggy (LoAS)",
        vec![
            format!("{}", ftp.stats.cycles.get()),
            ratio(ftp.stats.cycles.get() as f64 / two_fast.stats.cycles.get().max(1) as f64),
            format!("{:.2}", laggy_table.total_power_mw()),
            format!("{:.3}", laggy_table.total_area_mm2()),
        ],
    );
    join.push_row(
        "two fast (SparTen-style)",
        vec![
            format!("{}", two_fast.stats.cycles.get()),
            ratio(1.0),
            format!("{:.2}", two_table.total_power_mw()),
            format!("{:.3}", two_table.total_area_mm2()),
        ],
    );
    join.push_note(format!(
        "paper claim: the laggy circuit nearly halves prefix-sum cost with almost no throughput penalty — measured penalty {} at {:.0}% of the two-fast power",
        ratio(ftp.stats.cycles.get() as f64 / two_fast.stats.cycles.get().max(1) as f64),
        laggy_table.total_power_mw() / two_table.total_power_mw() * 100.0
    ));

    // ---- Ablation 3: compression formats for the input spikes (reads the
    // same cached preparation the simulation jobs used).
    let layer = ctx.prepared_layer(&v_l8_spec);
    let (_, comp) = compress::compress_tensor(&layer.workload.spikes);
    let mut formats = Table::new(
        "Ablation — input spike storage formats (V-L8)",
        vec!["format", "bits", "vs packed"],
    );
    let packed_bits = comp.total_bits();
    formats.push_row(
        "packed + bitmask (LoAS)",
        vec![format!("{packed_bits}"), ratio(1.0)],
    );
    formats.push_row(
        "dense spike trains",
        vec![
            format!("{}", comp.dense_bits),
            ratio(comp.dense_bits as f64 / packed_bits.max(1) as f64),
        ],
    );
    formats.push_row(
        "per-timestep CSR",
        vec![
            format!("{}", comp.csr_bits),
            ratio(comp.csr_bits as f64 / packed_bits.max(1) as f64),
        ],
    );
    formats.push_note(format!(
        "compression efficiency (spikes per payload bit): {:.2}",
        comp.efficiency()
    ));

    // ---- Ablation 4: global cache capacity sweep.
    let mut cache = Table::new(
        "Ablation — global cache capacity (V-L8)",
        vec!["capacity", "cycles", "off-chip KB", "miss rate %"],
    );
    for (&kb, &job) in CACHE_POINTS_KB.iter().zip(&cache_jobs) {
        let report = outcome.layer_report(job);
        cache.push_row(
            format!("{kb} KB"),
            vec![
                format!("{}", report.stats.cycles.get()),
                format!("{:.1}", report.stats.dram.total_kb()),
                num(report.stats.cache.miss_rate() * 100.0),
            ],
        );
    }
    cache.push_note("Table III picks 256 KB: 'enough to capture good on-chip data reuse'");
    vec![dataflow, join, formats, cache]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_ablations_render() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(t.is_consistent(), "{}", t.title);
        }
    }

    #[test]
    fn ftp_beats_sequential_and_laggy_halves_power() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        // Dataflow ablation: FTP speedup (row 1, col 1) > 1.
        let ftp_speedup: f64 = tables[0].rows[1].1[1]
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(ftp_speedup > 1.5, "FTP speedup {ftp_speedup}");
        // Join ablation: laggy power below two-fast power.
        let laggy_mw: f64 = tables[1].rows[0].1[2].parse().unwrap();
        let two_mw: f64 = tables[1].rows[1].1[2].parse().unwrap();
        assert!(laggy_mw < two_mw);
        // Format ablation: packed beats dense and CSR.
        for row in 1..3 {
            let vs: f64 = tables[2].rows[row].1[1]
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(vs > 1.0, "packed must be smallest ({vs})");
        }
        // Cache sweep: larger cache never increases off-chip traffic.
        let kb: Vec<f64> = tables[3]
            .rows
            .iter()
            .map(|(_, c)| c[1].parse().unwrap())
            .collect();
        assert!(kb.windows(2).all(|w| w[1] <= w[0] * 1.001), "{kb:?}");
    }

    #[test]
    fn all_variants_share_one_preparation() {
        let mut ctx = Context::quick();
        run(&mut ctx);
        assert_eq!(
            ctx.engine().cache_stats().generated,
            1,
            "seven config variants + the compression ablation share one V-L8 preparation"
        );
    }
}
