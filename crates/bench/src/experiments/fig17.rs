//! Fig. 17 — scalability of LoAS across weight sparsity, timesteps, and
//! layer size.
//!
//! All three panels share **one campaign**: the weight-sparsity sweep, the
//! T=8 VGG16 network replay, and the layer-size comparison are jobs in a
//! single sharded batch (the T=4 VGG16 reference rides the cross-experiment
//! network-report cache).

use crate::context::{Context, Design};
use crate::report::{num, ratio, Table};
use loas_core::LoasConfig;
use loas_engine::{AcceleratorSpec, Campaign, WorkloadSpec};
use loas_workloads::networks::{self, profiles};
use loas_workloads::{LayerShape, SparsityProfile, TemporalScalingModel};

fn scaled_profile(base: &SparsityProfile, weight_pct: f64) -> SparsityProfile {
    SparsityProfile::from_percentages(
        base.spike_origin * 100.0,
        base.silent * 100.0,
        base.silent_ft * 100.0,
        weight_pct,
    )
    .expect("sweep values are valid percentages")
}

/// Regenerates the three Fig. 17 sweeps.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    // The T=4 VGG16 reference (shared with Fig. 12/13 via the report cache).
    let t4 = ctx
        .network_report(&networks::vgg16(), Design::Loas)
        .total_cycles()
        .get() as f64;

    let mut campaign = Campaign::new("fig17");

    // ---- Panel 1 jobs: B sparsity {98.2 (High), 68.4 (Medium), 25 (Low)}
    // on the VGG16 selected layer (V-L8 shape at network scale is
    // representative and keeps the sweep tractable).
    let base_shape = if ctx.is_quick() {
        LayerShape::new(4, 16, 32, 512)
    } else {
        LayerShape::new(4, 16, 512, 2304) // V-L8
    };
    let sparsity_points = [
        ("High 98.2%", 98.2),
        ("Medium 68.4%", 68.4),
        ("Low 25.0%", 25.0),
    ];
    let sparsity_jobs: Vec<usize> = sparsity_points
        .iter()
        .map(|(_, weight_pct)| {
            let workload = WorkloadSpec::new(
                format!("fig17-b-{weight_pct}"),
                base_shape,
                scaled_profile(&profiles::vgg16(), *weight_pct),
            )
            .with_seed(ctx.generator().seed());
            campaign.push_layer(workload, AcceleratorSpec::loas())
        })
        .collect();

    // ---- Panel 2 jobs: the whole VGG16 network at T=8, profile
    // extrapolated by the temporal mixture.
    let temporal =
        TemporalScalingModel::fit(&profiles::vgg16(), 4, TemporalScalingModel::DEFAULT_ALPHA)
            .expect("VGG16 fits the temporal mixture");
    let profile8 = temporal.profile_at(8).expect("T=8 profile feasible");
    let mut spec8 = networks::vgg16();
    spec8.name = "VGG16-T8".to_owned();
    for layer in &mut spec8.layers {
        layer.shape.t = 8;
        layer.profile = profile8;
        layer.name = format!("{}-T8", layer.name);
    }
    spec8.layers = spec8.layers.iter().map(|l| ctx.shrink_layer(l)).collect();
    let t8_jobs = campaign.push_network(
        &spec8,
        AcceleratorSpec::loas_with(LoasConfig::builder().timesteps(8).build()),
        ctx.generator().seed(),
    );

    // ---- Panel 3 jobs: layer size — V-L8 vs the SpikeTransformer HFF
    // layer (quick mode keeps only V-L8; the transformer layer is huge).
    let selected = networks::selected_layers();
    let picks: Vec<&loas_workloads::networks::LayerSpec> = if ctx.is_quick() {
        vec![&selected[1]]
    } else {
        vec![&selected[1], &selected[3]] // V-L8 and T-HFF
    };
    let size_jobs: Vec<(usize, &loas_workloads::networks::LayerSpec)> = picks
        .into_iter()
        .map(|spec| {
            let workload = WorkloadSpec::from_layer(spec).with_seed(ctx.generator().seed());
            (campaign.push_layer(workload, AcceleratorSpec::loas()), spec)
        })
        .collect();

    let outcome = ctx.run_campaign(&campaign);

    // ---- Panel 1 table.
    let mut sparsity_panel = Table::new(
        "Fig. 17 (left) — LoAS vs weight sparsity of B (VGG16, normalized perf)",
        vec!["B sparsity", "cycles", "performance"],
    );
    let high_cycles = outcome.layer_report(sparsity_jobs[0]).stats.cycles.get() as f64;
    for ((label, _), &job) in sparsity_points.iter().zip(&sparsity_jobs) {
        let cycles = outcome.layer_report(job).stats.cycles.get() as f64;
        sparsity_panel.push_row(
            *label,
            vec![format!("{cycles:.0}"), num(high_cycles / cycles)],
        );
    }
    sparsity_panel
        .push_note("paper: scaling B sparsity from 98.2% to 25% cuts performance by ~88%");

    // ---- Panel 2 table.
    let mut t_panel = Table::new(
        "Fig. 17 (middle) — LoAS vs timesteps (VGG16)",
        vec!["T", "cycles", "performance vs T=4"],
    );
    t_panel.push_row("T=4", vec![format!("{t4:.0}"), ratio(1.0)]);
    let t8 = outcome.records[t8_jobs]
        .iter()
        .map(|record| record.report.stats.cycles.get())
        .sum::<u64>() as f64;
    t_panel.push_row("T=8", vec![format!("{t8:.0}"), ratio(t4 / t8)]);
    t_panel.push_note("paper: doubling timesteps loses only ~14% performance (FTP scales)");

    // ---- Panel 3 table.
    let mut size_panel = Table::new(
        "Fig. 17 (right) — LoAS vs layer size",
        vec!["layer", "dense ops", "cycles", "cycles per M dense-ops"],
    );
    for (job, spec) in size_jobs {
        let ops = spec.shape.dense_ops() as f64;
        let cycles = outcome.layer_report(job).stats.cycles.get() as f64;
        size_panel.push_row(
            spec.name.clone(),
            vec![
                format!("{:.1}M", ops / 1e6),
                format!("{cycles:.0}"),
                num(cycles / (ops / 1e6)),
            ],
        );
    }
    size_panel.push_note("paper: LoAS scales well even on the much larger transformer layer");
    vec![sparsity_panel, t_panel, size_panel]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_weights_cost_performance() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(t.is_consistent());
        }
        // Performance column monotonically decreases down the sparsity
        // sweep.
        let perf: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|(_, c)| c[1].parse().unwrap())
            .collect();
        assert!(perf[0] >= perf[1] && perf[1] >= perf[2], "{perf:?}");
    }

    #[test]
    fn doubling_t_costs_less_than_halving() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let ratio_cell = &tables[1].rows[1].1[1];
        let perf: f64 = ratio_cell.trim_end_matches('x').parse().unwrap();
        assert!(
            perf > 0.55,
            "T=8 keeps well over half the T=4 performance: {perf}"
        );
    }
}
