//! Fig. 17 — scalability of LoAS across weight sparsity, timesteps, and
//! layer size.

use crate::context::{Context, Design};
use crate::report::{num, ratio, Table};
use loas_core::{Accelerator, Loas, LoasConfig, PreparedLayer};
use loas_workloads::networks::{self, profiles};
use loas_workloads::{LayerShape, SparsityProfile, TemporalScalingModel};

fn scaled_profile(base: &SparsityProfile, weight_pct: f64) -> SparsityProfile {
    SparsityProfile::from_percentages(
        base.spike_origin * 100.0,
        base.silent * 100.0,
        base.silent_ft * 100.0,
        weight_pct,
    )
    .expect("sweep values are valid percentages")
}

/// Regenerates the three Fig. 17 sweeps.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    // ---- Panel 1: B sparsity {98.2 (High), 68.4 (Medium), 25 (Low)} on the
    // VGG16 selected layer (V-L8 shape at network scale is representative
    // and keeps the sweep tractable).
    let mut sparsity_panel = Table::new(
        "Fig. 17 (left) — LoAS vs weight sparsity of B (VGG16, normalized perf)",
        vec!["B sparsity", "cycles", "performance"],
    );
    let base_shape = if ctx.is_quick() {
        LayerShape::new(4, 16, 32, 512)
    } else {
        LayerShape::new(4, 16, 512, 2304) // V-L8
    };
    let mut high_cycles = 0.0;
    for (label, weight_pct) in [("High 98.2%", 98.2), ("Medium 68.4%", 68.4), ("Low 25.0%", 25.0)] {
        let profile = scaled_profile(&profiles::vgg16(), weight_pct);
        let workload = ctx
            .generator()
            .generate(&format!("fig17-b-{weight_pct}"), base_shape, &profile)
            .expect("sweep profiles feasible");
        let report = Loas::default().run_layer(&PreparedLayer::new(&workload));
        let cycles = report.stats.cycles.get() as f64;
        if high_cycles == 0.0 {
            high_cycles = cycles;
        }
        sparsity_panel.push_row(
            label,
            vec![format!("{cycles:.0}"), num(high_cycles / cycles)],
        );
    }
    sparsity_panel
        .push_note("paper: scaling B sparsity from 98.2% to 25% cuts performance by ~88%");

    // ---- Panel 2: timesteps 4 -> 8 on the VGG16 network.
    let mut t_panel = Table::new(
        "Fig. 17 (middle) — LoAS vs timesteps (VGG16)",
        vec!["T", "cycles", "performance vs T=4"],
    );
    let t4 = ctx
        .network_report(&networks::vgg16(), Design::Loas)
        .total_cycles()
        .get() as f64;
    t_panel.push_row("T=4", vec![format!("{t4:.0}"), ratio(1.0)]);
    let temporal = TemporalScalingModel::fit(
        &profiles::vgg16(),
        4,
        TemporalScalingModel::DEFAULT_ALPHA,
    )
    .expect("VGG16 fits the temporal mixture");
    let profile8 = temporal.profile_at(8).expect("T=8 profile feasible");
    let mut spec8 = networks::vgg16();
    for layer in &mut spec8.layers {
        layer.shape.t = 8;
        layer.profile = profile8;
        layer.name = format!("{}-T8", layer.name);
    }
    if ctx.is_quick() {
        for layer in &mut spec8.layers {
            layer.shape.m = layer.shape.m.clamp(1, 16);
            layer.shape.n = layer.shape.n.min(32);
            layer.shape.k = layer.shape.k.min(512);
        }
    }
    let layers8 = spec8
        .generate(ctx.generator())
        .expect("T=8 generation succeeds");
    let prepared8: Vec<PreparedLayer> = layers8.iter().map(PreparedLayer::new).collect();
    let mut loas8 = Loas::new(LoasConfig::builder().timesteps(8).build());
    let t8 = loas8
        .run_network("VGG16-T8", &prepared8)
        .total_cycles()
        .get() as f64;
    t_panel.push_row("T=8", vec![format!("{t8:.0}"), ratio(t4 / t8)]);
    t_panel.push_note("paper: doubling timesteps loses only ~14% performance (FTP scales)");

    // ---- Panel 3: layer size — V-L8 vs the SpikeTransformer HFF layer.
    let mut size_panel = Table::new(
        "Fig. 17 (right) — LoAS vs layer size",
        vec!["layer", "dense ops", "cycles", "cycles per M dense-ops"],
    );
    let selected = networks::selected_layers();
    let picks: Vec<&loas_workloads::networks::LayerSpec> = if ctx.is_quick() {
        vec![&selected[1]]
    } else {
        vec![&selected[1], &selected[3]] // V-L8 and T-HFF
    };
    for spec in picks {
        let workload = spec
            .generate(ctx.generator())
            .expect("selected layers feasible");
        let report = Loas::default().run_layer(&PreparedLayer::new(&workload));
        let ops = spec.shape.dense_ops() as f64;
        let cycles = report.stats.cycles.get() as f64;
        size_panel.push_row(
            spec.name.clone(),
            vec![
                format!("{:.1}M", ops / 1e6),
                format!("{cycles:.0}"),
                num(cycles / (ops / 1e6)),
            ],
        );
    }
    size_panel.push_note("paper: LoAS scales well even on the much larger transformer layer");
    vec![sparsity_panel, t_panel, size_panel]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_weights_cost_performance() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(t.is_consistent());
        }
        // Performance column monotonically decreases down the sparsity
        // sweep.
        let perf: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|(_, c)| c[1].parse().unwrap())
            .collect();
        assert!(perf[0] >= perf[1] && perf[1] >= perf[2], "{perf:?}");
    }

    #[test]
    fn doubling_t_costs_less_than_halving() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        let ratio_cell = &tables[1].rows[1].1[1];
        let perf: f64 = ratio_cell.trim_end_matches('x').parse().unwrap();
        assert!(
            perf > 0.55,
            "T=8 keeps well over half the T=4 performance: {perf}"
        );
    }
}
