//! Fig. 19 — dual-sparse LoAS vs dense SNN accelerators (PTB, Stellar) on
//! VGG16 with 4 timesteps.

use crate::context::{Context, Design};
use crate::report::{ratio, Table};
use loas_workloads::networks;

/// Regenerates Fig. 19: speedup, energy efficiency, and traffic, normalized
/// to LoAS.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let spec = networks::vgg16();
    let loas = ctx.network_report(&spec, Design::Loas);
    let mut t = Table::new(
        "Fig. 19 — LoAS vs dense SNN accelerators (VGG16, T=4)",
        vec![
            "design",
            "LoAS speedup",
            "LoAS energy gain",
            "DRAM vs LoAS",
            "SRAM vs LoAS",
        ],
    );
    let loas_stats = loas.total_stats();
    t.push_row("LoAS", vec![ratio(1.0), ratio(1.0), ratio(1.0), ratio(1.0)]);
    for design in [Design::Ptb, Design::Stellar] {
        let report = ctx.network_report(&spec, design);
        let stats = report.total_stats();
        t.push_row(
            design.name(),
            vec![
                ratio(loas.speedup_over(&report)),
                ratio(loas.energy_gain_over(&report)),
                ratio(stats.dram.total() as f64 / loas_stats.dram.total().max(1) as f64),
                ratio(stats.sram.total() as f64 / loas_stats.sram.total().max(1) as f64),
            ],
        );
    }
    t.push_note("paper: 46.9x speedup / ~6x energy / 3x DRAM / 12.5x SRAM vs PTB; 7.1x speedup / ~2.5x energy / 2.7x DRAM / 6.6x SRAM vs Stellar; Stellar beats PTB everywhere");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loas_dominates_and_stellar_beats_ptb() {
        let mut ctx = Context::quick();
        let t = &run(&mut ctx)[0];
        assert!(t.is_consistent());
        let speed = |row: usize| -> f64 { t.rows[row].1[0].trim_end_matches('x').parse().unwrap() };
        let ptb = speed(1);
        let stellar = speed(2);
        assert!(ptb > 1.0, "LoAS faster than PTB: {ptb}");
        assert!(stellar > 1.0, "LoAS faster than Stellar: {stellar}");
        assert!(ptb > stellar, "Stellar beats PTB: {ptb} vs {stellar}");
    }
}
