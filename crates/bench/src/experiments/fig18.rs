//! Fig. 18 — dual-sparse SNN (LoAS) vs dual-sparse ANN (SparTen, Gamma) on
//! VGG16: energy efficiency and memory traffic.

use crate::context::{Context, Design};
use crate::report::{pct, ratio, Table};
use loas_baselines::{run_gamma_ann, run_sparten_ann, AnnPrepared};
use loas_core::LayerReport;
use loas_sim::{EnergyBreakdown, SimStats};
use loas_workloads::{generate_ann, networks, LayerShape};

/// The ANN reference point: 8-bit VGG16, 43.9% activation sparsity, 98.2%
/// weight sparsity (Section VI-B).
const ANN_ACT_SPARSITY: f64 = 0.439;
const ANN_WEIGHT_SPARSITY: f64 = 0.982;

fn sum_reports(reports: &[LayerReport]) -> (SimStats, EnergyBreakdown) {
    let mut stats = SimStats::new();
    let mut energy = EnergyBreakdown::default();
    for r in reports {
        stats.merge_sequential(&r.stats);
        energy.dram_pj += r.energy.dram_pj;
        energy.sram_pj += r.energy.sram_pj;
        energy.compute_pj += r.energy.compute_pj;
        energy.sparsity_pj += r.energy.sparsity_pj;
        energy.static_pj += r.energy.static_pj;
    }
    (stats, energy)
}

/// Regenerates Fig. 18.
pub fn run(ctx: &mut Context) -> Vec<Table> {
    let spec = networks::vgg16();
    let snn = ctx.network_report(&spec, Design::Loas);
    let (snn_stats, snn_energy) = (snn.total_stats(), snn.total_energy());

    // ANN VGG16: same layer shapes with t = 1.
    let mut sparten_reports = Vec::new();
    let mut gamma_reports = Vec::new();
    for layer in &spec.layers {
        let mut shape = layer.shape;
        if ctx.is_quick() {
            shape.m = shape.m.clamp(1, 16);
            shape.n = shape.n.min(32);
            shape.k = shape.k.min(512);
        }
        let shape = LayerShape { t: 1, ..shape };
        let ann = generate_ann(
            ctx.generator(),
            &format!("{}-ann", layer.name),
            shape,
            ANN_ACT_SPARSITY,
            ANN_WEIGHT_SPARSITY,
        )
        .expect("ANN sparsities valid");
        let prepared = AnnPrepared::new(&ann);
        sparten_reports.push(run_sparten_ann(&prepared));
        gamma_reports.push(run_gamma_ann(&prepared));
    }
    let (sparten_stats, sparten_energy) = sum_reports(&sparten_reports);
    let (gamma_stats, gamma_energy) = sum_reports(&gamma_reports);

    let mut t = Table::new(
        "Fig. 18 — dual-sparse SNN (LoAS) vs dual-sparse ANN (VGG16)",
        vec![
            "design",
            "energy eff. (vs LoAS=1)",
            "DRAM MB",
            "SRAM MB",
            "data movement %",
        ],
    );
    let loas_e = snn_energy.total_pj();
    for (name, stats, energy) in [
        ("LoAS (SNN, T=4)", &snn_stats, &snn_energy),
        ("SparTen-ANN", &sparten_stats, &sparten_energy),
        ("Gamma-ANN", &gamma_stats, &gamma_energy),
    ] {
        t.push_row(
            name,
            vec![
                ratio(loas_e / energy.total_pj().max(1e-12)).replace('x', "x (higher=worse)"),
                format!("{:.2}", stats.dram.total_mb()),
                format!("{:.2}", stats.sram.total_mb()),
                pct(energy.data_movement_fraction() * 100.0),
            ],
        );
    }
    t.push_note("paper: LoAS ~2.5x / ~1.2x more energy-efficient than SparTen-ANN / Gamma-ANN; ~60% less traffic than SparTen-ANN; Gamma-ANN trades 3.5x SRAM for lower DRAM; ~60% of energy is data movement for both");
    vec![t]
}

/// Energy-efficiency gains of the SNN over the two ANN designs, for tests.
pub fn energy_gains(ctx: &mut Context) -> (f64, f64) {
    let tables = run(ctx);
    let parse = |row: usize| -> f64 {
        tables[0].rows[row].1[0]
            .split('x')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    // Row 0 is LoAS itself (1.0); rows 1-2 hold LoAS_energy / ann_energy,
    // i.e. values < 1 mean the ANN spent more.
    (1.0 / parse(1), 1.0 / parse(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snn_beats_both_ann_designs() {
        let mut ctx = Context::quick();
        let (vs_sparten, vs_gamma) = energy_gains(&mut ctx);
        assert!(vs_sparten > 1.0, "vs SparTen-ANN {vs_sparten}");
        assert!(vs_gamma > 0.5, "vs Gamma-ANN {vs_gamma}");
    }

    #[test]
    fn table_is_consistent() {
        let mut ctx = Context::quick();
        let tables = run(&mut ctx);
        assert!(tables[0].is_consistent());
        assert_eq!(tables[0].rows.len(), 3);
    }
}
