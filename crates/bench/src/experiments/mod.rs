//! One module per regenerated table/figure of the paper's evaluation.

use crate::context::Context;
use crate::report::Table;

pub mod ablations;
pub mod bench;
pub mod fig05;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod reference;
pub mod sweeps;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// An experiment entry point: consumes the shared context, returns tables.
pub type ExperimentFn = fn(&mut Context) -> Vec<Table>;

/// Experiment registry: name → runner (used by the `repro` binary). Order
/// follows the paper's evaluation section; `fig15` is produced together
/// with `table4` (same underlying breakdown).
pub const ALL_EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("table1", table1::run),
    ("table2", table2::run),
    ("table3", table3::run),
    ("fig5", fig05::run),
    ("fig11", fig11::run),
    ("fig12", fig12::run),
    ("fig13", fig13::run),
    ("fig14", fig14::run),
    ("table4", table4::run),
    ("fig15", table4::run),
    ("fig16", fig16::run),
    ("fig17", fig17::run),
    ("fig18", fig18::run),
    ("fig19", fig19::run),
    ("ablations", ablations::run),
    ("sweeps", sweeps::run),
    // Simulator-performance baseline, not a paper figure: excluded from
    // `repro all` (it re-times the fig13 grid on both sweep strategies);
    // run explicitly with `repro bench`.
    ("bench", bench::run),
];

/// Experiments excluded when `all` is requested (run them by name).
pub const EXCLUDED_FROM_ALL: &[&str] = &["bench"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_except_table4_alias() {
        let mut names: Vec<&str> = ALL_EXPERIMENTS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_EXPERIMENTS.len());
    }
}
