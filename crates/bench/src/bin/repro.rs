//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation section and prints `paper vs measured` tables.

use loas_bench::{experiments, Context};
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "usage: repro [--quick] [--csv <dir>] [--workers N] [--store <dir>] \
                     [all | table1 table2 table3 table4 fig5 fig11 fig12 fig13 fig14 fig15 \
                     fig16 fig17 fig18 fig19 ablations sweeps bench ...]\n\
                     (`all` runs every paper experiment; `bench` — the simulator perf \
                     baseline writing BENCH_PR3.json — must be requested by name)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let workers: usize = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|w| w.parse().expect("--workers takes a number"))
        .unwrap_or_else(loas_engine::default_workers);
    let store_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let mut skip_next = false;
    let mut wanted: Vec<String> = args
        .into_iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if a == "--csv" || a == "--workers" || a == "--store" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|a| a.to_lowercase())
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = experiments::ALL_EXPERIMENTS
            .iter()
            .map(|(name, _)| (*name).to_owned())
            .filter(|name| !experiments::EXCLUDED_FROM_ALL.contains(&name.as_str()))
            .collect();
    }
    let mut ctx = Context::with_workers(quick, workers);
    if let Some(dir) = &store_dir {
        let store = loas_engine::MemoStore::open(dir)
            .unwrap_or_else(|error| panic!("cannot open memo store {}: {error}", dir.display()));
        println!(
            "(memo store at {}: {} entries; repeated reproductions replay instead of simulating)",
            dir.display(),
            store.len()
        );
        ctx.set_result_store(std::sync::Arc::new(store));
    }
    if quick {
        println!("(quick mode: shrunken workloads — trends hold, magnitudes shift)");
    }
    let mut failures = 0;
    for name in &wanted {
        let Some((_, runner)) = experiments::ALL_EXPERIMENTS.iter().find(|(n, _)| n == name) else {
            eprintln!("unknown experiment `{name}`\n{USAGE}");
            failures += 1;
            continue;
        };
        let start = Instant::now();
        let tables = runner(&mut ctx);
        for table in &tables {
            assert!(table.is_consistent(), "inconsistent table in {name}");
            print!("{table}");
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = dir.join(format!("{}.csv", table.slug()));
                std::fs::write(&path, table.to_csv()).expect("write csv");
            }
        }
        println!("  [{name} done in {:.1?}]", start.elapsed());
    }
    let cache = ctx.engine().cache_stats();
    println!(
        "[engine: {} workers, {} workloads generated, {} cache hits]",
        ctx.engine().workers(),
        cache.generated,
        cache.hits
    );
    if store_dir.is_some() {
        let (memo_hits, simulated) = ctx.memo_totals();
        println!("[memo store: {memo_hits} campaign jobs replayed, {simulated} simulated]");
    }
    if failures > 0 {
        std::process::exit(2);
    }
}
