//! Diagnostic probe: per-network, per-design cycle/traffic/energy breakdown
//! (not part of the paper reproduction — used to calibrate and debug the
//! models; see EXPERIMENTS.md).

use loas_bench::{Context, Design};
use loas_workloads::networks;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut ctx = if quick {
        Context::quick()
    } else {
        Context::full()
    };
    for spec in [networks::alexnet(), networks::vgg16(), networks::resnet19()] {
        println!("== {} ==", spec.name);
        println!(
            "{:<12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "design",
            "cycles",
            "dramMB",
            "sramMB",
            "E.dram",
            "E.sram",
            "E.comp",
            "E.spars",
            "miss%"
        );
        for design in Design::SPMSPM_SET {
            let r = ctx.network_report(&spec, design);
            let stats = r.total_stats();
            let e = r.total_energy();
            println!(
                "{:<12} {:>12} {:>10.2} {:>10.2} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9.3}",
                design.name(),
                stats.cycles.get(),
                stats.dram.total() as f64 / 1e6,
                stats.sram.total() as f64 / 1e6,
                e.dram_pj / 1e6,
                e.sram_pj / 1e6,
                e.compute_pj / 1e6,
                e.sparsity_pj / 1e6,
                stats.cache.miss_rate() * 100.0,
            );
        }
    }
}
