//! Shared machinery for baseline accelerator models.

use loas_core::LayerReport;
use loas_sim::{ClockDomain, Cycle, EnergyModel, HbmModel, SimStats, SramCache};

/// PE count shared by all baselines — the paper configures every design to
/// 16 PEs and the same 256 KB global SRAM for fairness (Section V).
pub const BASELINE_PES: usize = 16;

/// Global SRAM capacity shared by all baselines.
pub const BASELINE_CACHE_BYTES: usize = 256 * 1024;

/// Off-chip bandwidth shared by all baselines (GB/s).
pub const BASELINE_HBM_GBPS: f64 = 128.0;

/// Shared cache-geometry invariant check: every dimension positive and
/// capacity at least one set — the preconditions `SramCache::new` asserts,
/// surfaced as an error so untrusted spec overrides fail cleanly.
pub(crate) fn check_cache_geometry(
    cache_bytes: usize,
    line_bytes: usize,
    ways: usize,
    banks: usize,
) -> Result<(), String> {
    if line_bytes == 0 || ways == 0 || banks == 0 {
        return Err("degenerate cache geometry".to_owned());
    }
    if cache_bytes < line_bytes * ways {
        return Err("cache capacity below one set".to_owned());
    }
    Ok(())
}

/// Generates a `LoasConfig`-style non-consuming builder for a baseline
/// configuration struct: one setter per listed field, terminated by a
/// validating `build()` (which calls the config's `validated()`).
macro_rules! config_builder {
    ($config:ident, $builder:ident, { $( $field:ident : $ty:ty ),* $(,)? }) => {
        #[doc = concat!("Builder for [`", stringify!($config), "`] (paper defaults).")]
        #[derive(Debug, Clone)]
        pub struct $builder {
            config: $config,
        }

        impl $builder {
            $(
                #[doc = concat!("Sets `", stringify!($field), "`.")]
                pub fn $field(mut self, value: $ty) -> Self {
                    self.config.$field = value;
                    self
                }
            )*

            /// Finalises the configuration.
            ///
            /// # Panics
            ///
            /// Panics on degenerate values (see the config's field docs).
            pub fn build(self) -> $config {
                self.config.validated()
            }
        }

        impl $config {
            /// A builder starting from the paper defaults.
            pub fn builder() -> $builder {
                $builder {
                    config: $config::default(),
                }
            }
        }
    };
}

pub(crate) use config_builder;

/// A baseline machine: HBM + cache + stats under construction.
#[derive(Debug)]
pub(crate) struct Machine {
    pub hbm: HbmModel,
    pub cache: SramCache,
    pub stats: SimStats,
    energy: EnergyModel,
}

impl Machine {
    /// Creates the standard baseline machine (16 PEs' worth of memory
    /// system: 256 KB cache, 128 GB/s HBM).
    pub fn standard() -> Self {
        Machine::with_cache(BASELINE_CACHE_BYTES, 64, 16, 16)
    }

    /// Creates a baseline machine with explicit shared-cache geometry (the
    /// knob baseline-config sweeps turn); HBM stays at the shared 128 GB/s.
    pub fn with_cache(cache_bytes: usize, line_bytes: usize, ways: usize, banks: usize) -> Self {
        Machine {
            hbm: HbmModel::new(BASELINE_HBM_GBPS, 16, ClockDomain::default()),
            cache: SramCache::new(cache_bytes, line_bytes, ways, banks),
            stats: SimStats::new(),
            energy: EnergyModel::default(),
        }
    }

    /// Finalises a report: applies the bandwidth rooflines
    /// (`max(compute, dram, sram)` — all baselines share the 16-bank,
    /// 16-byte-port SRAM of the LoAS configuration), folds in ledgers, and
    /// rolls up energy.
    pub fn finish(mut self, workload: &str, accelerator: &str, compute_cycles: u64) -> LayerReport {
        let dram_cycles = self.hbm.transfer_cycles(self.hbm.ledger().total()).get();
        self.stats.dram = self.hbm.take_ledger();
        let (sram, cache_stats) = self.cache.take_results();
        self.stats.sram = sram;
        self.stats.cache = cache_stats;
        let sram_cycles = self.stats.sram.total().div_ceil(16 * 16);
        let total = compute_cycles.max(dram_cycles).max(sram_cycles);
        self.stats.cycles = Cycle(total);
        if total > compute_cycles {
            self.stats.stall_cycles += Cycle(total - compute_cycles);
        }
        let energy = self.energy.energy_of(&self.stats);
        LayerReport {
            workload: workload.to_owned(),
            accelerator: accelerator.to_owned(),
            stats: self.stats,
            energy,
            output: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_sim::TrafficClass;

    #[test]
    fn machine_roofline_applies() {
        let mut m = Machine::standard();
        // 160000 bytes at 160 B/cycle = 1000 cycles of DRAM time.
        m.hbm.read(TrafficClass::Weight, 160_000);
        let report = m.finish("w", "a", 10);
        assert_eq!(report.stats.cycles.get(), 1000);
        assert_eq!(report.stats.stall_cycles.get(), 990);
    }

    #[test]
    fn compute_bound_when_traffic_small() {
        let mut m = Machine::standard();
        m.hbm.read(TrafficClass::Weight, 16);
        let report = m.finish("w", "a", 500);
        assert_eq!(report.stats.cycles.get(), 500);
    }
}
