//! SparTen-SNN: the inner-product (IP) dataflow baseline (Section V).
//!
//! SparTen (MICRO'19) is an inner-join spMspM accelerator. The paper's
//! SparTen-SNN baseline removes the multipliers, keeps 16 PEs and the shared
//! 256 KB SRAM, and — conservatively — places the timestep loop innermost
//! but processes it **sequentially**: for every output pair `(m, n)` the
//! inner-join runs once per timestep against that timestep's spike train.
//!
//! Modeling notes (Section II-D):
//! * The spike train itself is the bitmask *and* the data, so only one fast
//!   prefix-sum circuit is needed (footnote 10) — but every spike bit, 0 or
//!   1, must be fetched from DRAM: `A` travels dense (`M·K·T` bits).
//! * The expensive inner-join runs `T` extra rounds per output (Fig. 4),
//!   re-scanning `bm-B` each round and re-fetching each matched weight per
//!   timestep (no temporal reuse of matched pairs).
//! * Between timestep rounds the join pipeline drains and restarts
//!   ([`SparTenConfig::timestep_restart_cycles`]).
//!
//! # Two-phase execution (simulator performance)
//!
//! The per-`(row, column, timestep)` AND-popcount sweep only enters the
//! report through sums that are linear in the per-timestep match counts,
//! so the kernel strategy replaces the whole `O(M·N·T·K/64)` sweep with
//! the `O(nnz)` identity `Σ_{n,t} |A_t[m] ∧ B[n]| = Σ_k fires(m, k) ·
//! rowNNZ_B(k)` folded per tile, then replays the tag-accurate cache
//! accesses in the original order. [`loas_core::SweepStrategy::Reference`]
//! preserves the pre-kernel scalar loop; both produce byte-identical
//! reports (asserted in tests). The kernel shortcut requires byte-aligned
//! weights (`weight_bits % 8 == 0`, true for the paper configuration) so
//! per-access byte rounding stays exact under aggregation; other widths
//! fall back to the scalar loop.

use crate::common::{config_builder, Machine, BASELINE_CACHE_BYTES, BASELINE_PES};
use loas_core::{Accelerator, LayerReport, PreparedLayer, SweepStrategy};
use loas_sim::{Cycle, LineSpan, SpanResidency, TrafficClass};
use loas_sparse::POINTER_BITS;

/// Typed configuration of the SparTen-SNN model (the paper's Section V
/// parameters by default). Registered in the accelerator catalog as
/// `"sparten"`, so every field is sweepable through campaign specs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparTenConfig {
    /// Processing elements (paper: 16).
    pub pes: usize,
    /// Inner-join chunk width in bits (SparTen uses 128-bit bitmask words).
    pub chunk_bits: usize,
    /// Pipeline drain/refill cycles between sequential timestep rounds of
    /// the same output pair.
    pub timestep_restart_cycles: u64,
    /// Weight precision in bits.
    pub weight_bits: usize,
    /// Shared SRAM capacity in bytes (paper: 256 KB).
    pub cache_bytes: usize,
    /// Shared SRAM line size in bytes.
    pub cache_line_bytes: usize,
    /// Shared SRAM associativity.
    pub cache_ways: usize,
    /// Shared SRAM banks.
    pub cache_banks: usize,
}

impl Default for SparTenConfig {
    fn default() -> Self {
        SparTenConfig {
            pes: BASELINE_PES,
            chunk_bits: 128,
            timestep_restart_cycles: 8,
            weight_bits: 8,
            cache_bytes: BASELINE_CACHE_BYTES,
            cache_line_bytes: 64,
            cache_ways: 16,
            cache_banks: 16,
        }
    }
}

impl SparTenConfig {
    /// Checks the cross-field invariants (builder panics on violations;
    /// the serve spec parser surfaces them as schema errors).
    ///
    /// # Errors
    ///
    /// A message naming the first degenerate field.
    pub fn check(&self) -> Result<(), String> {
        if self.pes == 0 {
            return Err("need at least one PE".to_owned());
        }
        if self.chunk_bits == 0 {
            return Err("degenerate chunk width".to_owned());
        }
        crate::common::check_cache_geometry(
            self.cache_bytes,
            self.cache_line_bytes,
            self.cache_ways,
            self.cache_banks,
        )
    }

    fn validated(self) -> Self {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
        self
    }
}

config_builder!(SparTenConfig, SparTenConfigBuilder, {
    pes: usize,
    chunk_bits: usize,
    timestep_restart_cycles: u64,
    weight_bits: usize,
    cache_bytes: usize,
    cache_line_bytes: usize,
    cache_ways: usize,
    cache_banks: usize,
});

loas_core::impl_model_config!(SparTenConfig, "sparten", {
    pes: usize,
    chunk_bits: usize,
    timestep_restart_cycles: u64,
    weight_bits: usize,
    cache_bytes: usize,
    cache_line_bytes: usize,
    cache_ways: usize,
    cache_banks: usize,
});

/// The SparTen-SNN baseline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparTenSnn {
    params: SparTenConfig,
    sweep: SweepStrategy,
}

impl Default for SparTenSnn {
    /// Paper parameters, sweep strategy from the `LOAS_SWEEP` environment.
    fn default() -> Self {
        SparTenSnn::new(SparTenConfig::default())
    }
}

impl SparTenSnn {
    /// Creates the model with the given configuration.
    pub fn new(params: SparTenConfig) -> Self {
        SparTenSnn {
            params,
            sweep: SweepStrategy::from_env(),
        }
    }

    /// Selects the pure-phase sweep strategy explicitly (overriding the
    /// `LOAS_SWEEP` environment default).
    pub fn with_sweep(mut self, sweep: SweepStrategy) -> Self {
        self.sweep = sweep;
        self
    }

    /// Whether the aggregated kernel shortcut is exact for these
    /// parameters (per-timestep weight-byte rounding must be linear).
    fn kernel_path(&self) -> bool {
        self.sweep == SweepStrategy::Kernel && self.params.weight_bits.is_multiple_of(8)
    }
}

impl Accelerator for SparTenSnn {
    fn name(&self) -> String {
        "SparTen-SNN".to_owned()
    }

    fn run_layer(&mut self, layer: &PreparedLayer) -> LayerReport {
        let p = self.params;
        let shape = layer.shape;
        let mut machine = Machine::with_cache(
            p.cache_bytes,
            p.cache_line_bytes,
            p.cache_ways,
            p.cache_banks,
        );
        let chunks = (shape.k.div_ceil(p.chunk_bits)).max(1) as u64;

        // ---- Off-chip: A travels dense (no compression possible on raw
        // spike trains used as bitmask+data) and is charged through the
        // cache tags, as are the B bitmask fibers — so the T x re-scan of
        // bm-B spills to DRAM whenever B exceeds the shared 256 KB cache
        // (Section II-D: "the timesteps will impose multiple extra
        // rounds"). Matched weight values stream once (compulsory); outputs
        // are dense spike trains.
        let (b_payload, _) = layer.b_compressed_bits(p.weight_bits);
        machine.hbm.read_bits(TrafficClass::Weight, b_payload);
        machine
            .hbm
            .write_bits(TrafficClass::Output, (shape.m * shape.n * shape.t) as u64);
        let line = machine.cache.line_bytes() as u64;

        // Address map for cache tags: A planes then B fibers.
        let a_plane_bytes = (shape.m * shape.k).div_ceil(8) as u64;
        let b_base = a_plane_bytes * shape.t as u64;
        let mut b_addr = Vec::with_capacity(shape.n);
        let mut addr = b_base;
        for fiber in &layer.b_fibers {
            b_addr.push(addr);
            addr += fiber.storage_bits(p.weight_bits).div_ceil(8) as u64;
        }

        let mut compute = 0u64;
        let planes = layer.workload.spikes.planes();
        let row_bytes = shape.k.div_ceil(8) as u64;

        // Span path (kernel strategy): the bm-B rounds and A-row loads go
        // through precomputed LineSpans, with residency tokens on bm-B so
        // the `T` back-to-back re-scans of a still-resident bitmask (and
        // the next tile's revisit) take the all-hits fast path. The
        // reference strategy keeps the per-access arithmetic as the
        // oracle; reports are byte-identical (asserted in tests).
        let line_bytes = machine.cache.line_bytes();
        let b_bm_bytes = (shape.k + POINTER_BITS).div_ceil(8) as u64;
        let mut spanned_b = self.kernel_path().then(|| {
            let spans: Vec<LineSpan> = b_addr
                .iter()
                .map(|&addr| LineSpan::of_range(addr, b_bm_bytes, line_bytes))
                .collect();
            (spans, vec![SpanResidency::default(); shape.n])
        });

        let mut tile_start = 0usize;
        while tile_start < shape.m {
            let tile_end = (tile_start + p.pes).min(shape.m);
            let rows = tile_start..tile_end;
            // Each PE holds its row's spike trains (per timestep) while the
            // column loop sweeps: one SRAM pass per (row, t) per layer
            // (each span is touched once, so `access_range`'s internal
            // span batching is already optimal here — no token needed).
            for m in rows.clone() {
                for (t, _) in planes.iter().enumerate() {
                    let missed = machine.cache.access_range(
                        a_plane_bytes * t as u64 + (m as u64) * row_bytes,
                        row_bytes,
                        TrafficClass::Input,
                    );
                    machine.hbm.read(TrafficClass::Input, missed * line);
                }
            }
            // SparTen assigns (row-chunk, column-chunk) pairs to PEs
            // greedily, so unlike LoAS it keeps all 16 PEs busy even when
            // the tile has fewer than 16 rows: account work at pair
            // granularity divided across PEs.
            let mut tile_work = 0u64;
            if self.kernel_path() {
                // Pure phase: the tile's total per-timestep match count in
                // O(nnz_tile) — every fired (m, k, t) bit meets
                // rowNNZ_B(k) columns.
                let fired_tile: u64 = rows
                    .clone()
                    .flat_map(|m| layer.a_fibers[m].iter())
                    .map(|(k, word)| word.fire_count() as u64 * layer.b_row_nnz[k] as u64)
                    .sum();
                // Traffic phase: the tag-accurate bm-B rounds replay in the
                // original order through the precomputed spans + residency
                // tokens; the per-(pair, timestep) weight fetches and op
                // counts are commutative sums, folded per tile.
                let (b_bm_span, b_bm_residency) =
                    spanned_b.as_mut().expect("kernel path precomputes spans");
                for n in 0..shape.n {
                    for _t in 0..shape.t {
                        let missed = machine.cache.access_span_resident(
                            b_bm_span[n],
                            &mut b_bm_residency[n],
                            TrafficClass::Format,
                        );
                        if missed > 0 {
                            machine.hbm.read(TrafficClass::Format, missed * line);
                        }
                    }
                }
                let rounds = (rows.len() * shape.n * shape.t) as u64;
                tile_work += rounds * (chunks + p.timestep_restart_cycles + 1) + fired_tile;
                machine.cache.read_untagged(
                    TrafficClass::Weight,
                    fired_tile * (p.weight_bits / 8) as u64,
                );
                machine.stats.ops.accumulates += fired_tile;
                machine.stats.ops.fast_prefix_cycles += rounds * chunks + fired_tile;
                machine.stats.ops.lif_updates += rounds;
            } else {
                for (n, fiber_b) in layer.b_fibers.iter().enumerate() {
                    let bm_b = fiber_b.bitmask();
                    let b_bm_bytes = (shape.k + POINTER_BITS).div_ceil(8) as u64;
                    // bm-B is re-broadcast once per timestep round (the join
                    // unit scans it anew each round); rounds that fall out of
                    // the cache refetch from DRAM.
                    for _t in 0..shape.t {
                        let missed =
                            machine
                                .cache
                                .access_range(b_addr[n], b_bm_bytes, TrafficClass::Format);
                        machine.hbm.read(TrafficClass::Format, missed * line);
                    }
                    for m in rows.clone() {
                        for plane in planes {
                            let matches_t = plane.row(m).and_count(bm_b).expect("equal K") as u64;
                            tile_work += chunks + matches_t + p.timestep_restart_cycles + 1; // LIF step

                            // Matched weights fetched per timestep round: no
                            // temporal reuse (Fig. 4's inefficiency).
                            machine.cache.read_untagged(
                                TrafficClass::Weight,
                                (matches_t * p.weight_bits as u64).div_ceil(8),
                            );
                            machine.stats.ops.accumulates += matches_t;
                            machine.stats.ops.fast_prefix_cycles += chunks + matches_t;
                            machine.stats.ops.lif_updates += 1;
                        }
                    }
                }
            }
            compute += tile_work.div_ceil(p.pes as u64);
            // Dense output spike trains written per tile.
            for _m in rows {
                machine
                    .cache
                    .write(TrafficClass::Output, (shape.n * shape.t).div_ceil(8) as u64);
            }
            tile_start = tile_end;
        }
        let _ = Cycle(compute);
        machine.finish(&layer.name, &self.name(), compute)
    }
}

/// The accelerator-catalog entry for this model.
pub(crate) fn catalog_entry() -> loas_core::ModelEntry {
    loas_core::ModelEntry::new(
        "sparten",
        "SparTen-SNN: inner-product (IP) spMspM baseline with bitmask inner-join",
        1,
        || Box::new(SparTenConfig::default()),
        |config| {
            let config = config
                .as_any()
                .downcast_ref::<SparTenConfig>()
                .expect("sparten entry built with a SparTenConfig");
            Box::new(SparTenSnn::new(*config))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_core::Loas;
    use loas_workloads::{LayerShape, SparsityProfile, WorkloadGenerator};

    fn layer() -> PreparedLayer {
        let profile = SparsityProfile::from_percentages(80.0, 70.0, 76.0, 95.0).unwrap();
        let w = WorkloadGenerator::default()
            .generate("sparten-test", LayerShape::new(4, 32, 16, 256), &profile)
            .unwrap();
        PreparedLayer::new(&w)
    }

    #[test]
    fn slower_than_loas_on_dual_sparse_workloads() {
        let l = layer();
        let sparten = SparTenSnn::default().run_layer(&l);
        let loas = Loas::default().run_layer(&l);
        assert!(
            sparten.stats.cycles > loas.stats.cycles,
            "sequential timesteps must cost more: sparten {} vs loas {}",
            sparten.stats.cycles.get(),
            loas.stats.cycles.get()
        );
    }

    #[test]
    fn fetches_dense_input_spikes() {
        // A is charged at cache-line granularity through the tags: the
        // total must be the dense footprint within line-rounding effects.
        let l = layer();
        let report = SparTenSnn::default().run_layer(&l);
        let dense_bytes = l.a_dense_bits().div_ceil(8);
        let input = report.stats.dram.get(TrafficClass::Input);
        assert!(
            input >= dense_bytes / 2 && input <= dense_bytes * 2,
            "input {input} vs dense {dense_bytes}"
        );
    }

    #[test]
    fn accumulates_scale_with_timesteps() {
        // Sequential timesteps re-run the join: total accumulates equal the
        // per-timestep match sum, which exceeds LoAS's packed matches.
        let l = layer();
        let sparten = SparTenSnn::default().run_layer(&l);
        let loas = Loas::default().run_layer(&l);
        assert!(sparten.stats.ops.fast_prefix_cycles > loas.stats.ops.fast_prefix_cycles);
    }

    #[test]
    fn kernel_and_reference_sweeps_are_byte_identical() {
        // The O(nnz) aggregated sweep must reproduce the pre-kernel
        // per-(pair, timestep) loop bit for bit.
        let l = layer();
        let golden = SparTenSnn::default()
            .with_sweep(SweepStrategy::Reference)
            .run_layer(&l)
            .to_portable();
        let kernel = SparTenSnn::default()
            .with_sweep(SweepStrategy::Kernel)
            .run_layer(&l)
            .to_portable();
        assert_eq!(kernel, golden);
    }

    #[test]
    fn odd_weight_widths_fall_back_to_the_scalar_sweep() {
        let model = SparTenSnn::new(SparTenConfig {
            weight_bits: 6,
            ..SparTenConfig::default()
        })
        .with_sweep(SweepStrategy::Kernel);
        assert!(!model.kernel_path(), "6-bit weights round per access");
        assert!(SparTenSnn::default()
            .with_sweep(SweepStrategy::Kernel)
            .kernel_path());
    }

    #[test]
    fn sram_traffic_exceeds_loas() {
        // The T x re-broadcast of bm-B (Fig. 4) shows up as on-chip traffic.
        let l = layer();
        let sparten = SparTenSnn::default().run_layer(&l);
        let loas = Loas::default().run_layer(&l);
        assert!(sparten.stats.sram.total() > 2 * loas.stats.sram.total());
    }
}
