//! GoSPA-SNN: the outer-product (OP) dataflow baseline (Section V).
//!
//! GoSPA (ISCA'21) streams non-zero activations against the matching row of
//! `B`, accumulating rank-1 partial products. The SNN adaptation processes
//! timesteps sequentially with `t` innermost. Its two modeled
//! inefficiencies, per Sections II-D and VI:
//!
//! * **Psum expansion**: the live partial-sum matrix is `M·N·T` — `T` times
//!   larger than the ANN case. What exceeds the on-chip psum scratch spills
//!   to DRAM and is read back for reduction (Fig. 5: ~`T`× more psum
//!   traffic at `T = 4`).
//! * **Per-spike coordinates**: each spike is stored as a CSR coordinate
//!   (`log2(M)` bits per spike per timestep), the largest compressed-format
//!   footprint of all designs (Fig. 14).

use crate::common::{config_builder, Machine};
use loas_core::{Accelerator, LayerReport, PreparedLayer, SweepStrategy};
use loas_sim::{LineSpan, SpanResidency, TrafficClass};

/// Typed configuration of the GoSPA-SNN model. Registered in the
/// accelerator catalog as `"gospa"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GospaConfig {
    /// Accumulation lanes fed by one streamed activation per cycle.
    pub lanes: usize,
    /// On-chip psum scratch in bytes (GoSPA allocates a small dedicated
    /// psum memory; the rest of the 256 KB holds inputs).
    pub psum_buffer_bytes: usize,
    /// Psum precision in bytes.
    pub psum_bytes: usize,
    /// Weight precision in bits.
    pub weight_bits: usize,
}

impl Default for GospaConfig {
    fn default() -> Self {
        GospaConfig {
            lanes: 16,
            psum_buffer_bytes: 64 * 1024,
            psum_bytes: 2,
            weight_bits: 8,
        }
    }
}

impl GospaConfig {
    /// Checks the cross-field invariants (builder panics on violations;
    /// the serve spec parser surfaces them as schema errors).
    ///
    /// # Errors
    ///
    /// A message naming the first degenerate field.
    pub fn check(&self) -> Result<(), String> {
        if self.lanes == 0 {
            return Err("need at least one accumulation lane".to_owned());
        }
        if self.psum_bytes == 0 {
            return Err("degenerate psum precision".to_owned());
        }
        Ok(())
    }

    fn validated(self) -> Self {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
        self
    }
}

config_builder!(GospaConfig, GospaConfigBuilder, {
    lanes: usize,
    psum_buffer_bytes: usize,
    psum_bytes: usize,
    weight_bits: usize,
});

loas_core::impl_model_config!(GospaConfig, "gospa", {
    lanes: usize,
    psum_buffer_bytes: usize,
    psum_bytes: usize,
    weight_bits: usize,
});

/// The GoSPA-SNN baseline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GospaSnn {
    params: GospaConfig,
    sweep: SweepStrategy,
}

impl Default for GospaSnn {
    /// Paper parameters, sweep strategy from the `LOAS_SWEEP` environment.
    fn default() -> Self {
        GospaSnn::new(GospaConfig::default())
    }
}

impl GospaSnn {
    /// Creates the model with the given configuration.
    pub fn new(params: GospaConfig) -> Self {
        GospaSnn {
            params,
            sweep: SweepStrategy::from_env(),
        }
    }

    /// Selects the traffic-path strategy explicitly (overriding the
    /// `LOAS_SWEEP` environment default).
    pub fn with_sweep(mut self, sweep: SweepStrategy) -> Self {
        self.sweep = sweep;
        self
    }

    /// Off-chip psum traffic (bytes) for a given live-psum footprint: what
    /// exceeds the scratch is written out once and merged on the return
    /// stream (read + write counted together as the spill crossing).
    pub fn psum_spill_bytes(&self, live_psum_bytes: u64) -> u64 {
        live_psum_bytes.saturating_sub(self.params.psum_buffer_bytes as u64)
    }
}

impl Accelerator for GospaSnn {
    fn name(&self) -> String {
        "GoSPA-SNN".to_owned()
    }

    fn run_layer(&mut self, layer: &PreparedLayer) -> LayerReport {
        let p = self.params;
        let shape = layer.shape;
        let mut machine = Machine::standard();

        // ---- Off-chip: A in per-timestep CSR (coordinates only: the
        // costliest format for unary spikes), B in CSR with values, psum
        // spills, outputs dense.
        let (_, a_format_bits) = layer.a_csr_bits();
        machine.hbm.read_bits(TrafficClass::Format, a_format_bits);
        let b_nnz = layer.b_nnz();
        let coord_bits = loas_sparse::coordinate_bits(shape.n);
        machine
            .hbm
            .read_bits(TrafficClass::Weight, (b_nnz * p.weight_bits) as u64);
        machine
            .hbm
            .read_bits(TrafficClass::Format, (b_nnz * coord_bits) as u64);
        let live_psum = (shape.m * shape.n * shape.t * p.psum_bytes) as u64;
        let spill = self.psum_spill_bytes(live_psum);
        machine.hbm.read(TrafficClass::Psum, spill / 2);
        machine.hbm.write(TrafficClass::Psum, spill - spill / 2);
        machine
            .hbm
            .write_bits(TrafficClass::Output, (shape.m * shape.n * shape.t) as u64);

        // ---- Compute + on-chip traffic.
        // GoSPA streams one non-zero activation per cycle; each occupies the
        // 16 accumulation lanes for ceil(nnzB_row / lanes) cycles.
        let mut compute = 0u64;
        let mut products_total = 0u64;
        // Address map for B rows (tagged: GoSPA's k-major order touches each
        // row once per timestep, so the cache keeps them hot — the
        // output-stationary dataflow's low miss rate, Fig. 14).
        let mut b_row_addr = vec![0u64; shape.k];
        let mut addr = 0u64;
        for (k, slot) in b_row_addr.iter_mut().enumerate() {
            *slot = addr;
            addr += ((layer.b_row_nnz[k] * (p.weight_bits + coord_bits)).div_ceil(8)) as u64;
        }
        // The span path of the k-major walk: per-row spans precomputed
        // once, residency tokens so the timestep-over-timestep re-walk of
        // a still-hot row is all-hits with no tag compares. The reference
        // strategy keeps the per-access arithmetic below as the oracle;
        // reports are byte-identical either way (asserted in tests).
        let mut spanned_rows = (self.sweep == SweepStrategy::Kernel).then(|| {
            let line_bytes = machine.cache.line_bytes();
            let spans: Vec<LineSpan> = b_row_addr
                .iter()
                .zip(&layer.b_row_nnz)
                .map(|(&row_addr, &nnz)| {
                    let bytes = ((nnz * (p.weight_bits + coord_bits)).div_ceil(8)) as u64;
                    LineSpan::of_range(row_addr, bytes, line_bytes)
                })
                .collect();
            (spans, vec![SpanResidency::default(); shape.k])
        });
        for (t, plane) in layer.workload.spikes.planes().iter().enumerate() {
            // Per-timestep activation stream: per-column counts of A.
            let mut spikes_t = 0u64;
            for m in 0..shape.m {
                for k in plane.row(m).iter_ones() {
                    let nnz_b = layer.b_row_nnz[k] as u64;
                    compute += (nnz_b.div_ceil(p.lanes as u64)).max(1);
                    products_total += nnz_b;
                    spikes_t += 1;
                }
            }
            // On-chip: the timestep's CSR stream (coordinates) + B rows
            // (read once per (k, t) on average thanks to k-major order).
            machine.cache.read_untagged(
                TrafficClass::Format,
                (spikes_t * loas_sparse::coordinate_bits(shape.m) as u64).div_ceil(8),
            );
            machine.cache.read_untagged(
                TrafficClass::Weight,
                ((b_nnz * (p.weight_bits + coord_bits)) as u64).div_ceil(8),
            );
            // B rows walk through the cache in k-major order once per
            // timestep: hot after the first pass.
            match spanned_rows.as_mut() {
                Some((spans, residency)) => {
                    for (k, &nnz) in layer.b_row_nnz.iter().enumerate() {
                        if nnz > 0 {
                            machine.cache.access_span_resident(
                                spans[k],
                                &mut residency[k],
                                TrafficClass::Weight,
                            );
                        }
                    }
                }
                None => {
                    for (&row_addr, &nnz) in b_row_addr.iter().zip(&layer.b_row_nnz) {
                        if nnz > 0 {
                            let bytes = ((nnz * (p.weight_bits + coord_bits)).div_ceil(8)) as u64;
                            machine
                                .cache
                                .access_range(row_addr, bytes, TrafficClass::Weight);
                        }
                    }
                }
            }
            // Completed psums cross SRAM once on the way out (+ LIF read).
            machine.cache.write(
                TrafficClass::Psum,
                (shape.m * shape.n * p.psum_bytes) as u64,
            );
            machine.cache.read_untagged(
                TrafficClass::Psum,
                (shape.m * shape.n * p.psum_bytes) as u64,
            );
            let _ = t;
        }

        machine.stats.ops.accumulates = products_total;
        machine.stats.ops.lif_updates = (shape.m * shape.n * shape.t) as u64;
        // Spill transfers also occupy the compute pipeline's write port.
        compute += spill / 16;

        machine.finish(&layer.name, &self.name(), compute)
    }
}

/// The accelerator-catalog entry for this model.
pub(crate) fn catalog_entry() -> loas_core::ModelEntry {
    loas_core::ModelEntry::new(
        "gospa",
        "GoSPA-SNN: outer-product (OP) spMspM baseline with psum spill traffic",
        2,
        || Box::new(GospaConfig::default()),
        |config| {
            let config = config
                .as_any()
                .downcast_ref::<GospaConfig>()
                .expect("gospa entry built with a GospaConfig");
            Box::new(GospaSnn::new(*config))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_workloads::{LayerShape, SparsityProfile, WorkloadGenerator};

    fn layer(t: usize, m: usize) -> PreparedLayer {
        let profile = SparsityProfile::from_percentages(80.0, 70.0, 76.0, 95.0).unwrap();
        let w = WorkloadGenerator::default()
            .generate(
                &format!("gospa-test-{t}-{m}"),
                LayerShape::new(t, m, 32, 128),
                &profile,
            )
            .unwrap();
        PreparedLayer::new(&w)
    }

    #[test]
    fn psum_traffic_grows_with_timesteps() {
        // Fig. 5: T=4 induces ~4x more off-chip psum traffic than T=1.
        let profile = SparsityProfile::from_percentages(80.0, 70.0, 76.0, 95.0).unwrap();
        let generator = WorkloadGenerator::default();
        // Large M*N so psums exceed the scratch at both T values.
        let w1 = generator
            .generate("gospa-t1", LayerShape::new(1, 512, 256, 64), &profile)
            .unwrap();
        let w4 = generator
            .generate("gospa-t4", LayerShape::new(4, 512, 256, 64), &profile)
            .unwrap();
        let r1 = GospaSnn::default().run_layer(&PreparedLayer::new(&w1));
        let r4 = GospaSnn::default().run_layer(&PreparedLayer::new(&w4));
        let psum1 = r1.stats.dram.get(TrafficClass::Psum);
        let psum4 = r4.stats.dram.get(TrafficClass::Psum);
        assert!(psum4 >= 4 * psum1.max(1), "psum {psum1} -> {psum4}");
    }

    #[test]
    fn small_layers_fit_on_chip() {
        let report = GospaSnn::default().run_layer(&layer(1, 16));
        assert_eq!(report.stats.dram.get(TrafficClass::Psum), 0);
    }

    #[test]
    fn format_traffic_dominates_input() {
        // Per-spike CSR coordinates: format is the price GoSPA pays.
        let report = GospaSnn::default().run_layer(&layer(4, 64));
        assert!(
            report.stats.dram.get(TrafficClass::Format)
                > report.stats.dram.get(TrafficClass::Input)
        );
    }

    #[test]
    fn span_and_reference_walks_are_byte_identical() {
        let l = layer(4, 64);
        let golden = GospaSnn::default()
            .with_sweep(SweepStrategy::Reference)
            .run_layer(&l)
            .to_portable();
        let span = GospaSnn::default()
            .with_sweep(SweepStrategy::Kernel)
            .run_layer(&l)
            .to_portable();
        assert_eq!(span, golden);
    }

    #[test]
    fn spill_helper_saturates() {
        let g = GospaSnn::default();
        assert_eq!(g.psum_spill_bytes(0), 0);
        assert_eq!(g.psum_spill_bytes(64 * 1024), 0);
        assert_eq!(g.psum_spill_bytes(64 * 1024 + 100), 100);
    }
}
