//! PTB: the partially-temporal-parallel dense systolic baseline (HPCA'22,
//! Sections II-E and VI-B).
//!
//! PTB maps time-windows to systolic-array columns and LIF neurons to rows.
//! For the Fig. 19 comparison the paper sets a 16x4 array producing 16
//! full-sum outputs for 4 timesteps in parallel, running a *dense* SNN
//! workload: no weight sparsity, no spike skipping — every `(m, n)` pair
//! pays the full `K`-deep reduction. PTB targets large-timestep DVS
//! workloads; at `T = 4` (one timestep per column) its utilization is low
//! (Section VII), modeled as [`PtbConfig::utilization`].

use crate::common::{config_builder, Machine};
use crate::systolic::SystolicArray;
use loas_core::{Accelerator, LayerReport, PreparedLayer};
use loas_sim::TrafficClass;

/// Typed configuration of the PTB model. Registered in the accelerator
/// catalog as `"ptb"`; the array geometry is flattened to plain fields so
/// campaign specs can sweep it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtbConfig {
    /// Systolic-array rows — LIF neurons (paper comparison: 16).
    pub array_rows: usize,
    /// Systolic-array columns — time windows (paper comparison: 4).
    pub array_cols: usize,
    /// Effective utilization at small timestep counts (PTB is designed for
    /// `T > 100` DVS streams; at `T = 4` windows underfill the array).
    pub utilization: f64,
    /// Weight precision in bits.
    pub weight_bits: usize,
}

impl Default for PtbConfig {
    fn default() -> Self {
        PtbConfig {
            array_rows: 16,
            array_cols: 4,
            utilization: 0.6,
            weight_bits: 8,
        }
    }
}

impl PtbConfig {
    /// Checks the cross-field invariants (builder panics on violations;
    /// the serve spec parser surfaces them as schema errors).
    ///
    /// # Errors
    ///
    /// A message naming the first degenerate field.
    pub fn check(&self) -> Result<(), String> {
        if self.array_rows == 0 || self.array_cols == 0 {
            return Err("empty systolic array".to_owned());
        }
        let in_range = self.utilization > 0.0 && self.utilization <= 1.0;
        if !in_range {
            return Err("utilization must be in (0, 1]".to_owned());
        }
        Ok(())
    }

    fn validated(self) -> Self {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
        self
    }

    /// The configured array geometry.
    pub fn array(&self) -> SystolicArray {
        SystolicArray::new(self.array_rows, self.array_cols)
    }
}

config_builder!(PtbConfig, PtbConfigBuilder, {
    array_rows: usize,
    array_cols: usize,
    utilization: f64,
    weight_bits: usize,
});

loas_core::impl_model_config!(PtbConfig, "ptb", {
    array_rows: usize,
    array_cols: usize,
    utilization: f64,
    weight_bits: usize,
});

/// The PTB dense baseline model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Ptb {
    params: PtbConfig,
}

impl Ptb {
    /// Creates the model with the given configuration.
    pub fn new(params: PtbConfig) -> Self {
        Ptb { params }
    }
}

impl Accelerator for Ptb {
    fn name(&self) -> String {
        "PTB".to_owned()
    }

    fn run_layer(&mut self, layer: &PreparedLayer) -> LayerReport {
        let p = self.params;
        let array = p.array();
        let shape = layer.shape;
        let mut machine = Machine::standard();

        // ---- Off-chip: everything dense.
        machine
            .hbm
            .read_bits(TrafficClass::Input, layer.a_dense_bits());
        machine.hbm.read(
            TrafficClass::Weight,
            (shape.k * shape.n * p.weight_bits / 8) as u64,
        );
        machine
            .hbm
            .write_bits(TrafficClass::Output, (shape.m * shape.n * shape.t) as u64);

        // ---- On-chip: each output-stationary pass streams a K-deep weight
        // tile for `rows` outputs and the spike rows for `cols` timesteps.
        let passes = array.passes((shape.m * shape.n) as u64);
        let weight_stream = passes * (shape.k * array.rows * p.weight_bits / 8) as u64;
        let input_stream = passes * (shape.k * array.cols).div_ceil(8) as u64;
        machine
            .cache
            .read_untagged(TrafficClass::Weight, weight_stream);
        machine
            .cache
            .read_untagged(TrafficClass::Input, input_stream);
        machine.cache.write(
            TrafficClass::Output,
            (shape.m * shape.n * shape.t / 8) as u64,
        );

        // ---- Compute: dense K-deep reduction per output, derated by the
        // small-T utilization penalty.
        let ideal = array.total_cycles((shape.m * shape.n) as u64, shape.k as u64);
        let compute = (ideal.get() as f64 / p.utilization).ceil() as u64;
        machine.stats.ops.accumulates = (shape.m * shape.n * shape.k * shape.t) as u64;
        machine.stats.ops.lif_updates = (shape.m * shape.n * shape.t) as u64;
        machine.finish(&layer.name, &self.name(), compute)
    }
}

/// The accelerator-catalog entry for this model.
pub(crate) fn catalog_entry() -> loas_core::ModelEntry {
    loas_core::ModelEntry::new(
        "ptb",
        "PTB: dense, partially temporal-parallel systolic baseline",
        5,
        || Box::new(PtbConfig::default()),
        |config| {
            let config = config
                .as_any()
                .downcast_ref::<PtbConfig>()
                .expect("ptb entry built with a PtbConfig");
            Box::new(Ptb::new(*config))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_core::Loas;
    use loas_workloads::{LayerShape, SparsityProfile, WorkloadGenerator};

    fn layer() -> PreparedLayer {
        let profile = SparsityProfile::from_percentages(82.3, 74.1, 79.6, 98.2).unwrap();
        let w = WorkloadGenerator::default()
            .generate("ptb-test", LayerShape::new(4, 64, 64, 512), &profile)
            .unwrap();
        PreparedLayer::new(&w)
    }

    #[test]
    fn dense_execution_ignores_sparsity() {
        let l = layer();
        let report = Ptb::default().run_layer(&l);
        // Dense accumulate count: M*N*K*T regardless of sparsity.
        assert_eq!(report.stats.ops.accumulates, (64 * 64 * 512 * 4) as u64);
    }

    #[test]
    fn far_slower_than_loas_on_dual_sparse() {
        let l = layer();
        let ptb = Ptb::default().run_layer(&l);
        let loas = Loas::default().run_layer(&l);
        let speedup = loas.speedup_over(&ptb).recip();
        assert!(
            speedup < 1.0 / 10.0,
            "LoAS should be >10x faster on 98% sparse weights (got {:.1}x)",
            1.0 / speedup
        );
    }

    #[test]
    fn dense_weight_traffic() {
        let l = layer();
        let report = Ptb::default().run_layer(&l);
        assert_eq!(
            report.stats.dram.get(TrafficClass::Weight),
            (512 * 64) as u64
        );
    }
}
