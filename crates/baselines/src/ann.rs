//! Dual-sparse **ANN** accelerator models for the SNN-vs-ANN comparison of
//! Fig. 18: SparTen (IP) and Gamma (Gustavson) running an 8-bit VGG16 with
//! 43.9% activation sparsity and 98.2% weight sparsity in a single pass
//! (no timesteps).

use crate::common::Machine;
use loas_core::kernel::{PairSweepKernel, RowBlocks, SweepMode};
use loas_core::{LayerReport, SweepStrategy};
use loas_sim::TrafficClass;
use loas_sparse::{Bitmask, WeightFiber, POINTER_BITS};
use loas_workloads::AnnWorkload;

/// Precomputed compressed views of an ANN workload.
#[derive(Debug, Clone)]
pub struct AnnPrepared {
    /// Workload name.
    pub name: String,
    /// `M`, `K`, `N` (with `t = 1`).
    pub shape: loas_workloads::LayerShape,
    /// Non-zero bitmask of each activation row.
    pub a_row_masks: Vec<Bitmask>,
    /// Non-zero activation count.
    pub a_nnz: usize,
    /// Compressed weight columns.
    pub b_fibers: Vec<WeightFiber>,
    /// Per-row non-zero weight counts (for Gustavson).
    pub b_row_nnz: Vec<usize>,
    /// Structure-of-arrays layout of the activation row masks, consumed by
    /// the pair-intersection kernel.
    pub row_blocks: RowBlocks,
}

impl AnnPrepared {
    /// Prepares all compressed views of an ANN workload.
    pub fn new(workload: &AnnWorkload) -> Self {
        let shape = workload.shape;
        let a_row_masks: Vec<Bitmask> = (0..shape.m)
            .map(|m| Bitmask::from_bools(workload.activations.row(m).iter().map(|&v| v != 0)))
            .collect();
        let a_nnz = a_row_masks.iter().map(Bitmask::popcount).sum();
        let b_fibers = (0..shape.n)
            .map(|n| WeightFiber::from_weights(&workload.weights.column(n)))
            .collect();
        let b_row_nnz = (0..shape.k)
            .map(|k| workload.weights.row(k).iter().filter(|&&w| w != 0).count())
            .collect();
        let row_blocks = RowBlocks::from_masks(&a_row_masks);
        AnnPrepared {
            name: workload.name.clone(),
            shape,
            a_row_masks,
            a_nnz,
            b_fibers,
            b_row_nnz,
            row_blocks,
        }
    }
}

/// SparTen running the dual-sparse ANN (two fast prefix-sum circuits; 8-bit
/// activations need explicit value fetches, unlike spike trains). Sweep
/// strategy from the `LOAS_SWEEP` environment.
pub fn run_sparten_ann(prepared: &AnnPrepared) -> LayerReport {
    run_sparten_ann_with(prepared, SweepStrategy::from_env())
}

/// [`run_sparten_ann`] with an explicit sweep strategy: the kernel path
/// runs the pair intersections as one pure [`PairSweepKernel`] pass per
/// tile and folds the per-pair sums; the reference path is the pre-kernel
/// scalar loop. Reports are byte-identical (asserted in tests).
pub fn run_sparten_ann_with(prepared: &AnnPrepared, sweep: SweepStrategy) -> LayerReport {
    let shape = prepared.shape;
    let pes = crate::common::BASELINE_PES;
    let chunks = (shape.k.div_ceil(128)).max(1) as u64;
    let mut machine = Machine::standard();

    // Off-chip: compressed activations (bitmask + 8-bit values), compressed
    // weights, dense 8-bit outputs.
    machine.hbm.read_bits(
        TrafficClass::Format,
        (shape.m * (shape.k + POINTER_BITS)) as u64,
    );
    machine
        .hbm
        .read_bits(TrafficClass::Input, (prepared.a_nnz * 8) as u64);
    let b_nnz: usize = prepared.b_fibers.iter().map(WeightFiber::nnz).sum();
    machine
        .hbm
        .read_bits(TrafficClass::Weight, (b_nnz * 8) as u64);
    machine.hbm.read_bits(
        TrafficClass::Format,
        (shape.n * (shape.k + POINTER_BITS)) as u64,
    );
    machine
        .hbm
        .write(TrafficClass::Output, (shape.m * shape.n) as u64);

    let mut compute = 0u64;
    let kernel = PairSweepKernel::new(128, None);
    let b_words: Vec<&[u64]> = prepared
        .b_fibers
        .iter()
        .map(|fiber| fiber.bitmask().words())
        .collect();
    let mut tile_start = 0usize;
    while tile_start < shape.m {
        let rows = tile_start..(tile_start + pes).min(shape.m);
        for m in rows.clone() {
            machine
                .cache
                .read_untagged(TrafficClass::Format, shape.k.div_ceil(8) as u64);
            let _ = m;
        }
        match sweep {
            SweepStrategy::Kernel => {
                // Pure phase: one kernel pass over the tile; the per-pair
                // sums (MACs, prefix-sum activity, matched value fetches)
                // are linear, so the tile aggregates fold exactly.
                let tile = kernel.sweep_tile(
                    &prepared.row_blocks,
                    rows.clone(),
                    &b_words,
                    SweepMode::TemporalParallel,
                );
                let row_count = rows.len();
                for n in 0..shape.n {
                    machine
                        .cache
                        .read_untagged(TrafficClass::Format, shape.k.div_ceil(8) as u64);
                    let column = &tile.matches[n * row_count..(n + 1) * row_count];
                    let peak = column.iter().copied().max().unwrap_or(0) as u64;
                    compute += chunks + peak + 1;
                }
                machine.stats.ops.macs += tile.matches_total;
                machine.stats.ops.fast_prefix_cycles +=
                    2 * ((shape.n * row_count) as u64 * chunks + tile.matches_total);
                machine
                    .cache
                    .read_untagged(TrafficClass::Input, tile.matches_total);
                machine
                    .cache
                    .read_untagged(TrafficClass::Weight, tile.matches_total);
            }
            SweepStrategy::Reference => {
                for n in 0..shape.n {
                    let fiber_b = &prepared.b_fibers[n];
                    machine
                        .cache
                        .read_untagged(TrafficClass::Format, shape.k.div_ceil(8) as u64);
                    let mut worst = 0u64;
                    for m in rows.clone() {
                        let matches = prepared.a_row_masks[m]
                            .and_count(fiber_b.bitmask())
                            .expect("equal K") as u64;
                        worst = worst.max(chunks + matches + 1);
                        machine.stats.ops.macs += matches;
                        // Both offsets come from fast prefix-sums (two
                        // circuits).
                        machine.stats.ops.fast_prefix_cycles += 2 * (chunks + matches);
                        // Matched activations *and* weights are fetched by
                        // value.
                        machine.cache.read_untagged(TrafficClass::Input, matches);
                        machine.cache.read_untagged(TrafficClass::Weight, matches);
                    }
                    compute += worst;
                }
            }
        }
        machine
            .cache
            .write(TrafficClass::Output, (rows.len() * shape.n) as u64);
        tile_start = rows.end;
    }
    machine.finish(&prepared.name, "SparTen-ANN", compute)
}

/// Gamma running the dual-sparse ANN (row-wise Gustavson with a hardware
/// merger; one pass, no timestep amplification).
pub fn run_gamma_ann(prepared: &AnnPrepared) -> LayerReport {
    let shape = prepared.shape;
    let pes = crate::common::BASELINE_PES;
    let coord_bits = loas_sparse::coordinate_bits(shape.n);
    let mut machine = Machine::standard();

    machine.hbm.read_bits(
        TrafficClass::Format,
        (shape.m * (shape.k + POINTER_BITS)) as u64,
    );
    machine
        .hbm
        .read_bits(TrafficClass::Input, (prepared.a_nnz * 8) as u64);
    let b_nnz: usize = prepared.b_fibers.iter().map(WeightFiber::nnz).sum();
    machine
        .hbm
        .read_bits(TrafficClass::Weight, (b_nnz * 8) as u64);
    // B rows in the shared bitmask-fiber format (consistent with the SNN
    // designs): N-bit row mask + pointer per row.
    machine.hbm.read_bits(
        TrafficClass::Format,
        (shape.k * (shape.n + POINTER_BITS)) as u64,
    );
    machine
        .hbm
        .write(TrafficClass::Output, (shape.m * shape.n) as u64);

    let mut compute = 0u64;
    let psum_row_bytes = (shape.n * 2) as u64;
    let tiles = shape.m.div_ceil(pes);
    for tile in 0..tiles {
        let rows = (tile * pes)..((tile + 1) * pes).min(shape.m);
        let mut worst = 0u64;
        for m in rows {
            let mut row_cycles = 0u64;
            for k in prepared.a_row_masks[m].iter_ones() {
                let nnz_b = prepared.b_row_nnz[k] as u64;
                row_cycles += nnz_b.max(1);
                machine.stats.ops.macs += nnz_b;
                machine.cache.read_untagged(
                    TrafficClass::Weight,
                    ((prepared.b_row_nnz[k] * (8 + coord_bits)).div_ceil(8)) as u64,
                );
            }
            machine
                .cache
                .read_untagged(TrafficClass::Psum, psum_row_bytes);
            machine.cache.write(TrafficClass::Psum, psum_row_bytes);
            worst = worst.max(row_cycles);
        }
        compute += worst;
    }
    machine.finish(&prepared.name, "Gamma-ANN", compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_workloads::{generate_ann, LayerShape, WorkloadGenerator};

    fn prepared() -> AnnPrepared {
        let w = generate_ann(
            &WorkloadGenerator::default(),
            "ann-test",
            LayerShape::new(1, 32, 128, 256),
            0.439,
            0.982,
        )
        .unwrap();
        AnnPrepared::new(&w)
    }

    #[test]
    fn prepared_counts_consistent() {
        let p = prepared();
        assert_eq!(p.a_row_masks.len(), 32);
        let row_total: usize = p.b_row_nnz.iter().sum();
        let col_total: usize = p.b_fibers.iter().map(WeightFiber::nnz).sum();
        assert_eq!(row_total, col_total);
    }

    #[test]
    fn sparten_ann_uses_macs_not_accumulates() {
        let report = run_sparten_ann(&prepared());
        assert!(report.stats.ops.macs > 0);
        assert_eq!(report.stats.ops.accumulates, 0);
    }

    #[test]
    fn gamma_ann_dram_stays_at_or_below_sparten_ann() {
        // The Fig. 18 trade-off: Gamma's Gustavson dataflow avoids input
        // re-fetch, keeping DRAM at or below the IP design (both share the
        // bitmask weight format; pointers differ by row vs column count).
        let p = prepared();
        let sparten = run_sparten_ann(&p);
        let gamma = run_gamma_ann(&p);
        assert!(
            gamma.stats.dram.total() as f64 <= sparten.stats.dram.total() as f64 * 1.1,
            "gamma {} vs sparten {}",
            gamma.stats.dram.total(),
            sparten.stats.dram.total()
        );
    }

    #[test]
    fn ann_kernel_and_reference_sweeps_are_byte_identical() {
        let p = prepared();
        assert_eq!(
            run_sparten_ann_with(&p, SweepStrategy::Kernel).to_portable(),
            run_sparten_ann_with(&p, SweepStrategy::Reference).to_portable()
        );
    }

    #[test]
    fn reports_carry_names() {
        let p = prepared();
        assert_eq!(run_sparten_ann(&p).accelerator, "SparTen-ANN");
        assert_eq!(run_gamma_ann(&p).accelerator, "Gamma-ANN");
    }
}
