//! Gamma-SNN: the Gustavson's dataflow baseline (Section V).
//!
//! Gamma (ASPLOS'21) processes one row of `A` at a time: every non-zero
//! `A[m, k]` fetches row `k` of `B` from the FiberCache and a hardware
//! merger folds the scaled rows into the output row, emitting one merged
//! element per cycle. The SNN adaptation runs timesteps sequentially, so:
//!
//! * every `B`-row fetch repeats per timestep → the `t` dimension multiplies
//!   FiberCache (SRAM) traffic (~13× LoAS in Fig. 13/14);
//! * partial output rows stay on chip through the merger, keeping off-chip
//!   traffic the lowest of the baselines, but the inflated partial-row
//!   working set raises the cache miss rate (Fig. 14 discussion).
//!
//! # Two-phase execution (simulator performance)
//!
//! The per-`(m, t, k)` FiberCache walk was the slowest model in the
//! workspace: every fired bit re-probed its `B` row line by line through
//! the tag model. The [`loas_core::SweepStrategy::Kernel`] path
//! (default) is cache-model-aware instead: per-`B`-row [`LineSpan`]s are
//! precomputed once per layer, the repeated same-row fetches go through
//! the batched span API, and every row carries a
//! [`SpanResidency`] token so a row that provably stayed resident since
//! its last fetch (no evictions in its sets — the common case, since the
//! paper sizes the FiberCache to keep `B` hot) takes the all-hits fast
//! path with no tag compares at all. The pre-span per-line walk survives
//! as [`loas_core::SweepStrategy::Reference`]; both produce
//! byte-identical reports (asserted in tests and ci.sh).

use crate::common::{config_builder, Machine, BASELINE_CACHE_BYTES, BASELINE_PES};
use loas_core::{Accelerator, LayerReport, PreparedLayer, SweepStrategy};
use loas_sim::{LineSpan, SpanResidency, TrafficClass};

/// Typed configuration of the Gamma-SNN model. Registered in the
/// accelerator catalog as `"gamma"`; the FiberCache geometry fields are
/// the knobs the Gamma cache-size campaign sweep turns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaConfig {
    /// Row-processing PEs (paper: 16).
    pub pes: usize,
    /// Merged elements emitted per cycle per PE (Gamma's merger: 1).
    pub merge_rate: u64,
    /// Merger radix: a row touching more than `radix` fibers needs extra
    /// merge rounds through partial rows (Gamma's 64-way merger).
    pub merge_radix: usize,
    /// Weight precision in bits.
    pub weight_bits: usize,
    /// Psum precision in bytes (for partial output rows).
    pub psum_bytes: usize,
    /// FiberCache capacity in bytes (paper: the shared 256 KB).
    pub cache_bytes: usize,
    /// FiberCache line size in bytes.
    pub cache_line_bytes: usize,
    /// FiberCache associativity.
    pub cache_ways: usize,
    /// FiberCache banks.
    pub cache_banks: usize,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig {
            pes: BASELINE_PES,
            merge_rate: 1,
            merge_radix: 64,
            weight_bits: 8,
            psum_bytes: 2,
            cache_bytes: BASELINE_CACHE_BYTES,
            cache_line_bytes: 64,
            cache_ways: 16,
            cache_banks: 16,
        }
    }
}

impl GammaConfig {
    /// The FiberCache capacities the workspace's built-in cache sweep
    /// visits — shared by the bench `sweeps` table and the served
    /// `loas-serve spec --gamma-cache` campaign, so the two can never
    /// drift apart.
    pub const CACHE_SWEEP_POINTS: [usize; 4] = [64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024];

    /// Checks the cross-field invariants (builder panics on violations;
    /// the serve spec parser surfaces them as schema errors).
    ///
    /// # Errors
    ///
    /// A message naming the first degenerate field.
    pub fn check(&self) -> Result<(), String> {
        if self.pes == 0 {
            return Err("need at least one PE".to_owned());
        }
        if self.merge_rate == 0 {
            return Err("merger must emit at least one element per cycle".to_owned());
        }
        if self.merge_radix <= 1 {
            return Err("radix-1 mergers never converge".to_owned());
        }
        if self.psum_bytes == 0 {
            return Err("degenerate psum precision".to_owned());
        }
        crate::common::check_cache_geometry(
            self.cache_bytes,
            self.cache_line_bytes,
            self.cache_ways,
            self.cache_banks,
        )
    }

    fn validated(self) -> Self {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
        self
    }
}

config_builder!(GammaConfig, GammaConfigBuilder, {
    pes: usize,
    merge_rate: u64,
    merge_radix: usize,
    weight_bits: usize,
    psum_bytes: usize,
    cache_bytes: usize,
    cache_line_bytes: usize,
    cache_ways: usize,
    cache_banks: usize,
});

loas_core::impl_model_config!(GammaConfig, "gamma", {
    pes: usize,
    merge_rate: u64,
    merge_radix: usize,
    weight_bits: usize,
    psum_bytes: usize,
    cache_bytes: usize,
    cache_line_bytes: usize,
    cache_ways: usize,
    cache_banks: usize,
});

impl GammaConfig {
    /// Merge rounds needed for `fibers` input fibers: `ceil(log_radix)`,
    /// minimum one.
    pub fn merge_rounds(&self, fibers: usize) -> u64 {
        let mut rounds = 1u64;
        let mut reach = self.merge_radix;
        while reach < fibers {
            rounds += 1;
            reach = reach.saturating_mul(self.merge_radix);
        }
        rounds
    }
}

/// The Gamma-SNN baseline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaSnn {
    params: GammaConfig,
    sweep: SweepStrategy,
}

impl Default for GammaSnn {
    /// Paper parameters, sweep strategy from the `LOAS_SWEEP` environment.
    fn default() -> Self {
        GammaSnn::new(GammaConfig::default())
    }
}

impl GammaSnn {
    /// Creates the model with the given configuration.
    pub fn new(params: GammaConfig) -> Self {
        GammaSnn {
            params,
            sweep: SweepStrategy::from_env(),
        }
    }

    /// Selects the traffic-path strategy explicitly (overriding the
    /// `LOAS_SWEEP` environment default).
    pub fn with_sweep(mut self, sweep: SweepStrategy) -> Self {
        self.sweep = sweep;
        self
    }
}

impl Accelerator for GammaSnn {
    fn name(&self) -> String {
        "Gamma-SNN".to_owned()
    }

    fn run_layer(&mut self, layer: &PreparedLayer) -> LayerReport {
        let p = self.params;
        let shape = layer.shape;
        let mut machine = Machine::with_cache(
            p.cache_bytes,
            p.cache_line_bytes,
            p.cache_ways,
            p.cache_banks,
        );
        let coord_bits = loas_sparse::coordinate_bits(shape.n);

        // ---- Off-chip: A as per-timestep spike-train row fibers (the raw
        // train doubles as the coordinate mask, like SparTen — coordinate
        // CSR would *exceed* dense at SNN densities); B fibers once (the
        // FiberCache keeps them resident); output rows leave compressed
        // after the merger; partial rows merge on chip (no psum DRAM
        // traffic — Gust's strength).
        machine.hbm.read_bits(
            TrafficClass::Input,
            (shape.m * shape.t * (shape.k + loas_sparse::POINTER_BITS)) as u64,
        );
        // B rows arrive as bitmask fibers (the shared weight format of this
        // substrate): N-bit row mask + pointer per row, read once into the
        // FiberCache.
        machine.hbm.read_bits(
            TrafficClass::Format,
            (shape.k * (shape.n + loas_sparse::POINTER_BITS)) as u64,
        );
        let line = machine.cache.line_bytes() as u64;
        // Gamma has no output-side spike compressor (that is a LoAS
        // contribution): output spike trains leave dense.
        machine
            .hbm
            .write_bits(TrafficClass::Output, (shape.m * shape.n * shape.t) as u64);

        // Address map: B rows live in the FiberCache; partial output rows
        // contend with them for capacity (the Fig. 14 miss-rate effect).
        let mut b_row_addr = vec![0u64; shape.k];
        let mut addr = 0u64;
        for (k, slot) in b_row_addr.iter_mut().enumerate() {
            *slot = addr;
            addr += ((layer.b_row_nnz[k] * (p.weight_bits + coord_bits)).div_ceil(8)) as u64;
        }
        let psum_row_base = addr;
        let psum_row_bytes = (shape.n * p.psum_bytes) as u64;

        let mut compute = 0u64;
        let mut products = 0u64;
        let tiles = shape.m.div_ceil(p.pes);
        match self.sweep {
            // The pre-span oracle: per-access address arithmetic, per-line
            // tag walks.
            SweepStrategy::Reference => {
                for tile in 0..tiles {
                    let rows = (tile * p.pes)..((tile + 1) * p.pes).min(shape.m);
                    let mut worst = 0u64;
                    for m in rows {
                        let mut row_cycles = 0u64;
                        for (t, plane) in layer.workload.spikes.planes().iter().enumerate() {
                            let mut fibers = 0usize;
                            let mut row_products = 0u64;
                            for k in plane.row(m).iter_ones() {
                                let nnz_b = layer.b_row_nnz[k] as u64;
                                // Fetch B row k from the FiberCache (repeated every
                                // timestep and every row of A that needs it).
                                let bytes = ((layer.b_row_nnz[k] * (p.weight_bits + coord_bits))
                                    .div_ceil(8))
                                    as u64;
                                let missed = machine.cache.access_range(
                                    b_row_addr[k],
                                    bytes.max(1),
                                    TrafficClass::Weight,
                                );
                                machine.hbm.read(TrafficClass::Weight, missed * line);
                                row_products += nnz_b.max(1);
                                fibers += 1;
                            }
                            // Merge: one element per cycle through the radix-64
                            // merger; more fibers than the radix force extra rounds
                            // through partial rows (re-read + re-write).
                            let rounds = p.merge_rounds(fibers);
                            row_cycles += (row_products / p.merge_rate) * rounds;
                            products += row_products;
                            // The partial output row streams through the cache once
                            // per timestep (write + readback by the merger).
                            machine.cache.access_range(
                                psum_row_base + (m % p.pes) as u64 * psum_row_bytes,
                                psum_row_bytes,
                                TrafficClass::Psum,
                            );
                            machine.cache.write(TrafficClass::Psum, psum_row_bytes);
                            let _ = t;
                        }
                        worst = worst.max(row_cycles);
                    }
                    compute += worst;
                }
            }
            // The cache-model-aware walk: per-B-row spans precomputed once,
            // residency tokens so an unevicted row's refetch is all-hits
            // with no tag compares. Access order is identical to the
            // oracle, so reports are byte-identical.
            SweepStrategy::Kernel => {
                let line_bytes = machine.cache.line_bytes();
                let b_row_span: Vec<LineSpan> = b_row_addr
                    .iter()
                    .zip(&layer.b_row_nnz)
                    .map(|(&addr, &nnz)| {
                        let bytes = ((nnz * (p.weight_bits + coord_bits)).div_ceil(8)) as u64;
                        LineSpan::of_range(addr, bytes.max(1), line_bytes)
                    })
                    .collect();
                let mut b_row_residency = vec![SpanResidency::default(); shape.k];
                let psum_span: Vec<LineSpan> = (0..p.pes)
                    .map(|pe| {
                        LineSpan::of_range(
                            psum_row_base + pe as u64 * psum_row_bytes,
                            psum_row_bytes,
                            line_bytes,
                        )
                    })
                    .collect();
                let mut psum_residency = vec![SpanResidency::default(); p.pes];
                let planes = layer.workload.spikes.planes();
                for tile in 0..tiles {
                    let rows = (tile * p.pes)..((tile + 1) * p.pes).min(shape.m);
                    let mut worst = 0u64;
                    for m in rows {
                        let mut row_cycles = 0u64;
                        let pe = m % p.pes;
                        for plane in planes {
                            let mut fibers = 0usize;
                            let mut row_products = 0u64;
                            for k in plane.row(m).iter_ones() {
                                let missed = machine.cache.access_span_resident(
                                    b_row_span[k],
                                    &mut b_row_residency[k],
                                    TrafficClass::Weight,
                                );
                                if missed > 0 {
                                    machine.hbm.read(TrafficClass::Weight, missed * line);
                                }
                                row_products += (layer.b_row_nnz[k] as u64).max(1);
                                fibers += 1;
                            }
                            let rounds = p.merge_rounds(fibers);
                            row_cycles += (row_products / p.merge_rate) * rounds;
                            products += row_products;
                            machine.cache.access_span_resident(
                                psum_span[pe],
                                &mut psum_residency[pe],
                                TrafficClass::Psum,
                            );
                            machine.cache.write(TrafficClass::Psum, psum_row_bytes);
                        }
                        worst = worst.max(row_cycles);
                    }
                    compute += worst;
                }
            }
        }

        machine.stats.ops.accumulates = products;
        machine.stats.ops.merges = products;
        machine.stats.ops.lif_updates = (shape.m * shape.n * shape.t) as u64;
        machine.finish(&layer.name, &self.name(), compute)
    }
}

/// The accelerator-catalog entry for this model.
pub(crate) fn catalog_entry() -> loas_core::ModelEntry {
    loas_core::ModelEntry::new(
        "gamma",
        "Gamma-SNN: Gustavson spMspM baseline with FiberCache + merger",
        3,
        || Box::new(GammaConfig::default()),
        |config| {
            let config = config
                .as_any()
                .downcast_ref::<GammaConfig>()
                .expect("gamma entry built with a GammaConfig");
            Box::new(GammaSnn::new(*config))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use loas_core::Loas;
    use loas_workloads::{LayerShape, SparsityProfile, WorkloadGenerator};

    fn layer() -> PreparedLayer {
        let profile = SparsityProfile::from_percentages(70.0, 60.0, 66.0, 96.0).unwrap();
        let w = WorkloadGenerator::default()
            .generate("gamma-test", LayerShape::new(4, 64, 32, 256), &profile)
            .unwrap();
        PreparedLayer::new(&w)
    }

    #[test]
    fn sram_traffic_far_exceeds_loas() {
        // The t-dimension multiplies FiberCache traffic (paper: ~13x LoAS).
        let l = layer();
        let gamma = GammaSnn::default().run_layer(&l);
        let loas = Loas::default().run_layer(&l);
        assert!(
            gamma.stats.sram.total() > 3 * loas.stats.sram.total(),
            "gamma {} vs loas {}",
            gamma.stats.sram.total(),
            loas.stats.sram.total()
        );
    }

    #[test]
    fn no_psum_dram_traffic() {
        let report = GammaSnn::default().run_layer(&layer());
        assert_eq!(report.stats.dram.get(TrafficClass::Psum), 0);
    }

    #[test]
    fn offchip_below_gospa_snn() {
        // Fig. 13: among the baselines Gamma-SNN stays well below the
        // psum-spilling OP design off chip (Gust's strength).
        let l = layer();
        let gamma = GammaSnn::default().run_layer(&l);
        let gospa = crate::gospa::GospaSnn::default().run_layer(&l);
        assert!(
            gamma.stats.dram.total() <= gospa.stats.dram.total(),
            "gamma {} vs gospa {}",
            gamma.stats.dram.total(),
            gospa.stats.dram.total()
        );
    }

    #[test]
    fn span_and_reference_walks_are_byte_identical() {
        // The residency-token walk must reproduce the per-line oracle bit
        // for bit — including on a sweep-shrunk cache where the fast path
        // is frequently invalidated by capacity evictions.
        let l = layer();
        for cache_bytes in [16 * 1024usize, BASELINE_CACHE_BYTES] {
            let config = GammaConfig::builder().cache_bytes(cache_bytes).build();
            let golden = GammaSnn::new(config)
                .with_sweep(SweepStrategy::Reference)
                .run_layer(&l)
                .to_portable();
            let span = GammaSnn::new(config)
                .with_sweep(SweepStrategy::Kernel)
                .run_layer(&l)
                .to_portable();
            assert_eq!(span, golden, "divergence at {cache_bytes} B");
        }
    }

    #[test]
    fn merges_counted() {
        let report = GammaSnn::default().run_layer(&layer());
        assert!(report.stats.ops.merges > 0);
        assert_eq!(report.stats.ops.merges, report.stats.ops.accumulates);
    }
}
